#!/usr/bin/env bash
# Offline tier-1 gate: the workspace must build, test, and lint with no
# network access (no registry deps beyond the vendored toolchain).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo build --examples --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings

# Chaos soak: seeded fault plans over bounded virtual time; fails on any
# lost/reordered acked record, trace-invariant violation, or replay
# divergence. Runs in `cargo test` above too — kept explicit here so a
# chaos regression is named in CI output, and so the fixed seed set is
# pinned even if the default test filter ever changes.
cargo test -q --offline --test chaos

# File-backed recovery soak: chaos seeds over the tiered store (crash +
# torn-tail garbling of real segment files, CRC-scan recovery, bit-identical
# replay) plus the per-sync-mode RF=1 crash/restart contracts. Segment files
# live in per-seed temp dirs that the tests wipe themselves. Runs in
# `cargo test` above too — kept explicit so a durability regression is named
# in CI output.
cargo test -q --offline --test durable

# Parallel-simulation equivalence gate (DESIGN.md §12): the full chaos
# workload must be bit-identical between the legacy block_on executor and
# the sharded executor at shards=1 (order-sensitive trace digest), and a
# 4-group chaos topology — seeded fault plans, crash/restart/failover —
# must produce identical acked/consumed record sets and identical
# canonically-ordered trace digests at shards=1 vs shards=4 across the
# seed set. Runs in `cargo test` above too — kept explicit so a
# parallel-determinism regression is named in CI output. std threads only,
# fully offline.
cargo test -q --offline --test shard_equivalence

# Connection-scaling equivalence gate (DESIGN.md §13): below the NIC cache
# knee the three produce-connection modes — per-QP receive queues, shared
# receive queue, SRQ + QP multiplexing — must be *bit-identical* (same
# acked/consumed sets AND the same order-sensitive trace digest), and the
# full 8-seed chaos soak must stay green with the SRQ enabled (a broker
# crash flushing error CQEs through SRQ-attached QPs must not strand or
# double-free shared receive buffers). Runs in `cargo test` above too —
# kept explicit so a connection-mode regression is named in CI output, and
# because the fan-in smoke below is only meaningful if this gate holds.
cargo test -q --offline --test conn_scaling

# Timer-wheel property tests: exact (deadline, insertion-seq) expiry order
# under arbitrary interleavings of inserts, bounded probes, and pops — both
# on the raw wheel and for timers scheduled from cross-shard mailbox
# deliveries.
cargo test -q --offline -p sim wheel
cargo test -q --offline -p sim --test prop_shard_wheel

# Smoke-run the quickstart example end to end. It runs the broker under the
# continuous-telemetry sampler and health watchdog and exits non-zero on any
# watchdog stall event or critical-path checker error, so this doubles as
# the live observability gate. The --durable variant reruns it over the
# file-backed tier and re-reads every record after a crash + restart.
cargo run -q --release --offline --example quickstart
cargo run -q --release --offline --example quickstart -- --durable

# Perf smoke: wall-clock harness over the fig10/11 produce workload with a
# counting global allocator and an executor-poll counter. Writes
# BENCH_<TAG>.json (+ results/PERF_<TAG>.md; TAG from --tag/KD_BENCH_TAG,
# default PR10) and exits non-zero if the steady-state exclusive-RDMA
# produce path — over the in-memory store OR the file-backed hot tier —
# exceeds its allocation budget (allocs/record <= 2) or its scheduling
# budget (polls/record <= 12 — the pre-batching loop needed ~20.8, so this
# pins the CQ-batching win), if a warm 1 MiB TCP send stops being O(1)
# allocations, or if running with the telemetry sampler on costs more than
# 3% of records/s — measured both on the single-runtime baseline and in
# parallel mode (every group sampling at the largest sweep shard count;
# the parallel-mode budget is enforced only when the host has at least
# as many cores as shards — with fewer, the wall-clock delta measures OS
# time-slicing noise, and the number is reported ungated).
# Wall-clock throughput (including the cold-tier fetch series and the
# sharded-simulation --shards sweep) is reported, not gated: sweep speedup
# depends on host cores, so the JSON records hw_threads alongside it.
#
# --smoke also clamps the connection fan-in sweep to 10..100 clients (vs
# the full 10..100000 decade ladder): below the NIC cache knee it checks
# the memory contracts — broker receive-buffer bytes O(1) in client count
# for SRQ/SrqMux, O(clients) for per-QP — and the kdperf run fails if the
# new SRQ-enabled produce datapath (rdma_srq) blows the same allocs/record
# and polls/record budgets as the per-QP path. This smoke only means
# anything if the conn_scaling equivalence gate above passed, hence the
# ordering.
cargo run -q --release --offline -p kdbench --bin kdperf -- --smoke
