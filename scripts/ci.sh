#!/usr/bin/env bash
# Offline tier-1 gate: the workspace must build, test, and lint with no
# network access (no registry deps beyond the vendored toolchain).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo build --examples --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings

# Chaos soak: seeded fault plans over bounded virtual time; fails on any
# lost/reordered acked record, trace-invariant violation, or replay
# divergence. Runs in `cargo test` above too — kept explicit here so a
# chaos regression is named in CI output, and so the fixed seed set is
# pinned even if the default test filter ever changes.
cargo test -q --offline --test chaos

# File-backed recovery soak: chaos seeds over the tiered store (crash +
# torn-tail garbling of real segment files, CRC-scan recovery, bit-identical
# replay) plus the per-sync-mode RF=1 crash/restart contracts. Segment files
# live in per-seed temp dirs that the tests wipe themselves. Runs in
# `cargo test` above too — kept explicit so a durability regression is named
# in CI output.
cargo test -q --offline --test durable

# Smoke-run the quickstart example end to end. It runs the broker under the
# continuous-telemetry sampler and health watchdog and exits non-zero on any
# watchdog stall event or critical-path checker error, so this doubles as
# the live observability gate. The --durable variant reruns it over the
# file-backed tier and re-reads every record after a crash + restart.
cargo run -q --release --offline --example quickstart
cargo run -q --release --offline --example quickstart -- --durable

# Perf smoke: wall-clock harness over the fig10/11 produce workload with a
# counting global allocator and an executor-poll counter. Writes
# BENCH_PR8.json (+ results/PERF_PR8.md) and exits non-zero if the
# steady-state exclusive-RDMA produce path — over the in-memory store OR
# the file-backed hot tier — exceeds its allocation budget (allocs/record
# <= 2) or its scheduling budget (polls/record <= 12 — the pre-batching
# loop needed ~20.8, so this pins the CQ-batching win), if a warm 1 MiB TCP
# send stops being O(1) allocations, or if running with the telemetry
# sampler on costs more than 3% of the exclusive-RDMA records/s baseline.
# Wall-clock throughput (including the cold-tier fetch series) is reported,
# not gated.
cargo run -q --release --offline -p kdbench --bin kdperf -- --smoke
