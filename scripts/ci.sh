#!/usr/bin/env bash
# Offline tier-1 gate: the workspace must build, test, and lint with no
# network access (no registry deps beyond the vendored toolchain).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings
