#!/usr/bin/env bash
# Offline tier-1 gate: the workspace must build, test, and lint with no
# network access (no registry deps beyond the vendored toolchain).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo build --examples --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings

# Smoke-run the quickstart example end to end.
cargo run -q --release --offline --example quickstart
