//! Batched-datapath determinism: the CQ batch-drain rewrite (PR 5) must not
//! change *what* the system does, only when it does it.
//!
//! For each chaos seed the same fault plan runs under every combination of
//! `rdma_pollers ∈ {1, 2}` and batch draining on (`cq_batch = 16`, the
//! shipped default) / off (`cq_batch = 1`, the pre-batching degenerate loop):
//!
//! * every run must be invariant-clean (`kdtelem::check` reports nothing);
//! * the acked-record set must be identical across all four configurations —
//!   batching shifts virtual-time latencies by nanoseconds, which must never
//!   grow into an acknowledgement appearing or disappearing;
//! * re-running a configuration reproduces it bit for bit (full trace
//!   digest), i.e. batching did not introduce nondeterminism.

mod common;

/// Subset of the chaos seed pool: enough fault-plan variety to cover
/// failover, partition, and delay faults without quadrupling suite time
/// across the 4-config matrix.
const SEEDS: [u64; 4] = [3, 42, 555, 9001];

const CONFIGS: [(usize, usize); 4] = [(1, 1), (1, 16), (2, 1), (2, 16)];

#[test]
fn acked_set_invariant_across_pollers_and_batching() {
    for &seed in &SEEDS {
        let mut baseline: Option<(Vec<u64>, (usize, usize))> = None;
        for &(pollers, batch) in &CONFIGS {
            let o = common::run_seed_with(seed, Some(pollers), Some(batch));
            assert!(
                o.violations.is_empty(),
                "seed {seed} pollers={pollers} cq_batch={batch}: invariant \
                 violations: {:?}",
                o.violations
            );
            let mut acked = o.acked.clone();
            acked.sort_unstable();
            match &baseline {
                None => baseline = Some((acked, (pollers, batch))),
                Some((want, base_cfg)) => assert_eq!(
                    &acked, want,
                    "seed {seed}: acked-record set diverged between \
                     pollers={}/cq_batch={} and pollers={pollers}/cq_batch={batch}",
                    base_cfg.0, base_cfg.1
                ),
            }
        }
    }
}

#[test]
fn batched_runs_replay_bit_identically() {
    for &seed in &SEEDS[..2] {
        for &(pollers, batch) in &[(1usize, 16usize), (2, 16)] {
            let a = common::run_seed_with(seed, Some(pollers), Some(batch));
            let b = common::run_seed_with(seed, Some(pollers), Some(batch));
            assert_eq!(
                a.digest(),
                b.digest(),
                "seed {seed} pollers={pollers} cq_batch={batch}: replay diverged"
            );
            assert_eq!(a.acked, b.acked);
            assert_eq!(a.consumed, b.consumed);
        }
    }
}
