//! Property-based cluster tests: randomized workloads through the full
//! stack must preserve the log invariants — dense offsets, no holes, no
//! corruption, reads equal writes — for every datapath mix.

use proptest::prelude::*;

use kafkadirect::{SimCluster, SystemKind};
use kdclient::{ClientTransport, RdmaConsumer, RdmaProducer, TcpConsumer, TcpProducer};
use kdstorage::Record;

/// One randomized producer action.
#[derive(Debug, Clone)]
struct Op {
    producer: usize,
    size: usize,
}

fn ops_strategy(producers: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0..producers, 1usize..1500).prop_map(|(producer, size)| Op { producer, size }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case boots a full cluster; keep the count sane
        .. ProptestConfig::default()
    })]

    /// Randomized interleavings of shared RDMA producers + a TCP producer
    /// on one partition: consumers must read exactly the multiset of
    /// written payloads, in dense offset order.
    #[test]
    fn shared_partition_linearizes(ops in ops_strategy(3), seed in 0u64..1000) {
        let rt = sim::Runtime::with_seed(seed);
        let total = ops.len();
        rt.block_on(async move {
            let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            // Producer 0/1: shared RDMA; producer 2: TCP into the shared file.
            let mut rdma0 = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, true)
                .await
                .unwrap();
            let mut rdma1 = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, true)
                .await
                .unwrap();
            let tcp = TcpProducer::connect(
                &cnode,
                cluster.bootstrap(),
                ClientTransport::Tcp,
                "t",
                0,
            )
            .await
            .unwrap();
            let mut sent = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                let payload = vec![(i % 251) as u8; op.size];
                let record = Record::value(payload.clone());
                let off = match op.producer {
                    0 => rdma0.send(&record).await.unwrap(),
                    1 => rdma1.send(&record).await.unwrap(),
                    _ => tcp.send(&record).await.unwrap(),
                };
                sent.push((off, payload));
            }
            // Offsets are dense and unique.
            let mut offsets: Vec<u64> = sent.iter().map(|(o, _)| *o).collect();
            offsets.sort_unstable();
            assert_eq!(offsets, (0..total as u64).collect::<Vec<_>>());

            // Read everything back over RDMA and compare payload by offset.
            let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
                .await
                .unwrap();
            let mut got = Vec::new();
            while got.len() < total {
                got.extend(consumer.next_records().await.unwrap());
            }
            sent.sort_by_key(|(o, _)| *o);
            for (rv, (off, payload)) in got.iter().zip(&sent) {
                assert_eq!(rv.offset, *off);
                assert_eq!(&rv.record.value, payload);
            }
        });
    }

    /// Random record sizes through replication: TCP consume on the Kafka
    /// baseline equals RDMA consume on KafkaDirect for the same inputs.
    #[test]
    fn replicated_reads_match_writes(sizes in proptest::collection::vec(1usize..2000, 1..25)) {
        let run = |system: SystemKind, sizes: Vec<usize>| {
            let rt = sim::Runtime::new();
            rt.block_on(async move {
                let cluster = SimCluster::start(system, 2);
                cluster.create_topic("t", 1, 2).await;
                let cnode = cluster.add_client_node("c");
                let leader = cluster.leader_of("t", 0).await;
                let mut payloads = Vec::new();
                match system {
                    SystemKind::KafkaDirect => {
                        let mut p = RdmaProducer::connect(&cnode, leader, "t", 0, false)
                            .await
                            .unwrap();
                        for (i, size) in sizes.iter().enumerate() {
                            let v = vec![(i % 250) as u8 + 1; *size];
                            p.send(&Record::value(v.clone())).await.unwrap();
                            payloads.push(v);
                        }
                    }
                    _ => {
                        let p = TcpProducer::connect(
                            &cnode,
                            leader,
                            ClientTransport::Tcp,
                            "t",
                            0,
                        )
                        .await
                        .unwrap();
                        for (i, size) in sizes.iter().enumerate() {
                            let v = vec![(i % 250) as u8 + 1; *size];
                            p.send(&Record::value(v.clone())).await.unwrap();
                            payloads.push(v);
                        }
                    }
                }
                // Read back.
                let mut got = Vec::new();
                match system {
                    SystemKind::KafkaDirect => {
                        let mut c = RdmaConsumer::connect(&cnode, leader, "t", 0, 0)
                            .await
                            .unwrap();
                        while got.len() < payloads.len() {
                            got.extend(c.next_records().await.unwrap());
                        }
                    }
                    _ => {
                        let mut c = TcpConsumer::connect(
                            &cnode,
                            leader,
                            ClientTransport::Tcp,
                            "t",
                            0,
                            0,
                        )
                        .await
                        .unwrap();
                        while got.len() < payloads.len() {
                            got.extend(c.next_records().await.unwrap());
                        }
                    }
                }
                got.into_iter().map(|rv| rv.record.value).collect::<Vec<_>>()
            })
        };
        let kafka = run(SystemKind::Kafka, sizes.clone());
        let kd = run(SystemKind::KafkaDirect, sizes.clone());
        prop_assert_eq!(kafka.len(), sizes.len());
        prop_assert_eq!(&kafka, &kd, "both systems must deliver identical data");
    }
}
