//! The whole simulation is deterministic: identical seeds produce identical
//! virtual-time traces, different seeds differ.

use kafkadirect::{SimCluster, SystemKind};
use kdclient::RdmaProducer;
use kdstorage::Record;

fn run(seed: u64) -> (u64, u64) {
    let rt = sim::Runtime::with_seed(seed);
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 2);
        cluster.create_topic("t", 1, 2).await;
        let cnode = cluster.add_client_node("c");
        let leader = cluster.leader_of("t", 0).await;
        let mut producer = RdmaProducer::connect(&cnode, leader, "t", 0, false)
            .await
            .unwrap();
        for i in 0..20u64 {
            // Payload size depends on the seeded RNG.
            let size = sim::rng::range_u64(16..512) as usize;
            producer
                .send(&Record::value(vec![(i % 251) as u8; size]))
                .await
                .unwrap();
        }
        let m = cluster.broker(0).metrics();
        (sim::now().as_nanos(), m.rdma_commit_bytes + m.push_bytes)
    })
}

#[test]
fn identical_seeds_identical_traces() {
    assert_eq!(run(11), run(11));
}

#[test]
fn different_seeds_diverge() {
    assert_ne!(run(11), run(12));
}
