//! Tests of the two implemented extensions the paper leaves as future work:
//! RDMA offset commit (§5.4) and adaptive fetch sizing (§4.4.2).

use kafkadirect::{SimCluster, SystemKind};
use kdclient::{RdmaConsumer, RdmaProducer};
use kdstorage::Record;

/// One-sided offset commit: visible through OffsetFetch, zero broker CPU.
#[test]
fn rdma_offset_commit_round_trip() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for i in 0..10u8 {
            producer.send(&Record::value(vec![i; 32])).await.unwrap();
        }
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        consumer.enable_rdma_offset_commit("g").await.unwrap();
        let mut seen = 0;
        while seen < 6 {
            seen += consumer.next_records().await.unwrap().len();
        }
        let busy_before = cluster.broker(0).metrics().worker_busy_ns;
        consumer.commit_offset_rdma().await.unwrap();
        let busy_after = cluster.broker(0).metrics().worker_busy_ns;
        assert_eq!(busy_after, busy_before, "one-sided commit costs no broker CPU");
        assert_eq!(consumer.stats.rdma_offset_commits, 1);

        // The committed offset is visible over the normal TCP API.
        let admin = kdclient::Admin::connect(&cnode, cluster.bootstrap())
            .await
            .unwrap();
        assert_eq!(
            admin.fetch_offset("g", "t", 0).await.unwrap(),
            Some(consumer.offset)
        );
    });
}

/// TCP and RDMA commits for the same group coexist; the newest wins.
#[test]
fn rdma_and_tcp_commits_merge() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for i in 0..10u8 {
            producer.send(&Record::value(vec![i; 32])).await.unwrap();
        }
        let admin = kdclient::Admin::connect(&cnode, cluster.bootstrap())
            .await
            .unwrap();
        // TCP commit at 3.
        admin.commit_offset("g", "t", 0, 3).await.unwrap();
        // RDMA commit at 7.
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        consumer.enable_rdma_offset_commit("g").await.unwrap();
        let mut seen = 0;
        while seen < 7 {
            seen += consumer.next_records().await.unwrap().len();
        }
        consumer.commit_offset_rdma().await.unwrap();
        let rdma_committed = consumer.offset; // batch-granular: >= 7
        assert!(rdma_committed >= 7);
        assert_eq!(
            admin.fetch_offset("g", "t", 0).await.unwrap(),
            Some(rdma_committed.max(3)),
            "newest commit wins"
        );
        // A later (higher) TCP commit overrides again.
        admin.commit_offset("g", "t", 0, 20).await.unwrap();
        assert_eq!(admin.fetch_offset("g", "t", 0).await.unwrap(), Some(20));
    });
}

/// Offset slots are rejected when the RDMA consume datapath is disabled.
#[test]
fn offset_slot_requires_rdma_consume() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::Kafka, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let conn = kdclient::Conn::connect(
            &cnode,
            cluster.bootstrap(),
            kdclient::ClientTransport::Tcp,
        )
        .await
        .unwrap();
        let resp = conn
            .call(&kdwire::Request::OffsetSlotAccess {
                group: "g".into(),
                topic: "t".into(),
                partition: 0,
            })
            .await
            .unwrap();
        match resp {
            kdwire::Response::OffsetSlotAccess { error, .. } => {
                assert_eq!(error, kdwire::ErrorCode::InvalidRequest);
            }
            other => panic!("unexpected {other:?}"),
        }
    });
}

/// Adaptive fetch sizing reads large records with far fewer RDMA Reads than
/// the fixed 2 KiB default, and still delivers identical data.
#[test]
fn adaptive_fetch_reduces_reads() {
    let run = |adaptive: bool| {
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
                .await
                .unwrap();
            let n = 30u32;
            for i in 0..n {
                producer
                    .send(&Record::value(vec![(i % 251) as u8; 48 * 1024]))
                    .await
                    .unwrap();
            }
            let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
                .await
                .unwrap();
            consumer.adaptive_fetch = adaptive;
            let mut got = Vec::new();
            while got.len() < n as usize {
                got.extend(consumer.next_records().await.unwrap());
            }
            for (i, rv) in got.iter().enumerate() {
                assert_eq!(rv.record.value, vec![(i as u32 % 251) as u8; 48 * 1024]);
            }
            consumer.stats.data_reads
        })
    };
    let fixed = run(false);
    let adaptive = run(true);
    assert!(
        adaptive * 5 < fixed,
        "adaptive ({adaptive} reads) must need far fewer reads than fixed ({fixed})"
    );
    // Roughly two reads per record in steady state (header probe + body).
    assert!(adaptive <= 3 * 30, "adaptive reads: {adaptive}");
}

/// Adaptive mode also works for tiny records (EWMA shrinks the reads).
#[test]
fn adaptive_fetch_handles_small_records() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for i in 0..50u8 {
            producer.send(&Record::value(vec![i; 64])).await.unwrap();
        }
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        consumer.adaptive_fetch = true;
        let mut got = Vec::new();
        while got.len() < 50 {
            got.extend(consumer.next_records().await.unwrap());
        }
        for (i, rv) in got.iter().enumerate() {
            assert_eq!(rv.record.value, vec![i as u8; 64]);
        }
    });
}

/// The Fig 9 multi-subscription consumer: N partitions, ONE slot read per
/// poll, all data delivered correctly.
#[test]
fn multi_consumer_single_slot_read() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        let parts = 6u32;
        cluster.create_topic("t", parts, 1).await;
        let cnode = cluster.add_client_node("c");
        // Produce a distinct stream into each partition.
        for p in 0..parts {
            let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", p, false)
                .await
                .unwrap();
            for i in 0..10u8 {
                producer
                    .send(&Record::value(vec![p as u8, i]))
                    .await
                    .unwrap();
            }
        }
        let mut consumer = kdclient::MultiRdmaConsumer::connect(&cnode, cluster.bootstrap())
            .await
            .unwrap();
        for p in 0..parts {
            consumer.subscribe("t", p, 0).await.unwrap();
        }
        let mut per_part = vec![Vec::new(); parts as usize];
        let mut total = 0;
        while total < (parts * 10) as usize {
            for (tp, rv) in consumer.next_records().await.unwrap() {
                per_part[tp.partition as usize].push(rv);
                total += 1;
            }
        }
        for (p, got) in per_part.iter().enumerate() {
            assert_eq!(got.len(), 10);
            for (i, rv) in got.iter().enumerate() {
                assert_eq!(rv.offset, i as u64);
                assert_eq!(rv.record.value, vec![p as u8, i as u8]);
            }
        }
        // The Fig 9 property: metadata for all 6 subscriptions refreshed
        // with far fewer slot reads than a per-subscription design.
        assert!(
            consumer.stats.slot_reads <= consumer.stats.data_reads + 4,
            "one slot read per poll: slot_reads={} data_reads={}",
            consumer.stats.slot_reads,
            consumer.stats.data_reads / parts as u64,
        );
        // Access requests: exactly one per subscription (no churn).
        assert_eq!(consumer.stats.access_requests, u64::from(parts));
    });
}

/// Multi-consumer keeps up with live producers on all partitions and
/// follows file rolls.
#[test]
fn multi_consumer_live_stream_with_rolls() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let opts = kafkadirect::ClusterOptions {
            log: kdstorage::LogConfig {
                segment_size: 8 * 1024,
                max_batch_size: 4 * 1024,
            },
            ..Default::default()
        };
        let cluster = SimCluster::start_with(SystemKind::KafkaDirect, 1, opts);
        cluster.create_topic("t", 3, 1).await;
        let cnode = cluster.add_client_node("c");
        let n_per = 25u32;
        for p in 0..3u32 {
            let bootstrap = cluster.bootstrap();
            let node = cluster.add_client_node(&format!("p{p}"));
            sim::spawn(async move {
                let mut producer = RdmaProducer::connect(&node, bootstrap, "t", p, false)
                    .await
                    .unwrap();
                for i in 0..n_per {
                    producer
                        .send(&Record::value(vec![(p * 100 + i % 90) as u8; 700]))
                        .await
                        .unwrap();
                }
            });
        }
        let mut consumer = kdclient::MultiRdmaConsumer::connect(&cnode, cluster.bootstrap())
            .await
            .unwrap();
        consumer.fetch_size = 4096;
        for p in 0..3 {
            consumer.subscribe("t", p, 0).await.unwrap();
        }
        let mut counts = [0usize; 3];
        while counts.iter().sum::<usize>() < (3 * n_per) as usize {
            for (tp, rv) in consumer.next_records().await.unwrap() {
                let p = tp.partition;
                assert_eq!(
                    rv.record.value,
                    vec![(p * 100 + (rv.offset as u32) % 90) as u8; 700]
                );
                counts[p as usize] += 1;
            }
        }
        assert_eq!(counts, [25, 25, 25]);
        // File rolls forced re-acquisitions beyond the initial three.
        assert!(consumer.stats.access_requests > 3);
    });
}
