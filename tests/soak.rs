//! Soak test: a long randomized mixed workload across every datapath with
//! injected failures, asserting the global invariants at the end —
//! dense offsets, no holes, no corruption, no lost committed records.

use std::collections::VecDeque;

use kafkadirect::{ClusterOptions, SimCluster, SystemKind};
use kdclient::{ClientTransport, MultiRdmaConsumer, RdmaConsumer, RdmaProducer, TcpProducer};
use kdstorage::Record;

/// Encodes (actor, seq) into the record payload for end-of-run accounting.
fn payload(actor: u8, seq: u32, size: usize) -> Vec<u8> {
    let mut v = vec![0u8; size.max(6)];
    v[0] = actor;
    v[1..5].copy_from_slice(&seq.to_le_bytes());
    let tail = (actor as usize + seq as usize) % 251;
    for b in &mut v[5..] {
        *b = tail as u8;
    }
    v
}

fn decode(v: &[u8]) -> (u8, u32) {
    (v[0], u32::from_le_bytes(v[1..5].try_into().unwrap()))
}

#[test]
fn mixed_workload_soak() {
    let rt = sim::Runtime::with_seed(2024);
    rt.block_on(async {
        let opts = ClusterOptions {
            log: kdstorage::LogConfig {
                segment_size: 64 * 1024, // frequent rolls
                max_batch_size: 16 * 1024,
            },
            ..Default::default()
        };
        let cluster = SimCluster::start_with(SystemKind::KafkaDirect, 3, opts);
        cluster.create_topic("shared", 1, 2).await; // shared-mode producers
        cluster.create_topic("excl", 2, 3).await; // exclusive producers, RF=3
        let shared_leader = cluster.leader_of("shared", 0).await;

        let mut producer_handles = Vec::new();

        // Two shared RDMA producers + one TCP producer on "shared".
        for actor in 0..2u8 {
            let node = cluster.add_client_node(&format!("shared{actor}"));
            producer_handles.push(sim::spawn(async move {
                let mut p = RdmaProducer::connect(&node, shared_leader, "shared", 0, true)
                    .await
                    .unwrap();
                let mut sent = 0u32;
                for seq in 0..120u32 {
                    let size = 32 + (seq as usize * 13) % 900;
                    match p.send(&Record::value(payload(actor, seq, size))).await {
                        Ok(_) => sent += 1,
                        Err(_) => {
                            // Aborted by a session revoke: retry once after
                            // the implicit re-grant.
                            if p.send(&Record::value(payload(actor, seq, size))).await.is_ok() {
                                sent += 1;
                            }
                        }
                    }
                }
                (actor, sent)
            }));
        }
        {
            let node = cluster.add_client_node("sharedtcp");
            producer_handles.push(sim::spawn(async move {
                let p = TcpProducer::connect(&node, shared_leader, ClientTransport::Tcp, "shared", 0)
                    .await
                    .unwrap();
                let mut sent = 0u32;
                for seq in 0..120u32 {
                    let size = 32 + (seq as usize * 7) % 600;
                    if p.send(&Record::value(payload(2, seq, size))).await.is_ok() {
                        sent += 1;
                    }
                }
                (2u8, sent)
            }));
        }

        // Exclusive producers on "excl" partitions, one of which crashes
        // mid-run and is replaced.
        for part in 0..2u32 {
            let leader = cluster.leader_of("excl", part).await;
            let node = cluster.add_client_node(&format!("excl{part}"));
            producer_handles.push(sim::spawn(async move {
                let actor = 10 + part as u8;
                let mut p = RdmaProducer::connect(&node, leader, "excl", part, false)
                    .await
                    .unwrap();
                let mut sent = 0u32;
                for seq in 0..100u32 {
                    if part == 1 && seq == 50 {
                        // Crash and take over with a fresh producer.
                        p.crash();
                        sim::time::sleep(std::time::Duration::from_millis(2)).await;
                        p = RdmaProducer::connect(&node, leader, "excl", part, false)
                            .await
                            .unwrap();
                    }
                    let size = 16 + (seq as usize * 31) % 2000;
                    if p.send(&Record::value(payload(actor, seq, size))).await.is_ok() {
                        sent += 1;
                    }
                }
                (actor, sent)
            }));
        }

        let mut sent_by_actor = std::collections::HashMap::new();
        for h in producer_handles {
            let (actor, sent) = h.await.unwrap();
            *sent_by_actor.entry(actor).or_insert(0u32) += sent;
        }

        // Drain everything with a multi-consumer ("excl") and a
        // single-partition consumer ("shared").
        let cnode = cluster.add_client_node("drain");
        let mut got: std::collections::HashMap<u8, VecDeque<u32>> = Default::default();

        let mut sc = RdmaConsumer::connect(&cnode, shared_leader, "shared", 0, 0)
            .await
            .unwrap();
        let admin = kdclient::Admin::connect(&cnode, cluster.bootstrap()).await.unwrap();
        let (_, shared_hw) = admin.list_offsets("shared", 0).await.unwrap();
        let mut n = 0;
        while n < shared_hw {
            for rv in sc.next_records().await.unwrap() {
                let (actor, seq) = decode(&rv.record.value);
                // Verify the deterministic tail byte (no corruption).
                let tail = (actor as usize + seq as usize) % 251;
                assert!(rv.record.value[5..].iter().all(|&b| b == tail as u8));
                got.entry(actor).or_default().push_back(seq);
                n += 1;
            }
        }

        // "excl": both partitions through one multi-consumer. The leaders
        // differ per partition; subscribe to the partitions led by the
        // bootstrap's... consumers read leaders, so use one consumer per
        // leader broker through MultiRdmaConsumer where possible.
        for part in 0..2u32 {
            let leader = cluster.leader_of("excl", part).await;
            let mut mc = MultiRdmaConsumer::connect(&cnode, leader).await.unwrap();
            mc.subscribe("excl", part, 0).await.unwrap();
            // ListOffsets must go to the partition's leader.
            let leader_admin = kdclient::Admin::connect(&cnode, leader).await.unwrap();
            let (_, hw) = leader_admin.list_offsets("excl", part).await.unwrap();
            let mut n = 0;
            while n < hw {
                for (_tp, rv) in mc.next_records().await.unwrap() {
                    let (actor, seq) = decode(&rv.record.value);
                    let tail = (actor as usize + seq as usize) % 251;
                    assert!(rv.record.value[5..].iter().all(|&b| b == tail as u8));
                    got.entry(actor).or_default().push_back(seq);
                    n += 1;
                }
            }
        }

        // Every acknowledged record was read exactly once, and per-actor
        // sequences arrive in order (per-producer FIFO).
        for (actor, sent) in &sent_by_actor {
            let seqs = got.remove(actor).unwrap_or_default();
            assert_eq!(
                seqs.len() as u32,
                *sent,
                "actor {actor}: acked {sent}, read {}",
                seqs.len()
            );
            let mut prev = None;
            for s in &seqs {
                if let Some(p) = prev {
                    assert!(*s > p, "actor {actor}: out-of-order {p} -> {s}");
                }
                prev = Some(*s);
            }
        }
        assert!(got.is_empty(), "records from unknown actors: {:?}", got.keys());

        // Broker invariants: zero CPU copies anywhere (all-RDMA datapaths,
        // except the one TCP producer's bytes).
        let tcp_bytes: u64 = cluster
            .brokers()
            .iter()
            .map(|b| b.metrics().heap_copied_bytes)
            .sum();
        assert!(tcp_bytes > 0, "the TCP producer's copies are accounted");
        // Aborts may or may not have occurred (crash timing), but the system
        // finished with all sessions healthy.
        for b in cluster.brokers() {
            let m = b.metrics();
            assert!(m.rdma_commits > 0 || m.produce_requests > 0);
        }
    });
}
