//! Causal-trace lifeline tests: drain a full produce→replicate→fetch run's
//! trace events and feed them to the invariant checker (`kdtelem::check`)
//! on both datapaths.
//!
//! * The RDMA produce lifeline must contain a posted WQE and **zero**
//!   broker-CPU copy events — the paper's zero-copy claim asserted from the
//!   event log itself, not a counter.
//! * The TCP produce lifeline must pay exactly **two** broker copies
//!   (socket receive + log append, Fig 2).
//! * Push-replication acks only appear after the remote RDMA write
//!   completion on the same lifeline (§4.3).
//! * The drained log round-trips through the Chrome trace-event exporter
//!   and the in-tree parser.

use kafkadirect::{SimCluster, SystemKind};
use kdclient::{ClientTransport, RdmaConsumer, RdmaProducer, TcpConsumer, TcpProducer};
use kdstorage::Record;
use kdtelem::check::{broker_copies, check, commit_traces};
use kdtelem::EventKind;

/// Runs `f` under a private telemetry registry and returns the drained
/// trace-event log. The registry must be entered *before* the cluster is
/// built: components capture the ambient registry at construction.
fn trace_run(f: impl FnOnce()) -> Vec<kdtelem::TraceEvent> {
    let registry = kdtelem::Registry::new();
    let _scope = kdtelem::enter(&registry);
    f();
    assert_eq!(registry.trace_events_dropped(), 0, "event ring overflowed");
    registry.drain_trace_events()
}

fn has_kind(events: &[kdtelem::TraceEvent], f: impl Fn(&EventKind) -> bool) -> bool {
    events.iter().any(|e| f(&e.kind))
}

/// TCP datapath: every committing lifeline pays exactly the two broker
/// copies, the fetch is stitched to the broker's `FetchServed`, and all
/// invariants hold.
#[test]
fn tcp_lifeline_passes_checker_with_two_copies() {
    let events = trace_run(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::Kafka, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let producer =
                TcpProducer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 0)
                    .await
                    .unwrap();
            for i in 0..10u8 {
                producer.send(&Record::value(vec![i; 256])).await.unwrap();
            }
            let mut consumer =
                TcpConsumer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 0, 0)
                    .await
                    .unwrap();
            let mut got = 0;
            while got < 10 {
                got += consumer.next_records().await.unwrap().len();
            }
        });
    });

    let report = check(&events);
    assert!(report.ok(), "invariant violations: {:?}", report.violations);
    assert_eq!(report.commits, 10, "one commit per produce");
    assert!(report.fetches >= 1, "broker served no fetch");

    // Every produce lifeline paid exactly the two copies of Fig 2 and
    // crossed the wire (its frames were traced through netsim).
    let commits = commit_traces(&events);
    assert_eq!(commits.len(), 10);
    for id in &commits {
        assert_eq!(broker_copies(&events, *id), 2, "trace {id}");
        assert!(
            events.iter().any(|e| e.trace_id == *id
                && matches!(e.kind, EventKind::PacketEnqueued { .. })),
            "TCP lifeline {id} never touched a link"
        );
    }
    // No lifeline posted a WQE: this is the pure-TCP system.
    assert!(!has_kind(&events, |k| matches!(k, EventKind::WqePosted { .. })));
    // The fetch lifeline carries the broker's FetchServed event.
    assert!(has_kind(&events, |k| matches!(k, EventKind::FetchServed { .. })));
}

/// RDMA datapath with push replication (RF=2): zero broker copies on every
/// committing lifeline, replication acks follow remote write completions,
/// and the consumer's one-sided fetches are stitched client-side.
#[test]
fn rdma_lifeline_passes_checker_with_zero_copies() {
    let events = trace_run(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::KafkaDirect, 2);
            cluster.create_topic("t", 1, 2).await;
            let cnode = cluster.add_client_node("c");
            let leader = cluster.leader_of("t", 0).await;
            let mut producer = RdmaProducer::connect(&cnode, leader, "t", 0, false)
                .await
                .unwrap();
            for i in 0..20u8 {
                producer.send(&Record::value(vec![i; 128])).await.unwrap();
            }
            let mut consumer = RdmaConsumer::connect(&cnode, leader, "t", 0, 0)
                .await
                .unwrap();
            let mut got = 0;
            while got < 20 {
                got += consumer.next_records().await.unwrap().len();
            }
        });
    });

    let report = check(&events);
    assert!(report.ok(), "invariant violations: {:?}", report.violations);
    // Leader commits (client lifelines) + follower commits (replication
    // lifelines) are all in the log.
    assert!(report.commits >= 20, "commits: {}", report.commits);
    assert!(report.fetches >= 1, "no fetch was stitched");
    assert!(report.repl_acks >= 1, "push replication left no acks");

    // The zero-copy claim, from trace events alone: every committing
    // lifeline posted a WQE and moved nothing through a broker CPU copy.
    for id in commit_traces(&events) {
        assert_eq!(broker_copies(&events, id), 0, "trace {id} copied on the broker");
        assert!(
            events.iter().any(|e| e.trace_id == id
                && matches!(e.kind, EventKind::WqePosted { .. })),
            "committing lifeline {id} has no posted WQE"
        );
    }
    // No CpuCopy event anywhere on a broker site.
    assert!(
        !has_kind(&events, |k| matches!(
            k,
            EventKind::CpuCopy { site, .. } if site.starts_with("broker")
        )),
        "broker CPU copied bytes on the RDMA datapath"
    );
}

/// The drained log exports to Chrome trace-event JSON that the in-tree
/// parser round-trips: same event count, span begin/end pairing intact.
#[test]
fn trace_export_round_trips_chrome_json() {
    let events = trace_run(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
                .await
                .unwrap();
            for i in 0..5u8 {
                producer.send(&Record::value(vec![i; 64])).await.unwrap();
            }
        });
    });
    assert!(!events.is_empty());

    let json = kdtelem::chrome::to_chrome_json(&events);
    let parsed = kdtelem::chrome::parse_chrome_json(&json).expect("exporter emits parseable JSON");
    // One process_name metadata record precedes the events.
    assert_eq!(parsed.len(), events.len() + 1, "event count changed in export");

    // Async span begin/end phases pair up.
    let begins = parsed.iter().filter(|e| e.ph == "b").count();
    let ends = parsed.iter().filter(|e| e.ph == "e").count();
    assert_eq!(begins, ends, "unbalanced async span phases");
    assert!(begins >= 5, "expected one span pair per produce at least");

    // Truncated input is rejected, not mis-parsed.
    assert!(kdtelem::chrome::parse_chrome_json(&json[..json.len() / 2]).is_none());
}
