//! Parallel-simulation equivalence gates.
//!
//! Two claims keep the sharded executor honest (DESIGN.md §12):
//!
//! 1. **Bit-identity at `shards = 1`** — the windowed shard scheduler
//!    degenerates to the legacy `block_on` loop exactly: same task ids,
//!    same timer order, same RNG stream, same trace ids. The full chaos
//!    workload must produce the same order-sensitive digest both ways.
//! 2. **Placement independence at `shards > 1`** — a multi-group chaos
//!    topology must produce identical acked/consumed record sets and
//!    identical canonical trace digests whether the groups share one
//!    virtual clock (`shards = 1`) or advance on four barrier-synchronized
//!    clocks (`shards = 4`).

mod common;

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use kafkadirect::shardsim::{run_sharded_groups, scoped, GroupCtx, LocalFuture};
use kafkadirect::{ClusterOptions, SimCluster, SystemKind};
use kdclient::{Admin, RdmaConsumer, RdmaProducer};
use kdstorage::Record;

#[test]
fn one_shard_run_bit_identical_to_block_on() {
    for seed in [3u64, 42, 9001] {
        let legacy = common::run_seed(seed);
        let sharded = common::run_seed_sharded(seed);
        assert_eq!(legacy.acked, sharded.acked, "seed {seed}: acked diverged");
        assert_eq!(
            legacy.digest(),
            sharded.digest(),
            "seed {seed}: sharded 1-shard run is not bit-identical to block_on"
        );
    }
}

const GROUP_ATTEMPTS: u64 = 40;
const GROUP_HORIZON_NS: u64 = 15_000_000;

/// One group's chaos run: a 3-broker RF=2 cluster beaten by a seeded fault
/// plan (crash/restart/failover — no torn writes, whose garbling draws
/// ambient randomness and is therefore layout-dependent) under a tagged
/// produce workload, then a full drain of the committed stream.
fn chaos_group(ctx: &GroupCtx, seed: u64) -> LocalFuture<(Vec<u64>, Vec<u64>)> {
    let opts = ctx.opts.clone();
    let group = ctx.group as u64;
    let registry = ctx.registry.clone();
    let injector = ctx.injector.clone();
    Box::pin(async move {
        let cluster = SimCluster::start_with(SystemKind::KafkaDirect, 3, opts);
        cluster.create_topic("chaos", 1, 2).await;

        let mut cfg = kdfault::PlanConfig::new(3, GROUP_HORIZON_NS);
        cfg.failover_topic = Some("chaos".to_string());
        cfg.max_faults = 6;
        let plan_seed = seed ^ group.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let plan = kdfault::FaultPlan::random(plan_seed, &cfg);

        let acked: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let done = Rc::new(Cell::new(false));
        let pnode = cluster.add_client_node("chaos-producer");
        let bootstrap = cluster.bootstrap();
        {
            let acked = Rc::clone(&acked);
            let done = Rc::clone(&done);
            // Spawned group tasks need the group's registry/injector made
            // ambient per poll — a bare sim::spawn would report into the
            // shard's default registry.
            sim::spawn(scoped(&registry, &injector, async move {
                let mut producer = loop {
                    match RdmaProducer::connect(&pnode, bootstrap, "chaos", 0, false).await {
                        Ok(p) => break p,
                        Err(_) => sim::time::sleep(Duration::from_millis(1)).await,
                    }
                };
                for attempt in 0..GROUP_ATTEMPTS {
                    let rec = Record::value(common::payload(attempt));
                    match sim::time::timeout(Duration::from_millis(40), producer.send(&rec)).await
                    {
                        Ok(Ok(_off)) => acked.borrow_mut().push(attempt),
                        _ => {
                            let _ = producer.reconnect().await;
                        }
                    }
                    sim::time::sleep(Duration::from_micros(50)).await;
                }
                done.set(true);
            }));
        }

        kafkadirect::chaos::run_plan(&cluster, &plan).await;
        while !done.get() {
            sim::time::sleep(Duration::from_millis(1)).await;
        }

        let cnode = cluster.add_client_node("chaos-observer");
        let leader = cluster.leader_of("chaos", 0).await;
        let admin = Admin::connect(&cnode, leader).await.expect("admin");
        let mut hw = 0u64;
        let mut stable = 0;
        for _ in 0..2000 {
            let (_, h) = admin.list_offsets("chaos", 0).await.expect("offsets");
            if h == hw {
                stable += 1;
                if stable >= 20 {
                    break;
                }
            } else {
                stable = 0;
                hw = h;
            }
            sim::time::sleep(Duration::from_micros(500)).await;
        }

        let mut consumer = RdmaConsumer::connect(&cnode, leader, "chaos", 0, 0)
            .await
            .expect("consumer");
        let mut consumed = Vec::new();
        while (consumed.len() as u64) < hw {
            for rv in consumer.next_records().await.expect("fetch") {
                consumed.push(common::attempt_of(&rv.record.value));
            }
        }
        let acked = acked.borrow().clone();
        (acked, consumed)
    })
}

/// One group's identity under the determinism contract: `(group, acked,
/// consumed, canonical trace digest, faults injected)`.
type GroupFingerprint = (usize, Vec<u64>, Vec<u64>, u64, u64);

/// Per-group fingerprint of a sharded run: results plus canonical trace
/// digests (raw trace ids are layout-dependent; canonical ones are not).
fn fingerprint(shards: usize, groups: usize, seed: u64) -> Vec<GroupFingerprint> {
    let run = run_sharded_groups(
        shards,
        groups,
        seed,
        &ClusterOptions::default(),
        |ctx: &GroupCtx| chaos_group(ctx, seed),
    );
    assert_eq!(run.stats.len(), shards);
    run.groups
        .into_iter()
        .map(|g| {
            let digest = kdtelem::canonical_trace_digest(&g.events);
            (g.group, g.result.0, g.result.1, digest, g.injected)
        })
        .collect()
}

#[test]
fn chaos_groups_equivalent_across_shard_counts() {
    for seed in common::seeds_under_test(&[3, 7, 11, 19]) {
        let one = fingerprint(1, 4, seed);
        let four = fingerprint(4, 4, seed);
        for (a, b) in one.iter().zip(four.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(
                a.1, b.1,
                "seed {seed} group {}: acked set diverged between shards=1 and shards=4",
                a.0
            );
            assert_eq!(
                a.2, b.2,
                "seed {seed} group {}: consumed stream diverged between shards=1 and shards=4",
                a.0
            );
            assert_eq!(
                a.3, b.3,
                "seed {seed} group {}: canonical trace digest diverged between shards=1 and shards=4",
                a.0
            );
        }
        // The runs did real work: every group acked and consumed records.
        assert!(one.iter().all(|g| !g.1.is_empty() && !g.2.is_empty()));
    }
}
