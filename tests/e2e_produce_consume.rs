//! End-to-end produce→consume across every system and datapath combination
//! the paper evaluates (§5.1, §5.3).

use kafkadirect::{SimCluster, SystemKind};
use kdclient::{ClientTransport, RdmaConsumer, RdmaProducer, TcpConsumer, TcpProducer};
use kdstorage::Record;

fn records(n: usize, size: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::value(vec![(i % 251) as u8; size])
                .with_key(format!("k{i}").into_bytes())
                .with_timestamp(i as i64)
        })
        .collect()
}

/// TCP produce + TCP consume on the unmodified-Kafka configuration.
#[test]
fn kafka_tcp_round_trip() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::Kafka, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let producer =
            TcpProducer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 0)
                .await
                .unwrap();
        let sent = records(20, 100);
        for (i, r) in sent.iter().enumerate() {
            let offset = producer.send(r).await.unwrap();
            assert_eq!(offset, i as u64);
        }
        let mut consumer =
            TcpConsumer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 0, 0)
                .await
                .unwrap();
        let mut got = Vec::new();
        while got.len() < sent.len() {
            got.extend(consumer.next_records().await.unwrap());
        }
        assert_eq!(got.len(), sent.len());
        for (i, rv) in got.iter().enumerate() {
            assert_eq!(rv.offset, i as u64);
            assert_eq!(rv.record.value, sent[i].value);
            assert_eq!(rv.record.key, sent[i].key);
        }
    });
}

/// OSU-Kafka transport round trip.
#[test]
fn osu_round_trip() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::OsuKafka, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let producer =
            TcpProducer::connect(&cnode, cluster.bootstrap(), ClientTransport::Osu, "t", 0)
                .await
                .unwrap();
        for (i, r) in records(10, 512).iter().enumerate() {
            assert_eq!(producer.send(r).await.unwrap(), i as u64);
        }
        let mut consumer =
            TcpConsumer::connect(&cnode, cluster.bootstrap(), ClientTransport::Osu, "t", 0, 0)
                .await
                .unwrap();
        let mut got = Vec::new();
        while got.len() < 10 {
            got.extend(consumer.next_records().await.unwrap());
        }
        assert_eq!(got.len(), 10);
    });
}

/// Exclusive RDMA produce + RDMA consume (the full KafkaDirect fast path).
#[test]
fn kafkadirect_exclusive_round_trip() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        let sent = records(50, 200);
        for (i, r) in sent.iter().enumerate() {
            assert_eq!(producer.send(r).await.unwrap(), i as u64);
        }
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < sent.len() {
            got.extend(consumer.next_records().await.unwrap());
        }
        for (i, rv) in got.iter().enumerate() {
            assert_eq!(rv.offset, i as u64);
            assert_eq!(rv.record.value, sent[i].value);
        }
        // The produce path was genuinely zero-copy on the broker: no bytes
        // crossed a broker-CPU copy.
        let m = cluster.broker(0).metrics();
        assert_eq!(m.heap_copied_bytes, 0, "zero-copy produce violated");
        assert_eq!(m.rdma_commits, 50);
        // Fetches were served by the NIC alone.
        assert!(cluster.broker(0).nic_stats().reads_served > 0);
        assert_eq!(m.fetch_requests, 0, "no TCP fetches should have happened");
    });
}

/// Shared-mode producers (FAA reservations) interleaving on one partition.
#[test]
fn kafkadirect_shared_producers_interleave() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let mut handles = Vec::new();
        for pid in 0..3u8 {
            let cnode = cluster.add_client_node(&format!("c{pid}"));
            let bootstrap = cluster.bootstrap();
            handles.push(sim::spawn(async move {
                let mut producer = RdmaProducer::connect(&cnode, bootstrap, "t", 0, true)
                    .await
                    .unwrap();
                let mut offsets = Vec::new();
                for i in 0..10usize {
                    let r = Record::value(vec![pid; 64]).with_timestamp(i as i64);
                    offsets.push(producer.send(&r).await.unwrap());
                }
                offsets
            }));
        }
        let mut all_offsets = Vec::new();
        for h in handles {
            all_offsets.extend(h.await.unwrap());
        }
        // 30 records, distinct dense offsets 0..30.
        all_offsets.sort_unstable();
        assert_eq!(all_offsets, (0..30).collect::<Vec<u64>>());

        // Every record readable, none corrupted, none lost.
        let cnode = cluster.add_client_node("consumer");
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < 30 {
            got.extend(consumer.next_records().await.unwrap());
        }
        let mut per_pid = [0u32; 3];
        for rv in &got {
            per_pid[rv.record.value[0] as usize] += 1;
        }
        assert_eq!(per_pid, [10, 10, 10]);
    });
}

/// Mixed TCP + RDMA producers on one shared file (§4.2.2 "Shared RDMA/TCP
/// access"): the broker reserves through the same atomic word.
#[test]
fn shared_mixed_tcp_and_rdma_producers() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut rdma = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, true)
            .await
            .unwrap();
        let tcp = TcpProducer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 0)
            .await
            .unwrap();
        let mut offsets = Vec::new();
        for i in 0..6 {
            if i % 2 == 0 {
                offsets.push(rdma.send(&Record::value(vec![1u8; 32])).await.unwrap());
            } else {
                offsets.push(tcp.send(&Record::value(vec![2u8; 32])).await.unwrap());
            }
        }
        offsets.sort_unstable();
        assert_eq!(offsets, (0..6).collect::<Vec<u64>>());
    });
}

/// Producers roll across preallocated files; consumers follow (release +
/// re-request, §4.2.2 / §4.4.2).
#[test]
fn file_roll_producer_and_consumer_follow() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let opts = kafkadirect::ClusterOptions {
            log: kdstorage::LogConfig {
                segment_size: 16 * 1024, // tiny files force rolls
                max_batch_size: 8 * 1024,
            },
            ..Default::default()
        };
        let cluster = SimCluster::start_with(SystemKind::KafkaDirect, 1, opts);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        let n: u32 = 40;
        for i in 0..n {
            let r = Record::value(vec![i as u8; 1000]);
            assert_eq!(producer.send(&r).await.unwrap(), u64::from(i));
        }
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < n as usize {
            got.extend(consumer.next_records().await.unwrap());
        }
        for (i, rv) in got.iter().enumerate() {
            assert_eq!(rv.offset, i as u64);
            assert_eq!(rv.record.value[0], i as u8);
        }
        // Rolling really happened and the consumer walked multiple files.
        assert!(consumer.stats.access_requests >= 2, "consumer must re-request files");
        assert!(consumer.stats.releases >= 1, "consumer must release files");
    });
}

/// A late consumer starting mid-log gets exactly the suffix.
#[test]
fn consumer_starting_at_offset() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for i in 0..20u8 {
            producer.send(&Record::value(vec![i; 16])).await.unwrap();
        }
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 12)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < 8 {
            got.extend(consumer.next_records().await.unwrap());
        }
        assert_eq!(got.first().unwrap().offset, 12);
        assert_eq!(got.last().unwrap().offset, 19);
    });
}

/// Consumer-group offsets commit and restore over TCP (§5.4).
#[test]
fn offset_commit_and_restore() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for i in 0..10u8 {
            producer.send(&Record::value(vec![i; 8])).await.unwrap();
        }
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        let mut seen = 0;
        while seen < 7 {
            seen += consumer.next_records().await.unwrap().len();
        }
        consumer.commit_offset("g1").await.unwrap();
        let committed = consumer.offset;

        let admin = kdclient::Admin::connect(&cnode, cluster.bootstrap())
            .await
            .unwrap();
        assert_eq!(
            admin.fetch_offset("g1", "t", 0).await.unwrap(),
            Some(committed)
        );
        assert_eq!(admin.fetch_offset("other", "t", 0).await.unwrap(), None);
    });
}

/// Multiple partitions with independent producers and consumers.
#[test]
fn multi_partition_isolation() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 4, 1).await;
        let mut handles = Vec::new();
        for part in 0..4u32 {
            let cnode = cluster.add_client_node(&format!("c{part}"));
            let bootstrap = cluster.bootstrap();
            handles.push(sim::spawn(async move {
                let mut producer = RdmaProducer::connect(&cnode, bootstrap, "t", part, false)
                    .await
                    .unwrap();
                for i in 0..15u8 {
                    producer
                        .send(&Record::value(vec![part as u8, i]))
                        .await
                        .unwrap();
                }
                let mut consumer = RdmaConsumer::connect(&cnode, bootstrap, "t", part, 0)
                    .await
                    .unwrap();
                let mut got = Vec::new();
                while got.len() < 15 {
                    got.extend(consumer.next_records().await.unwrap());
                }
                for (i, rv) in got.iter().enumerate() {
                    assert_eq!(rv.record.value, vec![part as u8, i as u8]);
                }
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
    });
}

/// Large (near-limit) records survive the RDMA paths intact.
#[test]
fn large_records_round_trip() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        let mut payload = vec![0u8; 512 * 1024];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = (i % 255) as u8;
        }
        producer.send(&Record::value(payload.clone())).await.unwrap();
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        consumer.fetch_size = 64 * 1024;
        let got = consumer.next_records().await.unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].record.value, payload);
    });
}

/// Regression: pipelined exclusive produces of *variable* sizes must commit
/// in completion order even when several broker CQ pollers interleave
/// (§4.2.2's ordering requirement — a real race we hit during development).
#[test]
fn pipelined_variable_size_produce_orders_correctly() {
    let rt = sim::Runtime::with_seed(3);
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        let n = 500usize;
        let mut inflight: std::collections::VecDeque<
            sim::sync::oneshot::Receiver<(kdwire::ErrorCode, u64)>,
        > = std::collections::VecDeque::new();
        for i in 0..n {
            if inflight.len() >= 32 {
                let (err, _) = inflight.pop_front().unwrap().await.unwrap();
                assert!(err.is_ok(), "produce {i} failed: {err:?}");
            }
            // Sizes vary so any completion/position misalignment corrupts.
            let size = 50 + (i * 37) % 700;
            let rx = producer
                .send_pipelined(&Record::value(vec![(i % 251) as u8; size]))
                .await
                .unwrap();
            inflight.push_back(rx);
        }
        while let Some(rx) = inflight.pop_front() {
            let (err, _) = rx.await.unwrap();
            assert!(err.is_ok(), "tail produce failed: {err:?}");
        }
        // Every byte must read back exactly.
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        consumer.fetch_size = 8192;
        let mut got = Vec::new();
        while got.len() < n {
            got.extend(consumer.next_records().await.unwrap());
        }
        for (i, rv) in got.iter().enumerate() {
            let size = 50 + (i * 37) % 700;
            assert_eq!(rv.offset, i as u64);
            assert_eq!(rv.record.value, vec![(i % 251) as u8; size], "record {i}");
        }
        assert_eq!(cluster.broker(0).metrics().produce_aborts, 0);
        assert_eq!(cluster.broker(0).metrics().grants_revoked, 0);
    });
}
