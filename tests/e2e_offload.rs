//! CPU-offload claims (§5.1, §5.3): the RDMA consume datapath involves no
//! broker CPU; zero-copy produce reduces worker time; empty fetches are
//! served entirely by the NIC.

use kafkadirect::{SimCluster, SystemKind};
use kdclient::{ClientTransport, RdmaConsumer, RdmaProducer, TcpConsumer, TcpProducer};
use kdstorage::Record;

/// RDMA consumers fetching preloaded records add **zero** broker CPU time
/// and zero broker requests — the §5.3 "completely offloaded" claim.
#[test]
fn rdma_consume_uses_no_broker_cpu() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for i in 0..50u8 {
            producer.send(&Record::value(vec![i; 512])).await.unwrap();
        }
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        // One control-plane access request is allowed; snapshot after it.
        let first = consumer.next_records().await.unwrap();
        assert!(!first.is_empty());
        let before = cluster.broker(0).metrics();
        let nic_before = cluster.broker(0).nic_stats();
        let mut got = first.len();
        while got < 50 {
            got += consumer.next_records().await.unwrap().len();
        }
        let after = cluster.broker(0).metrics();
        let nic_after = cluster.broker(0).nic_stats();
        assert_eq!(
            after.worker_busy_ns, before.worker_busy_ns,
            "broker workers must not run for RDMA fetches"
        );
        assert_eq!(after.fetch_requests, before.fetch_requests);
        assert!(
            nic_after.reads_served > nic_before.reads_served,
            "the NIC alone served the reads"
        );
    });
}

/// Empty fetches: TCP costs broker CPU per request; RDMA slot reads cost
/// none (the §5.3 "thousands of clients with no CPU cost" claim).
#[test]
fn empty_fetch_cpu_comparison() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        // TCP side.
        let cluster = SimCluster::start(SystemKind::Kafka, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut consumer =
            TcpConsumer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 0, 0)
                .await
                .unwrap();
        let before = cluster.broker(0).metrics();
        for _ in 0..20 {
            assert!(consumer.poll().await.unwrap().is_empty());
        }
        let after = cluster.broker(0).metrics();
        assert_eq!(after.empty_fetches - before.empty_fetches, 20);
        assert!(after.worker_busy_ns > before.worker_busy_ns);
        assert!(after.net_busy_ns > before.net_busy_ns);
    });
    rt.block_on(async {
        // RDMA side.
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        // First check performs the access RPC; subsequent checks are pure
        // RDMA slot reads.
        consumer.check_new_data().await.unwrap();
        let before = cluster.broker(0).metrics();
        for _ in 0..1000 {
            consumer.check_new_data().await.unwrap();
        }
        let after = cluster.broker(0).metrics();
        assert_eq!(
            after.worker_busy_ns, before.worker_busy_ns,
            "slot reads must cost zero broker CPU"
        );
        assert_eq!(after.net_busy_ns, before.net_busy_ns);
        assert!(consumer.stats.slot_reads >= 1000);
    });
}

/// Zero-copy produce: for the same workload, the Kafka broker copies every
/// byte (twice, counting the kernel), while KafkaDirect copies none and
/// spends measurably less worker time per byte.
#[test]
fn produce_copy_accounting() {
    let payload_bytes: u64 = 50 * 4096;

    let rt = sim::Runtime::new();
    let (kafka_copied, kafka_busy) = rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::Kafka, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let producer =
            TcpProducer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 0)
                .await
                .unwrap();
        for _ in 0..50 {
            producer.send(&Record::value(vec![7u8; 4096])).await.unwrap();
        }
        let m = cluster.broker(0).metrics();
        (m.heap_copied_bytes, m.worker_busy_ns)
    });

    let rt = sim::Runtime::new();
    let (kd_copied, kd_busy) = rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for _ in 0..50 {
            producer.send(&Record::value(vec![7u8; 4096])).await.unwrap();
        }
        let m = cluster.broker(0).metrics();
        (m.heap_copied_bytes, m.worker_busy_ns)
    });

    assert!(kafka_copied >= payload_bytes, "Kafka copies every byte");
    assert_eq!(kd_copied, 0, "KafkaDirect copies none");
    // Fig 13's 3.3x CPU-load reduction: we assert at least 2x here.
    assert!(
        kafka_busy > 2 * kd_busy,
        "worker time: kafka={kafka_busy}ns kd={kd_busy}ns"
    );
}

/// Many RDMA consumers fan out with no broker CPU growth (§5.3 "serve
/// thousands of clients").
#[test]
fn many_consumers_fan_out() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("producer");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for i in 0..10u8 {
            producer.send(&Record::value(vec![i; 128])).await.unwrap();
        }
        let busy_before = cluster.broker(0).metrics().worker_busy_ns;
        let mut handles = Vec::new();
        for c in 0..24 {
            let cnode = cluster.add_client_node(&format!("c{c}"));
            let bootstrap = cluster.bootstrap();
            handles.push(sim::spawn(async move {
                let mut consumer = RdmaConsumer::connect(&cnode, bootstrap, "t", 0, 0)
                    .await
                    .unwrap();
                let mut got = Vec::new();
                while got.len() < 10 {
                    got.extend(consumer.next_records().await.unwrap());
                }
                got.len()
            }));
        }
        for h in handles {
            assert_eq!(h.await.unwrap(), 10);
        }
        let busy_after = cluster.broker(0).metrics().worker_busy_ns;
        // Only the 24 access-grant RPCs cost CPU (a few µs each), far less
        // than serving 240 records over TCP would.
        let delta_us = (busy_after - busy_before) / 1000;
        assert!(delta_us < 500, "consumer fan-out cost {delta_us}us of CPU");
    });
}
