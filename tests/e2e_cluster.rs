//! Cluster behaviours: leader routing, metadata, multi-broker workloads,
//! and cross-system consistency.

use kafkadirect::{SimCluster, SystemKind};
use kdclient::{Admin, ClientTransport, RdmaConsumer, RdmaProducer, TcpConsumer, TcpProducer};
use kdstorage::Record;

/// Producing to a non-leader broker yields NotLeader; metadata points the
/// client at the right one.
#[test]
fn not_leader_routing() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::Kafka, 3);
        cluster.create_topic("t", 3, 1).await;
        let cnode = cluster.add_client_node("c");
        let admin = Admin::connect(&cnode, cluster.bootstrap()).await.unwrap();
        // Find a partition whose leader is NOT broker 0.
        let (_, topics) = admin.metadata(&["t"]).await.unwrap();
        let part = topics[0]
            .partitions
            .iter()
            .find(|p| p.leader.node != cluster.bootstrap().node)
            .expect("some partition led elsewhere");
        // Produce to the wrong broker.
        let wrong = TcpProducer::connect(
            &cnode,
            cluster.bootstrap(),
            ClientTransport::Tcp,
            "t",
            part.partition,
        )
        .await
        .unwrap();
        let err = wrong.send(&Record::value(b"x".to_vec())).await.err();
        assert_eq!(
            err,
            Some(kdclient::ClientError::Broker(kdwire::ErrorCode::NotLeader))
        );
        // Produce to the right broker.
        let right = TcpProducer::connect(
            &cnode,
            part.leader,
            ClientTransport::Tcp,
            "t",
            part.partition,
        )
        .await
        .unwrap();
        assert_eq!(right.send(&Record::value(b"x".to_vec())).await.unwrap(), 0);
    });
}

/// RDMA access requests are also leader-only.
#[test]
fn rdma_access_leader_only() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 2);
        cluster.create_topic("t", 2, 1).await;
        let cnode = cluster.add_client_node("c");
        let leader0 = cluster.leader_of("t", 0).await;
        let leader1 = cluster.leader_of("t", 1).await;
        assert_ne!(leader0.node, leader1.node);
        // Partition 1's leader refuses produce access for partition... 0's
        // leader address is wrong for partition 1.
        let denied = RdmaProducer::connect(&cnode, leader0, "t", 1, false).await;
        assert!(denied.is_err(), "non-leader must deny produce access");
        let denied = RdmaConsumer::connect(&cnode, leader0, "t", 1, 0).await;
        assert!(denied.is_ok(), "consumer connect is lazy");
        let mut consumer = denied.unwrap();
        assert!(consumer.poll().await.is_err(), "access request must fail");
    });
}

/// Metadata reflects every broker and all partitions with leaders spread.
#[test]
fn metadata_covers_cluster() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::Kafka, 4);
        cluster.create_topic("a", 8, 2).await;
        cluster.create_topic("b", 2, 1).await;
        let cnode = cluster.add_client_node("c");
        // Metadata is consistent regardless of which broker answers.
        for broker in cluster.brokers() {
            let admin = Admin::connect(&cnode, broker.addr()).await.unwrap();
            let (brokers, topics) = admin.metadata(&[]).await.unwrap();
            assert_eq!(brokers.len(), 4);
            assert_eq!(topics.len(), 2);
            let a = topics.iter().find(|t| t.name == "a").unwrap();
            assert_eq!(a.partitions.len(), 8);
            for p in &a.partitions {
                assert_eq!(p.replicas.len(), 1, "RF=2 ⇒ one follower");
                assert_ne!(p.leader.node, p.replicas[0].node);
            }
            let leaders: std::collections::HashSet<u32> =
                a.partitions.iter().map(|p| p.leader.node).collect();
            assert_eq!(leaders.len(), 4, "leaders spread over all brokers");
        }
    });
}

/// A full mesh of producers/consumers across brokers and partitions, over
/// the OSU transport end to end.
#[test]
fn osu_multi_broker_mesh() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::OsuKafka, 3);
        cluster.create_topic("t", 3, 2).await;
        let mut handles = Vec::new();
        for part in 0..3u32 {
            let leader = cluster.leader_of("t", part).await;
            let cnode = cluster.add_client_node(&format!("c{part}"));
            handles.push(sim::spawn(async move {
                let producer =
                    TcpProducer::connect(&cnode, leader, ClientTransport::Osu, "t", part)
                        .await
                        .unwrap();
                for i in 0..12u8 {
                    producer
                        .send(&Record::value(vec![part as u8, i]))
                        .await
                        .unwrap();
                }
                let mut consumer =
                    TcpConsumer::connect(&cnode, leader, ClientTransport::Osu, "t", part, 0)
                        .await
                        .unwrap();
                let mut got = Vec::new();
                while got.len() < 12 {
                    got.extend(consumer.next_records().await.unwrap());
                }
                for (i, rv) in got.iter().enumerate() {
                    assert_eq!(rv.record.value, vec![part as u8, i as u8]);
                }
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
    });
}

/// Unknown topics/partitions are rejected consistently.
#[test]
fn unknown_topic_errors() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let producer = TcpProducer::connect(
            &cnode,
            cluster.bootstrap(),
            ClientTransport::Tcp,
            "nope",
            0,
        )
        .await
        .unwrap();
        assert_eq!(
            producer.send(&Record::value(b"x".to_vec())).await.err(),
            Some(kdclient::ClientError::Broker(
                kdwire::ErrorCode::UnknownTopicOrPartition
            ))
        );
        // Existing topic, nonexistent partition.
        let producer =
            TcpProducer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 9)
                .await
                .unwrap();
        assert_eq!(
            producer.send(&Record::value(b"x".to_vec())).await.err(),
            Some(kdclient::ClientError::Broker(kdwire::ErrorCode::NotLeader))
        );
        // CreateTopic validation.
        let admin = Admin::connect(&cnode, cluster.bootstrap()).await.unwrap();
        assert!(admin.create_topic("bad", 0, 1).await.is_err());
        assert!(admin.create_topic("bad", 1, 5).await.is_err(), "RF > brokers");
    });
}

/// Two topics on one broker stay fully isolated (file ids, slots, offsets).
#[test]
fn topic_isolation_on_one_broker() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("x", 1, 1).await;
        cluster.create_topic("y", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut px = RdmaProducer::connect(&cnode, cluster.bootstrap(), "x", 0, false)
            .await
            .unwrap();
        let mut py = RdmaProducer::connect(&cnode, cluster.bootstrap(), "y", 0, false)
            .await
            .unwrap();
        assert_ne!(px.grant().file_id, py.grant().file_id);
        for i in 0..8u8 {
            px.send(&Record::value(vec![b'x', i])).await.unwrap();
            py.send(&Record::value(vec![b'y', i])).await.unwrap();
        }
        for (topic, tag) in [("x", b'x'), ("y", b'y')] {
            let mut consumer =
                RdmaConsumer::connect(&cnode, cluster.bootstrap(), topic, 0, 0)
                    .await
                    .unwrap();
            let mut got = Vec::new();
            while got.len() < 8 {
                got.extend(consumer.next_records().await.unwrap());
            }
            for (i, rv) in got.iter().enumerate() {
                assert_eq!(rv.record.value, vec![tag, i as u8]);
            }
        }
    });
}
