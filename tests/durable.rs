//! Durable-tier chaos soak: the `tests/chaos.rs` invariants replayed over
//! **file-backed** storage (`StorageConfig::tiered`), plus per-sync-mode
//! crash/restart guarantees at RF=1.
//!
//! Checked per seed against a tiered RF=2 cluster with torn-write faults
//! garbling the dead broker's active segment file before every restart:
//! * **No acked record lost or reordered** — recovery reads real file
//!   bytes (the torn tail is CRC-truncated; replication refills it).
//! * **Trace invariants hold** — zero-copy discipline, no holes.
//! * **Bit-identical replay** — the same seed reproduces the same trace
//!   event log even though real files sit under the log: all I/O latency
//!   is charged through the virtual-time cost model.
//!
//! At RF=1 (no replica to refill from) each sync mode's contract is pinned:
//! `PerCommit` loses nothing acked; `EveryMs` loses at most the suffix
//! written after the last flush; `Never` keeps exactly the sealed segments
//! — and no mode ever reorders or leaves a gap in what survives.

mod common;

use std::time::Duration;

use common::{attempt_of, payload, run_seed_durable, seeds_under_test, Outcome, SEEDS};
use kafkadirect::{ClusterOptions, SimCluster, SystemKind};
use kdclient::{Admin, RdmaConsumer, RdmaProducer};
use kdstorage::{LogConfig, Record, StorageConfig, SyncMode};

/// Acked records form an exactly-once, in-order subsequence of the
/// consumed stream (same invariant as the memory-mode soak).
fn assert_no_loss(seed: u64, o: &Outcome) {
    for &a in &o.acked {
        let n = o.consumed.iter().filter(|&&c| c == a).count();
        assert_eq!(n, 1, "seed {seed}: acked attempt {a} appears {n} times");
    }
    let mut it = o.consumed.iter();
    for &a in &o.acked {
        assert!(
            it.any(|&c| c == a),
            "seed {seed}: acked records reordered (attempt {a} out of sequence)"
        );
    }
}

#[test]
fn durable_chaos_soak_recovers_acked_records() {
    for seed in seeds_under_test(&SEEDS) {
        let o = run_seed_durable(seed, "soak");
        assert!(o.injected >= 1, "seed {seed}: plan injected nothing");
        assert!(
            o.violations.is_empty(),
            "seed {seed}: trace invariants violated: {:?}",
            o.violations
        );
        assert!(
            !o.acked.is_empty(),
            "seed {seed}: no attempt survived the faults"
        );
        assert_no_loss(seed, &o);
    }
}

#[test]
fn durable_chaos_replays_bit_identically() {
    for seed in seeds_under_test(&[SEEDS[1], SEEDS[4]]) {
        let a = run_seed_durable(seed, "replay");
        let b = run_seed_durable(seed, "replay");
        assert_eq!(a.end_ns, b.end_ns, "seed {seed}: virtual end time differs");
        assert_eq!(a.acked, b.acked, "seed {seed}: ack sequence differs");
        assert_eq!(a.consumed, b.consumed, "seed {seed}: consumed differs");
        assert!(
            a.events == b.events,
            "seed {seed}: trace event log not bit-identical ({} vs {} events)",
            a.events.len(),
            b.events.len()
        );
    }
}

/// What one RF=1 crash/restart round trip produced.
struct Rf1Outcome {
    /// Attempts acked before the crash, in ack order.
    acked: Vec<u64>,
    /// Attempts readable after restart, in offset order.
    consumed: Vec<u64>,
    /// Log-end offset of the sealed (flushed-at-seal) segments at crash
    /// time — the floor every sync mode must preserve.
    sealed_end: u64,
}

/// Produces `chunks` of records against a single tiered broker (sleeping
/// `gap_ms` of virtual time between chunks so periodic flushers can fire),
/// hard-crashes it, restarts from the segment files, and reads back the
/// surviving stream.
fn rf1_crash_restart(tag: &str, sync: SyncMode, chunks: &[u32], gap_ms: u64) -> Rf1Outcome {
    let chunks = chunks.to_vec();
    let dir = std::env::temp_dir().join(format!("kd-rf1-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let storage = StorageConfig::tiered(&dir).with_sync(sync);
    let rt = sim::Runtime::with_seed(17);
    let out = rt.block_on(async move {
        let cluster = SimCluster::start_with(
            SystemKind::KafkaDirect,
            1,
            ClusterOptions {
                // Small segments force rotation, so `Never` still seals —
                // and therefore flushes — a prefix.
                log: LogConfig {
                    segment_size: 2048,
                    max_batch_size: 1536,
                },
                storage: Some(storage),
                ..Default::default()
            },
        );
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("rf1-client");
        let bootstrap = cluster.bootstrap();
        let mut producer = RdmaProducer::connect(&cnode, bootstrap, "t", 0, false)
            .await
            .expect("producer");
        let mut acked = Vec::new();
        let mut attempt = 0u64;
        for &n in &chunks {
            for _ in 0..n {
                producer
                    .send(&Record::value(payload(attempt)))
                    .await
                    .expect("rf1 produce");
                acked.push(attempt);
                attempt += 1;
            }
            sim::time::sleep(Duration::from_millis(gap_ms)).await;
        }
        drop(producer);

        // The durable floor: sealed segments always flush fully at seal.
        let sealed_end = {
            let b = cluster.broker(0);
            let p = b
                .inner()
                .store
                .get(&kdstorage::TopicPartition::new("t", 0))
                .expect("partition");
            let head = p.log.head_index();
            if head == 0 {
                0
            } else {
                p.log.segment(head - 1).unwrap().next_offset()
            }
        };

        cluster.crash_broker(0);
        cluster.restart_broker(0);
        let leader = cluster.leader_of("t", 0).await;
        // The restarted listener comes up asynchronously: redial until it
        // accepts.
        let admin = loop {
            match Admin::connect(&cnode, leader).await {
                Ok(a) => break a,
                Err(_) => sim::time::sleep(Duration::from_millis(1)).await,
            }
        };
        let (earliest, hw) = admin.list_offsets("t", 0).await.expect("offsets");
        assert_eq!(earliest, 0, "no retention configured, log starts at 0");
        let mut consumed = Vec::new();
        if hw > 0 {
            let mut consumer = RdmaConsumer::connect(&cnode, leader, "t", 0, 0)
                .await
                .expect("consumer");
            while (consumed.len() as u64) < hw {
                for rv in consumer.next_records().await.expect("fetch") {
                    consumed.push(attempt_of(&rv.record.value));
                }
            }
        }
        Rf1Outcome {
            acked,
            consumed,
            sealed_end,
        }
    });
    std::fs::remove_dir_all(&dir).ok();
    out
}

/// The surviving stream is a dense prefix of the acked stream: nothing
/// reordered, nothing skipped below the survival frontier.
fn assert_prefix(o: &Rf1Outcome) {
    assert!(o.consumed.len() <= o.acked.len());
    assert_eq!(
        o.consumed,
        o.acked[..o.consumed.len()],
        "recovered stream diverged from the acked prefix"
    );
}

#[test]
fn per_commit_sync_loses_no_acked_record_at_rf1() {
    let o = rf1_crash_restart("percommit", SyncMode::PerCommit, &[30, 10], 2);
    assert_prefix(&o);
    assert_eq!(
        o.consumed, o.acked,
        "per-commit: every acked record must survive the crash"
    );
}

#[test]
fn every_ms_sync_loses_at_most_unsynced_suffix_at_rf1() {
    // Two flush periods of idle time after the first chunk guarantee it is
    // on disk; the trailing chunk races the flusher and may be lost.
    let o = rf1_crash_restart("everyms", SyncMode::EveryMs(5), &[30, 10], 12);
    assert_prefix(&o);
    assert!(
        o.consumed.len() >= 30,
        "every-ms: records flushed {}ms before the crash were lost ({} < 30)",
        12,
        o.consumed.len()
    );
}

#[test]
fn never_sync_recovers_exactly_sealed_segments_at_rf1() {
    let o = rf1_crash_restart("never", SyncMode::Never, &[40], 1);
    assert_prefix(&o);
    assert!(
        o.sealed_end > 0,
        "workload too small: no segment sealed, nothing durable to check"
    );
    assert_eq!(
        o.consumed.len() as u64,
        o.sealed_end,
        "never-sync: exactly the sealed segments survive (head is volatile)"
    );
}
