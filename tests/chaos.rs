//! Chaos soak: deterministic randomized fault plans (kdfault) played
//! against a replicated KafkaDirect cluster while a producer pushes a
//! uniquely-tagged record stream.
//!
//! Checked per seed:
//! * **No acked record lost or reordered** — every acknowledged record
//!   appears exactly once in the consumed stream, in ack order (acks are
//!   full-commit acks: RF>1 RDMA produces only ack once replicated).
//! * **No hole consumer-visible, copy discipline holds** — the drained
//!   trace log passes every `kdtelem::check` invariant.
//! * **Determinism** — the same seed replays to a bit-identical trace-event
//!   log (and identical ack/consume sequences and final virtual time).
//!
//! Plus a targeted proof that a stale-epoch producer's one-sided RDMA
//! write is fenced after a failover: the revoked rkey faults at the NIC
//! and the bytes never become consumer-visible.

mod common;

use std::time::Duration;

use common::{run_seed, seeds_under_test, Outcome, SEEDS};
use kafkadirect::{SimCluster, SystemKind};
use kdclient::{Admin, RdmaConsumer, RdmaProducer};
use kdstorage::Record;
use kdwire::messages::{ProduceMode, Request, Response};
use rnic::{QpOptions, RNic, SendWr, ShmBuf, WorkRequest};

/// Acked records form an exactly-once, in-order subsequence of the
/// consumed stream.
fn assert_no_loss(seed: u64, o: &Outcome) {
    for &a in &o.acked {
        let n = o.consumed.iter().filter(|&&c| c == a).count();
        assert_eq!(n, 1, "seed {seed}: acked attempt {a} appears {n} times");
    }
    let mut it = o.consumed.iter();
    for &a in &o.acked {
        assert!(
            it.any(|&c| c == a),
            "seed {seed}: acked records reordered (attempt {a} out of sequence)"
        );
    }
}

#[test]
fn chaos_soak_holds_invariants_across_seeds() {
    for seed in seeds_under_test(&SEEDS) {
        let o = run_seed(seed);
        assert!(o.injected >= 1, "seed {seed}: plan injected nothing");
        assert!(
            o.violations.is_empty(),
            "seed {seed}: trace invariants violated: {:?}",
            o.violations
        );
        assert!(
            !o.acked.is_empty(),
            "seed {seed}: no attempt survived the faults"
        );
        assert_no_loss(seed, &o);
    }
}

#[test]
fn chaos_soak_replays_bit_identically() {
    for seed in seeds_under_test(&[SEEDS[0], SEEDS[3], SEEDS[6]]) {
        let a = run_seed(seed);
        let b = run_seed(seed);
        assert_eq!(a.end_ns, b.end_ns, "seed {seed}: virtual end time differs");
        assert_eq!(a.acked, b.acked, "seed {seed}: ack sequence differs");
        assert_eq!(a.consumed, b.consumed, "seed {seed}: consumed differs");
        assert_eq!(a.injected, b.injected, "seed {seed}: fault count differs");
        assert!(
            a.events == b.events,
            "seed {seed}: trace event log not bit-identical ({} vs {} events)",
            a.events.len(),
            b.events.len()
        );
    }
}

/// Crash the partition leader (even if it is broker 0, the controller),
/// fail over, restart it — all through the chaos interpreter. The restarted
/// broker must re-learn metadata from a live peer rather than trust its own
/// stale pre-crash store (which would resurrect a second leader under a
/// fenced epoch), and a reconnecting producer must commit against the
/// promoted leader once the follower is back.
#[test]
fn leader_crash_failover_restart_recovers() {
    let rt = sim::Runtime::with_seed(7);
    rt.block_on(async {
        let injector = kdfault::Injector::new();
        let _i = kdfault::enter(&injector);
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 3);
        cluster.create_topic("t", 1, 2).await;
        let cnode = cluster.add_client_node("c");
        let leader = cluster.leader_of("t", 0).await;
        let mut producer = RdmaProducer::connect(&cnode, leader, "t", 0, false)
            .await
            .unwrap();
        for i in 0..5u8 {
            producer.send(&Record::value(vec![i; 32])).await.unwrap();
        }

        let leader_idx = (0..cluster.broker_count())
            .find(|&i| cluster.broker_node(i).id.0 == leader.node)
            .unwrap() as u32;
        let plan = kdfault::FaultPlan {
            seed: 0,
            faults: vec![
                kdfault::ScheduledFault {
                    at_ns: 100_000,
                    kind: kdfault::FaultKind::BrokerCrash { broker: leader_idx },
                },
                kdfault::ScheduledFault {
                    at_ns: 200_000,
                    kind: kdfault::FaultKind::FailOver {
                        topic: "t".into(),
                        partition: 0,
                    },
                },
                kdfault::ScheduledFault {
                    at_ns: 2_000_000,
                    kind: kdfault::FaultKind::BrokerRestart { broker: leader_idx },
                },
            ],
        };
        assert_eq!(kafkadirect::chaos::run_plan(&cluster, &plan).await, 3);
        assert_eq!(injector.injected_total(), 3);

        // The producer redials (its bootstrap is the crashed-and-restarted
        // ex-leader, whose refreshed metadata must point at the promotion).
        producer.reconnect().await.unwrap();
        for i in 5..10u8 {
            assert_eq!(
                producer.send(&Record::value(vec![i; 32])).await.unwrap(),
                i as u64
            );
        }

        // Exactly one broker claims leadership, under the bumped epoch.
        let claimants: Vec<u64> = (0..cluster.broker_count())
            .filter_map(|i| {
                let b = cluster.broker(i);
                b.inner()
                    .store
                    .get(&kdstorage::TopicPartition::new("t", 0))
                    .filter(|p| b.is_alive() && p.is_leader())
                    .map(|p| p.epoch())
            })
            .collect();
        assert_eq!(claimants, vec![1], "exactly one leader, epoch bumped");

        let new_leader = cluster.leader_of("t", 0).await;
        assert_ne!(new_leader.node, leader.node);
        let mut consumer = RdmaConsumer::connect(&cnode, new_leader, "t", 0, 0)
            .await
            .unwrap();
        let mut seen = Vec::new();
        while seen.len() < 10 {
            for rv in consumer.next_records().await.unwrap() {
                seen.push(rv.record.value[0]);
            }
        }
        assert_eq!(seen, (0..10u8).collect::<Vec<_>>());
    });
}

/// After a failover bumps the partition epoch, a producer still holding the
/// old grant is fenced: its one-sided write faults at the NIC (the revoked
/// rkey no longer resolves) and the bytes never become consumer-visible.
#[test]
fn stale_epoch_producer_write_is_fenced() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 2);
        cluster.create_topic("t", 1, 2).await;
        let cnode = cluster.add_client_node("c");
        let old_leader = cluster.leader_of("t", 0).await;

        // A raw exclusive producer (so we control the WRs directly).
        let ctrl = kdclient::Conn::connect(&cnode, old_leader, kdclient::ClientTransport::Tcp)
            .await
            .unwrap();
        let resp = ctrl
            .call(&Request::ProduceAccess {
                topic: "t".into(),
                partition: 0,
                mode: ProduceMode::Exclusive,
                min_bytes: 0,
            })
            .await
            .unwrap();
        let grant = match resp {
            Response::ProduceAccess(g) => g,
            _ => panic!("bad response"),
        };
        assert!(grant.error.is_ok());
        let nic = RNic::new(&cnode);
        let send_cq = nic.create_cq(16);
        let recv_cq = nic.create_cq(16);
        let qp = nic
            .connect(
                netsim::NodeId(old_leader.node),
                old_leader.rdma_port,
                send_cq.clone(),
                recv_cq,
                QpOptions::default(),
            )
            .await
            .unwrap();

        // One committed record under the old epoch.
        let mut builder = kdstorage::record::BatchBuilder::new(7);
        builder.append(&Record::value(vec![1u8; 64]));
        let good = ShmBuf::from_vec(builder.build().unwrap());
        let good_len = good.len() as u64;
        qp.post_send(SendWr::new(
            1,
            WorkRequest::WriteImm {
                local: good.as_slice(),
                remote_addr: grant.region.addr,
                rkey: grant.region.rkey,
                imm: kdwire::pack_imm(grant.file_id, 0),
            },
        ))
        .unwrap();
        assert!(send_cq.next().await.unwrap().ok());
        sim::time::sleep(Duration::from_millis(2)).await;

        // Failover: the epoch bumps, the old leader's grant is revoked and
        // its MR deregistered — the rkey is rotated out from under us.
        let new_leader = cluster.fail_over("t", 0).expect("live follower to promote");
        assert_ne!(new_leader.node, old_leader.node);
        sim::time::sleep(Duration::from_millis(1)).await;

        // The stale producer keeps writing with the old grant: the NIC
        // rejects the rkey and the send completes with an error.
        let mut builder = kdstorage::record::BatchBuilder::new(7);
        builder.append(&Record::value(vec![0xEE; 64]));
        let stale = ShmBuf::from_vec(builder.build().unwrap());
        qp.post_send(SendWr::new(
            2,
            WorkRequest::WriteImm {
                local: stale.as_slice(),
                remote_addr: grant.region.addr + good_len,
                rkey: grant.region.rkey,
                imm: kdwire::pack_imm(grant.file_id, 0),
            },
        ))
        .unwrap();
        let cqe = send_cq.next().await.unwrap();
        assert!(!cqe.ok(), "stale-epoch write must fault at the NIC");

        // The fenced bytes are not consumer-visible: the new leader serves
        // exactly the pre-failover record.
        sim::time::sleep(Duration::from_millis(2)).await;
        let admin = Admin::connect(&cnode, new_leader).await.unwrap();
        let (_, hw) = admin.list_offsets("t", 0).await.unwrap();
        assert_eq!(hw, 1, "only the old-epoch committed record is visible");
        let mut consumer = RdmaConsumer::connect(&cnode, new_leader, "t", 0, 0)
            .await
            .unwrap();
        let got = consumer.next_records().await.unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].record.value[0], 1);

        // A fresh producer under the new epoch proceeds normally.
        let mut p2 = RdmaProducer::connect(&cnode, new_leader, "t", 0, false)
            .await
            .unwrap();
        let off = p2.send(&Record::value(vec![2u8; 64])).await.unwrap();
        assert_eq!(off, 1);
    });
}
