//! Critical-path analyzer against real datapath runs (not synthetic event
//! logs): the per-stage attribution must reconcile with measured end-to-end
//! latency on the RDMA path, and the TCP path must show exactly the two
//! permitted broker copies in its attribution.

use std::time::Duration;

use kafkadirect::{ClusterOptions, SimCluster, SystemKind};
use kdclient::{ClientTransport, RdmaProducer, TcpProducer};
use kdstorage::{Record, StorageConfig, SyncMode};
use kdtelem::critpath::{analyze, Stage};

/// Runs `f` under a private telemetry registry and returns the drained
/// trace-event log. The registry must be entered *before* the cluster is
/// built: components capture the ambient registry at construction.
fn trace_run(f: impl FnOnce()) -> Vec<kdtelem::TraceEvent> {
    let registry = kdtelem::Registry::new();
    let _scope = kdtelem::enter(&registry);
    f();
    assert_eq!(registry.trace_events_dropped(), 0, "event ring overflowed");
    registry.drain_trace_events()
}

/// RDMA produce: every lifeline's stage sums must equal its end-to-end
/// latency exactly (the analyzer partitions inter-event gaps), and the
/// lifeline totals must agree with the client-measured produce latencies.
#[test]
fn rdma_stage_sums_reconcile_with_measured_e2e() {
    let measured: std::rc::Rc<std::cell::RefCell<Vec<u64>>> = Default::default();
    let measured2 = measured.clone();
    let events = trace_run(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
                .await
                .unwrap();
            for i in 0..8u8 {
                let t0 = sim::now();
                producer.send(&Record::value(vec![i; 256])).await.unwrap();
                measured2
                    .borrow_mut()
                    .push((sim::now() - t0).as_nanos() as u64);
                // Space the sends out so lifelines never interleave — each
                // trace's total is then exactly one send's latency.
                sim::time::sleep(Duration::from_micros(50)).await;
            }
        });
    });

    let report = analyze(&events);
    assert!(report.ok(), "stage sums must reconcile: {:?}", report.errors);
    assert_eq!(report.lifelines.len(), 8, "one committing lifeline per send");

    for l in &report.lifelines {
        // The reconciliation invariant, asserted independently of ok().
        assert_eq!(
            l.stage_ns.iter().sum::<u64>(),
            l.total_ns,
            "lifeline {} stage sums diverge from its end-to-end time",
            l.trace_id
        );
        assert_eq!(l.broker_copies, 0, "zero-copy path grew a broker copy");
    }

    // A lifeline spans client post → broker commit (the one-way data path);
    // the client-measured latency adds the ack's return trip on top, so each
    // lifeline total must be positive and strictly inside its measured e2e.
    // Lifelines come out in send order (trace ids are allocated in order).
    let measured = measured.borrow();
    assert_eq!(measured.len(), report.lifelines.len());
    for (l, &e2e) in report.lifelines.iter().zip(measured.iter()) {
        assert!(
            0 < l.total_ns && l.total_ns < e2e,
            "lifeline {} total {} vs measured e2e {}",
            l.trace_id, l.total_ns, e2e
        );
    }
    // Identical spaced-out sends on a deterministic fabric: every lifeline
    // must attribute identically, bucket for bucket.
    for l in &report.lifelines[1..] {
        assert_eq!(l.stage_ns, report.lifelines[0].stage_ns);
    }

    // Attribution found real datapath stages, and none of the latency was
    // attributed to CPU copies.
    let (dominant, ns) = report.dominant().expect("nonzero attribution");
    assert!(ns > 0);
    assert_ne!(dominant, Stage::CpuCopy);
    assert!(
        report.stage_total(Stage::LinkPropagation) > 0,
        "no time attributed to the wire"
    );
    assert_eq!(report.stage_total(Stage::CpuCopy), 0);
}

/// Hot-tier RDMA produce over the file-backed store: durability must not
/// put a broker CPU copy on the datapath. The active segment stays
/// MR-registered in memory, so WriteWithImm lands records exactly as in
/// memory mode; the file tier syncs asynchronously off the lifeline.
#[test]
fn tiered_rdma_produce_attributes_zero_broker_copies() {
    let dir = std::env::temp_dir().join(format!("kd-critpath-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let storage = StorageConfig::tiered(&dir).with_sync(SyncMode::EveryMs(5));
    let events = trace_run(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let cluster = SimCluster::start_with(
                SystemKind::KafkaDirect,
                1,
                ClusterOptions {
                    storage: Some(storage),
                    ..Default::default()
                },
            );
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
                .await
                .unwrap();
            for i in 0..8u8 {
                producer.send(&Record::value(vec![i; 256])).await.unwrap();
                sim::time::sleep(Duration::from_micros(50)).await;
            }
        });
    });
    std::fs::remove_dir_all(&dir).ok();

    let report = analyze(&events);
    assert!(report.ok(), "stage sums must reconcile: {:?}", report.errors);
    assert_eq!(report.lifelines.len(), 8, "one committing lifeline per send");
    for l in &report.lifelines {
        assert_eq!(
            l.broker_copies, 0,
            "durable hot tier must keep the produce path zero-copy"
        );
        assert_eq!(l.stage_ns.iter().sum::<u64>(), l.total_ns);
    }
    assert_eq!(report.stage_total(Stage::CpuCopy), 0);
}

/// TCP produce: the analyzer attributes exactly the two permitted broker
/// copies (socket receive + log append, Fig 2) on every committing
/// lifeline, with nonzero latency charged to the copy stage.
#[test]
fn tcp_attribution_charges_exactly_two_copies() {
    let events = trace_run(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::Kafka, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let producer =
                TcpProducer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 0)
                    .await
                    .unwrap();
            for i in 0..6u8 {
                producer.send(&Record::value(vec![i; 256])).await.unwrap();
            }
        });
    });

    let report = analyze(&events);
    assert!(report.ok(), "stage sums must reconcile: {:?}", report.errors);
    assert_eq!(report.lifelines.len(), 6);
    for l in &report.lifelines {
        assert_eq!(
            l.broker_copies, 2,
            "TCP lifeline {} must pay exactly the two Fig 2 copies",
            l.trace_id
        );
        assert_eq!(l.stage_ns.iter().sum::<u64>(), l.total_ns);
    }
    assert!(
        report.stage_total(Stage::CpuCopy) > 0,
        "copies must carry attributed latency"
    );

    // Folded-stack export names the copy stage for flamegraph tooling.
    let folded = report.folded("tcp_produce");
    assert!(folded.contains("tcp_produce;cpu_copy "));
}
