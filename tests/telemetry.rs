//! Telemetry integration tests: the paper's headline claims asserted from
//! the kdtelem registry rather than ad-hoc counters.
//!
//! * §5.1 / §5.3 latency figures: an end-to-end run must export
//!   p50/p99 latency for the produce, replicate, and fetch paths.
//! * §4.2.2 zero copy: the RDMA produce path moves no bytes through a
//!   broker-CPU copy (`heap_copied_bytes == 0`), while the TCP path does.
//! * The report survives the admin wire path (`Request::Telemetry`) as
//!   JSON lines.

use kafkadirect::{SimCluster, SystemKind};
use kdclient::{ClientTransport, RdmaConsumer, RdmaProducer, TcpProducer};
use kdstorage::Record;

/// Runs `f` under a private telemetry registry and returns that registry.
/// The registry must be entered *before* the cluster is built: components
/// grab their instrument handles from the ambient registry at construction.
fn with_registry(f: impl FnOnce()) -> kdtelem::Registry {
    let registry = kdtelem::Registry::new();
    let _scope = kdtelem::enter(&registry);
    f();
    registry
}

/// An end-to-end replicated run exports latency percentiles for all three
/// critical-path stages: produce, replicate, fetch.
#[test]
fn e2e_run_exports_critical_path_percentiles() {
    let registry = with_registry(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::KafkaDirect, 2);
            cluster.create_topic("t", 1, 2).await;
            let cnode = cluster.add_client_node("c");
            let leader = cluster.leader_of("t", 0).await;
            let mut producer = RdmaProducer::connect(&cnode, leader, "t", 0, false)
                .await
                .unwrap();
            for i in 0..30u8 {
                producer.send(&Record::value(vec![i; 128])).await.unwrap();
            }
            let mut consumer = RdmaConsumer::connect(&cnode, leader, "t", 0, 0)
                .await
                .unwrap();
            let mut got = 0;
            while got < 30 {
                got += consumer.next_records().await.unwrap().len();
            }
        });
    });

    let report = registry.snapshot();
    for (component, name) in [
        ("kdclient", "produce.e2e_ns"),
        ("kdbroker", "repl.replicate_ns"),
        ("kdclient", "fetch.e2e_ns"),
    ] {
        let h = report
            .histogram(component, name)
            .unwrap_or_else(|| panic!("{component}.{name} missing"));
        assert!(h.stats.count > 0, "{component}.{name} recorded nothing");
        assert!(h.stats.p50 > 0, "{component}.{name} p50 = 0");
        assert!(
            h.stats.p99 >= h.stats.p50,
            "{component}.{name} p99 < p50"
        );
        assert!(h.stats.max >= h.stats.p99, "{component}.{name} max < p99");
    }
    // Broker-side commit service latency is a separate instrument from the
    // client's end-to-end view and must be strictly smaller on average
    // (RDMA produces bypass the Produce RPC, so the broker-side stage is
    // the commit handler, not `api_produce_ns`).
    let commit = report.histogram("kdbroker", "rdma.commit_ns").unwrap();
    let e2e = report.histogram("kdclient", "produce.e2e_ns").unwrap();
    assert!(commit.stats.count > 0);
    assert!(commit.stats.mean < e2e.stats.mean, "service >= e2e latency");

    // Spans of every stage landed in the ring.
    let spans = registry.drain_spans();
    for want in ["client.produce", "broker.rdma_commit", "broker.replicate.push", "client.fetch"] {
        assert!(
            spans.iter().any(|s| s.name == want),
            "span {want} missing (got {:?})",
            spans.iter().map(|s| s.name).collect::<std::collections::BTreeSet<_>>()
        );
    }
    // Spans carry real virtual-time intervals.
    assert!(spans.iter().all(|s| s.end_ns >= s.start_ns));
}

/// §4.2.2: the RDMA produce path is zero-copy on the broker — asserted via
/// the registry, not the per-broker snapshot struct.
#[test]
fn rdma_produce_is_zero_copy_via_registry() {
    let registry = with_registry(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
                .await
                .unwrap();
            for i in 0..20u8 {
                producer.send(&Record::value(vec![i; 256])).await.unwrap();
            }
        });
    });
    let report = registry.snapshot();
    assert_eq!(
        report.counter("kdbroker", "copy.heap_bytes"),
        Some(0),
        "RDMA produce copied bytes through the broker CPU"
    );
    assert_eq!(report.counter("kdbroker", "rdma.commits"), Some(20));
    // The NIC did real one-sided work for it.
    assert!(report.counter("rnic", "qp.one_sided_in").unwrap() > 0);
}

/// The TCP produce path *does* copy on the broker — the control for the
/// zero-copy assertion above, through the same registry instrument.
#[test]
fn tcp_produce_copies_on_the_broker() {
    let registry = with_registry(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::Kafka, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let producer =
                TcpProducer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 0)
                    .await
                    .unwrap();
            for i in 0..10u8 {
                producer.send(&Record::value(vec![i; 256])).await.unwrap();
            }
        });
    });
    let copied = registry
        .snapshot()
        .counter("kdbroker", "copy.heap_bytes")
        .unwrap();
    assert!(copied > 10 * 256, "TCP produce must copy every batch: {copied}");
}

/// The report survives the admin wire path: `Request::Telemetry` ships the
/// broker's snapshot as JSON lines and the client parses it back.
#[test]
fn telemetry_rpc_round_trips_over_admin_path() {
    let registry = with_registry(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
                .await
                .unwrap();
            for i in 0..5u8 {
                producer.send(&Record::value(vec![i; 64])).await.unwrap();
            }
            let wire = cluster.broker_telemetry().await;
            // Counter values as seen from the wire match the local registry.
            assert_eq!(wire.counter("kdbroker", "rdma.commits"), Some(5));
            assert_eq!(wire.counter("kdbroker", "copy.heap_bytes"), Some(0));
            let h = wire.histogram("kdbroker", "rdma.commit_ns").unwrap();
            assert!(h.stats.count >= 5 && h.stats.p99 >= h.stats.p50);
            // The text table renders every section.
            let table = wire.to_table();
            assert!(table.contains("kdbroker.rdma.commits"));
            assert!(table.contains("p99"));
        });
    });
    // And the same counters are visible locally.
    assert_eq!(
        registry.snapshot().counter("kdbroker", "rdma.commits"),
        Some(5)
    );
}

/// Network-thread busy time flows into `MetricsSnapshot::net_busy_ns`
/// (regression: it was hardcoded to zero) and into the registry.
#[test]
fn net_busy_time_is_accounted() {
    let registry = with_registry(|| {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::Kafka, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let producer =
                TcpProducer::connect(&cnode, cluster.bootstrap(), ClientTransport::Tcp, "t", 0)
                    .await
                    .unwrap();
            for i in 0..10u8 {
                producer.send(&Record::value(vec![i; 512])).await.unwrap();
            }
            let m = cluster.broker(0).metrics();
            assert!(m.net_busy_ns > 0, "net thread busy time not accounted");
            assert!(m.worker_busy_ns > 0);
        });
    });
    assert!(registry.snapshot().counter("kdbroker", "cpu.net_busy_ns").unwrap() > 0);
}
