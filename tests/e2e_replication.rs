//! Replication datapaths end to end (§4.3, §5.2): TCP pull on the Kafka
//! baseline, RDMA push on KafkaDirect, high-watermark visibility, and
//! acks=all semantics.

use kafkadirect::{RdmaToggles, SimCluster, SystemKind};
use kdclient::{ClientTransport, RdmaConsumer, RdmaProducer, TcpConsumer, TcpProducer};
use kdstorage::Record;

/// Pull replication: records become consumable only after followers catch
/// up; acks=all waits for full replication.
#[test]
fn pull_replication_three_way() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::Kafka, 3);
        cluster.create_topic("t", 1, 3).await;
        let cnode = cluster.add_client_node("c");
        let leader = cluster.leader_of("t", 0).await;
        let producer = TcpProducer::connect(&cnode, leader, ClientTransport::Tcp, "t", 0)
            .await
            .unwrap();
        for i in 0..10u8 {
            // acks=All (default): resolves only once both followers hold it.
            let off = producer.send(&Record::value(vec![i; 128])).await.unwrap();
            assert_eq!(off, u64::from(i));
        }
        // The leader's high watermark covers all records.
        let admin = kdclient::Admin::connect(&cnode, cluster.bootstrap())
            .await
            .unwrap();
        let (_, hw) = admin.list_offsets("t", 0).await.unwrap();
        assert_eq!(hw, 10);
        // Followers really hold the bytes (replica fetch counters moved).
        let follower_metrics: u64 = cluster
            .brokers()
            .iter()
            .map(|b| b.metrics().replica_fetches)
            .sum();
        assert!(follower_metrics > 0, "pull fetchers must have run");
        // And the data is consumable.
        let mut consumer = TcpConsumer::connect(&cnode, leader, ClientTransport::Tcp, "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < 10 {
            got.extend(consumer.next_records().await.unwrap());
        }
        assert_eq!(got.len(), 10);
    });
}

/// RDMA push replication: leader writes directly into follower files; the
/// follower-side commit is zero copy too.
#[test]
fn push_replication_three_way() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 3);
        cluster.create_topic("t", 1, 3).await;
        let cnode = cluster.add_client_node("c");
        let leader = cluster.leader_of("t", 0).await;
        let mut producer = RdmaProducer::connect(&cnode, leader, "t", 0, false)
            .await
            .unwrap();
        for i in 0..25u8 {
            let off = producer.send(&Record::value(vec![i; 256])).await.unwrap();
            assert_eq!(off, u64::from(i));
        }
        // Push writes happened from the leader.
        let leader_broker = cluster
            .brokers()
            .into_iter()
            .find(|b| b.addr().node == leader.node)
            .unwrap();
        let lm = leader_broker.metrics();
        assert!(lm.push_writes > 0, "push module must have written");
        assert!(lm.push_bytes > 0);
        // No broker copied any bytes with its CPU: produce was RDMA,
        // replication was RDMA push, commits were in place.
        for b in cluster.brokers() {
            assert_eq!(b.metrics().heap_copied_bytes, 0, "zero-copy replication");
            assert_eq!(b.metrics().replica_fetches, 0, "no pull fetchers in push mode");
        }
        // Followers committed identical bytes: their logs answer reads.
        let mut consumer = RdmaConsumer::connect(&cnode, leader, "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < 25 {
            got.extend(consumer.next_records().await.unwrap());
        }
        for (i, rv) in got.iter().enumerate() {
            assert_eq!(rv.record.value, vec![i as u8; 256]);
        }
    });
}

/// Module isolation (Fig 14/15): RDMA produce with TCP pull replication, and
/// TCP produce with RDMA push replication, both deliver correct data.
#[test]
fn mixed_datapath_combinations() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        // RDMA produce only (replication stays pull).
        let prod_only = SystemKind::KafkaDirectWith(RdmaToggles {
            produce: true,
            replicate: false,
            consume: false,
        });
        let cluster = SimCluster::start(prod_only, 2);
        cluster.create_topic("t", 1, 2).await;
        let cnode = cluster.add_client_node("c");
        let leader = cluster.leader_of("t", 0).await;
        let mut producer = RdmaProducer::connect(&cnode, leader, "t", 0, false)
            .await
            .unwrap();
        for i in 0..8u8 {
            producer.send(&Record::value(vec![i; 64])).await.unwrap();
        }
        let mut consumer = TcpConsumer::connect(&cnode, leader, ClientTransport::Tcp, "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < 8 {
            got.extend(consumer.next_records().await.unwrap());
        }
        assert_eq!(got.len(), 8);
    });
    rt.block_on(async {
        // RDMA replication only (produce stays TCP).
        let repl_only = SystemKind::KafkaDirectWith(RdmaToggles {
            produce: false,
            replicate: true,
            consume: false,
        });
        let cluster = SimCluster::start(repl_only, 2);
        cluster.create_topic("t", 1, 2).await;
        let cnode = cluster.add_client_node("c");
        let leader = cluster.leader_of("t", 0).await;
        let producer = TcpProducer::connect(&cnode, leader, ClientTransport::Tcp, "t", 0)
            .await
            .unwrap();
        for i in 0..8u8 {
            producer.send(&Record::value(vec![i; 64])).await.unwrap();
        }
        let leader_broker = cluster
            .brokers()
            .into_iter()
            .find(|b| b.addr().node == leader.node)
            .unwrap();
        assert!(leader_broker.metrics().push_writes > 0);
    });
}

/// Replication follows the leader across file rolls (push mode), keeping
/// follower logs byte-identical.
#[test]
fn push_replication_across_file_rolls() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let opts = kafkadirect::ClusterOptions {
            log: kdstorage::LogConfig {
                segment_size: 8 * 1024,
                max_batch_size: 4 * 1024,
            },
            ..Default::default()
        };
        let cluster = SimCluster::start_with(SystemKind::KafkaDirect, 2, opts);
        cluster.create_topic("t", 1, 2).await;
        let cnode = cluster.add_client_node("c");
        let leader = cluster.leader_of("t", 0).await;
        let mut producer = RdmaProducer::connect(&cnode, leader, "t", 0, false)
            .await
            .unwrap();
        let n = 30u32;
        for i in 0..n {
            let off = producer
                .send(&Record::value(vec![(i % 251) as u8; 900]))
                .await
                .unwrap();
            assert_eq!(off, u64::from(i));
        }
        // All records fully replicated (acks resolved) and readable.
        let mut consumer = RdmaConsumer::connect(&cnode, leader, "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < n as usize {
            got.extend(consumer.next_records().await.unwrap());
        }
        for (i, rv) in got.iter().enumerate() {
            assert_eq!(rv.record.value, vec![(i % 251) as u8; 900]);
        }
    });
}

/// The high watermark gates consumers: data not yet replicated is invisible
/// on every datapath (§4.4.2: "An RDMA consumer never reads beyond the last
/// readable byte").
#[test]
fn consumers_never_see_uncommitted_records() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::Kafka, 2);
        cluster.create_topic("t", 1, 2).await;
        let cnode = cluster.add_client_node("c");
        let leader = cluster.leader_of("t", 0).await;
        let mut producer = TcpProducer::connect(&cnode, leader, ClientTransport::Tcp, "t", 0)
            .await
            .unwrap();
        // Leader-only ack so the producer doesn't wait for replication.
        producer.acks = kdclient::producer::Acks::Leader;
        producer.send(&Record::value(vec![1u8; 64])).await.unwrap();
        // Immediately fetch: the record may not be replicated yet; the
        // response must never contain records beyond the high watermark.
        let mut consumer = TcpConsumer::connect(&cnode, leader, ClientTransport::Tcp, "t", 0, 0)
            .await
            .unwrap();
        let records = consumer.poll().await.unwrap();
        let admin = kdclient::Admin::connect(&cnode, cluster.bootstrap())
            .await
            .unwrap();
        let (_, hw) = admin.list_offsets("t", 0).await.unwrap();
        for rv in &records {
            assert!(rv.offset < hw, "fetched record beyond high watermark");
        }
        // Eventually it replicates and becomes visible.
        let mut got = records;
        while got.is_empty() {
            got = consumer.poll().await.unwrap();
        }
        assert_eq!(got[0].record.value, vec![1u8; 64]);
    });
}

/// Push replication remains correct with the minimum credit window: the
/// leader strictly alternates write → credit-return (§4.3.2 flow control at
/// its tightest).
#[test]
fn push_replication_with_one_credit() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let mut cfg = SystemKind::KafkaDirect.broker_config();
        cfg.replication_credits = 1;
        cfg.log = kdstorage::LogConfig {
            segment_size: 1 << 20,
            max_batch_size: 64 * 1024,
        };
        let fabric = netsim::Fabric::new(netsim::profile::Profile::testbed());
        let mut peers = Vec::new();
        let mut nodes = Vec::new();
        for i in 0..2 {
            let node = fabric.add_node(&format!("b{i}"));
            peers.push(kdwire::BrokerAddr {
                node: node.id.0,
                port: cfg.tcp_port,
                rdma_port: cfg.rdma_port,
            });
            nodes.push(node);
        }
        let brokers: Vec<_> = nodes
            .iter()
            .map(|n| kafkadirect::Broker::start(n, cfg.clone(), peers.clone()))
            .collect();
        let admin_node = fabric.add_node("admin");
        let admin = kdclient::Admin::connect(&admin_node, peers[0]).await.unwrap();
        admin.create_topic("t", 1, 2).await.unwrap();
        let cnode = fabric.add_node("client");
        let leader = admin.leader_of("t", 0).await.unwrap();
        let mut producer = RdmaProducer::connect(&cnode, leader, "t", 0, false)
            .await
            .unwrap();
        for i in 0..40u8 {
            assert_eq!(
                producer.send(&Record::value(vec![i; 200])).await.unwrap(),
                u64::from(i)
            );
        }
        let mut consumer = RdmaConsumer::connect(&cnode, leader, "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < 40 {
            got.extend(consumer.next_records().await.unwrap());
        }
        for (i, rv) in got.iter().enumerate() {
            assert_eq!(rv.record.value, vec![i as u8; 200]);
        }
        let leader_broker = brokers.iter().find(|b| b.addr().node == leader.node).unwrap();
        assert!(leader_broker.metrics().push_writes >= 40);
    });
}
