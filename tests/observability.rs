//! Continuous-telemetry integration: a chaos soak whose time-series shows
//! the throughput dip and recovery around an injected broker crash with a
//! finite failover MTTR, the admin wire path for series/health dumps, and
//! the determinism guarantee (sampling on/off leaves the trace-event log
//! bit-identical).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use kafkadirect::{ClusterOptions, ObserveConfig, SimCluster, SystemKind};
use kdclient::{Admin, ClientError, RdmaConsumer, RdmaProducer};
use kdstorage::Record;
use kdtelem::{HealthKind, Sampler, SeriesOptions, Watchdog, WatchdogOptions};

const CRASH_NS: u64 = 500_000;
const FAILOVER_NS: u64 = 700_000;
const RESTART_NS: u64 = 3_000_000;

/// Chaos soak under an ambient sampler + watchdog: crash the partition
/// leader mid-stream, fail over, restart. The exported series must show
/// commit throughput dip to zero across the outage and recover after the
/// failover, the fault injection must be visible in the same series, and
/// the watchdog must report a stall and a finite MTTR.
#[test]
fn crash_soak_series_shows_dip_recovery_and_finite_mttr() {
    let rt = sim::Runtime::with_seed(7);
    let registry = kdtelem::Registry::new();
    let _t = kdtelem::enter(&registry);
    let reg = registry.clone();
    let (dump, dog_events, mttr, plan_start) = rt.block_on(async move {
        let injector = kdfault::Injector::new();
        let _i = kdfault::enter(&injector);
        // Ambient (cluster-wide) observability: unlike the broker-owned
        // sampler, this one survives the crash and records across it.
        let log = Sampler::start(
            &reg,
            SeriesOptions {
                interval: Duration::from_micros(50),
                capacity: 1 << 14,
            },
        );
        let dog = Watchdog::start(
            &reg,
            WatchdogOptions {
                poll: Duration::from_micros(50),
                budget: Duration::from_micros(150),
                ..Default::default()
            },
        );

        let cluster = SimCluster::start(SystemKind::KafkaDirect, 3);
        cluster.create_topic("t", 1, 2).await;
        let leader = cluster.leader_of("t", 0).await;
        let leader_idx = (0..cluster.broker_count())
            .find(|&i| cluster.broker_node(i).id.0 == leader.node)
            .unwrap() as u32;

        // Producer: warm up with committed traffic before the faults, then
        // keep a retrying stream running so traffic spans the crash and the
        // recovery. On failure the loop redials every broker directly (the
        // usual bootstrap re-resolve would dial the crashed leader), so it
        // finds the promoted follower as soon as the failover lands — the
        // watchdog's MTTR then measures the failover, not the restart.
        let pnode = cluster.add_client_node("p");
        let addrs: Vec<_> = (0..cluster.broker_count())
            .map(|i| cluster.broker(i).addr())
            .collect();
        let mut producer = RdmaProducer::connect(&pnode, leader, "t", 0, false)
            .await
            .unwrap();
        for warmup in 0..5u64 {
            producer
                .send(&Record::value(warmup.to_le_bytes().to_vec()))
                .await
                .unwrap();
        }
        let acked: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let acked2 = Rc::clone(&acked);
        let done = Rc::new(std::cell::Cell::new(false));
        let done2 = Rc::clone(&done);
        sim::spawn(async move {
            let mut producer = Some(producer);
            for attempt in 0..60u64 {
                let rec = Record::value(attempt.to_le_bytes().to_vec());
                let sent = match producer.as_mut() {
                    Some(p) => matches!(
                        sim::time::timeout(Duration::from_millis(1), p.send(&rec)).await,
                        Ok(Ok(_))
                    ),
                    None => false,
                };
                if sent {
                    acked2.borrow_mut().push(attempt);
                } else {
                    producer = None;
                    for &addr in &addrs {
                        if let Ok(p) = RdmaProducer::connect(&pnode, addr, "t", 0, false).await {
                            producer = Some(p);
                            break;
                        }
                    }
                }
                sim::time::sleep(Duration::from_micros(20)).await;
            }
            done2.set(true);
        });

        let plan = kdfault::FaultPlan {
            seed: 0,
            faults: vec![
                kdfault::ScheduledFault {
                    at_ns: CRASH_NS,
                    kind: kdfault::FaultKind::BrokerCrash { broker: leader_idx },
                },
                kdfault::ScheduledFault {
                    at_ns: FAILOVER_NS,
                    kind: kdfault::FaultKind::FailOver {
                        topic: "t".into(),
                        partition: 0,
                    },
                },
                kdfault::ScheduledFault {
                    at_ns: RESTART_NS,
                    kind: kdfault::FaultKind::BrokerRestart { broker: leader_idx },
                },
            ],
        };
        // Fault offsets are relative to the plan start; capture it so the
        // series windows below can be anchored in absolute virtual time.
        let plan_start = sim::now().as_nanos();
        assert_eq!(kafkadirect::chaos::run_plan(&cluster, &plan).await, 3);

        while !done.get() {
            sim::time::sleep(Duration::from_millis(1)).await;
        }
        assert!(
            acked.borrow().len() >= 10,
            "soak produced too little to judge: {} acks",
            acked.borrow().len()
        );
        log.stop();
        dog.stop();
        (log.dump(), dog.events(), dog.mttr_ns(), plan_start)
    });

    // The series export round-trips (this is what KD_SERIES writes to disk).
    let parsed = kdtelem::SeriesDump::from_json_lines(&dump.to_json_lines()).expect("round trip");
    assert_eq!(parsed, dump);

    // Commit throughput: positive before the crash, zero across the outage
    // window, positive again after the restart.
    let crash_ts = plan_start + CRASH_NS;
    let failover_ts = plan_start + FAILOVER_NS;
    let restart_ts = plan_start + RESTART_NS;
    let commits = dump.counter("kdbroker", "rdma.commits").expect("commit series");
    assert!(
        commits
            .points
            .iter()
            .any(|p| p.ts_ns < crash_ts && p.delta > 0),
        "no commits recorded before the crash"
    );
    let outage: Vec<_> = commits
        .points
        .iter()
        .filter(|p| p.ts_ns > crash_ts + 50_000 && p.ts_ns <= failover_ts)
        .collect();
    assert!(!outage.is_empty(), "sampler missed the outage window");
    assert!(
        outage.iter().all(|p| p.delta == 0),
        "commits advanced while the leader was down"
    );
    assert!(
        commits
            .points
            .iter()
            .any(|p| p.ts_ns > restart_ts && p.delta > 0),
        "throughput never recovered after the restart"
    );

    // The injected fault itself lines up in the same series: the kdfault
    // crash counter steps from 0 to 1 right at the crash tick.
    let crashes = dump
        .counter("kdfault", "inject.broker_crashes")
        .expect("fault injection series");
    assert!(
        crashes
            .points
            .iter()
            .any(|p| p.delta == 1 && p.ts_ns >= crash_ts && p.ts_ns < crash_ts + 100_000),
        "crash injection not visible at the crash time in the series"
    );

    // netsim's link instruments ride along for queue-pressure plots.
    assert!(
        dump.gauge("netsim", "link.backlog_ns").is_some(),
        "link backlog gauge missing from the series"
    );

    // Watchdog: the outage exceeded the 150us budget → stall; commits after
    // failover → recovery; crash counter + first post-crash progress → a
    // finite MTTR spanning the outage.
    assert!(
        dog_events
            .iter()
            .any(|e| matches!(e.kind, HealthKind::Stall { .. })),
        "no stall event for a {}ns outage: {dog_events:?}",
        FAILOVER_NS - CRASH_NS
    );
    assert!(
        dog_events
            .iter()
            .any(|e| matches!(e.kind, HealthKind::Recovered { .. })),
        "stall never recovered: {dog_events:?}"
    );
    let mttr = mttr.expect("failover MTTR measured");
    assert!(
        (100_000..RESTART_NS).contains(&mttr),
        "MTTR {mttr}ns implausible for a {}ns failover",
        FAILOVER_NS - CRASH_NS
    );
}

/// Broker-owned observability over the admin wire path: a cluster started
/// with `ClusterOptions::observe` serves its series and health log via the
/// Series/Health RPCs; a cluster without it answers NotSupported.
#[test]
fn observe_rpc_round_trips_series_health_and_repl_lag() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start_with(
            SystemKind::KafkaDirect,
            2,
            ClusterOptions {
                observe: Some(ObserveConfig {
                    sample_interval: Duration::from_micros(100),
                    ..Default::default()
                }),
                ..Default::default()
            },
        );
        cluster.create_topic("t", 1, 2).await;
        let cnode = cluster.add_client_node("c");
        let leader = cluster.leader_of("t", 0).await;
        let mut producer = RdmaProducer::connect(&cnode, leader, "t", 0, false)
            .await
            .unwrap();
        for i in 0..10u8 {
            producer.send(&Record::value(vec![i; 128])).await.unwrap();
        }
        let mut consumer = RdmaConsumer::connect(&cnode, leader, "t", 0, 0)
            .await
            .unwrap();
        let mut got = 0;
        while got < 10 {
            got += consumer.next_records().await.unwrap().len();
        }

        let leader_i = (0..cluster.broker_count())
            .find(|&i| cluster.broker_node(i).id.0 == leader.node)
            .unwrap();
        let series = cluster.broker_series(leader_i).await;
        assert!(series.samples > 0, "sampler never ticked");
        assert_eq!(series.interval_ns, 100_000);
        // Both brokers share the ambient registry, so the sampled series
        // aggregates by key across the cluster: 10 leader commits plus the
        // same 10 appends replicated onto the RF=2 follower.
        let commits = series.counter("kdbroker", "rdma.commits").expect("commits");
        assert_eq!(
            commits.points.last().unwrap().value,
            20,
            "cumulative commits over the wire"
        );
        // Per-partition replication lag gauge: push replication ran, so the
        // (partition, follower) lag cell must have peaked above zero.
        let lag = series.gauge("kdbroker", "repl.lag").expect("repl.lag series");
        assert!(
            lag.points.last().unwrap().peak > 0,
            "replication lag never observed in flight"
        );
        assert_eq!(lag.points.last().unwrap().value, 0, "lag drained at rest");

        // Health: watchdog alive, no stalls in a healthy run.
        let health = cluster.broker_health(leader_i).await;
        assert!(
            health
                .iter()
                .all(|e| !matches!(e.kind, HealthKind::Stall { .. })),
            "healthy run stalled: {health:?}"
        );
    });

    // Observability off (the default): the RPCs answer NotSupported.
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let admin = Admin::connect(&cnode, cluster.bootstrap()).await.unwrap();
        assert!(matches!(admin.series().await, Err(ClientError::Broker(_))));
        assert!(matches!(admin.health().await, Err(ClientError::Broker(_))));
    });
}

/// Sampling must be a pure observer: the same seeded workload run with the
/// broker sampler + watchdog on and off yields a bit-identical trace-event
/// log, the same final virtual time, and the same committed stream.
#[test]
fn sampler_leaves_replay_digest_bit_identical() {
    fn run(observe: bool) -> (u64, Vec<kdtelem::TraceEvent>, Vec<u8>) {
        kdtelem::reset_trace_ids();
        let rt = sim::Runtime::with_seed(11);
        let registry = kdtelem::Registry::new();
        let _t = kdtelem::enter(&registry);
        let consumed = rt.block_on(async move {
            let opts = ClusterOptions {
                observe: observe.then(ObserveConfig::default),
                ..Default::default()
            };
            let cluster = SimCluster::start_with(SystemKind::KafkaDirect, 2, opts);
            cluster.create_topic("t", 1, 2).await;
            let cnode = cluster.add_client_node("c");
            let leader = cluster.leader_of("t", 0).await;
            let mut producer = RdmaProducer::connect(&cnode, leader, "t", 0, false)
                .await
                .unwrap();
            for i in 0..20u8 {
                producer.send(&Record::value(vec![i; 64])).await.unwrap();
                sim::time::sleep(Duration::from_micros(30)).await;
            }
            let mut consumer = RdmaConsumer::connect(&cnode, leader, "t", 0, 0)
                .await
                .unwrap();
            let mut seen = Vec::new();
            while seen.len() < 20 {
                for rv in consumer.next_records().await.unwrap() {
                    seen.push(rv.record.value[0]);
                }
            }
            seen
        });
        (
            rt.block_on(async { sim::now().as_nanos() }),
            registry.drain_trace_events(),
            consumed,
        )
    }

    let (end_off, events_off, consumed_off) = run(false);
    let (end_on, events_on, consumed_on) = run(true);
    assert_eq!(consumed_off, consumed_on, "committed stream diverged");
    assert_eq!(end_off, end_on, "virtual end time diverged");
    assert_eq!(
        events_off.len(),
        events_on.len(),
        "trace event count diverged"
    );
    assert!(
        events_off == events_on,
        "trace-event log not bit-identical with sampling on"
    );
}
