//! Connection-scaling equivalence (DESIGN.md §13): the receive-state
//! provisioning mode — per-QP receive queues, a shared receive queue, or
//! SRQ + QP multiplexing — is a *resource* axis, not a *behaviour* axis.
//!
//! Below the NIC cache knee (`nic_cache_qps`), all three modes must run the
//! exact same schedule: SRQ pops and per-QP pops cost nothing, receive
//! posting has no virtual-time cost, and QP lending only changes context
//! accounting. So the same seeded fault plan must produce not just the same
//! acked/consumed sets but a **bit-identical canonical trace digest** in
//! every mode — mirroring `tests/batch_determinism.rs` for the CQ-batch
//! axis.
//!
//! The SRQ chaos soak replays the full 8-seed fault pool with the shared
//! receive queue enabled: broker crashes flush error CQEs through QPs that
//! are attached to an SRQ, and the invariants prove no acked record is lost
//! — i.e. an error flush never strands (or double-frees) SRQ buffers that
//! surviving connections depend on.

mod common;

use common::{seeds_under_test, Outcome, SEEDS};
use kafkadirect::ConnMode;

const MODES: [ConnMode; 3] = [ConnMode::PerQp, ConnMode::Srq, ConnMode::SrqMux];

/// Acked records form an exactly-once, in-order subsequence of the
/// consumed stream (same invariant as the chaos soak).
fn assert_no_loss(seed: u64, mode: ConnMode, o: &Outcome) {
    for &a in &o.acked {
        let n = o.consumed.iter().filter(|&&c| c == a).count();
        assert_eq!(
            n, 1,
            "seed {seed} mode {mode:?}: acked attempt {a} appears {n} times"
        );
    }
    let mut it = o.consumed.iter();
    for &a in &o.acked {
        assert!(
            it.any(|&c| c == a),
            "seed {seed} mode {mode:?}: acked records reordered (attempt {a})"
        );
    }
}

#[test]
fn conn_modes_bit_identical_below_cache_knee() {
    for &seed in &[SEEDS[4], SEEDS[7]] {
        let mut baseline: Option<(u64, Vec<u64>, Vec<u64>)> = None;
        for &mode in &MODES {
            let o = common::run_seed_conn(seed, mode);
            assert!(
                o.violations.is_empty(),
                "seed {seed} mode {mode:?}: invariant violations: {:?}",
                o.violations
            );
            match &baseline {
                None => baseline = Some((o.digest(), o.acked.clone(), o.consumed.clone())),
                Some((digest, acked, consumed)) => {
                    assert_eq!(
                        &o.acked, acked,
                        "seed {seed}: acked set diverged between PerQp and {mode:?}"
                    );
                    assert_eq!(
                        &o.consumed, consumed,
                        "seed {seed}: consumed stream diverged between PerQp and {mode:?}"
                    );
                    assert_eq!(
                        o.digest(),
                        *digest,
                        "seed {seed}: trace digest diverged between PerQp and {mode:?} — \
                         the connection mode leaked into the schedule"
                    );
                }
            }
        }
    }
}

#[test]
fn chaos_soak_stays_green_with_srq() {
    for seed in seeds_under_test(&SEEDS) {
        let o = common::run_seed_conn(seed, ConnMode::Srq);
        assert!(o.injected >= 1, "seed {seed}: plan injected nothing");
        assert!(
            o.violations.is_empty(),
            "seed {seed} (SRQ): trace invariants violated: {:?}",
            o.violations
        );
        assert!(
            !o.acked.is_empty(),
            "seed {seed} (SRQ): no attempt survived the faults"
        );
        assert_no_loss(seed, ConnMode::Srq, &o);
    }
}

#[test]
fn srq_mode_replays_bit_identically() {
    let seed = SEEDS[2];
    let a = common::run_seed_conn(seed, ConnMode::SrqMux);
    let b = common::run_seed_conn(seed, ConnMode::SrqMux);
    assert_eq!(a.digest(), b.digest(), "seed {seed}: SrqMux replay diverged");
    assert_eq!(a.acked, b.acked);
    assert_eq!(a.consumed, b.consumed);
}
