//! Shared chaos-run harness used by `tests/chaos.rs` (invariant soak) and
//! `tests/wheel_determinism.rs` (pre/post timer-wheel golden comparison).
//!
//! `run_seed` plays one seeded fault plan against a replicated cluster and
//! returns everything the invariants and the determinism replay compare.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use kafkadirect::{SimCluster, SystemKind};
use kdclient::{Admin, RdmaConsumer, RdmaProducer};
use kdstorage::Record;

// batch_determinism uses its own seed subset, so the full pool is dead code
// from that binary's point of view.
#[allow(dead_code)]
pub const SEEDS: [u64; 8] = [3, 7, 11, 19, 42, 101, 555, 9001];
pub const ATTEMPTS: u64 = 80;
pub const HORIZON_NS: u64 = 30_000_000; // 30 ms of virtual time for fault triggers

/// `KD_FAULT_SEED=<u64>` narrows a run to one chosen fault plan (see
/// EXPERIMENTS.md, "Chaos soak" recipe); otherwise the fixed seed set runs.
#[allow(dead_code)]
pub fn seeds_under_test(default: &[u64]) -> Vec<u64> {
    match std::env::var("KD_FAULT_SEED") {
        Ok(s) => vec![s.parse().expect("KD_FAULT_SEED must be a u64")],
        Err(_) => default.to_vec(),
    }
}

pub fn payload(attempt: u64) -> Vec<u8> {
    let mut v = attempt.to_le_bytes().to_vec();
    v.extend(std::iter::repeat_n((attempt % 251) as u8, 24));
    v
}

#[allow(dead_code)]
pub fn attempt_of(value: &[u8]) -> u64 {
    u64::from_le_bytes(value[..8].try_into().unwrap())
}

/// Everything a run produces that the invariants (and the determinism
/// replay) compare.
#[derive(PartialEq)]
pub struct Outcome {
    pub acked: Vec<u64>,
    pub consumed: Vec<u64>,
    pub injected: u64,
    pub end_ns: u64,
    pub events: Vec<kdtelem::TraceEvent>,
    pub violations: Vec<String>,
}

impl Outcome {
    /// Order-sensitive FNV-1a digest of the run: the full trace-id stream
    /// (trace_id, span_id, ts_ns per event, in drain order), the final
    /// virtual time, and the ack/consume sequences. Any scheduler reordering
    /// — even of same-timestamp events — changes the digest.
    // Used by the wheel_determinism test binary; other binaries including
    // this shared module see it as dead code.
    #[allow(dead_code)]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        fold(self.events.len() as u64);
        for e in &self.events {
            fold(e.trace_id);
            fold(e.span_id);
            fold(e.ts_ns);
        }
        fold(self.end_ns);
        fold(self.acked.len() as u64);
        for &a in &self.acked {
            fold(a);
        }
        fold(self.consumed.len() as u64);
        for &c in &self.consumed {
            fold(c);
        }
        h
    }
}

/// Runs the seed with the default broker datapath configuration (batched CQ
/// draining as shipped).
// Used by chaos.rs; the determinism binaries call run_seed_with directly.
#[allow(dead_code)]
pub fn run_seed(seed: u64) -> Outcome {
    run_seed_with(seed, None, None)
}

/// Runs one seeded fault plan; `rdma_pollers` / `cq_batch` override the
/// broker's poller count and CQ drain batch (`None` = shipped defaults).
/// `cq_batch = 1` reproduces the pre-batching one-completion-per-wakeup
/// poller bit for bit — the golden-digest test pins it.
pub fn run_seed_with(seed: u64, rdma_pollers: Option<usize>, cq_batch: Option<usize>) -> Outcome {
    run_seed_opts(
        seed,
        kafkadirect::ClusterOptions {
            rdma_pollers,
            cq_batch,
            ..Default::default()
        },
        false,
    )
}

/// Runs one seeded fault plan with an explicit produce-connection mode
/// (per-QP receive queues, a shared receive queue, or SRQ + QP
/// multiplexing). Used by `tests/conn_scaling.rs`: below the NIC cache
/// knee all three modes must be *bit-identical*, so the full digest — not
/// just the acked set — is comparable across modes.
#[allow(dead_code)]
pub fn run_seed_conn(seed: u64, conn_mode: kafkadirect::ConnMode) -> Outcome {
    run_seed_opts(
        seed,
        kafkadirect::ClusterOptions {
            conn_mode: Some(conn_mode),
            ..Default::default()
        },
        false,
    )
}

/// Runs one seeded fault plan against a **tiered-storage** cluster: every
/// partition's segments live in real files under a per-(tag, seed) temp
/// dir (wiped before the run), sync mode per-commit, and the plan injects
/// [`kdfault::FaultKind::TornWrite`] riders that garble the dead broker's
/// active segment file before recovery reads it back.
#[allow(dead_code)]
pub fn run_seed_durable(seed: u64, tag: &str) -> Outcome {
    let dir = std::env::temp_dir().join(format!(
        "kd-chaos-{tag}-{seed}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let storage = kdstorage::StorageConfig::tiered(&dir)
        .with_sync(kdstorage::SyncMode::PerCommit);
    let out = run_seed_opts(
        seed,
        kafkadirect::ClusterOptions {
            storage: Some(storage),
            ..Default::default()
        },
        true,
    );
    std::fs::remove_dir_all(&dir).ok();
    out
}

fn run_seed_opts(seed: u64, opts: kafkadirect::ClusterOptions, torn_writes: bool) -> Outcome {
    // Trace ids come from a thread-local allocator; reset it so replays of
    // the same seed produce bit-identical event logs.
    kdtelem::reset_trace_ids();
    let rt = sim::Runtime::with_seed(seed);
    rt.block_on(chaos_workload(seed, opts, torn_writes))
}

/// Runs the identical chaos workload through the sharded parallel executor
/// at `shards = 1`. Shard 0 keeps the caller's seed unchanged and runs on a
/// fresh thread whose trace-id counter starts at 1, so the outcome must be
/// bit-identical to [`run_seed`] — `tests/shard_equivalence.rs` pins that.
#[allow(dead_code)]
pub fn run_seed_sharded(seed: u64) -> Outcome {
    let opts = kafkadirect::ClusterOptions::default();
    let sopts = sim::shard::ShardOptions::new(1, opts.profile.lookahead(), seed);
    let mut run = sim::shard::run_sharded::<(), Outcome, _>(&sopts, |ctx| {
        ctx.run(chaos_workload(seed, opts.clone(), false))
    });
    run.results.pop().unwrap()
}

/// The chaos run body as a plain future, so the legacy `block_on` path and
/// the sharded executor replay the exact same workload.
async fn chaos_workload(seed: u64, opts: kafkadirect::ClusterOptions, torn_writes: bool) -> Outcome {
    {
        // Fresh telemetry + injector per run so drained traces and fault
        // counters are exactly this run's.
        let registry = kdtelem::Registry::new();
        let _t = kdtelem::enter(&registry);
        let injector = kdfault::Injector::new();
        let _i = kdfault::enter(&injector);

        let cluster = SimCluster::start_with(SystemKind::KafkaDirect, 3, opts);
        cluster.create_topic("chaos", 1, 2).await;

        let mut cfg = kdfault::PlanConfig::new(3, HORIZON_NS);
        cfg.failover_topic = Some("chaos".to_string());
        cfg.max_faults = 10;
        cfg.allow_torn_write = torn_writes;
        let plan = kdfault::FaultPlan::random(seed, &cfg);
        assert!(!plan.faults.is_empty(), "{}", plan.describe());

        // Producer task: one uniquely-tagged record per attempt. A timed-out
        // or failed attempt is simply not retried (its tag may still land in
        // the log as an unacked extra — at-least-once); an acked attempt is
        // never re-sent, so acked tags are unique by construction.
        let acked: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let done = Rc::new(Cell::new(false));
        let pnode = cluster.add_client_node("chaos-producer");
        let bootstrap = cluster.bootstrap();
        {
            let acked = Rc::clone(&acked);
            let done = Rc::clone(&done);
            sim::spawn(async move {
                let mut producer = loop {
                    match RdmaProducer::connect(&pnode, bootstrap, "chaos", 0, false).await {
                        Ok(p) => break p,
                        Err(_) => sim::time::sleep(Duration::from_millis(1)).await,
                    }
                };
                for attempt in 0..ATTEMPTS {
                    let rec = Record::value(payload(attempt));
                    match sim::time::timeout(Duration::from_millis(40), producer.send(&rec)).await
                    {
                        Ok(Ok(_off)) => acked.borrow_mut().push(attempt),
                        _ => {
                            // Broker down or leadership moved: redial (bounded
                            // backoff) and move on to the next attempt.
                            let _ = producer.reconnect().await;
                        }
                    }
                    sim::time::sleep(Duration::from_micros(50)).await;
                }
                done.set(true);
            });
        }

        // Play the fault plan to completion, then wait the workload out.
        kafkadirect::chaos::run_plan(&cluster, &plan).await;
        while !done.get() {
            sim::time::sleep(Duration::from_millis(1)).await;
        }

        // Let replication settle: poll the (possibly moved) leader until the
        // high watermark stops advancing.
        let cnode = cluster.add_client_node("chaos-observer");
        let leader = cluster.leader_of("chaos", 0).await;
        let admin = Admin::connect(&cnode, leader).await.expect("admin");
        let mut hw = 0u64;
        let mut stable = 0;
        for _ in 0..2000 {
            let (_, h) = admin.list_offsets("chaos", 0).await.expect("offsets");
            if h == hw {
                stable += 1;
                if stable >= 20 {
                    break;
                }
            } else {
                stable = 0;
                hw = h;
            }
            sim::time::sleep(Duration::from_micros(500)).await;
        }

        // Drain the full committed stream from the final leader.
        let mut consumer = RdmaConsumer::connect(&cnode, leader, "chaos", 0, 0)
            .await
            .expect("consumer");
        let mut consumed = Vec::new();
        while (consumed.len() as u64) < hw {
            for rv in consumer.next_records().await.expect("fetch") {
                consumed.push(attempt_of(&rv.record.value));
            }
        }

        let end_ns = sim::now().as_nanos();
        let events = registry.drain_trace_events();
        let violations = kdtelem::check::check(&events).violations;
        let acked = acked.borrow().clone();
        Outcome {
            acked,
            consumed,
            injected: injector.injected_total(),
            end_ns,
            events,
            violations,
        }
    }
}
