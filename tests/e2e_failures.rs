//! Failure injection (§4.2.2 failure handling, §4.3.2 flow control):
//! client crashes, holes in shared files, corrupt writes, revocation.

use std::time::Duration;

use kafkadirect::{SimCluster, SystemKind};
use kdclient::{RdmaConsumer, RdmaProducer};
use kdstorage::record::BatchBuilder;
use kdstorage::Record;
use kdwire::messages::{ProduceMode, Request, Response};
use rnic::{QpOptions, RNic, SendWr, ShmBuf, WorkRequest};

/// A crashed exclusive producer's grant is revoked on QP disconnect, and a
/// new producer can take over.
#[test]
fn exclusive_grant_revoked_on_disconnect() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c1");
        let mut p1 = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        p1.send(&Record::value(vec![1u8; 32])).await.unwrap();

        // A second producer on another node is denied while p1 lives.
        let cnode2 = cluster.add_client_node("c2");
        let denied = RdmaProducer::connect(&cnode2, cluster.bootstrap(), "t", 0, false).await;
        assert!(matches!(
            denied,
            Err(kdclient::ClientError::Broker(kdwire::ErrorCode::AccessDenied))
        ));

        // p1 "crashes": drop it (QPs close on drop of the last handle).
        p1.crash();
        sim::time::sleep(Duration::from_millis(1)).await;
        assert!(cluster.broker(0).metrics().grants_revoked >= 1);

        // Now the second producer succeeds and appends after p1's records.
        let mut p2 = RdmaProducer::connect(&cnode2, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        let off = p2.send(&Record::value(vec![2u8; 32])).await.unwrap();
        assert_eq!(off, 1);
    });
}

/// A hole in a shared file (reservation whose write never arrives) aborts
/// the session after the order timeout; other producers recover by
/// re-requesting access — and no hole ever becomes visible to consumers.
#[test]
fn shared_hole_times_out_and_aborts() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("good");
        let mut good = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, true)
            .await
            .unwrap();
        good.send(&Record::value(vec![7u8; 64])).await.unwrap();

        // An adversarial client reserves a region via FAA but never writes:
        // this creates the hole of §4.2.2.
        let evil_node = cluster.add_client_node("evil");
        let evil_nic = RNic::new(&evil_node);
        let ctrl = kdclient::Conn::connect(
            &evil_node,
            cluster.bootstrap(),
            kdclient::ClientTransport::Tcp,
        )
        .await
        .unwrap();
        let resp = ctrl
            .call(&Request::ProduceAccess {
                topic: "t".into(),
                partition: 0,
                mode: ProduceMode::Shared,
                min_bytes: 0,
            })
            .await
            .unwrap();
        let grant = match resp {
            Response::ProduceAccess(g) => g,
            _ => panic!("bad response"),
        };
        assert!(grant.error.is_ok());
        let word = grant.shared_word.unwrap();
        let send_cq = evil_nic.create_cq(16);
        let recv_cq = evil_nic.create_cq(16);
        let qp = evil_nic
            .connect(
                cluster.broker(0).node_id(),
                cluster.bootstrap().rdma_port,
                send_cq.clone(),
                recv_cq,
                QpOptions::default(),
            )
            .await
            .unwrap();
        let result = ShmBuf::zeroed(8);
        qp.post_send(SendWr::new(
            1,
            WorkRequest::FetchAdd {
                local: result.as_slice(),
                remote_addr: word.addr,
                rkey: word.rkey,
                add: kdwire::slots::shared_word_addend(100),
            },
        ))
        .unwrap();
        assert!(send_cq.next().await.unwrap().ok());
        // ... and never writes. The good producer's next record arrives
        // out of order and parks; after the timeout the session aborts.
        let next = good.send(&Record::value(vec![8u8; 64])).await;
        // The good producer either got an abort error ack and re-acquired,
        // or its retry loop already recovered — either way data must land.
        let off = match next {
            Ok(off) => off,
            Err(_) => good.send(&Record::value(vec![8u8; 64])).await.unwrap(),
        };
        assert!(off >= 1);
        let m = cluster.broker(0).metrics();
        assert!(m.produce_aborts >= 1, "hole must abort the session");

        // Consumers see a dense, hole-free log.
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < 2 {
            got.extend(consumer.next_records().await.unwrap());
        }
        assert_eq!(got[0].record.value[0], 7);
        assert_eq!(got[1].record.value[0], 8);
    });
}

/// A corrupt batch written via RDMA fails CRC verification at the broker,
/// the session is revoked, and the log stays clean.
#[test]
fn corrupt_rdma_write_rejected() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        // Manual exclusive producer that corrupts its batch bytes.
        let ctrl =
            kdclient::Conn::connect(&cnode, cluster.bootstrap(), kdclient::ClientTransport::Tcp)
                .await
                .unwrap();
        let resp = ctrl
            .call(&Request::ProduceAccess {
                topic: "t".into(),
                partition: 0,
                mode: ProduceMode::Exclusive,
                min_bytes: 0,
            })
            .await
            .unwrap();
        let grant = match resp {
            Response::ProduceAccess(g) => g,
            _ => panic!(),
        };
        let nic = RNic::new(&cnode);
        let send_cq = nic.create_cq(16);
        let recv_cq = nic.create_cq(16);
        let qp = nic
            .connect(
                cluster.broker(0).node_id(),
                cluster.bootstrap().rdma_port,
                send_cq,
                recv_cq.clone(),
                QpOptions::default(),
            )
            .await
            .unwrap();
        // Post a recv for the error ack.
        let ack_buf = ShmBuf::zeroed(16);
        qp.post_recv(rnic::RecvWr {
            wr_id: 0,
            buf: Some(ack_buf.as_slice()),
        })
        .unwrap();
        let mut builder = BatchBuilder::new(1);
        builder.append(&Record::value(vec![9u8; 64]));
        let mut batch = builder.build().unwrap();
        let last = batch.len() - 1;
        batch[last] ^= 0xff; // break the CRC
        let staged = ShmBuf::from_vec(batch);
        qp.post_send(SendWr::unsignaled(
            0,
            WorkRequest::WriteImm {
                local: staged.as_slice(),
                remote_addr: grant.region.addr,
                rkey: grant.region.rkey,
                imm: kdwire::pack_imm(grant.file_id, 0),
            },
        ))
        .unwrap();
        // The error ack arrives (CorruptBatch = 3).
        let cqe = recv_cq.next().await.unwrap();
        assert!(cqe.ok());
        assert_eq!(ack_buf.read_at(0, 1)[0], 3, "CorruptBatch error code");
        // Nothing was committed.
        let admin = kdclient::Admin::connect(&cnode, cluster.bootstrap())
            .await
            .unwrap();
        let (_, hw) = admin.list_offsets("t", 0).await.unwrap();
        assert_eq!(hw, 0);
        assert!(cluster.broker(0).metrics().grants_revoked >= 1);
    });
}

/// A follower crash during push replication: the leader keeps serving
/// produces (acks pick back up once the follower is replicated again), the
/// restarted follower recovers its log from the surviving segment buffers
/// and catches up over a fresh push session, and the high watermark
/// re-advances to cover everything.
#[test]
fn follower_crash_during_push_replication() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 2);
        cluster.create_topic("t", 1, 2).await;
        let cnode = cluster.add_client_node("c");
        let leader = cluster.leader_of("t", 0).await;
        let leader_idx = (0..2)
            .find(|&i| cluster.broker(i).addr().node == leader.node)
            .unwrap();
        let follower_idx = 1 - leader_idx;

        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for i in 0..5u8 {
            let off = producer.send(&Record::value(vec![i; 200])).await.unwrap();
            assert_eq!(off, u64::from(i));
        }

        cluster.crash_broker(follower_idx);
        sim::time::sleep(Duration::from_millis(1)).await;

        // The leader keeps accepting and committing produces; with RF=2 the
        // acks wait on replication, so they are outstanding while the
        // follower is down. Post them pipelined and collect later.
        let mut pending = Vec::new();
        for i in 5..10u8 {
            pending.push(
                producer
                    .send_pipelined(&Record::value(vec![i; 200]))
                    .await
                    .unwrap(),
            );
        }
        // The leader committed them locally even though the HW is stalled.
        sim::time::sleep(Duration::from_millis(2)).await;
        let leader_b = cluster.broker(leader_idx);
        assert!(leader_b.metrics().rdma_commits >= 10, "leader kept serving");
        let admin = kdclient::Admin::connect(&cnode, cluster.bootstrap())
            .await
            .unwrap();
        let (_, hw_stalled) = admin.list_offsets("t", 0).await.unwrap();
        assert_eq!(hw_stalled, 5, "HW stalls while the follower is down");

        // Restart: the follower recovers its log (CRC scan over the
        // surviving buffers) and the leader's pusher re-establishes against
        // the recovered frontier.
        cluster.restart_broker(follower_idx);
        for (i, ack) in pending.into_iter().enumerate() {
            let (err, off) = ack.await.unwrap();
            assert!(err.is_ok(), "ack resumes after follower catch-up");
            assert_eq!(off, 5 + i as u64);
        }
        let mut hw = 0;
        for _ in 0..500 {
            let (_, h) = admin.list_offsets("t", 0).await.unwrap();
            hw = h;
            if hw == 10 {
                break;
            }
            sim::time::sleep(Duration::from_micros(200)).await;
        }
        assert_eq!(hw, 10, "HW re-advances over the restarted follower");

        // Everything is consumer-visible, dense and in order.
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < 10 {
            got.extend(consumer.next_records().await.unwrap());
        }
        for (i, rv) in got.iter().enumerate() {
            assert_eq!(rv.record.value[0] as usize, i);
        }
        // The restarted follower's log mirrors the leader's bytes.
        let follower_b = cluster.broker(follower_idx);
        let tp = kdstorage::TopicPartition::new("t", 0);
        let fl = follower_b.inner().store.get(&tp).unwrap();
        let ll = leader_b.inner().store.get(&tp).unwrap();
        assert_eq!(fl.log.next_offset(), ll.log.next_offset());
    });
}

/// Consumer release after finishing an immutable file really deregisters
/// broker memory (§4.4.2 "to reduce memory usage").
#[test]
fn consume_release_unregisters_memory() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let opts = kafkadirect::ClusterOptions {
            log: kdstorage::LogConfig {
                segment_size: 8 * 1024,
                max_batch_size: 4 * 1024,
            },
            ..Default::default()
        };
        let cluster = SimCluster::start_with(SystemKind::KafkaDirect, 1, opts);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for i in 0..20u8 {
            producer.send(&Record::value(vec![i; 900])).await.unwrap();
        }
        let peak = cluster.broker(0).metrics().registered_bytes;
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < 20 {
            got.extend(consumer.next_records().await.unwrap());
        }
        assert!(consumer.stats.releases >= 1);
        // Registered bytes went up for reading and back down on release.
        let now = cluster.broker(0).metrics().registered_bytes;
        assert!(now <= peak + 2 * 8 * 1024 + 64 * 16, "stale registrations left behind");
    });
}

/// Overflowing the preallocated shared file triggers OutOfSpace handling:
/// producers re-request and continue on the new head file.
#[test]
fn shared_file_overflow_recovers() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let opts = kafkadirect::ClusterOptions {
            log: kdstorage::LogConfig {
                segment_size: 4 * 1024,
                max_batch_size: 2 * 1024,
            },
            ..Default::default()
        };
        let cluster = SimCluster::start_with(SystemKind::KafkaDirect, 1, opts);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, true)
            .await
            .unwrap();
        for i in 0..20u32 {
            let off = producer
                .send(&Record::value(vec![(i % 251) as u8; 700]))
                .await
                .unwrap();
            assert_eq!(off, u64::from(i));
        }
        // Multiple files were used.
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        let mut got = Vec::new();
        while got.len() < 20 {
            got.extend(consumer.next_records().await.unwrap());
        }
        assert!(consumer.stats.access_requests >= 2);
    });
}
