//! Scheduler-order determinism across the timer-wheel swap.
//!
//! `tests/golden/chaos_trace_digests.txt` holds one digest per chaos seed,
//! recorded from the pre-wheel executor (BinaryHeap timer queue). The digest
//! folds the full ordered trace-id stream — (trace_id, span_id, ts_ns) per
//! event — plus the final virtual time and the ack/consume sequences, so any
//! reordering the wheel introduces (even among same-timestamp events) fails
//! the comparison.
//!
//! Re-record with `KD_RECORD_GOLDEN=1 cargo test --test wheel_determinism`
//! — only legitimate when a change *intentionally* alters virtual-time
//! behaviour (new sleeps, different task topology), never to paper over an
//! unexplained divergence.
//!
//! Runs pin `cq_batch = 1`: the batched CQ-drain poller is specified to
//! degenerate to the pre-batching loop bit for bit at batch size 1, and
//! this golden comparison is what enforces that equivalence.

mod common;

/// Golden runs: default poller count, CQ batch pinned to 1.
fn run_golden_seed(seed: u64) -> common::Outcome {
    common::run_seed_with(seed, None, Some(1))
}

use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    // The owning package is crates/core; the golden lives beside the tests.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/chaos_trace_digests.txt")
}

#[test]
fn chaos_trace_digests_match_prewheel_golden() {
    let path = golden_path();
    if std::env::var("KD_RECORD_GOLDEN").is_ok() {
        let mut out = String::new();
        for &seed in &common::SEEDS {
            let o = run_golden_seed(seed);
            writeln!(
                out,
                "seed={} events={} end_ns={} digest={:016x}",
                seed,
                o.events.len(),
                o.end_ns,
                o.digest()
            )
            .unwrap();
        }
        std::fs::write(&path, out).expect("write golden");
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .expect("tests/golden/chaos_trace_digests.txt missing; record with KD_RECORD_GOLDEN=1");
    for (line, &seed) in golden.lines().zip(&common::SEEDS) {
        let o = run_golden_seed(seed);
        let got = format!(
            "seed={} events={} end_ns={} digest={:016x}",
            seed,
            o.events.len(),
            o.end_ns,
            o.digest()
        );
        assert_eq!(
            got, line,
            "seed {seed}: trace replay diverged from pre-wheel golden"
        );
    }
    assert_eq!(
        golden.lines().count(),
        common::SEEDS.len(),
        "golden file seed count mismatch"
    );
}
