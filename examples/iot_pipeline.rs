//! The §5.4 streaming workload: an IoT traffic sensor publishes JSON events
//! at a constant rate into two topics; a stream-processing consumer reports
//! the event delay (publish → consume), the Fig 21 metric.
//!
//! ```sh
//! cargo run --example iot_pipeline
//! ```

use kafkadirect::events::{SensorGenerator, TrafficEvent};
use kafkadirect::{Record, SimCluster, SystemKind};
use kdclient::{RdmaConsumer, RdmaProducer};
use std::time::Duration;

const EVENTS_PER_TOPIC: usize = 200;
/// 400 msg/s across two topics, as in the paper's constant-rate workload.
const INTER_EVENT: Duration = Duration::from_micros(5000);

fn main() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 2);
        cluster.create_topic("lanes-north", 1, 2).await;
        cluster.create_topic("lanes-south", 1, 2).await;

        // The sensor device: one producer per topic.
        for topic in ["lanes-north", "lanes-south"] {
            let leader = cluster.leader_of(topic, 0).await;
            let node = cluster.add_client_node(&format!("sensor-{topic}"));
            let topic = topic.to_string();
            sim::spawn(async move {
                let mut producer = RdmaProducer::connect(&node, leader, &topic, 0, false)
                    .await
                    .expect("sensor producer");
                let mut generator = SensorGenerator::new(7);
                for _ in 0..EVENTS_PER_TOPIC {
                    let event = generator.next_event();
                    let record = Record::value(event.to_json().into_bytes());
                    producer.send(&record).await.expect("publish");
                    sim::time::sleep(INTER_EVENT).await;
                }
            });
        }

        // The stream-processing engine: consumes both topics, computes a
        // running aggregate, and records event delays.
        let mut handles = Vec::new();
        for topic in ["lanes-north", "lanes-south"] {
            let leader = cluster.leader_of(topic, 0).await;
            let node = cluster.add_client_node(&format!("engine-{topic}"));
            let topic = topic.to_string();
            handles.push(sim::spawn(async move {
                let mut consumer = RdmaConsumer::connect(&node, leader, &topic, 0, 0)
                    .await
                    .expect("engine consumer");
                let mut delays_us = Vec::new();
                let mut cars_total = 0u64;
                while delays_us.len() < EVENTS_PER_TOPIC {
                    for rv in consumer.next_records().await.expect("consume") {
                        let json = String::from_utf8(rv.record.value).expect("utf8");
                        let event = TrafficEvent::from_json(&json).expect("json");
                        let now_us = sim::now().as_nanos() / 1000;
                        delays_us.push(now_us.saturating_sub(event.timestamp_us));
                        cars_total += u64::from(event.cars);
                    }
                    // Commit progress over TCP, as the paper notes (§5.4).
                    if delays_us.len() % 50 == 0 {
                        consumer.commit_offset("engine").await.ok();
                    }
                }
                (topic, delays_us, cars_total)
            }));
        }

        for h in handles {
            let (topic, mut delays, cars) = h.await.expect("engine task");
            delays.sort_unstable();
            let p50 = delays[delays.len() / 2];
            let p99 = delays[delays.len() * 99 / 100];
            println!(
                "{topic}: {} events, cars_total={cars}, delay p50={p50} us, p99={p99} us",
                delays.len()
            );
        }
        println!("virtual duration: {:.3} s", sim::now().as_secs_f64());
    });
}
