//! A 3-broker, 3-way-replicated pipeline with RDMA push replication
//! (§4.3.2), including a producer crash and takeover (§4.2.2 failure
//! handling).
//!
//! ```sh
//! cargo run --example replicated_pipeline
//! ```

use kafkadirect::{Record, SimCluster, SystemKind};
use kdclient::{RdmaConsumer, RdmaProducer};

fn main() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 3);
        cluster.create_topic("orders", 1, 3).await;
        let leader = cluster.leader_of("orders", 0).await;
        println!(
            "topic 'orders' created: leader on node {}, replicated 3-way",
            leader.node
        );

        // Producer A writes some records (acks = fully replicated).
        let node_a = cluster.add_client_node("producer-a");
        let mut producer_a = RdmaProducer::connect(&node_a, leader, "orders", 0, false)
            .await
            .expect("producer a");
        for i in 0..10u32 {
            let t0 = sim::now();
            let off = producer_a
                .send(&Record::value(format!("order-{i}").into_bytes()))
                .await
                .expect("produce");
            println!(
                "A: offset {off} committed on all replicas in {:.0} us",
                (sim::now() - t0).as_nanos() as f64 / 1000.0
            );
        }

        // Producer A crashes; the broker revokes its exclusive grant.
        producer_a.crash();
        sim::time::sleep(std::time::Duration::from_millis(1)).await;
        println!("A crashed; broker revoked its produce grant");

        // Producer B takes over the same partition.
        let node_b = cluster.add_client_node("producer-b");
        let mut producer_b = RdmaProducer::connect(&node_b, leader, "orders", 0, false)
            .await
            .expect("producer b takeover");
        for i in 10..15u32 {
            let off = producer_b
                .send(&Record::value(format!("order-{i}").into_bytes()))
                .await
                .expect("produce");
            println!("B: offset {off} committed");
        }

        // A consumer reads the full, gapless history.
        let node_c = cluster.add_client_node("consumer");
        let mut consumer = RdmaConsumer::connect(&node_c, leader, "orders", 0, 0)
            .await
            .expect("consumer");
        let mut seen = 0;
        while seen < 15 {
            for rv in consumer.next_records().await.expect("consume") {
                assert_eq!(
                    rv.record.value,
                    format!("order-{}", rv.offset).into_bytes(),
                    "history must be dense and ordered"
                );
                seen += 1;
            }
        }
        println!("consumer read all 15 records in order — no holes after the crash");

        // Replication accounting.
        for (i, b) in cluster.brokers().iter().enumerate() {
            let m = b.metrics();
            println!(
                "broker {i}: push_writes={} push_bytes={} cpu_copies={}B",
                m.push_writes, m.push_bytes, m.heap_copied_bytes
            );
        }
    });
}
