//! Fan-out without broker CPU: hundreds of RDMA consumers poll for new
//! records through metadata-slot reads served entirely by the NIC (§5.3's
//! "thousands of clients with no CPU cost").
//!
//! ```sh
//! cargo run --example many_consumers
//! ```

use kafkadirect::{Record, SimCluster, SystemKind};
use kdclient::{RdmaConsumer, RdmaProducer};

const CONSUMERS: usize = 200;
const RECORDS: usize = 25;

fn main() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("feed", 1, 1).await;

        // Preload some records.
        let pnode = cluster.add_client_node("producer");
        let mut producer = RdmaProducer::connect(&pnode, cluster.bootstrap(), "feed", 0, false)
            .await
            .expect("producer");
        for i in 0..RECORDS {
            producer
                .send(&Record::value(format!("item-{i}").into_bytes()))
                .await
                .expect("produce");
        }

        let busy_before = cluster.broker(0).metrics().worker_busy_ns;

        // Fan out.
        let mut handles = Vec::new();
        for c in 0..CONSUMERS {
            let node = cluster.add_client_node(&format!("c{c}"));
            let bootstrap = cluster.bootstrap();
            handles.push(sim::spawn(async move {
                let mut consumer = RdmaConsumer::connect(&node, bootstrap, "feed", 0, 0)
                    .await
                    .expect("consumer");
                let mut read = 0;
                while read < RECORDS {
                    read += consumer.next_records().await.expect("poll").len();
                }
                // Keep checking for new data a while: pure slot reads.
                for _ in 0..50 {
                    consumer.check_new_data().await.expect("check");
                }
                (consumer.stats.data_reads, consumer.stats.slot_reads)
            }));
        }
        let mut total_reads = 0u64;
        let mut total_slot_reads = 0u64;
        for h in handles {
            let (d, s) = h.await.expect("consumer task");
            total_reads += d;
            total_slot_reads += s;
        }

        let busy_after = cluster.broker(0).metrics().worker_busy_ns;
        let nic = cluster.broker(0).nic_stats();
        println!("{CONSUMERS} consumers each read {RECORDS} records");
        println!("  total RDMA data reads      : {total_reads}");
        println!("  total metadata slot reads  : {total_slot_reads}");
        println!("  NIC-served one-sided reads : {}", nic.reads_served);
        println!(
            "  broker CPU spent on serving: {:.1} us total ({:.3} us per consumer, control plane only)",
            (busy_after - busy_before) as f64 / 1000.0,
            (busy_after - busy_before) as f64 / 1000.0 / CONSUMERS as f64,
        );
        println!("  virtual time: {}", sim::now());
    });
}
