//! Quickstart: one broker, one RDMA producer, one RDMA consumer.
//!
//! ```sh
//! cargo run --example quickstart
//! cargo run --example quickstart -- --durable
//! ```
//!
//! Starts a simulated KafkaDirect broker, produces a handful of records
//! through the zero-copy RDMA produce datapath (§4.2.2), reads them back
//! with one-sided RDMA Reads (§4.4.2), and prints what happened — including
//! the broker-side evidence that no CPU copies occurred.
//!
//! With `--durable` the broker runs the file-backed tiered store
//! (per-commit fsync) in a temporary directory: after the produce/consume
//! round the broker is hard-crashed, restarted from its segment files, and
//! every record is read back again — exiting non-zero if the recovered log
//! differs.
//!
//! The broker runs under its continuous-telemetry sampler and health
//! watchdog; at the end the example pulls the recorded time-series and
//! health log over the admin wire path and runs the critical-path checker
//! over the run's trace lifelines. Any watchdog stall or critpath
//! reconciliation error exits non-zero — CI runs this as a live
//! observability gate.

use kafkadirect::{ClusterOptions, ObserveConfig, Record, SimCluster, SystemKind};
use kdclient::{RdmaConsumer, RdmaProducer};

fn main() {
    let durable = std::env::args().any(|a| a == "--durable");
    let dir = std::env::temp_dir().join(format!("kd-quickstart-{}", std::process::id()));
    let storage = durable.then(|| {
        std::fs::remove_dir_all(&dir).ok();
        kdstorage::StorageConfig::tiered(&dir).with_sync(kdstorage::SyncMode::PerCommit)
    });
    let rt = sim::Runtime::new();
    let dir2 = dir.clone();
    rt.block_on(async move {
        let dir = dir2;
        // A one-broker KafkaDirect cluster on a simulated 56 Gbit/s fabric,
        // sampled continuously at the default observability cadence.
        let cluster = SimCluster::start_with(
            SystemKind::KafkaDirect,
            1,
            ClusterOptions {
                observe: Some(ObserveConfig::default()),
                storage,
                ..Default::default()
            },
        );
        cluster.create_topic("greetings", 1, 1).await;
        println!("cluster up: broker at node {}", cluster.bootstrap().node);

        // Produce: WriteWithImm straight into the topic-partition file.
        let client = cluster.add_client_node("client");
        let mut producer = RdmaProducer::connect(&client, cluster.bootstrap(), "greetings", 0, false)
            .await
            .expect("producer connect");
        for i in 0..5 {
            let t0 = sim::now();
            let offset = producer
                .send(&Record::value(format!("hello #{i}").into_bytes()))
                .await
                .expect("produce");
            println!(
                "produced offset {offset} in {:.1} us",
                (sim::now() - t0).as_nanos() as f64 / 1000.0
            );
        }

        // Consume: RDMA Reads; the broker CPU is not involved.
        let mut consumer = RdmaConsumer::connect(&client, cluster.bootstrap(), "greetings", 0, 0)
            .await
            .expect("consumer connect");
        let mut seen = 0;
        while seen < 5 {
            for rv in consumer.next_records().await.expect("consume") {
                println!(
                    "consumed offset {}: {:?}",
                    rv.offset,
                    String::from_utf8_lossy(&rv.record.value)
                );
                seen += 1;
            }
        }

        let m = cluster.broker(0).metrics();
        let nic = cluster.broker(0).nic_stats();
        println!();
        println!("broker-side accounting:");
        println!("  rdma produce commits : {}", m.rdma_commits);
        println!("  broker CPU copies    : {} bytes (zero copy!)", m.heap_copied_bytes);
        println!("  NIC-served reads     : {}", nic.reads_served);
        println!("  TCP fetch requests   : {}", m.fetch_requests);
        if durable {
            println!("  segment bytes synced : {}", m.storage_bytes_flushed);
            println!("  fsyncs               : {}", m.storage_fsyncs);
        }
        println!("  virtual time elapsed : {}", sim::now());

        // Durability drill: kill the broker process, recover from the
        // segment files, and prove every acked record survived.
        if durable {
            drop(producer);
            drop(consumer);
            cluster.crash_broker(0);
            cluster.restart_broker(0);
            println!();
            println!("durable tier: broker crashed and restarted from {dir:?}");
            let mut consumer = RdmaConsumer::connect(&client, cluster.bootstrap(), "greetings", 0, 0)
                .await
                .expect("post-restart consumer connect");
            let mut recovered = Vec::new();
            while recovered.len() < 5 {
                for rv in consumer.next_records().await.expect("post-restart consume") {
                    recovered.push(String::from_utf8_lossy(&rv.record.value).into_owned());
                }
            }
            for (i, v) in recovered.iter().enumerate() {
                let want = format!("hello #{i}");
                if *v != want {
                    eprintln!("quickstart: recovered record {i} is {v:?}, expected {want:?}");
                    std::process::exit(1);
                }
            }
            println!("durable tier: all {} records re-read after restart", recovered.len());
        }

        // Continuous telemetry: the broker sampled itself the whole run.
        let series = cluster.broker_series(0).await;
        let health = cluster.broker_health(0).await;
        println!();
        println!("observability:");
        println!(
            "  series samples       : {} @ {} us/interval",
            series.samples,
            series.interval_ns / 1_000
        );
        if let Some(c) = series.counter("kdbroker", "rdma.commits") {
            println!("  commit deltas        : {:?}", c.deltas());
        }
        let stalls = health
            .iter()
            .filter(|e| matches!(e.kind, kdtelem::HealthKind::Stall { .. }))
            .count();
        println!("  watchdog stalls      : {stalls}");
        if stalls > 0 {
            eprintln!("quickstart: health watchdog reported {stalls} stall event(s)");
            std::process::exit(1);
        }
    });

    // Critical-path check over the run's trace lifelines: stage sums must
    // reconcile with the measured end-to-end totals.
    let events = kdtelem::current().drain_trace_events();
    let report = kdtelem::critpath::analyze(&events);
    match report.dominant() {
        Some((stage, ns)) => println!(
            "critical path: dominant stage {} ({} ns across {} lifelines)",
            stage.name(),
            ns,
            report.lifelines.len()
        ),
        None => println!("critical path: no lifelines recorded"),
    }
    if !report.ok() {
        eprintln!("quickstart: critical-path checker errors: {:?}", report.errors);
        std::process::exit(1);
    }
    if durable {
        std::fs::remove_dir_all(&dir).ok();
    }
}
