//! Virtual-time time-series: a sampler task driven by the sim timer wheel
//! periodically snapshots every registered counter/gauge/histogram into
//! bounded per-metric rings.
//!
//! Counters become `(value, delta)` points (delta = increase since the last
//! sample → windowed rates), gauges `(value, peak)`, histograms exact
//! per-interval distributions via [`HistSnapshot::delta_since`] (p50/p99 of
//! just that interval's samples). Rings are bounded: once full the oldest
//! point is dropped and counted, so month-long soaks stay O(capacity).
//!
//! The sampler is a detached task; it records no trace events and never
//! delays the workload's completion, so deterministic-replay digests (which
//! fold trace ids, timestamps, and final virtual time) are unaffected by
//! sampling being on or off.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

use crate::hist::HistSnapshot;
use crate::registry::Registry;
use crate::report::{json_field_str, json_field_u64, json_str};

/// Sampler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SeriesOptions {
    /// Virtual-time sampling period (ticks land on a fixed grid).
    pub interval: Duration,
    /// Points retained per metric before the oldest are dropped.
    pub capacity: usize,
}

impl Default for SeriesOptions {
    fn default() -> Self {
        SeriesOptions {
            interval: Duration::from_millis(1),
            capacity: 4096,
        }
    }
}

/// One counter sample: the running total and the increase this interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterPoint {
    pub ts_ns: u64,
    pub value: u64,
    pub delta: u64,
}

/// One gauge sample: current level and all-time peak at sample time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugePoint {
    pub ts_ns: u64,
    pub value: u64,
    pub peak: u64,
}

/// One histogram sample: the distribution of *this interval's* recordings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistPoint {
    pub ts_ns: u64,
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p99: u64,
}

type Key = (&'static str, &'static str);

#[derive(Debug)]
struct Ring<P> {
    points: VecDeque<P>,
}

impl<P> Ring<P> {
    fn new() -> Self {
        Ring {
            points: VecDeque::new(),
        }
    }

    fn push(&mut self, cap: usize, p: P) -> bool {
        let dropped = self.points.len() >= cap.max(1);
        if dropped {
            self.points.pop_front();
        }
        self.points.push_back(p);
        dropped
    }
}

struct CounterSlot {
    key: Key,
    /// Aggregated value at the previous sample (delta baseline).
    last: u64,
    /// Per-tick accumulator: same-named cells sum here before the point is
    /// cut. Zeroed at the start of every sample.
    acc: u64,
    ring: Ring<CounterPoint>,
}

struct GaugeSlot {
    key: Key,
    acc_value: u64,
    acc_peak: u64,
    ring: Ring<GaugePoint>,
}

struct HistSlot {
    key: Key,
    /// Aggregated buckets at the previous sample.
    last: HistSnapshot,
    /// Reusable per-tick scratch: cleared, re-accumulated from the live
    /// cells, then swapped into `last`. No allocation in steady state.
    cur: HistSnapshot,
    /// Aggregated recording count seen this tick (phase 1); bucket work is
    /// skipped entirely when it matches `last` — quiet histograms cost two
    /// integer reads per tick, not a 976-bucket merge.
    pending_count: u64,
    active: bool,
    ring: Ring<HistPoint>,
}

struct SeriesInner {
    opts: SeriesOptions,
    samples: u64,
    dropped: u64,
    stopped: bool,
    /// `Registry::id` the index maps below were built against; a different
    /// registry invalidates them (cell order is per-registry).
    registry_id: Option<usize>,
    /// Registry cell index → slot index. Registry vecs are append-only, so
    /// these stay valid and turn per-cell keyed searches into array reads.
    counter_map: Vec<usize>,
    gauge_map: Vec<usize>,
    hist_map: Vec<usize>,
    counters: Vec<CounterSlot>,
    gauges: Vec<GaugeSlot>,
    hists: Vec<HistSlot>,
}

/// Handle to a recording time-series; cheap to clone. Create one directly
/// for manual sampling ([`SeriesLog::sample_now`]) or let [`Sampler::start`]
/// drive it from the timer wheel.
#[derive(Clone)]
pub struct SeriesLog {
    inner: Rc<RefCell<SeriesInner>>,
}

impl SeriesLog {
    pub fn new(opts: SeriesOptions) -> SeriesLog {
        SeriesLog {
            inner: Rc::new(RefCell::new(SeriesInner {
                opts,
                samples: 0,
                dropped: 0,
                stopped: false,
                registry_id: None,
                counter_map: Vec::new(),
                gauge_map: Vec::new(),
                hist_map: Vec::new(),
                counters: Vec::new(),
                gauges: Vec::new(),
                hists: Vec::new(),
            })),
        }
    }

    /// Takes one sample of every instrument in `registry` at the current
    /// virtual time (timestamp 0 outside a runtime — tests sampling by hand).
    ///
    /// This is the per-tick hot path: it folds the live cells into reusable
    /// per-key slots and allocates only on first sight of an instrument
    /// (ring growth aside), so continuous sampling costs arithmetic, not
    /// heap churn.
    pub fn sample_now(&self, registry: &Registry) {
        let ts_ns = sim::try_now().map(|t| t.as_nanos()).unwrap_or(0);
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let cap = inner.opts.capacity;
        inner.samples += 1;
        let mut dropped = 0u64;

        // Cell order is per-registry; a swap invalidates the index caches.
        if inner.registry_id != Some(registry.id()) {
            inner.registry_id = Some(registry.id());
            inner.counter_map.clear();
            inner.gauge_map.clear();
            inner.hist_map.clear();
        }

        for s in inner.counters.iter_mut() {
            s.acc = 0;
        }
        {
            let counters = &mut inner.counters;
            let map = &mut inner.counter_map;
            let mut i = 0usize;
            registry.fold_counters(|key, v| {
                if i >= map.len() {
                    // New cell since last tick: find or create its slot once.
                    let slot = match counters.iter().position(|s| s.key == key) {
                        Some(p) => p,
                        None => {
                            counters.push(CounterSlot {
                                key,
                                last: 0,
                                acc: 0,
                                ring: Ring::new(),
                            });
                            counters.len() - 1
                        }
                    };
                    map.push(slot);
                }
                counters[map[i]].acc += v;
                i += 1;
            });
        }
        for s in inner.counters.iter_mut() {
            let delta = s.acc.saturating_sub(s.last);
            s.last = s.acc;
            if s.ring.push(
                cap,
                CounterPoint {
                    ts_ns,
                    value: s.acc,
                    delta,
                },
            ) {
                dropped += 1;
            }
        }

        for s in inner.gauges.iter_mut() {
            s.acc_value = 0;
            s.acc_peak = 0;
        }
        {
            let gauges = &mut inner.gauges;
            let map = &mut inner.gauge_map;
            let mut i = 0usize;
            registry.fold_gauges(|key, value, peak| {
                if i >= map.len() {
                    let slot = match gauges.iter().position(|s| s.key == key) {
                        Some(p) => p,
                        None => {
                            gauges.push(GaugeSlot {
                                key,
                                acc_value: 0,
                                acc_peak: 0,
                                ring: Ring::new(),
                            });
                            gauges.len() - 1
                        }
                    };
                    map.push(slot);
                }
                let s = &mut gauges[map[i]];
                s.acc_value += value;
                s.acc_peak = s.acc_peak.max(peak);
                i += 1;
            });
        }
        for s in inner.gauges.iter_mut() {
            if s.ring.push(
                cap,
                GaugePoint {
                    ts_ns,
                    value: s.acc_value,
                    peak: s.acc_peak,
                },
            ) {
                dropped += 1;
            }
        }

        // Histograms in three passes. Phase 1: aggregate recording counts
        // (two integer reads per cell). A slot whose count is unchanged had
        // no recordings this interval — its point is empty by construction
        // and the bucket merge is skipped.
        for s in inner.hists.iter_mut() {
            s.pending_count = 0;
        }
        {
            let hists = &mut inner.hists;
            let map = &mut inner.hist_map;
            let mut i = 0usize;
            registry.fold_histograms(|key, h| {
                if i >= map.len() {
                    let slot = match hists.iter().position(|s| s.key == key) {
                        Some(p) => p,
                        None => {
                            hists.push(HistSlot {
                                key,
                                last: HistSnapshot::empty(),
                                cur: HistSnapshot::empty(),
                                pending_count: 0,
                                active: false,
                                ring: Ring::new(),
                            });
                            hists.len() - 1
                        }
                    };
                    map.push(slot);
                }
                hists[map[i]].pending_count += h.count();
                i += 1;
            });
        }
        for s in inner.hists.iter_mut() {
            s.active = s.pending_count != s.last.count();
            if s.active {
                s.cur.clear();
            }
        }
        // Phase 2: merge buckets for active slots only.
        {
            let hists = &mut inner.hists;
            let map = &inner.hist_map;
            let mut i = 0usize;
            registry.fold_histograms(|_, h| {
                let s = &mut hists[map[i]];
                if s.active {
                    h.merge_into(&mut s.cur);
                }
                i += 1;
            });
        }
        // Phase 3: cut the interval point and roll `cur` into `last`.
        for s in inner.hists.iter_mut() {
            let (count, sum, p50, p99) = if s.active {
                (
                    s.cur.count().saturating_sub(s.last.count()),
                    s.cur.sum().saturating_sub(s.last.sum()),
                    s.cur.delta_quantile(&s.last, 0.50),
                    s.cur.delta_quantile(&s.last, 0.99),
                )
            } else {
                (0, 0, 0, 0)
            };
            if s.ring.push(
                cap,
                HistPoint {
                    ts_ns,
                    count,
                    sum,
                    p50,
                    p99,
                },
            ) {
                dropped += 1;
            }
            if s.active {
                std::mem::swap(&mut s.last, &mut s.cur);
            }
        }

        inner.dropped += dropped;
    }

    /// Stops the driving sampler task at its next tick.
    pub fn stop(&self) {
        self.inner.borrow_mut().stopped = true;
    }

    pub fn is_stopped(&self) -> bool {
        self.inner.borrow().stopped
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.inner.borrow().samples
    }

    /// Points lost to ring bounds across all metrics.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Owned copy of everything recorded so far, sorted by key for stable
    /// output (slots accumulate in first-seen order).
    pub fn dump(&self) -> SeriesDump {
        let inner = self.inner.borrow();
        let mut counters: Vec<CounterSeries> = inner
            .counters
            .iter()
            .map(|s| CounterSeries {
                component: s.key.0.to_string(),
                name: s.key.1.to_string(),
                points: s.ring.points.iter().copied().collect(),
            })
            .collect();
        let mut gauges: Vec<GaugeSeries> = inner
            .gauges
            .iter()
            .map(|s| GaugeSeries {
                component: s.key.0.to_string(),
                name: s.key.1.to_string(),
                points: s.ring.points.iter().copied().collect(),
            })
            .collect();
        let mut histograms: Vec<HistSeries> = inner
            .hists
            .iter()
            .map(|s| HistSeries {
                component: s.key.0.to_string(),
                name: s.key.1.to_string(),
                points: s.ring.points.iter().copied().collect(),
            })
            .collect();
        counters.sort_by(|a, b| (&a.component, &a.name).cmp(&(&b.component, &b.name)));
        gauges.sort_by(|a, b| (&a.component, &a.name).cmp(&(&b.component, &b.name)));
        histograms.sort_by(|a, b| (&a.component, &a.name).cmp(&(&b.component, &b.name)));
        SeriesDump {
            interval_ns: inner.opts.interval.as_nanos() as u64,
            samples: inner.samples,
            dropped: inner.dropped,
            counters,
            gauges,
            histograms,
        }
    }
}

/// Spawns the sampling task. Must be called inside `block_on`.
pub struct Sampler;

impl Sampler {
    /// Starts a detached sampler over `registry` and returns the log it
    /// fills. The task exits at the first tick after [`SeriesLog::stop`]
    /// (or silently when the runtime ends).
    pub fn start(registry: &Registry, opts: SeriesOptions) -> SeriesLog {
        let log = SeriesLog::new(opts);
        let task_log = log.clone();
        let registry = registry.clone();
        sim::spawn_detached(async move {
            let mut ticker = sim::time::interval(opts.interval);
            loop {
                ticker.tick().await;
                if task_log.is_stopped() {
                    break;
                }
                task_log.sample_now(&registry);
            }
        });
        log
    }
}

/// One counter's recorded points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSeries {
    pub component: String,
    pub name: String,
    pub points: Vec<CounterPoint>,
}

impl CounterSeries {
    /// Per-interval increases, oldest first.
    pub fn deltas(&self) -> Vec<u64> {
        self.points.iter().map(|p| p.delta).collect()
    }
}

/// One gauge's recorded points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSeries {
    pub component: String,
    pub name: String,
    pub points: Vec<GaugePoint>,
}

/// One histogram's recorded interval points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSeries {
    pub component: String,
    pub name: String,
    pub points: Vec<HistPoint>,
}

/// An owned, exportable time-series dump (the wire/file format of a
/// [`SeriesLog`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesDump {
    pub interval_ns: u64,
    pub samples: u64,
    pub dropped: u64,
    pub counters: Vec<CounterSeries>,
    pub gauges: Vec<GaugeSeries>,
    pub histograms: Vec<HistSeries>,
}

impl SeriesDump {
    pub fn counter(&self, component: &str, name: &str) -> Option<&CounterSeries> {
        self.counters
            .iter()
            .find(|s| s.component == component && s.name == name)
    }

    pub fn gauge(&self, component: &str, name: &str) -> Option<&GaugeSeries> {
        self.gauges
            .iter()
            .find(|s| s.component == component && s.name == name)
    }

    pub fn histogram(&self, component: &str, name: &str) -> Option<&HistSeries> {
        self.histograms
            .iter()
            .find(|s| s.component == component && s.name == name)
    }

    /// Serialises as JSON lines: one `series` header object, then one object
    /// per point. Safe to `>` into `results/` and parse with any JSON reader.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"kind\":\"series\",\"interval_ns\":{},\"samples\":{},\"dropped\":{}}}\n",
            self.interval_ns, self.samples, self.dropped
        ));
        for s in &self.counters {
            for p in &s.points {
                out.push_str(&format!(
                    "{{\"kind\":\"cpoint\",\"component\":{},\"name\":{},\"ts_ns\":{},\"value\":{},\"delta\":{}}}\n",
                    json_str(&s.component),
                    json_str(&s.name),
                    p.ts_ns,
                    p.value,
                    p.delta
                ));
            }
        }
        for s in &self.gauges {
            for p in &s.points {
                out.push_str(&format!(
                    "{{\"kind\":\"gpoint\",\"component\":{},\"name\":{},\"ts_ns\":{},\"value\":{},\"peak\":{}}}\n",
                    json_str(&s.component),
                    json_str(&s.name),
                    p.ts_ns,
                    p.value,
                    p.peak
                ));
            }
        }
        for s in &self.histograms {
            for p in &s.points {
                out.push_str(&format!(
                    "{{\"kind\":\"hpoint\",\"component\":{},\"name\":{},\"ts_ns\":{},\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}}}\n",
                    json_str(&s.component),
                    json_str(&s.name),
                    p.ts_ns,
                    p.count,
                    p.sum,
                    p.p50,
                    p.p99
                ));
            }
        }
        out
    }

    /// Parses the output of [`to_json_lines`]. Series keep first-seen order.
    pub fn from_json_lines(text: &str) -> Option<SeriesDump> {
        let mut dump = SeriesDump::default();
        let mut saw_header = false;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let kind = json_field_str(line, "kind")?;
            match kind.as_str() {
                "series" => {
                    saw_header = true;
                    dump.interval_ns = json_field_u64(line, "interval_ns")?;
                    dump.samples = json_field_u64(line, "samples")?;
                    dump.dropped = json_field_u64(line, "dropped")?;
                }
                "cpoint" => {
                    let component = json_field_str(line, "component")?;
                    let name = json_field_str(line, "name")?;
                    let point = CounterPoint {
                        ts_ns: json_field_u64(line, "ts_ns")?,
                        value: json_field_u64(line, "value")?,
                        delta: json_field_u64(line, "delta")?,
                    };
                    match dump
                        .counters
                        .iter_mut()
                        .find(|s| s.component == component && s.name == name)
                    {
                        Some(s) => s.points.push(point),
                        None => dump.counters.push(CounterSeries {
                            component,
                            name,
                            points: vec![point],
                        }),
                    }
                }
                "gpoint" => {
                    let component = json_field_str(line, "component")?;
                    let name = json_field_str(line, "name")?;
                    let point = GaugePoint {
                        ts_ns: json_field_u64(line, "ts_ns")?,
                        value: json_field_u64(line, "value")?,
                        peak: json_field_u64(line, "peak")?,
                    };
                    match dump
                        .gauges
                        .iter_mut()
                        .find(|s| s.component == component && s.name == name)
                    {
                        Some(s) => s.points.push(point),
                        None => dump.gauges.push(GaugeSeries {
                            component,
                            name,
                            points: vec![point],
                        }),
                    }
                }
                "hpoint" => {
                    let component = json_field_str(line, "component")?;
                    let name = json_field_str(line, "name")?;
                    let point = HistPoint {
                        ts_ns: json_field_u64(line, "ts_ns")?,
                        count: json_field_u64(line, "count")?,
                        sum: json_field_u64(line, "sum")?,
                        p50: json_field_u64(line, "p50")?,
                        p99: json_field_u64(line, "p99")?,
                    };
                    match dump
                        .histograms
                        .iter_mut()
                        .find(|s| s.component == component && s.name == name)
                    {
                        Some(s) => s.points.push(point),
                        None => dump.histograms.push(HistSeries {
                            component,
                            name,
                            points: vec![point],
                        }),
                    }
                }
                _ => return None,
            }
        }
        if saw_header {
            Some(dump)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_sampling_records_deltas_and_interval_quantiles() {
        let r = Registry::new();
        let c = r.counter("kdbroker", "rdma.commits");
        let g = r.gauge("rnic", "cq.depth");
        let h = r.histogram("kdclient", "produce.e2e_ns");
        let log = SeriesLog::new(SeriesOptions::default());

        c.add(10);
        g.set(3);
        h.record(1_000);
        log.sample_now(&r);
        // Empty interval: nothing recorded between samples.
        log.sample_now(&r);
        c.add(5);
        g.set(1);
        h.record(9_000);
        h.record(9_000);
        log.sample_now(&r);

        let dump = log.dump();
        assert_eq!(dump.samples, 3);
        let cs = dump.counter("kdbroker", "rdma.commits").unwrap();
        assert_eq!(cs.deltas(), vec![10, 0, 5]);
        assert_eq!(cs.points[2].value, 15);
        let gs = dump.gauge("rnic", "cq.depth").unwrap();
        assert_eq!(
            gs.points.iter().map(|p| (p.value, p.peak)).collect::<Vec<_>>(),
            vec![(3, 3), (3, 3), (1, 3)]
        );
        let hs = dump.histogram("kdclient", "produce.e2e_ns").unwrap();
        assert_eq!(hs.points[0].count, 1);
        assert_eq!(hs.points[1].count, 0);
        assert_eq!(hs.points[1].p99, 0, "empty interval has empty quantiles");
        assert_eq!(hs.points[2].count, 2);
        // Interval p50 reflects only this interval's samples (9_000 bucket),
        // not the full-run distribution that includes the 1_000 sample.
        assert!(hs.points[2].p50 >= 9_000, "p50={}", hs.points[2].p50);
    }

    #[test]
    fn rings_are_bounded_and_count_drops() {
        let r = Registry::new();
        let c = r.counter("a", "b");
        let log = SeriesLog::new(SeriesOptions {
            interval: Duration::from_millis(1),
            capacity: 4,
        });
        for _ in 0..10 {
            c.inc();
            log.sample_now(&r);
        }
        let dump = log.dump();
        let cs = dump.counter("a", "b").unwrap();
        assert_eq!(cs.points.len(), 4);
        assert_eq!(dump.dropped, 6);
        // The retained points are the newest.
        assert_eq!(cs.points.last().unwrap().value, 10);
    }

    #[test]
    fn sampler_task_runs_on_the_wheel_grid() {
        let r = Registry::new();
        let c = r.counter("kdbroker", "produce.requests");
        let rt = sim::Runtime::new();
        let log = rt.block_on(async move {
            let log = Sampler::start(
                &r,
                SeriesOptions {
                    interval: Duration::from_micros(100),
                    capacity: 64,
                },
            );
            for _ in 0..5 {
                c.add(2);
                sim::time::sleep(Duration::from_micros(100)).await;
            }
            log.stop();
            sim::time::sleep(Duration::from_micros(300)).await;
            log
        });
        let dump = log.dump();
        // Ticks at 100..400us sample; the main task (registered first on the
        // wheel) wins the 500us tie and stops the sampler before its tick.
        assert_eq!(dump.samples, 4, "stop really stops the sampler");
        let cs = dump.counter("kdbroker", "produce.requests").unwrap();
        // Timestamps land on the fixed 100us grid.
        assert!(cs.points.iter().all(|p| p.ts_ns % 100_000 == 0));
        assert_eq!(cs.points.last().unwrap().value, 10);
    }

    #[test]
    fn dump_round_trips_json_lines() {
        let r = Registry::new();
        let c = r.counter("kdbroker", "rdma.commits");
        let g = r.gauge("netsim", "link.backlog_ns");
        let h = r.histogram("kdbroker", "rdma.commit_ns");
        let log = SeriesLog::new(SeriesOptions::default());
        for i in 0..3u64 {
            c.add(i + 1);
            g.set(i * 10);
            h.record(1_000 * (i + 1));
            log.sample_now(&r);
        }
        let dump = log.dump();
        let json = dump.to_json_lines();
        for line in json.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let back = SeriesDump::from_json_lines(&json).expect("parse");
        assert_eq!(back, dump);
        // Headerless or garbage input is rejected.
        assert!(SeriesDump::from_json_lines("{\"kind\":\"wat\"}").is_none());
        assert!(SeriesDump::from_json_lines("").is_none());
    }
}
