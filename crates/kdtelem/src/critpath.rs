//! Critical-path attribution: folds trace lifelines into per-stage latency.
//!
//! Every committing lifeline (a trace containing a `Commit` event) is sorted
//! by timestamp and each inter-event gap is attributed to the stage *ending*
//! at the later event: the time before a `WqePosted` is client staging, the
//! time before a `PacketDelivered` is link serialization/propagation, the
//! time before a `Commit` is broker CQ wait + commit work, and so on. A
//! `PacketEnqueued` gap is split using the event's own `queue_ns` into link
//! queueing versus doorbell/send-path time.
//!
//! Because gaps partition the lifeline, the per-stage sums reconcile with
//! the end-to-end latency *exactly* (`Σ stage_ns == last.ts - first.ts`);
//! the analyzer checks this invariant itself and reports violations in
//! [`CritPathReport::errors`]. The report names the dominant stage and
//! exports folded stacks for flamegraph tooling.

use std::collections::BTreeMap;

use crate::trace::{EventKind, TraceEvent};

/// Datapath stages latency is attributed to, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Client work before the WQE hits the send queue.
    ClientStaging,
    /// Doorbell/send path: from posting to the message reaching a link.
    Doorbell,
    /// Waiting behind earlier reservations on a link.
    LinkQueue,
    /// Serialization + propagation across a link.
    LinkPropagation,
    /// Delivery to CQE: NIC service + completion-queue wait.
    NicService,
    /// From the last causally-preceding event to the durable commit:
    /// broker CQ drain + commit lock + log append.
    Commit,
    /// Commit to replication ack (RF>1 push replication).
    Replication,
    /// Serving a fetch.
    Fetch,
    /// Gap ending in a CPU copy (TCP path's socket-receive / log-append).
    CpuCopy,
    /// Final completion back to the client's span end (ack delivery).
    Ack,
    /// Span bookkeeping and scheduling gaps not ending in a datapath event.
    Sched,
}

/// All stages, in display/pipeline order.
pub const STAGES: [Stage; 11] = [
    Stage::ClientStaging,
    Stage::Doorbell,
    Stage::LinkQueue,
    Stage::LinkPropagation,
    Stage::NicService,
    Stage::Commit,
    Stage::Replication,
    Stage::Fetch,
    Stage::CpuCopy,
    Stage::Ack,
    Stage::Sched,
];

pub const NUM_STAGES: usize = STAGES.len();

impl Stage {
    pub fn name(self) -> &'static str {
        match self {
            Stage::ClientStaging => "client_staging",
            Stage::Doorbell => "doorbell",
            Stage::LinkQueue => "link_queue",
            Stage::LinkPropagation => "link_propagation",
            Stage::NicService => "nic_service",
            Stage::Commit => "commit",
            Stage::Replication => "replication",
            Stage::Fetch => "fetch",
            Stage::CpuCopy => "cpu_copy",
            Stage::Ack => "ack",
            Stage::Sched => "sched",
        }
    }

    fn index(self) -> usize {
        STAGES.iter().position(|&s| s == self).unwrap()
    }
}

/// Per-lifeline attribution: one committing trace's total latency split
/// across stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lifeline {
    pub trace_id: u64,
    /// First-to-last event time; equals the root span duration when the
    /// lifeline is bracketed by `SpanBegin`/`SpanEnd`.
    pub total_ns: u64,
    pub stage_ns: [u64; NUM_STAGES],
    /// CPU copies on a broker site (`CpuCopy` events with a `broker.` site).
    pub broker_copies: u64,
    pub commits: u64,
}

impl Lifeline {
    pub fn stage(&self, s: Stage) -> u64 {
        self.stage_ns[s.index()]
    }
}

/// The analyzer's output: per-lifeline splits, workload-wide stage totals,
/// and any reconciliation errors (there should be none).
#[derive(Debug, Clone, Default)]
pub struct CritPathReport {
    pub lifelines: Vec<Lifeline>,
    pub stage_totals: [u64; NUM_STAGES],
    /// Sum of every lifeline's `total_ns`.
    pub total_ns: u64,
    pub errors: Vec<String>,
}

impl CritPathReport {
    pub fn stage_total(&self, s: Stage) -> u64 {
        self.stage_totals[s.index()]
    }

    /// The stage carrying the most total latency across the workload.
    pub fn dominant(&self) -> Option<(Stage, u64)> {
        STAGES
            .iter()
            .map(|&s| (s, self.stage_total(s)))
            .max_by_key(|&(_, ns)| ns)
            .filter(|&(_, ns)| ns > 0)
    }

    /// Mean end-to-end latency per committing lifeline, in nanoseconds.
    pub fn mean_total_ns(&self) -> f64 {
        if self.lifelines.is_empty() {
            0.0
        } else {
            self.total_ns as f64 / self.lifelines.len() as f64
        }
    }

    /// Folded-stack lines (`workload;stage total_ns`) for flamegraph
    /// tooling: one line per stage with nonzero total.
    pub fn folded(&self, workload: &str) -> String {
        let mut out = String::new();
        for &s in &STAGES {
            let ns = self.stage_total(s);
            if ns > 0 {
                out.push_str(&format!("{workload};{} {ns}\n", s.name()));
            }
        }
        out
    }

    /// Aligned per-stage summary table (totals, share, per-record mean).
    pub fn to_table(&self) -> String {
        let n = self.lifelines.len().max(1) as f64;
        let mut out = format!(
            "critical path: {} committing lifelines, {:.2}us mean e2e\n",
            self.lifelines.len(),
            self.mean_total_ns() / 1_000.0
        );
        out.push_str(&format!(
            "{:<18} {:>12} {:>7} {:>12}\n",
            "stage", "total_us", "share", "mean_us"
        ));
        for &s in &STAGES {
            let ns = self.stage_total(s);
            if ns == 0 {
                continue;
            }
            let share = if self.total_ns == 0 {
                0.0
            } else {
                ns as f64 / self.total_ns as f64 * 100.0
            };
            out.push_str(&format!(
                "{:<18} {:>12.2} {:>6.1}% {:>12.3}\n",
                s.name(),
                ns as f64 / 1_000.0,
                share,
                ns as f64 / n / 1_000.0
            ));
        }
        if let Some((s, _)) = self.dominant() {
            out.push_str(&format!("dominant stage: {}\n", s.name()));
        }
        for e in &self.errors {
            out.push_str(&format!("ERROR: {e}\n"));
        }
        out
    }

    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Stage of the gap *ending* at this event.
fn stage_of(kind: &EventKind, is_last: bool) -> Stage {
    match kind {
        EventKind::WqePosted { .. } => Stage::ClientStaging,
        EventKind::PacketEnqueued { .. } => Stage::Doorbell, // split vs queue_ns below
        EventKind::PacketDelivered { .. } => Stage::LinkPropagation,
        EventKind::Completion { .. } => Stage::NicService,
        EventKind::Commit { .. } => Stage::Commit,
        EventKind::ReplAck { .. } => Stage::Replication,
        EventKind::FetchServed { .. } => Stage::Fetch,
        EventKind::CpuCopy { .. } => Stage::CpuCopy,
        EventKind::SpanEnd { .. } if is_last => Stage::Ack,
        EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. } => Stage::Sched,
    }
}

/// Folds a drained trace-event log into per-stage attribution over every
/// committing lifeline. Non-committing lifelines (pure fetches, control
/// traffic) are ignored.
pub fn analyze(events: &[TraceEvent]) -> CritPathReport {
    // Group by trace id, preserving drain order within a lifeline.
    let mut by_trace: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        by_trace.entry(e.trace_id).or_default().push(e);
    }

    let mut report = CritPathReport::default();
    for (trace_id, mut evs) in by_trace {
        let commits = evs
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Commit { .. }))
            .count() as u64;
        if commits == 0 {
            continue;
        }
        // Events carry explicit timestamps that can be recorded out of order
        // (link reservations are computed at post time); sort stable so
        // same-timestamp events keep their causal drain order.
        evs.sort_by_key(|e| e.ts_ns);

        let first = evs.first().unwrap().ts_ns;
        let last = evs.last().unwrap().ts_ns;
        let total_ns = last.saturating_sub(first);
        let mut stage_ns = [0u64; NUM_STAGES];
        let mut broker_copies = 0u64;
        for (i, pair) in evs.windows(2).enumerate() {
            let (a, b) = (pair[0], pair[1]);
            let gap = b.ts_ns.saturating_sub(a.ts_ns);
            let is_last = i + 2 == evs.len();
            match b.kind {
                EventKind::PacketEnqueued { queue_ns, .. } => {
                    let queued = queue_ns.min(gap);
                    stage_ns[Stage::LinkQueue.index()] += queued;
                    stage_ns[Stage::Doorbell.index()] += gap - queued;
                }
                ref kind => stage_ns[stage_of(kind, is_last).index()] += gap,
            }
            if let EventKind::CpuCopy { site, .. } = b.kind {
                if site.starts_with("broker") {
                    broker_copies += 1;
                }
            }
        }
        // First event may itself be a broker copy (no preceding gap).
        if let EventKind::CpuCopy { site, .. } = evs[0].kind {
            if site.starts_with("broker") {
                broker_copies += 1;
            }
        }

        let sum: u64 = stage_ns.iter().sum();
        if sum != total_ns {
            report.errors.push(format!(
                "lifeline {trace_id}: stage sum {sum} != end-to-end {total_ns}"
            ));
        }
        for (acc, ns) in report.stage_totals.iter_mut().zip(&stage_ns) {
            *acc += ns;
        }
        report.total_ns += total_ns;
        report.lifelines.push(Lifeline {
            trace_id,
            total_ns,
            stage_ns,
            broker_copies,
            commits,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCtx;

    fn ev(trace_id: u64, ts_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            trace_id,
            span_id: trace_id,
            ts_ns,
            kind,
        }
    }

    #[test]
    fn rdma_lifeline_partitions_exactly() {
        // SpanBegin(0) → WqePosted(100) → PacketEnqueued(150, 20 queued) →
        // PacketDelivered(400) → Completion(450) → Commit(500) → SpanEnd(600)
        let events = vec![
            ev(1, 0, EventKind::SpanBegin { name: "client.produce", parent: 0 }),
            ev(1, 100, EventKind::WqePosted { qpn: 1, ticket: 1 }),
            ev(
                1,
                150,
                EventKind::PacketEnqueued { node: 0, egress: true, bytes: 64, queue_ns: 20 },
            ),
            ev(1, 400, EventKind::PacketDelivered { node: 1, egress: false, bytes: 64 }),
            ev(1, 450, EventKind::Completion { qpn: 1, ticket: 1, opcode: "write", ok: true }),
            ev(1, 500, EventKind::Commit { stream: 9, base_offset: 0, next_offset: 1 }),
            ev(1, 600, EventKind::SpanEnd { name: "client.produce" }),
        ];
        let r = analyze(&events);
        assert!(r.ok(), "{:?}", r.errors);
        assert_eq!(r.lifelines.len(), 1);
        let l = &r.lifelines[0];
        assert_eq!(l.total_ns, 600);
        assert_eq!(l.stage(Stage::ClientStaging), 100);
        assert_eq!(l.stage(Stage::LinkQueue), 20);
        assert_eq!(l.stage(Stage::Doorbell), 30);
        assert_eq!(l.stage(Stage::LinkPropagation), 250);
        assert_eq!(l.stage(Stage::NicService), 50);
        assert_eq!(l.stage(Stage::Commit), 50);
        assert_eq!(l.stage(Stage::Ack), 100);
        assert_eq!(l.stage_ns.iter().sum::<u64>(), l.total_ns);
        assert_eq!(l.broker_copies, 0);
        assert_eq!(r.dominant().unwrap().0, Stage::LinkPropagation);
    }

    #[test]
    fn tcp_copies_are_attributed() {
        let events = vec![
            ev(2, 0, EventKind::SpanBegin { name: "client.produce", parent: 0 }),
            ev(2, 50, EventKind::CpuCopy { site: "broker.net_recv", bytes: 64 }),
            ev(2, 80, EventKind::CpuCopy { site: "broker.log_append", bytes: 64 }),
            ev(2, 120, EventKind::Commit { stream: 9, base_offset: 0, next_offset: 1 }),
            ev(2, 200, EventKind::SpanEnd { name: "client.produce" }),
        ];
        let r = analyze(&events);
        assert!(r.ok(), "{:?}", r.errors);
        let l = &r.lifelines[0];
        assert_eq!(l.broker_copies, 2);
        assert_eq!(l.stage(Stage::CpuCopy), 80);
        assert_eq!(l.stage(Stage::Commit), 40);
        assert_eq!(l.stage(Stage::Ack), 80);
    }

    #[test]
    fn non_committing_lifelines_are_ignored() {
        let events = vec![
            ev(3, 0, EventKind::SpanBegin { name: "client.fetch", parent: 0 }),
            ev(3, 100, EventKind::SpanEnd { name: "client.fetch" }),
        ];
        let r = analyze(&events);
        assert!(r.lifelines.is_empty());
        assert_eq!(r.dominant(), None);
        assert_eq!(r.mean_total_ns(), 0.0);
    }

    #[test]
    fn out_of_order_timestamps_are_sorted_before_attribution() {
        // Link reservation recorded "in the future" before the commit event
        // lands in the ring.
        let events = vec![
            ev(4, 0, EventKind::SpanBegin { name: "p", parent: 0 }),
            ev(
                4,
                300,
                EventKind::PacketDelivered { node: 1, egress: false, bytes: 8 },
            ),
            ev(
                4,
                100,
                EventKind::PacketEnqueued { node: 0, egress: true, bytes: 8, queue_ns: 0 },
            ),
            ev(4, 400, EventKind::Commit { stream: 1, base_offset: 0, next_offset: 1 }),
        ];
        let r = analyze(&events);
        assert!(r.ok(), "{:?}", r.errors);
        let l = &r.lifelines[0];
        assert_eq!(l.stage(Stage::Doorbell), 100);
        assert_eq!(l.stage(Stage::LinkPropagation), 200);
        assert_eq!(l.stage(Stage::Commit), 100);
    }

    #[test]
    fn folded_and_table_render() {
        let ctx = TraceCtx { trace_id: 5, span_id: 5 };
        let events = vec![
            ev(ctx.trace_id, 0, EventKind::SpanBegin { name: "p", parent: 0 }),
            ev(ctx.trace_id, 70, EventKind::Commit { stream: 1, base_offset: 0, next_offset: 1 }),
            ev(ctx.trace_id, 100, EventKind::SpanEnd { name: "p" }),
        ];
        let r = analyze(&events);
        let folded = r.folded("produce");
        assert!(folded.contains("produce;commit 70"));
        assert!(folded.contains("produce;ack 30"));
        let table = r.to_table();
        assert!(table.contains("dominant stage: commit"));
        assert!(table.contains("share"));
    }
}
