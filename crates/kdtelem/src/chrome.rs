//! Chrome trace-event JSON export — hand-written, zero-dep, loadable in
//! Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//!
//! Mapping:
//! * each lifeline (`trace_id`) becomes a thread (`tid`) under one process,
//!   so Perfetto draws one row per record lifeline;
//! * `SpanBegin`/`SpanEnd` become async begin/end pairs (`ph`: `"b"`/`"e"`)
//!   keyed by the span id, which nest correctly even when a span crosses
//!   simulated machines;
//! * every other event becomes a thread-scoped instant (`ph`: `"i"`) whose
//!   `args` carry the typed payload (qpn, ticket, offsets, bytes).
//!
//! Timestamps are microseconds (the trace-event unit) with nanosecond
//! fractions preserved as decimals.
//!
//! [`parse_chrome_json`] is the matching in-tree reader used by tests to
//! prove the emitted JSON round-trips; it is a minimal brace-matching
//! scanner, not a general JSON parser.

use crate::report::{json_field_f64, json_field_str, json_field_u64, json_str};
use crate::trace::{EventKind, TraceEvent};

/// Virtual pid under which all simulated nodes are grouped.
const PID: u64 = 1;

fn ts_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

fn push_args(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::SpanBegin { parent, .. } => {
            out.push_str(&format!("{{\"parent\":{parent}}}"));
        }
        EventKind::SpanEnd { .. } => out.push_str("{}"),
        EventKind::WqePosted { qpn, ticket } => {
            out.push_str(&format!("{{\"qpn\":{qpn},\"ticket\":{ticket}}}"));
        }
        EventKind::PacketEnqueued {
            node,
            egress,
            bytes,
            queue_ns,
        } => {
            out.push_str(&format!(
                "{{\"node\":{node},\"egress\":{egress},\"bytes\":{bytes},\"queue_ns\":{queue_ns}}}"
            ));
        }
        EventKind::PacketDelivered {
            node,
            egress,
            bytes,
        } => {
            out.push_str(&format!(
                "{{\"node\":{node},\"egress\":{egress},\"bytes\":{bytes}}}"
            ));
        }
        EventKind::Completion {
            qpn,
            ticket,
            opcode,
            ok,
        } => {
            out.push_str(&format!(
                "{{\"qpn\":{qpn},\"ticket\":{ticket},\"opcode\":{},\"ok\":{ok}}}",
                json_str(opcode)
            ));
        }
        EventKind::CpuCopy { site, bytes } => {
            out.push_str(&format!(
                "{{\"site\":{},\"bytes\":{bytes}}}",
                json_str(site)
            ));
        }
        EventKind::Commit {
            stream,
            base_offset,
            next_offset,
        } => {
            out.push_str(&format!(
                "{{\"stream\":{stream},\"base_offset\":{base_offset},\"next_offset\":{next_offset}}}"
            ));
        }
        EventKind::ReplAck { stream, offset } => {
            out.push_str(&format!("{{\"stream\":{stream},\"offset\":{offset}}}"));
        }
        EventKind::FetchServed {
            stream,
            start_offset,
            next_offset,
            bytes,
        } => {
            out.push_str(&format!(
                "{{\"stream\":{stream},\"start_offset\":{start_offset},\"next_offset\":{next_offset},\"bytes\":{bytes}}}"
            ));
        }
    }
}

/// Serialises a drained event log as one Chrome trace-event JSON document.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"args\":{{\"name\":\"kafkadirect-sim\"}}}}"
    ));
    for e in events {
        out.push_str(",\n");
        let (ph, id) = match e.kind {
            EventKind::SpanBegin { .. } => ("b", Some(e.span_id)),
            EventKind::SpanEnd { .. } => ("e", Some(e.span_id)),
            _ => ("i", None),
        };
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"kd\",\"ph\":\"{ph}\",",
            json_str(e.kind.name())
        ));
        if let Some(id) = id {
            out.push_str(&format!("\"id\":\"0x{id:x}\","));
        } else {
            out.push_str("\"s\":\"t\",");
        }
        out.push_str(&format!(
            "\"ts\":{},\"pid\":{PID},\"tid\":{},\"args\":",
            ts_us(e.ts_ns),
            e.trace_id
        ));
        push_args(&mut out, &e.kind);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// One parsed trace-event JSON object (subset of fields the tests verify).
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    pub name: String,
    pub ph: String,
    pub ts_ns: u64,
    pub pid: u64,
    pub tid: u64,
    pub id: Option<String>,
}

/// Parses the output of [`to_chrome_json`] back into its events (metadata
/// records included). Returns `None` on structurally invalid input.
pub fn parse_chrome_json(text: &str) -> Option<Vec<ChromeEvent>> {
    let start = text.find("\"traceEvents\"")?;
    let array_start = text[start..].find('[')? + start;
    // Scan top-level objects of the array by brace depth, string-aware.
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut obj_start = None;
    for (i, c) in text[array_start..].char_indices() {
        let pos = array_start + i;
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    obj_start = Some(pos);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    let obj = &text[obj_start?..=pos];
                    events.push(ChromeEvent {
                        name: json_field_str(obj, "name")?,
                        ph: json_field_str(obj, "ph")?,
                        ts_ns: json_field_f64(obj, "ts")
                            .map(|us| (us * 1_000.0).round() as u64)
                            .unwrap_or(0),
                        pid: json_field_u64(obj, "pid")?,
                        tid: json_field_u64(obj, "tid")?,
                        id: json_field_str(obj, "id"),
                    });
                    obj_start = None;
                }
            }
            ']' if depth == 0 => return Some(events),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCtx;

    fn sample_events() -> Vec<TraceEvent> {
        let ctx = TraceCtx::root();
        vec![
            TraceEvent {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                ts_ns: 1_500,
                kind: EventKind::SpanBegin {
                    name: "client.produce",
                    parent: 0,
                },
            },
            TraceEvent {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                ts_ns: 2_000,
                kind: EventKind::WqePosted { qpn: 7, ticket: 3 },
            },
            TraceEvent {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                ts_ns: 2_250,
                kind: EventKind::Completion {
                    qpn: 7,
                    ticket: 3,
                    opcode: "RdmaWrite",
                    ok: true,
                },
            },
            TraceEvent {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                ts_ns: 9_001,
                kind: EventKind::SpanEnd {
                    name: "client.produce",
                },
            },
        ]
    }

    #[test]
    fn export_round_trips_through_parser() {
        let events = sample_events();
        let json = to_chrome_json(&events);
        let parsed = parse_chrome_json(&json).expect("parse");
        // Metadata record + our four events.
        assert_eq!(parsed.len(), events.len() + 1);
        assert_eq!(parsed[0].name, "process_name");
        assert_eq!(parsed[1].ph, "b");
        assert_eq!(parsed[1].ts_ns, 1_500);
        assert_eq!(parsed[1].id.as_deref(), Some(&*format!("0x{:x}", events[0].span_id)));
        assert_eq!(parsed[2].name, "WqePosted");
        assert_eq!(parsed[2].ph, "i");
        assert_eq!(parsed[4].ph, "e");
        assert!(parsed[1..].iter().all(|e| e.tid == events[0].trace_id));
    }

    #[test]
    fn every_begin_has_matching_end() {
        let json = to_chrome_json(&sample_events());
        let parsed = parse_chrome_json(&json).unwrap();
        let b = parsed.iter().filter(|e| e.ph == "b").count();
        let e = parsed.iter().filter(|e| e.ph == "e").count();
        assert_eq!(b, 1);
        assert_eq!(b, e);
    }

    #[test]
    fn parser_rejects_truncated_input() {
        let json = to_chrome_json(&sample_events());
        assert!(parse_chrome_json(&json[..json.len() / 2]).is_none());
        assert!(parse_chrome_json("{}").is_none());
    }
}
