//! `kdtelem` — the observability substrate for the KafkaDirect reproduction.
//!
//! Every headline result in the paper is an observability artifact: Fig 10–20
//! are latency/throughput distributions, §5.1's CPU-load reduction and §5.3's
//! "no CPU involvement" are resource-accounting claims. This crate gives the
//! simulation the instruments to *assert* those claims in tests rather than
//! eyeball them:
//!
//! * [`Histogram`] — log-linear (HDR-style) latency histograms stamped from
//!   `sim` virtual time: p50/p90/p99/max, mergeable, ~6% relative error.
//! * Spans — lightweight `(name, start, end)` records for the
//!   produce → replicate → consume critical path, kept in a bounded
//!   per-registry ring that tests can [`Registry::drain_spans`].
//! * [`Registry`] — named counters/gauges/histograms grouped by component
//!   (`rnic`, `netsim`, `broker`, `client`). Handles are private cells;
//!   snapshots aggregate same-named instruments across owners.
//! * [`TelemetryReport`] — text-table and JSON-lines export, shipped over the
//!   admin path (`Request::Telemetry`) and printed by the bench harness.
//!
//! The ambient registry ([`current`] / [`enter`]) lets deeply buried
//! components (a `netsim` link, an rnic CQ) pick up instruments without
//! threading a handle through every constructor. Tests that need isolation
//! enter their own registry for the duration of a runtime.
//!
//! Zero external dependencies; the only in-tree dependency is `sim` for the
//! virtual clock.

//!
//! PR 2 adds **causal traces** on top: identified spans
//! (`id`/`parent`/`trace_id`), typed lifeline events ([`trace::EventKind`]),
//! a [`TraceCtx`] that components propagate across simulated process
//! boundaries (kdwire frame headers on TCP, WR context on verbs), a
//! Perfetto-loadable Chrome trace-event exporter ([`chrome`]), and a
//! happens-before invariant checker ([`check`]).
//!
//! PR 6 adds **continuous telemetry** on top of both: a virtual-time
//! time-series recorder ([`series`] — a wheel-driven sampler snapshotting
//! every instrument into bounded rings, with exact per-interval histogram
//! deltas), a critical-path analyzer ([`critpath`] — folds trace lifelines
//! into per-stage latency attribution whose sums reconcile exactly with
//! end-to-end latency), and a health watchdog ([`health`] — stall
//! detection, failover MTTR, typed health events). Metric names follow a
//! `component` + `subsystem.metric` schema (e.g. `kdbroker` /
//! `rdma.commits`); the full inventory is tabled in DESIGN.md.
//!
//! # Sharded simulation (DESIGN.md §12)
//!
//! Under the parallel executor (`sim::shard`), every instrument stays
//! **shard-local without hot-path synchronization or allocation**: a
//! [`Registry`] is `Rc` state owned by one worker thread, the trace/span
//! rings are bounded `VecDeque`s that drop (and count) overflow instead of
//! growing, and the [`series`] sampler writes into its own registry's rings
//! on virtual-time ticks. The group harness
//! (`kafkadirect::run_sharded_groups`) gives each partition group a private
//! registry, makes it ambient around every poll of that group's tasks, and
//! **merges rings only at drain time** — per-group event streams are
//! collected after the run and ordered canonically. Raw `trace_id`s come
//! from a per-thread allocator interleaved across co-resident groups, so
//! cross-layout comparison goes through [`canonical_trace_digest`], which
//! renumbers lifelines by first appearance before folding full event
//! content. Nothing in this crate takes a lock on the datapath; the only
//! process-global state is the trace-id counter (thread-local) and the
//! ambient-registry stack (thread-local).

pub mod check;
pub mod chrome;
pub mod critpath;
pub mod health;
mod hist;
mod registry;
mod report;
pub mod series;
pub mod trace;

pub use hist::{HistSnapshot, HistStats, Histogram};
pub use registry::{
    current, enter, Counter, Gauge, Registry, ScopeGuard, SpanGuard, SpanRecord, TraceSpan,
    EVENT_RING_CAPACITY, SPAN_RING_CAPACITY,
};
pub use report::{CounterRow, GaugeRow, HistRow, SpanRow, TelemetryReport};
pub use series::{Sampler, SeriesDump, SeriesLog, SeriesOptions};
pub use health::{HealthEvent, HealthKind, Watchdog, WatchdogOptions};
pub use trace::{
    canonical_trace_digest, current_ctx, enter_ctx, reset_trace_ids, stream_key, CtxGuard,
    EventKind, TraceCtx, TraceEvent,
};
