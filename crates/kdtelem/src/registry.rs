//! The stats registry: named counters, gauges, histograms, and a bounded
//! span ring, grouped by component.
//!
//! Instruments are *handles*: every `counter()`/`gauge()`/`histogram()` call
//! creates a fresh cell owned by the caller and remembered by the registry
//! under its `(component, name)` key. Snapshots aggregate same-named
//! instruments (counters/gauge values sum, gauge peaks max, histograms
//! merge), so each broker or NIC keeps private cells it can read exactly
//! while the cluster-wide report still rolls everything up.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::hist::Histogram;
use crate::report::{CounterRow, GaugeRow, HistRow, SpanRow, TelemetryReport};
use crate::trace::{EventKind, TraceCtx, TraceEvent};

/// A monotonically increasing (or explicitly reset) `u64` cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Rc<Cell<u64>>,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn add(&self, v: u64) {
        self.cell.set(self.cell.get() + v);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.cell.get()
    }

    /// Direct store; exists for the rare accounting path that must subtract
    /// (e.g. deregistering producer memory grants).
    pub fn set(&self, v: u64) {
        self.cell.set(v);
    }

    pub fn sub_saturating(&self, v: u64) {
        self.cell.set(self.cell.get().saturating_sub(v));
    }
}

/// A level instrument: current value plus a high-watermark peak. Used for
/// queue depths and CQ occupancy.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    inner: Rc<GaugeData>,
}

#[derive(Debug, Default)]
struct GaugeData {
    value: Cell<u64>,
    peak: Cell<u64>,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: u64) {
        self.inner.value.set(v);
        if v > self.inner.peak.get() {
            self.inner.peak.set(v);
        }
    }

    pub fn add(&self, v: u64) {
        self.set(self.inner.value.get() + v);
    }

    pub fn sub(&self, v: u64) {
        self.inner.value.set(self.inner.value.get().saturating_sub(v));
    }

    pub fn get(&self) -> u64 {
        self.inner.value.get()
    }

    pub fn peak(&self) -> u64 {
        self.inner.peak.get()
    }
}

/// One completed span on the produce → replicate → consume critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: &'static str,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Default capacity of the per-registry span ring; oldest spans are dropped
/// (and counted) once it fills, bounding memory on long soaks. Override per
/// registry with [`Registry::with_span_capacity`].
pub const SPAN_RING_CAPACITY: usize = 4096;

/// Default capacity of the per-registry trace-event ring. Trace events are
/// much denser than spans (one produce emits ~a dozen), so the default is
/// correspondingly larger. Override with [`Registry::set_event_capacity`].
pub const EVENT_RING_CAPACITY: usize = 1 << 16;

#[derive(Debug, Default)]
struct SpanRing {
    ring: VecDeque<SpanRecord>,
    dropped: u64,
}

#[derive(Debug, Default)]
struct EventRing {
    ring: VecDeque<TraceEvent>,
    dropped: u64,
}

type Key = (&'static str, &'static str);

struct RegistryInner {
    counters: RefCell<Vec<(Key, Counter)>>,
    gauges: RefCell<Vec<(Key, Gauge)>>,
    histograms: RefCell<Vec<(Key, Histogram)>>,
    spans: RefCell<SpanRing>,
    span_capacity: Cell<usize>,
    /// Per-name span duration distributions, fed on every `record_span` so
    /// summaries survive ring overflow and the admin wire path.
    span_stats: RefCell<Vec<(&'static str, Histogram)>>,
    events: RefCell<EventRing>,
    event_capacity: Cell<usize>,
}

impl Default for RegistryInner {
    fn default() -> Self {
        RegistryInner {
            counters: RefCell::new(Vec::new()),
            gauges: RefCell::new(Vec::new()),
            histograms: RefCell::new(Vec::new()),
            spans: RefCell::new(SpanRing::default()),
            span_capacity: Cell::new(SPAN_RING_CAPACITY),
            span_stats: RefCell::new(Vec::new()),
            events: RefCell::new(EventRing::default()),
            event_capacity: Cell::new(EVENT_RING_CAPACITY),
        }
    }
}

/// Cloneable handle to a telemetry registry. See the module docs for the
/// aggregation model.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Rc<RegistryInner>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry whose span ring holds `capacity` spans before dropping the
    /// oldest. Long soak runs that must keep every critical-path span for
    /// the trace checker size this explicitly instead of relying on
    /// [`SPAN_RING_CAPACITY`].
    pub fn with_span_capacity(capacity: usize) -> Registry {
        let r = Registry::default();
        r.inner.span_capacity.set(capacity.max(1));
        r
    }

    /// Resizes the trace-event ring (existing buffered events are kept up to
    /// the new capacity; the oldest are dropped and counted).
    pub fn set_event_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.inner.event_capacity.set(capacity);
        let mut events = self.inner.events.borrow_mut();
        while events.ring.len() > capacity {
            events.ring.pop_front();
            events.dropped += 1;
        }
    }

    /// Creates and registers a fresh counter under `(component, name)`.
    pub fn counter(&self, component: &'static str, name: &'static str) -> Counter {
        let c = Counter::new();
        self.inner
            .counters
            .borrow_mut()
            .push(((component, name), c.clone()));
        c
    }

    /// Creates and registers a fresh gauge under `(component, name)`.
    pub fn gauge(&self, component: &'static str, name: &'static str) -> Gauge {
        let g = Gauge::new();
        self.inner
            .gauges
            .borrow_mut()
            .push(((component, name), g.clone()));
        g
    }

    /// Creates and registers a fresh histogram under `(component, name)`.
    pub fn histogram(&self, component: &'static str, name: &'static str) -> Histogram {
        let h = Histogram::new();
        self.inner
            .histograms
            .borrow_mut()
            .push(((component, name), h.clone()));
        h
    }

    /// Records a completed span. `start`/`end` are virtual-time nanoseconds.
    pub fn record_span(&self, name: &'static str, start_ns: u64, end_ns: u64) {
        {
            let mut stats = self.inner.span_stats.borrow_mut();
            let h = match stats.iter().find(|(n, _)| *n == name) {
                Some((_, h)) => h.clone(),
                None => {
                    let h = Histogram::new();
                    stats.push((name, h.clone()));
                    h
                }
            };
            h.record(end_ns.saturating_sub(start_ns));
        }
        let cap = self.inner.span_capacity.get();
        let mut spans = self.inner.spans.borrow_mut();
        if spans.ring.len() >= cap {
            spans.ring.pop_front();
            spans.dropped += 1;
        }
        spans.ring.push_back(SpanRecord {
            name,
            start_ns,
            end_ns,
        });
    }

    /// Records one trace event at an explicit virtual-time `ts_ns` (which
    /// may be in the future: link reservations are computed at post time).
    pub fn record_trace_event(&self, ctx: TraceCtx, ts_ns: u64, kind: EventKind) {
        let cap = self.inner.event_capacity.get();
        let mut events = self.inner.events.borrow_mut();
        if events.ring.len() >= cap {
            events.ring.pop_front();
            events.dropped += 1;
        }
        events.ring.push_back(TraceEvent {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            ts_ns,
            kind,
        });
    }

    /// Records a trace event at the current virtual time. No-op outside a
    /// runtime.
    pub fn trace_event_now(&self, ctx: TraceCtx, kind: EventKind) {
        if let Some(now) = sim::try_now() {
            self.record_trace_event(ctx, now.as_nanos(), kind);
        }
    }

    /// Opens an identified trace span: allocates a span id under `parent`'s
    /// trace (or a fresh trace when `parent` is `None`), records a
    /// `SpanBegin` event now, and returns a guard whose [`TraceSpan::ctx`]
    /// is the context to propagate to children. On end/drop it records the
    /// `SpanEnd` event plus a classic `(name, start, end)` span record.
    pub fn trace_span(&self, name: &'static str, parent: Option<TraceCtx>) -> TraceSpan {
        let ctx = match parent {
            Some(p) => TraceCtx {
                trace_id: p.trace_id,
                span_id: crate::trace::next_id(),
            },
            None => TraceCtx::root(),
        };
        let start_ns = sim::try_now().map(|t| t.as_nanos());
        if let Some(ts) = start_ns {
            self.record_trace_event(
                ctx,
                ts,
                EventKind::SpanBegin {
                    name,
                    parent: parent.map_or(0, |p| p.span_id),
                },
            );
        }
        TraceSpan {
            registry: self.clone(),
            name,
            ctx,
            start_ns,
            done: false,
        }
    }

    /// Removes and returns all buffered trace events (oldest first).
    pub fn drain_trace_events(&self) -> Vec<TraceEvent> {
        self.inner.events.borrow_mut().ring.drain(..).collect()
    }

    /// Trace events lost to ring overflow since the registry was created.
    pub fn trace_events_dropped(&self) -> u64 {
        self.inner.events.borrow().dropped
    }

    /// Starts a span at the current virtual time; finish it with
    /// [`SpanGuard::end`] (or let it drop). No-op outside a runtime.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            registry: self.clone(),
            name,
            start_ns: sim::try_now().map(|t| t.as_nanos()),
            done: false,
        }
    }

    /// Removes and returns all buffered spans (oldest first).
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.borrow_mut().ring.drain(..).collect()
    }

    /// Spans lost to ring overflow since the registry was created.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.spans.borrow().dropped
    }

    /// Identity of the underlying shared registry state: clones compare
    /// equal, distinct registries differ. The sampler uses this to notice a
    /// registry swap and drop its per-cell index caches.
    pub fn id(&self) -> usize {
        Rc::as_ptr(&self.inner) as usize
    }

    /// Visits every registered counter cell (not aggregated — same-named
    /// cells repeat). Allocation-free; the time-series sampler folds these
    /// into its own per-key accumulators each tick.
    pub fn fold_counters(&self, mut f: impl FnMut(Key, u64)) {
        for (key, c) in self.inner.counters.borrow().iter() {
            f(*key, c.get());
        }
    }

    /// Visits every registered gauge cell as `(key, value, peak)`.
    pub fn fold_gauges(&self, mut f: impl FnMut(Key, u64, u64)) {
        for (key, g) in self.inner.gauges.borrow().iter() {
            f(*key, g.get(), g.peak());
        }
    }

    /// Visits every registered histogram cell by reference.
    pub fn fold_histograms(&self, mut f: impl FnMut(Key, &Histogram)) {
        for (key, h) in self.inner.histograms.borrow().iter() {
            f(*key, h);
        }
    }

    /// Bucket-level snapshots of every registered histogram, merged per
    /// `(component, name)` key and sorted. The time-series sampler diffs
    /// successive calls to get exact per-interval distributions
    /// ([`crate::hist::HistSnapshot::delta_since`]).
    pub fn merged_histograms(&self) -> Vec<(Key, crate::hist::HistSnapshot)> {
        let mut merged: Vec<(Key, crate::hist::HistSnapshot)> = Vec::new();
        for ((component, name), h) in self.inner.histograms.borrow().iter() {
            let snap = h.snapshot_data();
            match merged
                .iter_mut()
                .find(|(k, _)| k.0 == *component && k.1 == *name)
            {
                Some((_, acc)) => acc.merge_from(&snap),
                None => merged.push(((component, name), snap)),
            }
        }
        merged.sort_by_key(|(k, _)| *k);
        merged
    }

    /// Aggregated point-in-time report: counters summed, gauge values summed
    /// and peaks maxed, histograms merged — per `(component, name)` key,
    /// sorted for stable output.
    pub fn snapshot(&self) -> TelemetryReport {
        let mut counters: Vec<CounterRow> = Vec::new();
        for ((component, name), c) in self.inner.counters.borrow().iter() {
            match counters
                .iter_mut()
                .find(|r| r.component == *component && r.name == *name)
            {
                Some(row) => row.value += c.get(),
                None => counters.push(CounterRow {
                    component,
                    name,
                    value: c.get(),
                }),
            }
        }
        let mut gauges: Vec<GaugeRow> = Vec::new();
        for ((component, name), g) in self.inner.gauges.borrow().iter() {
            match gauges
                .iter_mut()
                .find(|r| r.component == *component && r.name == *name)
            {
                Some(row) => {
                    row.value += g.get();
                    row.peak = row.peak.max(g.peak());
                }
                None => gauges.push(GaugeRow {
                    component,
                    name,
                    value: g.get(),
                    peak: g.peak(),
                }),
            }
        }
        let mut merged: Vec<(Key, Histogram)> = Vec::new();
        for ((component, name), h) in self.inner.histograms.borrow().iter() {
            match merged
                .iter_mut()
                .find(|(k, _)| k.0 == *component && k.1 == *name)
            {
                Some((_, acc)) => acc.merge_from(h),
                None => {
                    let acc = Histogram::new();
                    acc.merge_from(h);
                    merged.push(((component, name), acc));
                }
            }
        }
        let mut histograms: Vec<HistRow> = merged
            .into_iter()
            .map(|((component, name), h)| HistRow {
                component,
                name,
                stats: h.stats(),
            })
            .collect();

        counters.sort_by_key(|r| (r.component, r.name));
        gauges.sort_by_key(|r| (r.component, r.name));
        histograms.sort_by_key(|r| (r.component, r.name));

        let mut spans: Vec<SpanRow> = self
            .inner
            .span_stats
            .borrow()
            .iter()
            .map(|(name, h)| SpanRow {
                name,
                count: h.count(),
                p50_ns: h.p50(),
                p99_ns: h.p99(),
            })
            .collect();
        spans.sort_by_key(|r| r.name);

        let ring = self.inner.spans.borrow();
        TelemetryReport {
            counters,
            gauges,
            histograms,
            spans,
            spans_buffered: ring.ring.len() as u64,
            spans_dropped: ring.dropped,
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.inner.counters.borrow().len())
            .field("gauges", &self.inner.gauges.borrow().len())
            .field("histograms", &self.inner.histograms.borrow().len())
            .field("spans", &self.inner.spans.borrow().ring.len())
            .finish()
    }
}

/// In-flight span; records itself into the registry when ended or dropped.
/// Records nothing if no runtime was active when it started.
#[must_use = "a span measures until it is ended or dropped"]
pub struct SpanGuard {
    registry: Registry,
    name: &'static str,
    start_ns: Option<u64>,
    done: bool,
}

impl SpanGuard {
    /// Ends the span now (virtual time).
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if let (Some(start), Some(now)) = (self.start_ns, sim::try_now()) {
            self.registry.record_span(self.name, start, now.as_nanos());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

/// An in-flight identified trace span (see [`Registry::trace_span`]).
/// Carries the [`TraceCtx`] to hand to children / propagate over the wire.
#[must_use = "a trace span measures until it is ended or dropped"]
pub struct TraceSpan {
    registry: Registry,
    name: &'static str,
    ctx: TraceCtx,
    start_ns: Option<u64>,
    done: bool,
}

impl TraceSpan {
    /// The context identifying this span — propagate it to child work.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// Ends the span now (virtual time).
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if let (Some(start), Some(now)) = (self.start_ns, sim::try_now()) {
            let end = now.as_nanos();
            self.registry
                .record_trace_event(self.ctx, end, EventKind::SpanEnd { name: self.name });
            self.registry.record_span(self.name, start, end);
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.finish();
    }
}

thread_local! {
    static STACK: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
    static DEFAULT: Registry = Registry::new();
}

/// The ambient registry: the innermost [`Registry::enter`] scope on this
/// thread, or a shared thread-local default. Instrumented components
/// (links, NICs, brokers) grab their handles from here at construction time.
pub fn current() -> Registry {
    STACK.with(|s| s.borrow().last().cloned())
        .unwrap_or_else(|| DEFAULT.with(Registry::clone))
}

/// Makes `registry` the ambient registry until the guard drops.
pub fn enter(registry: &Registry) -> ScopeGuard {
    STACK.with(|s| s.borrow_mut().push(registry.clone()));
    ScopeGuard { _priv: () }
}

/// Scope guard returned by [`enter`]; pops the registry stack on drop.
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_by_name() {
        let r = Registry::new();
        let a = r.counter("broker", "produce_requests");
        let b = r.counter("broker", "produce_requests");
        let c = r.counter("broker", "fetch_requests");
        a.add(3);
        b.add(4);
        c.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("broker", "produce_requests"), Some(7));
        assert_eq!(snap.counter("broker", "fetch_requests"), Some(1));
        assert_eq!(snap.counter("broker", "nope"), None);
    }

    #[test]
    fn counter_handles_are_private() {
        let r = Registry::new();
        let a = r.counter("x", "n");
        let b = r.counter("x", "n");
        a.add(5);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn gauge_tracks_peak() {
        let r = Registry::new();
        let g = r.gauge("cq", "depth");
        g.add(3);
        g.add(4);
        g.sub(6);
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 7);
        let snap = r.snapshot();
        let row = snap.gauge("cq", "depth").unwrap();
        assert_eq!((row.value, row.peak), (1, 7));
    }

    #[test]
    fn histograms_merge_in_snapshot() {
        let r = Registry::new();
        let h1 = r.histogram("client", "produce_ns");
        let h2 = r.histogram("client", "produce_ns");
        for v in 0..100 {
            h1.record(v);
        }
        for v in 100..200 {
            h2.record(v);
        }
        let snap = r.snapshot();
        let row = snap.histogram("client", "produce_ns").unwrap();
        assert_eq!(row.stats.count, 200);
        assert_eq!(row.stats.max, 199);
    }

    #[test]
    fn span_ring_bounded_drops_oldest() {
        let r = Registry::new();
        for i in 0..(SPAN_RING_CAPACITY as u64 + 10) {
            r.record_span("s", i, i + 1);
        }
        assert_eq!(r.spans_dropped(), 10);
        let spans = r.drain_spans();
        assert_eq!(spans.len(), SPAN_RING_CAPACITY);
        assert_eq!(spans[0].start_ns, 10);
        assert!(r.drain_spans().is_empty());
    }

    #[test]
    fn span_guard_records_virtual_time() {
        let r = Registry::new();
        let r2 = r.clone();
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let span = r2.span("produce");
            sim::time::sleep(std::time::Duration::from_micros(5)).await;
            span.end();
        });
        let spans = r.drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "produce");
        assert_eq!(spans[0].duration_ns(), 5_000);
    }

    #[test]
    fn span_guard_outside_runtime_is_noop() {
        let r = Registry::new();
        drop(r.span("x"));
        assert!(r.drain_spans().is_empty());
    }

    #[test]
    fn span_capacity_is_configurable() {
        let r = Registry::with_span_capacity(8);
        for i in 0..10u64 {
            r.record_span("s", i, i + 1);
        }
        assert_eq!(r.spans_dropped(), 2);
        assert_eq!(r.drain_spans().len(), 8);
    }

    #[test]
    fn span_summaries_survive_ring_overflow() {
        let r = Registry::with_span_capacity(4);
        for i in 0..100u64 {
            r.record_span("s", 0, 1_000 * (i + 1));
        }
        let snap = r.snapshot();
        let row = snap.span("s").expect("summary row");
        assert_eq!(row.count, 100);
        assert!(row.p50_ns > 0);
        assert!(row.p99_ns >= row.p50_ns);
    }

    #[test]
    fn event_ring_bounded_drops_oldest() {
        let r = Registry::new();
        r.set_event_capacity(4);
        let ctx = TraceCtx::root();
        for i in 0..6u64 {
            r.record_trace_event(ctx, i, EventKind::CpuCopy { site: "t", bytes: i });
        }
        assert_eq!(r.trace_events_dropped(), 2);
        let ev = r.drain_trace_events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].ts_ns, 2);
        assert!(r.drain_trace_events().is_empty());
    }

    #[test]
    fn trace_span_links_parent_and_records_both_kinds() {
        let r = Registry::new();
        let r2 = r.clone();
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let root = r2.trace_span("client.produce", None);
            let child = r2.trace_span("broker.commit", Some(root.ctx()));
            assert_eq!(child.ctx().trace_id, root.ctx().trace_id);
            assert_ne!(child.ctx().span_id, root.ctx().span_id);
            sim::time::sleep(std::time::Duration::from_micros(3)).await;
            child.end();
            root.end();
        });
        let ev = r.drain_trace_events();
        assert_eq!(ev.len(), 4, "begin x2 + end x2");
        let root_span = ev[0].span_id;
        match ev[1].kind {
            EventKind::SpanBegin { name, parent } => {
                assert_eq!(name, "broker.commit");
                assert_eq!(parent, root_span);
            }
            ref k => panic!("expected child SpanBegin, got {k:?}"),
        }
        assert!(ev.iter().all(|e| e.trace_id == ev[0].trace_id));
        let spans = r.drain_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.name == "broker.commit" && s.duration_ns() == 3_000));
    }

    #[test]
    fn ambient_registry_scoping() {
        let outer = current();
        let r = Registry::new();
        {
            let _g = enter(&r);
            let c = current().counter("t", "c");
            c.inc();
        }
        assert_eq!(r.snapshot().counter("t", "c"), Some(1));
        // Back to the previous ambient registry after the scope.
        assert_eq!(
            current().snapshot().counter("t", "c"),
            outer.snapshot().counter("t", "c")
        );
    }
}
