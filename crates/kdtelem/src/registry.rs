//! The stats registry: named counters, gauges, histograms, and a bounded
//! span ring, grouped by component.
//!
//! Instruments are *handles*: every `counter()`/`gauge()`/`histogram()` call
//! creates a fresh cell owned by the caller and remembered by the registry
//! under its `(component, name)` key. Snapshots aggregate same-named
//! instruments (counters/gauge values sum, gauge peaks max, histograms
//! merge), so each broker or NIC keeps private cells it can read exactly
//! while the cluster-wide report still rolls everything up.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::hist::Histogram;
use crate::report::{CounterRow, GaugeRow, HistRow, TelemetryReport};

/// A monotonically increasing (or explicitly reset) `u64` cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Rc<Cell<u64>>,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn add(&self, v: u64) {
        self.cell.set(self.cell.get() + v);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.cell.get()
    }

    /// Direct store; exists for the rare accounting path that must subtract
    /// (e.g. deregistering producer memory grants).
    pub fn set(&self, v: u64) {
        self.cell.set(v);
    }

    pub fn sub_saturating(&self, v: u64) {
        self.cell.set(self.cell.get().saturating_sub(v));
    }
}

/// A level instrument: current value plus a high-watermark peak. Used for
/// queue depths and CQ occupancy.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    inner: Rc<GaugeData>,
}

#[derive(Debug, Default)]
struct GaugeData {
    value: Cell<u64>,
    peak: Cell<u64>,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: u64) {
        self.inner.value.set(v);
        if v > self.inner.peak.get() {
            self.inner.peak.set(v);
        }
    }

    pub fn add(&self, v: u64) {
        self.set(self.inner.value.get() + v);
    }

    pub fn sub(&self, v: u64) {
        self.inner.value.set(self.inner.value.get().saturating_sub(v));
    }

    pub fn get(&self) -> u64 {
        self.inner.value.get()
    }

    pub fn peak(&self) -> u64 {
        self.inner.peak.get()
    }
}

/// One completed span on the produce → replicate → consume critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: &'static str,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Capacity of the per-registry span ring; oldest spans are dropped (and
/// counted) once it fills, bounding memory on long soaks.
pub const SPAN_RING_CAPACITY: usize = 4096;

#[derive(Debug, Default)]
struct SpanRing {
    ring: VecDeque<SpanRecord>,
    dropped: u64,
}

type Key = (&'static str, &'static str);

#[derive(Default)]
struct RegistryInner {
    counters: RefCell<Vec<(Key, Counter)>>,
    gauges: RefCell<Vec<(Key, Gauge)>>,
    histograms: RefCell<Vec<(Key, Histogram)>>,
    spans: RefCell<SpanRing>,
}

/// Cloneable handle to a telemetry registry. See the module docs for the
/// aggregation model.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Rc<RegistryInner>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Creates and registers a fresh counter under `(component, name)`.
    pub fn counter(&self, component: &'static str, name: &'static str) -> Counter {
        let c = Counter::new();
        self.inner
            .counters
            .borrow_mut()
            .push(((component, name), c.clone()));
        c
    }

    /// Creates and registers a fresh gauge under `(component, name)`.
    pub fn gauge(&self, component: &'static str, name: &'static str) -> Gauge {
        let g = Gauge::new();
        self.inner
            .gauges
            .borrow_mut()
            .push(((component, name), g.clone()));
        g
    }

    /// Creates and registers a fresh histogram under `(component, name)`.
    pub fn histogram(&self, component: &'static str, name: &'static str) -> Histogram {
        let h = Histogram::new();
        self.inner
            .histograms
            .borrow_mut()
            .push(((component, name), h.clone()));
        h
    }

    /// Records a completed span. `start`/`end` are virtual-time nanoseconds.
    pub fn record_span(&self, name: &'static str, start_ns: u64, end_ns: u64) {
        let mut spans = self.inner.spans.borrow_mut();
        if spans.ring.len() == SPAN_RING_CAPACITY {
            spans.ring.pop_front();
            spans.dropped += 1;
        }
        spans.ring.push_back(SpanRecord {
            name,
            start_ns,
            end_ns,
        });
    }

    /// Starts a span at the current virtual time; finish it with
    /// [`SpanGuard::end`] (or let it drop). No-op outside a runtime.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            registry: self.clone(),
            name,
            start_ns: sim::try_now().map(|t| t.as_nanos()),
            done: false,
        }
    }

    /// Removes and returns all buffered spans (oldest first).
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.borrow_mut().ring.drain(..).collect()
    }

    /// Spans lost to ring overflow since the registry was created.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.spans.borrow().dropped
    }

    /// Aggregated point-in-time report: counters summed, gauge values summed
    /// and peaks maxed, histograms merged — per `(component, name)` key,
    /// sorted for stable output.
    pub fn snapshot(&self) -> TelemetryReport {
        let mut counters: Vec<CounterRow> = Vec::new();
        for ((component, name), c) in self.inner.counters.borrow().iter() {
            match counters
                .iter_mut()
                .find(|r| r.component == *component && r.name == *name)
            {
                Some(row) => row.value += c.get(),
                None => counters.push(CounterRow {
                    component,
                    name,
                    value: c.get(),
                }),
            }
        }
        let mut gauges: Vec<GaugeRow> = Vec::new();
        for ((component, name), g) in self.inner.gauges.borrow().iter() {
            match gauges
                .iter_mut()
                .find(|r| r.component == *component && r.name == *name)
            {
                Some(row) => {
                    row.value += g.get();
                    row.peak = row.peak.max(g.peak());
                }
                None => gauges.push(GaugeRow {
                    component,
                    name,
                    value: g.get(),
                    peak: g.peak(),
                }),
            }
        }
        let mut merged: Vec<(Key, Histogram)> = Vec::new();
        for ((component, name), h) in self.inner.histograms.borrow().iter() {
            match merged
                .iter_mut()
                .find(|(k, _)| k.0 == *component && k.1 == *name)
            {
                Some((_, acc)) => acc.merge_from(h),
                None => {
                    let acc = Histogram::new();
                    acc.merge_from(h);
                    merged.push(((component, name), acc));
                }
            }
        }
        let mut histograms: Vec<HistRow> = merged
            .into_iter()
            .map(|((component, name), h)| HistRow {
                component,
                name,
                stats: h.stats(),
            })
            .collect();

        counters.sort_by_key(|r| (r.component, r.name));
        gauges.sort_by_key(|r| (r.component, r.name));
        histograms.sort_by_key(|r| (r.component, r.name));

        let spans = self.inner.spans.borrow();
        TelemetryReport {
            counters,
            gauges,
            histograms,
            spans_buffered: spans.ring.len() as u64,
            spans_dropped: spans.dropped,
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.inner.counters.borrow().len())
            .field("gauges", &self.inner.gauges.borrow().len())
            .field("histograms", &self.inner.histograms.borrow().len())
            .field("spans", &self.inner.spans.borrow().ring.len())
            .finish()
    }
}

/// In-flight span; records itself into the registry when ended or dropped.
/// Records nothing if no runtime was active when it started.
#[must_use = "a span measures until it is ended or dropped"]
pub struct SpanGuard {
    registry: Registry,
    name: &'static str,
    start_ns: Option<u64>,
    done: bool,
}

impl SpanGuard {
    /// Ends the span now (virtual time).
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if let (Some(start), Some(now)) = (self.start_ns, sim::try_now()) {
            self.registry.record_span(self.name, start, now.as_nanos());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

thread_local! {
    static STACK: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
    static DEFAULT: Registry = Registry::new();
}

/// The ambient registry: the innermost [`Registry::enter`] scope on this
/// thread, or a shared thread-local default. Instrumented components
/// (links, NICs, brokers) grab their handles from here at construction time.
pub fn current() -> Registry {
    STACK.with(|s| s.borrow().last().cloned())
        .unwrap_or_else(|| DEFAULT.with(Registry::clone))
}

/// Makes `registry` the ambient registry until the guard drops.
pub fn enter(registry: &Registry) -> ScopeGuard {
    STACK.with(|s| s.borrow_mut().push(registry.clone()));
    ScopeGuard { _priv: () }
}

/// Scope guard returned by [`enter`]; pops the registry stack on drop.
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_by_name() {
        let r = Registry::new();
        let a = r.counter("broker", "produce_requests");
        let b = r.counter("broker", "produce_requests");
        let c = r.counter("broker", "fetch_requests");
        a.add(3);
        b.add(4);
        c.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("broker", "produce_requests"), Some(7));
        assert_eq!(snap.counter("broker", "fetch_requests"), Some(1));
        assert_eq!(snap.counter("broker", "nope"), None);
    }

    #[test]
    fn counter_handles_are_private() {
        let r = Registry::new();
        let a = r.counter("x", "n");
        let b = r.counter("x", "n");
        a.add(5);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn gauge_tracks_peak() {
        let r = Registry::new();
        let g = r.gauge("cq", "depth");
        g.add(3);
        g.add(4);
        g.sub(6);
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 7);
        let snap = r.snapshot();
        let row = snap.gauge("cq", "depth").unwrap();
        assert_eq!((row.value, row.peak), (1, 7));
    }

    #[test]
    fn histograms_merge_in_snapshot() {
        let r = Registry::new();
        let h1 = r.histogram("client", "produce_ns");
        let h2 = r.histogram("client", "produce_ns");
        for v in 0..100 {
            h1.record(v);
        }
        for v in 100..200 {
            h2.record(v);
        }
        let snap = r.snapshot();
        let row = snap.histogram("client", "produce_ns").unwrap();
        assert_eq!(row.stats.count, 200);
        assert_eq!(row.stats.max, 199);
    }

    #[test]
    fn span_ring_bounded_drops_oldest() {
        let r = Registry::new();
        for i in 0..(SPAN_RING_CAPACITY as u64 + 10) {
            r.record_span("s", i, i + 1);
        }
        assert_eq!(r.spans_dropped(), 10);
        let spans = r.drain_spans();
        assert_eq!(spans.len(), SPAN_RING_CAPACITY);
        assert_eq!(spans[0].start_ns, 10);
        assert!(r.drain_spans().is_empty());
    }

    #[test]
    fn span_guard_records_virtual_time() {
        let r = Registry::new();
        let r2 = r.clone();
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let span = r2.span("produce");
            sim::time::sleep(std::time::Duration::from_micros(5)).await;
            span.end();
        });
        let spans = r.drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "produce");
        assert_eq!(spans[0].duration_ns(), 5_000);
    }

    #[test]
    fn span_guard_outside_runtime_is_noop() {
        let r = Registry::new();
        drop(r.span("x"));
        assert!(r.drain_spans().is_empty());
    }

    #[test]
    fn ambient_registry_scoping() {
        let outer = current();
        let r = Registry::new();
        {
            let _g = enter(&r);
            let c = current().counter("t", "c");
            c.inc();
        }
        assert_eq!(r.snapshot().counter("t", "c"), Some(1));
        // Back to the previous ambient registry after the scope.
        assert_eq!(
            current().snapshot().counter("t", "c"),
            outer.snapshot().counter("t", "c")
        );
    }
}
