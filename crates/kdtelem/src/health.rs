//! Live health watchdog: stall detection and failover MTTR on virtual time.
//!
//! A [`Watchdog`] polls the registry on the timer wheel and watches a set of
//! *progress* counters (by default the broker's commit counters). If the sum
//! stops increasing for longer than a virtual-time budget it emits a typed
//! [`HealthEvent::Stall`]; the first subsequent increase emits `Recovered`.
//! It also watches *crash* counters (by default kdfault's broker-crash
//! injections): the interval from a crash to the first post-crash progress
//! is reported as `Mttr` — the failover mean-time-to-recovery the chaos
//! soak asserts on.
//!
//! Resolution is the poll period: the watchdog sees counters only at poll
//! ticks, so stall onsets and MTTR endpoints are quantised to it. Events are
//! kept in a bounded ring and also exported/parsed as JSON lines for the
//! admin wire path (`Request::Health`).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

use crate::registry::{Counter, Registry};
use crate::report::{json_field_str, json_field_u64, json_str};

/// What happened, stamped with the poll tick that observed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthKind {
    /// No progress since `since_ns` for at least `budget_ns`.
    Stall { since_ns: u64, budget_ns: u64 },
    /// Progress resumed after a stall that lasted `stalled_ns`.
    Recovered { stalled_ns: u64 },
    /// First progress after a crash observed at `crash_ns`.
    Mttr { crash_ns: u64, mttr_ns: u64 },
}

/// One typed health event at virtual time `ts_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    pub ts_ns: u64,
    pub kind: HealthKind,
}

/// Serialises health events as JSON lines (one object per event).
pub fn to_json_lines(events: &[HealthEvent]) -> String {
    let mut out = String::new();
    for e in events {
        match e.kind {
            HealthKind::Stall { since_ns, budget_ns } => out.push_str(&format!(
                "{{\"kind\":{},\"ts_ns\":{},\"since_ns\":{},\"budget_ns\":{}}}\n",
                json_str("stall"),
                e.ts_ns,
                since_ns,
                budget_ns
            )),
            HealthKind::Recovered { stalled_ns } => out.push_str(&format!(
                "{{\"kind\":{},\"ts_ns\":{},\"stalled_ns\":{}}}\n",
                json_str("recovered"),
                e.ts_ns,
                stalled_ns
            )),
            HealthKind::Mttr { crash_ns, mttr_ns } => out.push_str(&format!(
                "{{\"kind\":{},\"ts_ns\":{},\"crash_ns\":{},\"mttr_ns\":{}}}\n",
                json_str("mttr"),
                e.ts_ns,
                crash_ns,
                mttr_ns
            )),
        }
    }
    out
}

/// Parses the output of [`to_json_lines`] (empty input → empty vec).
pub fn from_json_lines(text: &str) -> Option<Vec<HealthEvent>> {
    let mut events = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ts_ns = json_field_u64(line, "ts_ns")?;
        let kind = match json_field_str(line, "kind")?.as_str() {
            "stall" => HealthKind::Stall {
                since_ns: json_field_u64(line, "since_ns")?,
                budget_ns: json_field_u64(line, "budget_ns")?,
            },
            "recovered" => HealthKind::Recovered {
                stalled_ns: json_field_u64(line, "stalled_ns")?,
            },
            "mttr" => HealthKind::Mttr {
                crash_ns: json_field_u64(line, "crash_ns")?,
                mttr_ns: json_field_u64(line, "mttr_ns")?,
            },
            _ => return None,
        };
        events.push(HealthEvent { ts_ns, kind });
    }
    Some(events)
}

/// Watchdog configuration.
#[derive(Debug, Clone)]
pub struct WatchdogOptions {
    /// Virtual-time poll period (also the measurement resolution).
    pub poll: Duration,
    /// No-progress budget before a stall fires.
    pub budget: Duration,
    /// Health events retained before the oldest are dropped.
    pub capacity: usize,
    /// Counters whose summed increase counts as progress.
    pub progress_keys: Vec<(&'static str, &'static str)>,
    /// Counters whose increase marks a crash (for MTTR measurement).
    pub crash_keys: Vec<(&'static str, &'static str)>,
}

impl Default for WatchdogOptions {
    fn default() -> Self {
        WatchdogOptions {
            poll: Duration::from_micros(500),
            budget: Duration::from_millis(5),
            capacity: 1024,
            progress_keys: vec![
                ("kdbroker", "rdma.commits"),
                ("kdbroker", "produce.requests"),
            ],
            crash_keys: vec![("kdfault", "inject.broker_crashes")],
        }
    }
}

struct WatchInner {
    opts: WatchdogOptions,
    armed: bool,
    last_progress: u64,
    last_progress_ts: u64,
    stalled_since: Option<u64>,
    crash_at: Option<u64>,
    last_crash_count: u64,
    last_mttr_ns: Option<u64>,
    stopped: bool,
    events: VecDeque<HealthEvent>,
    dropped: u64,
}

/// Cheap-to-clone handle to a running (or manually polled) watchdog.
#[derive(Clone)]
pub struct Watchdog {
    inner: Rc<RefCell<WatchInner>>,
    registry: Registry,
    stalls: Counter,
    recoveries: Counter,
    mttr_measured: Counter,
}

impl Watchdog {
    /// Creates a watchdog over `registry` without spawning the poll task
    /// (drive it with [`poll_now`](Watchdog::poll_now) — used by tests).
    pub fn new(registry: &Registry, opts: WatchdogOptions) -> Watchdog {
        Watchdog {
            inner: Rc::new(RefCell::new(WatchInner {
                opts,
                armed: false,
                last_progress: 0,
                last_progress_ts: 0,
                stalled_since: None,
                crash_at: None,
                last_crash_count: 0,
                last_mttr_ns: None,
                stopped: false,
                events: VecDeque::new(),
                dropped: 0,
            })),
            registry: registry.clone(),
            stalls: registry.counter("health", "watchdog.stalls"),
            recoveries: registry.counter("health", "watchdog.recoveries"),
            mttr_measured: registry.counter("health", "watchdog.mttr_measured"),
        }
    }

    /// Creates the watchdog and spawns its detached poll loop. Must be
    /// called inside `block_on`.
    pub fn start(registry: &Registry, opts: WatchdogOptions) -> Watchdog {
        let poll = opts.poll;
        let dog = Watchdog::new(registry, opts);
        let task = dog.clone();
        sim::spawn_detached(async move {
            let mut ticker = sim::time::interval(poll);
            loop {
                ticker.tick().await;
                if task.inner.borrow().stopped {
                    break;
                }
                task.poll_now();
            }
        });
        dog
    }

    /// Marks a crash now (virtual time) for MTTR measurement; the automatic
    /// crash-counter watch does the same without explicit wiring. An
    /// existing unrecovered crash keeps its earlier start.
    pub fn note_crash(&self) {
        let now = sim::try_now().map(|t| t.as_nanos()).unwrap_or(0);
        let mut inner = self.inner.borrow_mut();
        if inner.crash_at.is_none() {
            inner.crash_at = Some(now);
        }
    }

    /// One watchdog evaluation at the current virtual time.
    pub fn poll_now(&self) {
        let now = sim::try_now().map(|t| t.as_nanos()).unwrap_or(0);
        let report = self.registry.snapshot();
        let mut inner = self.inner.borrow_mut();
        let progress: u64 = inner
            .opts
            .progress_keys
            .iter()
            .filter_map(|(c, n)| report.counter(c, n))
            .sum();
        let crashes: u64 = inner
            .opts
            .crash_keys
            .iter()
            .filter_map(|(c, n)| report.counter(c, n))
            .sum();
        if progress > inner.last_progress {
            if let Some(since) = inner.stalled_since.take() {
                self.recoveries.inc();
                push_event(
                    &mut inner,
                    HealthEvent {
                        ts_ns: now,
                        kind: HealthKind::Recovered {
                            stalled_ns: now.saturating_sub(since),
                        },
                    },
                );
            }
            if inner.armed {
                if let Some(crash_ns) = inner.crash_at.take() {
                    let mttr_ns = now.saturating_sub(crash_ns);
                    inner.last_mttr_ns = Some(mttr_ns);
                    self.mttr_measured.inc();
                    push_event(
                        &mut inner,
                        HealthEvent {
                            ts_ns: now,
                            kind: HealthKind::Mttr { crash_ns, mttr_ns },
                        },
                    );
                }
            }
            inner.armed = true;
            inner.last_progress = progress;
            inner.last_progress_ts = now;
        } else if inner.armed && inner.stalled_since.is_none() {
            let budget_ns = inner.opts.budget.as_nanos() as u64;
            let since_ns = inner.last_progress_ts;
            if now.saturating_sub(since_ns) >= budget_ns {
                inner.stalled_since = Some(since_ns);
                self.stalls.inc();
                push_event(
                    &mut inner,
                    HealthEvent {
                        ts_ns: now,
                        kind: HealthKind::Stall { since_ns, budget_ns },
                    },
                );
            }
        }

        // Register a newly observed crash only after the progress check:
        // progress seen at the same poll tick accrued in the window *before*
        // the crash landed, and must not complete the MTTR at zero.
        if crashes > inner.last_crash_count {
            inner.last_crash_count = crashes;
            if inner.crash_at.is_none() {
                inner.crash_at = Some(now);
            }
        }
    }

    /// Stops the poll task at its next tick.
    pub fn stop(&self) {
        self.inner.borrow_mut().stopped = true;
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.inner.borrow().events.iter().copied().collect()
    }

    /// Events lost to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Whether the watchdog currently considers progress stalled.
    pub fn is_stalled(&self) -> bool {
        self.inner.borrow().stalled_since.is_some()
    }

    /// The most recently measured failover MTTR, if any.
    pub fn mttr_ns(&self) -> Option<u64> {
        self.inner.borrow().last_mttr_ns
    }

    /// Stall events observed so far.
    pub fn stall_count(&self) -> u64 {
        self.stalls.get()
    }
}

fn push_event(inner: &mut WatchInner, e: HealthEvent) {
    if inner.events.len() >= inner.opts.capacity.max(1) {
        inner.events.pop_front();
        inner.dropped += 1;
    }
    inner.events.push_back(e);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(poll_us: u64, budget_us: u64) -> WatchdogOptions {
        WatchdogOptions {
            poll: Duration::from_micros(poll_us),
            budget: Duration::from_micros(budget_us),
            capacity: 16,
            progress_keys: vec![("kdbroker", "rdma.commits")],
            crash_keys: vec![("kdfault", "inject.broker_crashes")],
        }
    }

    #[test]
    fn stall_fires_after_budget_and_recovers() {
        let r = Registry::new();
        let commits = r.counter("kdbroker", "rdma.commits");
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let dog = Watchdog::start(&r, opts(100, 300));
            // Steady progress: no stall.
            for _ in 0..5 {
                commits.inc();
                sim::time::sleep(Duration::from_micros(100)).await;
            }
            assert!(!dog.is_stalled());
            assert_eq!(dog.stall_count(), 0);
            // Outage: progress freezes past the budget.
            sim::time::sleep(Duration::from_micros(600)).await;
            assert!(dog.is_stalled());
            assert_eq!(dog.stall_count(), 1);
            // Still one stall event, not one per poll.
            sim::time::sleep(Duration::from_micros(400)).await;
            assert_eq!(dog.stall_count(), 1);
            // Recovery.
            commits.inc();
            sim::time::sleep(Duration::from_micros(200)).await;
            assert!(!dog.is_stalled());
            let evs = dog.events();
            assert!(matches!(evs[0].kind, HealthKind::Stall { .. }));
            let rec = evs
                .iter()
                .find(|e| matches!(e.kind, HealthKind::Recovered { .. }))
                .expect("recovered event");
            match rec.kind {
                HealthKind::Recovered { stalled_ns } => assert!(stalled_ns >= 600_000),
                _ => unreachable!(),
            }
            dog.stop();
        });
    }

    #[test]
    fn unarmed_watchdog_never_stalls() {
        let r = Registry::new();
        let _commits = r.counter("kdbroker", "rdma.commits");
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let dog = Watchdog::start(&r, opts(100, 200));
            // No progress ever seen: startup quiet time is not a stall.
            sim::time::sleep(Duration::from_millis(2)).await;
            assert_eq!(dog.stall_count(), 0);
            assert!(dog.events().is_empty());
            dog.stop();
        });
    }

    #[test]
    fn crash_counter_yields_finite_mttr() {
        let r = Registry::new();
        let commits = r.counter("kdbroker", "rdma.commits");
        let crashes = r.counter("kdfault", "inject.broker_crashes");
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let dog = Watchdog::start(&r, opts(100, 10_000));
            commits.inc();
            sim::time::sleep(Duration::from_micros(200)).await;
            // Crash: injected fault counter ticks, progress stops.
            crashes.inc();
            sim::time::sleep(Duration::from_micros(700)).await;
            assert_eq!(dog.mttr_ns(), None, "no MTTR before recovery");
            // Recovery commits land.
            commits.inc();
            sim::time::sleep(Duration::from_micros(200)).await;
            let mttr = dog.mttr_ns().expect("MTTR measured");
            // Crash observed at the 300us poll, recovery at the 1000us poll.
            assert!((600_000..=900_000).contains(&mttr), "mttr={mttr}");
            let evs = dog.events();
            assert!(evs.iter().any(|e| matches!(e.kind, HealthKind::Mttr { .. })));
            dog.stop();
        });
    }

    #[test]
    fn note_crash_without_counter_wiring() {
        let r = Registry::new();
        let commits = r.counter("kdbroker", "rdma.commits");
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let dog = Watchdog::new(&r, opts(100, 10_000));
            commits.inc();
            dog.poll_now();
            sim::time::sleep(Duration::from_micros(500)).await;
            dog.note_crash();
            sim::time::sleep(Duration::from_micros(500)).await;
            commits.inc();
            dog.poll_now();
            assert_eq!(dog.mttr_ns(), Some(500_000));
        });
    }

    #[test]
    fn events_round_trip_json_lines() {
        let events = vec![
            HealthEvent {
                ts_ns: 1_000,
                kind: HealthKind::Stall { since_ns: 500, budget_ns: 400 },
            },
            HealthEvent {
                ts_ns: 2_000,
                kind: HealthKind::Recovered { stalled_ns: 1_500 },
            },
            HealthEvent {
                ts_ns: 3_000,
                kind: HealthKind::Mttr { crash_ns: 800, mttr_ns: 2_200 },
            },
        ];
        let json = to_json_lines(&events);
        assert_eq!(json.lines().count(), 3);
        let back = from_json_lines(&json).expect("parse");
        assert_eq!(back, events);
        assert_eq!(from_json_lines("").unwrap(), vec![]);
        assert!(from_json_lines("{\"kind\":\"wat\",\"ts_ns\":1}").is_none());
    }

    #[test]
    fn event_ring_is_bounded() {
        let r = Registry::new();
        let commits = r.counter("kdbroker", "rdma.commits");
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let mut o = opts(100, 0); // zero budget: every quiet poll stalls
            o.capacity = 4;
            let dog = Watchdog::new(&r, o);
            commits.inc();
            dog.poll_now(); // arm
            for _ in 0..6 {
                sim::time::sleep(Duration::from_micros(100)).await;
                dog.poll_now(); // stall
                commits.inc();
                sim::time::sleep(Duration::from_micros(100)).await;
                dog.poll_now(); // recover
            }
            assert_eq!(dog.stall_count(), 6);
            assert_eq!(dog.events().len(), 4, "ring bounded at capacity");
            assert_eq!(dog.dropped(), 8);
        });
    }
}
