//! Trace-invariant checker: happens-before properties of the paper's
//! datapaths, asserted over a drained trace-event log.
//!
//! Tests drain a registry's events after an end-to-end run and feed them
//! here; any violation is a broken causal edge in the simulation itself:
//!
//! 1. **Fetch-after-commit** — a consumer is never served a record before
//!    the commit of that record's offset (matched per stream key across
//!    lifelines, since a fetch is a different trace than its produce).
//! 2. **ReplAck-after-completion** — a push-replication ack observed by the
//!    leader never precedes the remote RDMA write's CQE on the same
//!    lifeline (§4.3: the leader learns of replication from the write
//!    completion, not from any follower message).
//! 3. **RC completion order** — CQEs on one QP are delivered in post
//!    (ticket) order, the reliable-connection guarantee the commit
//!    protocol leans on.
//! 4. **Span nesting** — every `SpanEnd` is at or after its `SpanBegin`.
//! 5. **Copy discipline** — every lifeline that committed via RDMA (it
//!    posted a WQE) moved zero bytes through a broker CPU copy, while every
//!    TCP produce lifeline paid exactly two (socket receive + log append),
//!    the copies Fig 2 attributes to classic Kafka.

use std::collections::HashMap;

use crate::trace::{EventKind, TraceEvent};

/// Result of a [`check`] run: corpus statistics plus human-readable
/// violation descriptions (empty = all invariants hold).
#[derive(Debug, Default, Clone)]
pub struct CheckReport {
    pub events: usize,
    pub traces: usize,
    pub commits: usize,
    pub fetches: usize,
    pub repl_acks: usize,
    pub violations: Vec<String>,
}

impl CheckReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Broker-CPU copy events on one lifeline (sites prefixed `"broker"`).
pub fn broker_copies(events: &[TraceEvent], trace_id: u64) -> u64 {
    events
        .iter()
        .filter(|e| e.trace_id == trace_id)
        .filter(|e| matches!(e.kind, EventKind::CpuCopy { site, .. } if site.starts_with("broker")))
        .count() as u64
}

/// Trace ids that contain a `Commit` event (i.e. produce / replication
/// lifelines that reached the log).
pub fn commit_traces(events: &[TraceEvent]) -> Vec<u64> {
    let mut ids: Vec<u64> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Commit { .. }))
        .map(|e| e.trace_id)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn trace_has_wqe(events: &[TraceEvent], trace_id: u64) -> bool {
    events
        .iter()
        .any(|e| e.trace_id == trace_id && matches!(e.kind, EventKind::WqePosted { .. }))
}

/// Runs every invariant over a drained event log.
pub fn check(events: &[TraceEvent]) -> CheckReport {
    let mut report = CheckReport {
        events: events.len(),
        ..CheckReport::default()
    };
    let mut traces: Vec<u64> = events.iter().map(|e| e.trace_id).collect();
    traces.sort_unstable();
    traces.dedup();
    report.traces = traces.len();

    // Events sorted by timestamp (stable: record order breaks ties, and the
    // ring preserves record order).
    let mut by_ts: Vec<&TraceEvent> = events.iter().collect();
    by_ts.sort_by_key(|e| e.ts_ns);

    // (3) RC completion order per QP.
    let mut last_ticket: HashMap<u32, u64> = HashMap::new();
    for e in &by_ts {
        if let EventKind::Completion { qpn, ticket, ok: true, .. } = e.kind {
            if let Some(&prev) = last_ticket.get(&qpn) {
                if ticket <= prev {
                    report.violations.push(format!(
                        "completion order violated on qpn {qpn}: ticket {ticket} after {prev}"
                    ));
                }
            }
            last_ticket.insert(qpn, ticket);
        }
    }

    // (1) Fetch-after-commit, matched per stream across lifelines.
    let mut commits: HashMap<u64, Vec<(u64, u64, u64)>> = HashMap::new(); // stream -> (base, next, ts)
    for e in &by_ts {
        if let EventKind::Commit { stream, base_offset, next_offset } = e.kind {
            report.commits += 1;
            commits.entry(stream).or_default().push((base_offset, next_offset, e.ts_ns));
        }
    }
    for e in &by_ts {
        if let EventKind::FetchServed { stream, start_offset, next_offset, .. } = e.kind {
            report.fetches += 1;
            if next_offset <= start_offset {
                continue; // empty fetch
            }
            // Walk the committed-by-then ranges; the fetched range must be
            // fully covered by commits at or before the serve time.
            let mut committed: Vec<(u64, u64)> = commits
                .get(&stream)
                .map(|v| {
                    v.iter()
                        .filter(|&&(_, _, ts)| ts <= e.ts_ns)
                        .map(|&(b, n, _)| (b, n))
                        .collect()
                })
                .unwrap_or_default();
            committed.sort_unstable();
            let mut cursor = start_offset;
            for (b, n) in committed {
                if b <= cursor && n > cursor {
                    cursor = n;
                }
                if cursor >= next_offset {
                    break;
                }
            }
            if cursor < next_offset {
                report.violations.push(format!(
                    "fetch served offsets [{start_offset},{next_offset}) of stream {stream:#x} at {} ns, but [{cursor},{next_offset}) was not yet committed",
                    e.ts_ns
                ));
            }
        }
    }

    // (2) ReplAck follows the remote RDMA write completion on its lifeline.
    for e in &by_ts {
        if let EventKind::ReplAck { offset, .. } = e.kind {
            report.repl_acks += 1;
            let completed = by_ts.iter().any(|c| {
                c.trace_id == e.trace_id
                    && c.ts_ns <= e.ts_ns
                    && matches!(
                        c.kind,
                        EventKind::Completion { opcode: "RdmaWrite", ok: true, .. }
                    )
            });
            if !completed {
                report.violations.push(format!(
                    "replication ack for offset {offset} at {} ns precedes its RDMA write completion (trace {})",
                    e.ts_ns, e.trace_id
                ));
            }
        }
    }

    // (4) Span nesting sanity.
    let mut open: HashMap<u64, u64> = HashMap::new(); // span_id -> begin ts
    for e in &by_ts {
        match e.kind {
            EventKind::SpanBegin { .. } => {
                open.insert(e.span_id, e.ts_ns);
            }
            EventKind::SpanEnd { name } => {
                if let Some(begin) = open.remove(&e.span_id) {
                    if e.ts_ns < begin {
                        report
                            .violations
                            .push(format!("span {name} ends at {} before its begin {begin}", e.ts_ns));
                    }
                }
            }
            _ => {}
        }
    }

    // (5) Copy discipline per committing lifeline: RDMA (posted a WQE) must
    // be copy-free on the broker; TCP must pay exactly the two copies.
    // Lifelines with a commit but no datapath evidence (no WQE, copy, or
    // link hop) are unclassifiable and skipped.
    for trace_id in commit_traces(events) {
        let copies = broker_copies(events, trace_id);
        let tcp_evidence = copies > 0
            || events.iter().any(|e| {
                e.trace_id == trace_id && matches!(e.kind, EventKind::PacketEnqueued { .. })
            });
        if trace_has_wqe(events, trace_id) {
            if copies != 0 {
                report.violations.push(format!(
                    "RDMA lifeline {trace_id} moved bytes through {copies} broker CPU copies"
                ));
            }
        } else if tcp_evidence && copies != 2 {
            report.violations.push(format!(
                "TCP produce lifeline {trace_id} paid {copies} broker CPU copies, expected 2"
            ));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCtx;

    fn ev(ctx: TraceCtx, ts_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            ts_ns,
            kind,
        }
    }

    #[test]
    fn clean_rdma_lifeline_passes() {
        let p = TraceCtx::root();
        let f = TraceCtx::root();
        let events = vec![
            ev(p, 10, EventKind::WqePosted { qpn: 1, ticket: 0 }),
            ev(p, 20, EventKind::Completion { qpn: 1, ticket: 0, opcode: "RdmaWriteImm", ok: true }),
            ev(p, 30, EventKind::Commit { stream: 9, base_offset: 0, next_offset: 1 }),
            ev(f, 40, EventKind::FetchServed { stream: 9, start_offset: 0, next_offset: 1, bytes: 64 }),
        ];
        let r = check(&events);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!((r.commits, r.fetches), (1, 1));
    }

    #[test]
    fn fetch_before_commit_is_flagged() {
        let p = TraceCtx::root();
        let f = TraceCtx::root();
        let events = vec![
            ev(p, 50, EventKind::Commit { stream: 9, base_offset: 0, next_offset: 1 }),
            ev(f, 40, EventKind::FetchServed { stream: 9, start_offset: 0, next_offset: 1, bytes: 64 }),
        ];
        let r = check(&events);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].contains("not yet committed"));
    }

    #[test]
    fn out_of_order_completions_are_flagged() {
        let c = TraceCtx::root();
        let events = vec![
            ev(c, 10, EventKind::Completion { qpn: 3, ticket: 1, opcode: "Send", ok: true }),
            ev(c, 20, EventKind::Completion { qpn: 3, ticket: 0, opcode: "Send", ok: true }),
            // A different QP may interleave freely.
            ev(c, 15, EventKind::Completion { qpn: 4, ticket: 0, opcode: "Send", ok: true }),
        ];
        let r = check(&events);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].contains("qpn 3"));
    }

    #[test]
    fn repl_ack_requires_prior_write_completion() {
        let t = TraceCtx::root();
        let bad = vec![ev(t, 10, EventKind::ReplAck { stream: 9, offset: 5 })];
        assert!(!check(&bad).ok());
        let good = vec![
            ev(t, 5, EventKind::Completion { qpn: 2, ticket: 0, opcode: "RdmaWrite", ok: true }),
            ev(t, 10, EventKind::ReplAck { stream: 9, offset: 5 }),
        ];
        assert!(check(&good).ok());
    }

    #[test]
    fn copy_discipline_per_datapath() {
        // TCP lifeline: no WQE, exactly two broker copies — fine.
        let tcp = TraceCtx::root();
        let mut events = vec![
            ev(tcp, 10, EventKind::CpuCopy { site: "broker.net_to_user", bytes: 64 }),
            ev(tcp, 11, EventKind::CpuCopy { site: "broker.log_append", bytes: 64 }),
            ev(tcp, 12, EventKind::Commit { stream: 1, base_offset: 0, next_offset: 1 }),
        ];
        assert!(check(&events).ok(), "{:?}", check(&events).violations);
        // An RDMA lifeline with a broker copy is a zero-copy violation.
        let rdma = TraceCtx::root();
        events.extend([
            ev(rdma, 20, EventKind::WqePosted { qpn: 1, ticket: 0 }),
            ev(rdma, 25, EventKind::CpuCopy { site: "broker.log_append", bytes: 64 }),
            ev(rdma, 30, EventKind::Commit { stream: 1, base_offset: 1, next_offset: 2 }),
        ]);
        let r = check(&events);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].contains("RDMA lifeline"));
    }
}
