//! Snapshot/export: a point-in-time, aggregated view of a registry that can
//! be printed as an aligned text table or serialised as JSON lines (one
//! metric per line) with no external dependencies.

use crate::hist::HistStats;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRow {
    pub component: &'static str,
    pub name: &'static str,
    pub value: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeRow {
    pub component: &'static str,
    pub name: &'static str,
    pub value: u64,
    pub peak: u64,
}

#[derive(Debug, Clone, PartialEq)]
pub struct HistRow {
    pub component: &'static str,
    pub name: &'static str,
    pub stats: HistStats,
}

/// Per-name span summary: spans are recorded into a bounded ring, but their
/// duration distribution is kept separately so the summary survives ring
/// overflow and the `Request::Telemetry` admin wire path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    pub name: &'static str,
    pub count: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
}

/// Aggregated snapshot of a [`crate::Registry`]. Rows are sorted by
/// `(component, name)` so output is stable across runs.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    pub counters: Vec<CounterRow>,
    pub gauges: Vec<GaugeRow>,
    pub histograms: Vec<HistRow>,
    pub spans: Vec<SpanRow>,
    pub spans_buffered: u64,
    pub spans_dropped: u64,
}

impl TelemetryReport {
    /// Looks up a counter value.
    pub fn counter(&self, component: &str, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|r| r.component == component && r.name == name)
            .map(|r| r.value)
    }

    /// Looks up a gauge row.
    pub fn gauge(&self, component: &str, name: &str) -> Option<&GaugeRow> {
        self.gauges
            .iter()
            .find(|r| r.component == component && r.name == name)
    }

    /// Looks up a histogram row.
    pub fn histogram(&self, component: &str, name: &str) -> Option<&HistRow> {
        self.histograms
            .iter()
            .find(|r| r.component == component && r.name == name)
    }

    /// Looks up a span summary row by span name.
    pub fn span(&self, name: &str) -> Option<&SpanRow> {
        self.spans.iter().find(|r| r.name == name)
    }

    /// Renders an aligned, human-readable table. Histogram values are shown
    /// in microseconds since every latency instrument records nanoseconds.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("== counters ==\n");
            let w = self
                .counters
                .iter()
                .map(|r| r.component.len() + r.name.len() + 1)
                .max()
                .unwrap_or(0);
            for r in &self.counters {
                let key = format!("{}.{}", r.component, r.name);
                out.push_str(&format!("{key:w$}  {}\n", r.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("== gauges ==\n");
            let w = self
                .gauges
                .iter()
                .map(|r| r.component.len() + r.name.len() + 1)
                .max()
                .unwrap_or(0);
            for r in &self.gauges {
                let key = format!("{}.{}", r.component, r.name);
                out.push_str(&format!("{key:w$}  {} (peak {})\n", r.value, r.peak));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("== histograms (us) ==\n");
            let w = self
                .histograms
                .iter()
                .map(|r| r.component.len() + r.name.len() + 1)
                .max()
                .unwrap_or(0);
            out.push_str(&format!(
                "{:w$}  {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "", "count", "mean", "p50", "p90", "p99", "max"
            ));
            for r in &self.histograms {
                let key = format!("{}.{}", r.component, r.name);
                let s = &r.stats;
                out.push_str(&format!(
                    "{key:w$}  {:>10} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
                    s.count,
                    s.mean / 1_000.0,
                    s.p50 as f64 / 1_000.0,
                    s.p90 as f64 / 1_000.0,
                    s.p99 as f64 / 1_000.0,
                    s.max as f64 / 1_000.0,
                ));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("== spans (us) ==\n");
            let w = self.spans.iter().map(|r| r.name.len()).max().unwrap_or(0);
            out.push_str(&format!(
                "{:w$}  {:>10} {:>10} {:>10}\n",
                "", "count", "p50", "p99"
            ));
            for r in &self.spans {
                out.push_str(&format!(
                    "{:w$}  {:>10} {:>10.2} {:>10.2}\n",
                    r.name,
                    r.count,
                    r.p50_ns as f64 / 1_000.0,
                    r.p99_ns as f64 / 1_000.0,
                ));
            }
        }
        out.push_str(&format!(
            "spans: {} buffered, {} dropped\n",
            self.spans_buffered, self.spans_dropped
        ));
        out
    }

    /// Serialises the report as JSON lines: one object per metric, a final
    /// object for span accounting. Keys are fixed, values numeric — trivially
    /// parseable by any JSON reader and safe to `>>` into `results/`.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.counters {
            out.push_str(&format!(
                "{{\"kind\":\"counter\",\"component\":{},\"name\":{},\"value\":{}}}\n",
                json_str(r.component),
                json_str(r.name),
                r.value
            ));
        }
        for r in &self.gauges {
            out.push_str(&format!(
                "{{\"kind\":\"gauge\",\"component\":{},\"name\":{},\"value\":{},\"peak\":{}}}\n",
                json_str(r.component),
                json_str(r.name),
                r.value,
                r.peak
            ));
        }
        for r in &self.histograms {
            let s = &r.stats;
            out.push_str(&format!(
                "{{\"kind\":\"histogram\",\"component\":{},\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}\n",
                json_str(r.component),
                json_str(r.name),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.mean,
                s.p50,
                s.p90,
                s.p99
            ));
        }
        for r in &self.spans {
            out.push_str(&format!(
                "{{\"kind\":\"span\",\"name\":{},\"count\":{},\"p50_ns\":{},\"p99_ns\":{}}}\n",
                json_str(r.name),
                r.count,
                r.p50_ns,
                r.p99_ns
            ));
        }
        out.push_str(&format!(
            "{{\"kind\":\"spans\",\"buffered\":{},\"dropped\":{}}}\n",
            self.spans_buffered, self.spans_dropped
        ));
        out
    }

    /// Parses the output of [`to_json_lines`] back into a report (histograms
    /// come back as summary stats only). Used by the admin path: a broker
    /// ships its report over the wire as JSON lines.
    pub fn from_json_lines(text: &str) -> Option<TelemetryReport> {
        let mut report = TelemetryReport::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let kind = json_field_str(line, "kind")?;
            match kind.as_str() {
                "counter" => report.counters.push(CounterRow {
                    component: leak(json_field_str(line, "component")?),
                    name: leak(json_field_str(line, "name")?),
                    value: json_field_u64(line, "value")?,
                }),
                "gauge" => report.gauges.push(GaugeRow {
                    component: leak(json_field_str(line, "component")?),
                    name: leak(json_field_str(line, "name")?),
                    value: json_field_u64(line, "value")?,
                    peak: json_field_u64(line, "peak")?,
                }),
                "histogram" => report.histograms.push(HistRow {
                    component: leak(json_field_str(line, "component")?),
                    name: leak(json_field_str(line, "name")?),
                    stats: HistStats {
                        count: json_field_u64(line, "count")?,
                        sum: json_field_u64(line, "sum")?,
                        min: json_field_u64(line, "min")?,
                        max: json_field_u64(line, "max")?,
                        mean: json_field_f64(line, "mean")?,
                        p50: json_field_u64(line, "p50")?,
                        p90: json_field_u64(line, "p90")?,
                        p99: json_field_u64(line, "p99")?,
                    },
                }),
                "span" => report.spans.push(SpanRow {
                    name: leak(json_field_str(line, "name")?),
                    count: json_field_u64(line, "count")?,
                    p50_ns: json_field_u64(line, "p50_ns")?,
                    p99_ns: json_field_u64(line, "p99_ns")?,
                }),
                "spans" => {
                    report.spans_buffered = json_field_u64(line, "buffered")?;
                    report.spans_dropped = json_field_u64(line, "dropped")?;
                }
                _ => return None,
            }
        }
        Some(report)
    }
}

/// Metric names are static interned strings on the producing side; parsing a
/// wire report re-interns them. Reports cross the wire a handful of times per
/// run, so the leak is bounded and keeps the row types allocation-free on the
/// hot recording path.
fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn json_field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .find(|&(i, c)| {
            if rest.starts_with('"') {
                i > 0 && c == '"' && !rest[..i].ends_with('\\')
            } else {
                c == ',' || c == '}'
            }
        })
        .map(|(i, _)| if rest.starts_with('"') { i + 1 } else { i })?;
    Some(&rest[..end])
}

pub(crate) fn json_field_str(line: &str, key: &str) -> Option<String> {
    let raw = json_field_raw(line, key)?;
    let raw = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'u' => {
                    let code: String = (&mut chars).take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&code, 16).ok()?)?);
                }
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

pub(crate) fn json_field_u64(line: &str, key: &str) -> Option<u64> {
    json_field_raw(line, key)?.parse().ok()
}

pub(crate) fn json_field_f64(line: &str, key: &str) -> Option<f64> {
    json_field_raw(line, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_report() -> TelemetryReport {
        let r = Registry::new();
        r.counter("kdbroker", "produce.requests").add(12);
        r.counter("rnic", "qp.posts").add(99);
        let g = r.gauge("rnic", "cq.depth");
        g.add(5);
        g.sub(2);
        let h = r.histogram("kdclient", "produce.e2e_ns");
        for v in [1_000u64, 2_000, 4_000, 8_000, 100_000] {
            h.record(v);
        }
        r.record_span("produce", 0, 10);
        r.snapshot()
    }

    #[test]
    fn table_contains_all_rows() {
        let t = sample_report().to_table();
        assert!(t.contains("kdbroker.produce.requests"));
        assert!(t.contains("rnic.cq.depth"));
        assert!(t.contains("kdclient.produce.e2e_ns"));
        assert!(t.contains("p99"));
        assert!(t.contains("spans: 1 buffered, 0 dropped"));
    }

    #[test]
    fn json_lines_round_trip() {
        let report = sample_report();
        let json = report.to_json_lines();
        for line in json.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let back = TelemetryReport::from_json_lines(&json).expect("parse");
        assert_eq!(back.counter("kdbroker", "produce.requests"), Some(12));
        assert_eq!(back.counter("rnic", "qp.posts"), Some(99));
        let g = back.gauge("rnic", "cq.depth").unwrap();
        assert_eq!((g.value, g.peak), (3, 5));
        let h = back.histogram("kdclient", "produce.e2e_ns").unwrap();
        assert_eq!(h.stats.count, 5);
        assert_eq!(h.stats.min, 1_000);
        assert_eq!(back.spans_buffered, 1);
        // Span summaries survive the wire round-trip.
        let s = back.span("produce").expect("span summary row");
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_ns, 10);
        assert!(s.p99_ns >= s.p50_ns);
    }

    #[test]
    fn table_renders_span_summaries() {
        let t = sample_report().to_table();
        assert!(t.contains("== spans (us) =="));
        assert!(t.contains("produce"));
    }

    #[test]
    fn json_escaping_survives_quotes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let line = format!("{{\"kind\":\"counter\",\"component\":{},\"name\":{},\"value\":3}}", json_str("a\"b"), json_str("n"));
        assert_eq!(json_field_str(&line, "component").as_deref(), Some("a\"b"));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(TelemetryReport::from_json_lines("{\"kind\":\"wat\"}").is_none());
        // Blank input parses to an empty report.
        assert!(TelemetryReport::from_json_lines("").is_some());
    }
}
