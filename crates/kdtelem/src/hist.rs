//! Log-linear latency histograms (HDR-style).
//!
//! Values (nanoseconds, bytes, depths — any `u64`) are bucketed with 16
//! linear sub-buckets per power of two, giving a constant ~6% relative error
//! across the full `u64` range with a fixed 976-slot table. Histograms are
//! cheap to record into (a shift and two adds), mergeable, and support
//! percentile queries by bucket walk.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS; // 16 sub-buckets per power of two
// Max index is (63 - SUB_BITS + 1) * SUB + (SUB - 1) = 975 for u64::MAX.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Maps a value to its bucket index. Values below 16 get exact buckets;
/// larger values share a bucket with ~2^(msb-4) of their neighbours.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    (shift as usize + 1) * SUB + sub
}

/// Highest value that maps to bucket `i` — percentile queries report this, so
/// they never under-state a latency.
fn bucket_high(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let shift = (i / SUB - 1) as u32;
    let sub = (i % SUB) as u64;
    let low = (SUB as u64 + sub) << shift;
    low + ((1u64 << shift) - 1)
}

#[derive(Debug)]
pub(crate) struct HistData {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// One past the highest populated bucket — scans stop here, so walks
    /// cost O(populated range) instead of O(976) (the sampler ticks every
    /// histogram every interval).
    hi: usize,
}

impl HistData {
    fn new() -> Self {
        HistData {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            hi: 0,
        }
    }

    fn record(&mut self, v: u64) {
        let i = bucket_index(v);
        self.counts[i] += 1;
        self.hi = self.hi.max(i + 1);
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge_from(&mut self, other: &HistData) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts[..other.hi]) {
            *a += b;
        }
        self.hi = self.hi.max(other.hi);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` in `[0, 1]`: the highest value of the bucket
    /// containing the `ceil(q * count)`-th recorded sample. `0` when empty.
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Cap by the true max so sparse tails stay tight.
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }
}

/// A shareable, mergeable log-linear histogram handle.
///
/// Clones share the same underlying buckets; the registry hands out fresh
/// instances per call and merges same-named ones at snapshot time.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Rc<RefCell<HistData>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            inner: Rc::new(RefCell::new(HistData::new())),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.inner.borrow_mut().record(v);
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Records elapsed virtual time since `start` (no-op outside a runtime).
    pub fn record_since(&self, start: sim::SimTime) {
        if let Some(now) = sim::try_now() {
            self.record(now.saturating_since(start).as_nanos() as u64);
        }
    }

    /// Folds another histogram's samples into this one.
    pub fn merge_from(&self, other: &Histogram) {
        if Rc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        self.inner.borrow_mut().merge_from(&other.inner.borrow());
    }

    pub fn count(&self) -> u64 {
        self.inner.borrow().count
    }

    pub fn sum(&self) -> u64 {
        self.inner.borrow().sum
    }

    pub fn min(&self) -> u64 {
        let d = self.inner.borrow();
        if d.count == 0 {
            0
        } else {
            d.min
        }
    }

    pub fn max(&self) -> u64 {
        self.inner.borrow().max
    }

    pub fn mean(&self) -> f64 {
        let d = self.inner.borrow();
        if d.count == 0 {
            0.0
        } else {
            d.sum as f64 / d.count as f64
        }
    }

    /// Quantile query; `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.inner.borrow().quantile(q)
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Immutable summary for reports.
    pub fn stats(&self) -> HistStats {
        let d = self.inner.borrow();
        HistStats {
            count: d.count,
            sum: d.sum,
            min: if d.count == 0 { 0 } else { d.min },
            max: d.max,
            mean: if d.count == 0 {
                0.0
            } else {
                d.sum as f64 / d.count as f64
            },
            p50: d.quantile(0.50),
            p90: d.quantile(0.90),
            p99: d.quantile(0.99),
        }
    }

    /// Full bucket-level snapshot: the basis for interval deltas
    /// ([`HistSnapshot::delta_since`]) in the time-series sampler.
    pub fn snapshot_data(&self) -> HistSnapshot {
        let d = self.inner.borrow();
        HistSnapshot {
            counts: d.counts.clone(),
            count: d.count,
            sum: d.sum,
            hi: d.hi,
        }
    }

    /// Adds this histogram's buckets into an existing snapshot without
    /// allocating — the sampler's per-tick accumulation path.
    pub fn merge_into(&self, out: &mut HistSnapshot) {
        let d = self.inner.borrow();
        for (a, b) in out.counts.iter_mut().zip(&d.counts[..d.hi]) {
            *a = a.saturating_add(*b);
        }
        out.hi = out.hi.max(d.hi);
        out.count = out.count.saturating_add(d.count);
        out.sum = out.sum.saturating_add(d.sum);
    }
}

/// An owned, bucket-level copy of a histogram's state at one instant.
///
/// Snapshots taken from a monotonically-growing histogram support exact
/// interval arithmetic: `later.delta_since(&earlier)` is the histogram of
/// samples recorded strictly between the two snapshots, and summing every
/// interval delta with [`HistSnapshot::merge_from`] reconstructs the
/// full-run histogram bucket for bucket.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    /// One past the highest possibly-populated bucket (an upper bound, not
    /// exact after deltas). Excluded from equality — it is a scan bound.
    hi: usize,
}

/// Equality is over logical content (buckets and totals); the `hi` scan
/// watermark is an over-approximation and deliberately ignored.
impl PartialEq for HistSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count && self.sum == other.sum && self.counts == other.counts
    }
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistSnapshot {
    /// A snapshot with no samples — the identity for [`merge_from`]
    /// (`HistSnapshot::merge_from`) and the baseline for a sampler's first
    /// interval.
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            hi: 0,
        }
    }

    /// Resets to empty in place, keeping the bucket allocation (the sampler
    /// reuses one scratch snapshot per instrument per tick).
    pub fn clear(&mut self) {
        self.counts[..self.hi].fill(0);
        self.count = 0;
        self.sum = 0;
        self.hi = 0;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket difference `self - earlier`, saturating at zero so a
    /// snapshot pair from mismatched histograms (or a saturated `sum`)
    /// degrades to an under-count instead of wrapping.
    pub fn delta_since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            hi: self.hi.max(earlier.hi),
        }
    }

    /// Quantile of the interval histogram `self - earlier`, computed bucket
    /// by bucket without materialising the delta — the sampler calls this
    /// twice per histogram per tick, so it must not allocate.
    pub fn delta_quantile(&self, earlier: &HistSnapshot, q: f64) -> u64 {
        let count = self.count.saturating_sub(earlier.count);
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let hi = self.hi.max(earlier.hi);
        for (i, (&a, &b)) in self.counts[..hi].iter().zip(&earlier.counts[..hi]).enumerate() {
            seen += a.saturating_sub(b);
            if seen >= rank {
                return bucket_high(i);
            }
        }
        0
    }

    /// Adds another snapshot's buckets into this one (interval re-summing).
    pub fn merge_from(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts[..other.hi]) {
            *a = a.saturating_add(*b);
        }
        self.hi = self.hi.max(other.hi);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Value at quantile `q` in `[0, 1]` over the snapshot's buckets. Unlike
    /// the live histogram there is no true per-interval max, so the bucket
    /// high value is reported as-is (~6% overstatement worst case).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i);
            }
        }
        0
    }

    /// Lowest bucket-high value with any sample (interval-min surrogate).
    pub fn low(&self) -> u64 {
        self.counts
            .iter()
            .position(|&c| c > 0)
            .map(bucket_high)
            .unwrap_or(0)
    }

    /// Highest bucket-high value with any sample (interval-max surrogate).
    pub fn high(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_high)
            .unwrap_or(0)
    }

    /// Summary stats over the snapshot's buckets; min/max are the bucket
    /// surrogates from [`low`](HistSnapshot::low) / [`high`](HistSnapshot::high).
    pub fn stats(&self) -> HistStats {
        HistStats {
            count: self.count,
            sum: self.sum,
            min: self.low(),
            max: self.high(),
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time histogram summary (all values in the recorded unit,
/// nanoseconds for latency histograms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStats {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_monotone() {
        // Every bucket's high value + 1 must land in the next bucket.
        for i in 0..BUCKETS - 1 {
            let high = bucket_high(i);
            assert_eq!(bucket_index(high), i, "high of bucket {i}");
            if high < u64::MAX {
                assert_eq!(bucket_index(high + 1), i + 1, "after bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_bounded() {
        // Bucket width at value v is 2^(msb-4), so the reported high value
        // overstates by < 1/16 of the value.
        for &v in &[17u64, 100, 1_000, 123_456, 7_890_123, u64::MAX / 3] {
            let high = bucket_high(bucket_index(v));
            assert!(high >= v);
            assert!((high - v) as f64 <= v as f64 / 16.0 + 1.0, "v={v} high={high}");
        }
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        // p50 of 1..=1000 is 500; log-linear error at 500 is < 500/16 = 32.
        let p50 = h.p50();
        assert!((500..=532).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((990..=1000 + 63).contains(&p99), "p99={p99}");
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.quantile(0.0), 1);
        // quantile(1.0) is the max's bucket, capped at max.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn single_value_percentiles() {
        let h = Histogram::new();
        h.record(777);
        assert_eq!(h.p50(), 777.min(bucket_high(bucket_index(777))));
        assert_eq!(h.p99(), h.p50());
        assert_eq!(h.mean(), 777.0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn empty_histogram_stats_are_all_zero() {
        let s = Histogram::new().stats();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99),
            (0, 0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample_quantiles_all_report_that_sample() {
        for &v in &[0u64, 1, 15, 16, 777, 1 << 40] {
            let h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v.min(bucket_high(bucket_index(v))), "v={v} q={q}");
            }
            let s = h.stats();
            assert_eq!((s.min, s.max, s.count), (v, v, 1));
        }
    }

    #[test]
    fn merge_from_with_overlapping_buckets_sums_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        // Same values into both: every populated bucket overlaps.
        for v in [5u64, 5, 100, 100, 4_096] {
            a.record(v);
            b.record(v);
        }
        b.record(9_999); // plus one bucket only b has
        a.merge_from(&b);
        let s = a.stats();
        assert_eq!(s.count, 11);
        assert_eq!(s.sum, 2 * (5 + 5 + 100 + 100 + 4_096) + 9_999);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 9_999);
        // The doubled overlapping buckets keep quantiles consistent: the
        // median must still land in value 100's bucket.
        let p50 = a.quantile(0.5);
        assert_eq!(bucket_index(p50), bucket_index(100), "p50={p50}");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::new();
        let mut x = 42u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record(x >> 44);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "quantiles not monotone: {vals:?}");
        }
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let h = Histogram::new();
            let mut x = seed;
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                h.record(x >> 40);
            }
            h
        };
        let stats_of = |hs: &[&Histogram]| {
            let acc = Histogram::new();
            for h in hs {
                acc.merge_from(h);
            }
            acc.stats()
        };
        let (a, b, c) = (mk(1, 500), mk(2, 300), mk(3, 700));
        // (a+b)+c == a+(b+c) == c+b+a
        let abc = stats_of(&[&a, &b, &c]);
        let bca = stats_of(&[&b, &c, &a]);
        let cab = stats_of(&[&c, &a, &b]);
        assert_eq!(abc, bca);
        assert_eq!(bca, cab);
        assert_eq!(abc.count, 1500);
    }

    #[test]
    fn merge_with_self_is_noop() {
        let h = Histogram::new();
        h.record(5);
        h.merge_from(&h.clone());
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let h = Histogram::new();
        let h2 = h.clone();
        h2.record(42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_deltas_resum_to_full_run() {
        // Satellite: delta-since-last-sample summed over intervals must be
        // bucket-identical to the full-run histogram, empty intervals
        // included.
        let h = Histogram::new();
        let mut last = HistSnapshot::empty();
        let mut resummed = HistSnapshot::empty();
        let mut x = 7u64;
        for interval in 0..10 {
            if interval != 3 && interval != 7 {
                // Intervals 3 and 7 record nothing — empty-delta edge case.
                for _ in 0..50 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    h.record(x >> 40);
                }
            }
            let now = h.snapshot_data();
            let delta = now.delta_since(&last);
            if interval == 3 || interval == 7 {
                assert_eq!(delta.count(), 0, "empty interval must yield empty delta");
                assert_eq!(delta.stats().p99, 0);
            }
            resummed.merge_from(&delta);
            last = now;
        }
        assert_eq!(resummed, h.snapshot_data(), "interval re-sum diverged");
        assert_eq!(resummed.count(), 400);
        assert_eq!(resummed.sum(), h.sum());
    }

    #[test]
    fn snapshot_delta_saturates_instead_of_wrapping() {
        let a = Histogram::new();
        a.record(100);
        let early = a.snapshot_data();
        // A snapshot pair taken in the wrong order (or across a reset)
        // saturates to the empty delta.
        let wrong = HistSnapshot::empty().delta_since(&early);
        assert_eq!(wrong.count(), 0);
        assert_eq!(wrong.sum(), 0);
        assert_eq!(wrong, HistSnapshot::empty());
        // Saturated sums stay saturated through delta arithmetic.
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX); // sum saturates at u64::MAX
        let snap = h.snapshot_data();
        assert_eq!(snap.sum(), u64::MAX);
        let d = snap.delta_since(&HistSnapshot::empty());
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), u64::MAX);
    }

    #[test]
    fn snapshot_quantiles_track_live_histogram() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot_data().stats();
        assert_eq!(s.count, 1000);
        // Snapshot p50 has no true-max cap but the same bucket resolution.
        assert!((500..=532).contains(&s.p50), "p50={}", s.p50);
        assert!(s.max >= 1000 && s.max <= 1000 + 63, "max={}", s.max);
        assert_eq!(s.min, 1);
        let empty = HistSnapshot::empty().stats();
        assert_eq!((empty.count, empty.p50, empty.max), (0, 0, 0));
    }
}
