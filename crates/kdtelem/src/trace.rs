//! Causal traces: per-record lifelines across client, broker, replica, and
//! consumer.
//!
//! Every claim in the paper is a statement about the critical path of *one*
//! record — which WQE it posted, which link hops it queued on, which CQ
//! completion committed it. Flat histograms cannot show that, so the
//! registry also records **trace events**: typed, timestamped points tagged
//! with a [`TraceCtx`] (`trace_id` + `span_id`) that is propagated across
//! simulated process boundaries — inside `kdwire` frame headers on the TCP
//! path, and as WR context copied into both CQEs on the verbs path.
//!
//! Timestamps are explicit (`ts_ns`) rather than sampled at record time:
//! the network simulator computes link reservations *in the future* at post
//! time, and the event must carry the time the hop actually happens.
//!
//! The ambient context ([`current_ctx`] / [`enter_ctx`]) is only valid
//! across *synchronous* code: the simulator is cooperatively scheduled, so
//! holding it across an `.await` would leak the context into unrelated
//! tasks. Instrumented components either take the context as an argument or
//! set the ambient slot around a purely synchronous call (e.g. a QP's
//! launch-time path reservations).

use std::cell::Cell;

/// Identity of one point in a causal trace: the trace (lifeline) it belongs
/// to and the span that emitted it. `span_id` doubles as the parent id for
/// child spans. Ids are never zero, so zero is free as a wire sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    pub trace_id: u64,
    pub span_id: u64,
}

impl TraceCtx {
    /// Allocates a fresh root context (a new lifeline).
    pub fn root() -> TraceCtx {
        let id = next_id();
        TraceCtx {
            trace_id: id,
            span_id: id,
        }
    }
}

/// A typed point on a record's lifeline. Variants mirror the datapath
/// stages the paper's figures break latency into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened. `parent` is the opener's span id (0 for roots).
    SpanBegin { name: &'static str, parent: u64 },
    /// A span closed.
    SpanEnd { name: &'static str },
    /// A work request entered a QP's send queue. `ticket` is the post-order
    /// sequence number on that QP.
    WqePosted { qpn: u32, ticket: u64 },
    /// A message started serialising onto a node's link. `queue_ns` is how
    /// long it waited behind earlier reservations (queueing delay).
    PacketEnqueued {
        node: u32,
        egress: bool,
        bytes: u64,
        queue_ns: u64,
    },
    /// A message finished crossing a node's link.
    PacketDelivered { node: u32, egress: bool, bytes: u64 },
    /// A CQE was delivered for the WR posted as (`qpn`, `ticket`).
    Completion {
        qpn: u32,
        ticket: u64,
        opcode: &'static str,
        ok: bool,
    },
    /// The broker (or client) CPU copied payload bytes. `site` names the
    /// copy; broker-side sites are prefixed `"broker."`.
    CpuCopy { site: &'static str, bytes: u64 },
    /// Records `[base_offset, next_offset)` of `stream` became durable.
    Commit {
        stream: u64,
        base_offset: u64,
        next_offset: u64,
    },
    /// The leader observed the remote write completion for a push-replicated
    /// span up to `offset` (cumulative).
    ReplAck { stream: u64, offset: u64 },
    /// A consumer was served records `[start_offset, next_offset)`.
    FetchServed {
        stream: u64,
        start_offset: u64,
        next_offset: u64,
        bytes: u64,
    },
}

impl EventKind {
    /// Short display name used by the Chrome exporter.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SpanBegin { name, .. } | EventKind::SpanEnd { name } => name,
            EventKind::WqePosted { .. } => "WqePosted",
            EventKind::PacketEnqueued { .. } => "PacketEnqueued",
            EventKind::PacketDelivered { .. } => "PacketDelivered",
            EventKind::Completion { .. } => "Completion",
            EventKind::CpuCopy { .. } => "CpuCopy",
            EventKind::Commit { .. } => "Commit",
            EventKind::ReplAck { .. } => "ReplAck",
            EventKind::FetchServed { .. } => "FetchServed",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub trace_id: u64,
    pub span_id: u64,
    pub ts_ns: u64,
    pub kind: EventKind,
}

/// Placement-independent digest of a drained trace-event stream.
///
/// Two runs of the *same* workload on *different* shard layouts allocate
/// different raw trace ids (the thread-local id counter interleaves with
/// whatever else shares the thread), so raw ids cannot be compared across
/// configurations. This digest renumbers trace and span ids by first
/// appearance in the stream — the canonical lifeline numbering — and then
/// folds every event's full content (canonical ids, virtual timestamp, and
/// all [`EventKind`] payload fields). Equal digests mean the two streams
/// describe identical lifelines doing identical things at identical virtual
/// times; any divergence in event order, timing, or payload changes the
/// digest.
pub fn canonical_trace_digest(events: &[TraceEvent]) -> u64 {
    let mut ids: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut next = 1u64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fold = |h: &mut u64, v: u64| {
        for b in v.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let fold_str = |h: &mut u64, s: &str| {
        for &b in s.as_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        *h ^= 0xff;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    fold(&mut h, events.len() as u64);
    for e in events {
        for raw in [e.trace_id, e.span_id] {
            let canon = *ids.entry(raw).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            fold(&mut h, canon);
        }
        fold(&mut h, e.ts_ns);
        match e.kind {
            EventKind::SpanBegin { name, parent } => {
                fold(&mut h, 1);
                fold_str(&mut h, name);
                // Parent span ids are canonicalized through the same map so
                // parent/child structure survives renumbering (0 = root).
                let p = if parent == 0 {
                    0
                } else {
                    *ids.entry(parent).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    })
                };
                fold(&mut h, p);
            }
            EventKind::SpanEnd { name } => {
                fold(&mut h, 2);
                fold_str(&mut h, name);
            }
            EventKind::WqePosted { qpn, ticket } => {
                fold(&mut h, 3);
                fold(&mut h, qpn as u64);
                fold(&mut h, ticket);
            }
            EventKind::PacketEnqueued {
                node,
                egress,
                bytes,
                queue_ns,
            } => {
                fold(&mut h, 4);
                fold(&mut h, node as u64);
                fold(&mut h, egress as u64);
                fold(&mut h, bytes);
                fold(&mut h, queue_ns);
            }
            EventKind::PacketDelivered { node, egress, bytes } => {
                fold(&mut h, 5);
                fold(&mut h, node as u64);
                fold(&mut h, egress as u64);
                fold(&mut h, bytes);
            }
            EventKind::Completion {
                qpn,
                ticket,
                opcode,
                ok,
            } => {
                fold(&mut h, 6);
                fold(&mut h, qpn as u64);
                fold(&mut h, ticket);
                fold_str(&mut h, opcode);
                fold(&mut h, ok as u64);
            }
            EventKind::CpuCopy { site, bytes } => {
                fold(&mut h, 7);
                fold_str(&mut h, site);
                fold(&mut h, bytes);
            }
            EventKind::Commit {
                stream,
                base_offset,
                next_offset,
            } => {
                fold(&mut h, 8);
                fold(&mut h, stream);
                fold(&mut h, base_offset);
                fold(&mut h, next_offset);
            }
            EventKind::ReplAck { stream, offset } => {
                fold(&mut h, 9);
                fold(&mut h, stream);
                fold(&mut h, offset);
            }
            EventKind::FetchServed {
                stream,
                start_offset,
                next_offset,
                bytes,
            } => {
                fold(&mut h, 10);
                fold(&mut h, stream);
                fold(&mut h, start_offset);
                fold(&mut h, next_offset);
                fold(&mut h, bytes);
            }
        }
    }
    h
}

/// Stable identifier for one partition's record stream, used to correlate
/// `Commit` and `FetchServed` events across different lifelines (the
/// consumer's fetch is a different trace than the producer's commit).
/// FNV-1a over the topic bytes mixed with the partition index.
pub fn stream_key(topic: &str, partition: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in topic.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= partition as u64;
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

thread_local! {
    // Deterministic under the single-threaded simulator: allocation order is
    // execution order, which the runtime makes reproducible.
    static NEXT_ID: Cell<u64> = const { Cell::new(1) };
    static AMBIENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

pub(crate) fn next_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// Resets the thread-local trace-id allocator (and clears any ambient
/// context). Deterministic-replay harnesses call this between runs so two
/// executions of the same seed label identical traces with identical ids —
/// making drained event logs comparable bit for bit.
pub fn reset_trace_ids() {
    NEXT_ID.with(|c| c.set(1));
    AMBIENT.with(|c| c.set(None));
}

/// The ambient trace context, if a synchronous scope set one.
pub fn current_ctx() -> Option<TraceCtx> {
    AMBIENT.with(Cell::get)
}

/// Sets the ambient trace context until the guard drops. Only sound around
/// synchronous code — never hold the guard across an `.await`.
pub fn enter_ctx(ctx: TraceCtx) -> CtxGuard {
    let prev = AMBIENT.with(|c| c.replace(Some(ctx)));
    CtxGuard { prev }
}

/// Restores the previous ambient context on drop.
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        AMBIENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_ctx_ids_are_fresh_and_nonzero() {
        let a = TraceCtx::root();
        let b = TraceCtx::root();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.trace_id, a.span_id);
    }

    #[test]
    fn ambient_ctx_nests_and_restores() {
        assert_eq!(current_ctx(), None);
        let outer = TraceCtx::root();
        let inner = TraceCtx::root();
        {
            let _g = enter_ctx(outer);
            assert_eq!(current_ctx(), Some(outer));
            {
                let _g2 = enter_ctx(inner);
                assert_eq!(current_ctx(), Some(inner));
            }
            assert_eq!(current_ctx(), Some(outer));
        }
        assert_eq!(current_ctx(), None);
    }

    #[test]
    fn stream_key_distinguishes_partitions_and_topics() {
        assert_ne!(stream_key("t", 0), stream_key("t", 1));
        assert_ne!(stream_key("t", 0), stream_key("u", 0));
        assert_eq!(stream_key("t", 0), stream_key("t", 0));
    }
}
