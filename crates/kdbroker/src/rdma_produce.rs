//! The RDMA produce module (paper Fig 2 ➎, §4.2.2).
//!
//! Owns the 16-bit file-ID namespace (Fig 4), produce grants (exclusive /
//! shared / replication), the shared-mode order machinery (Fig 5), and
//! access revocation.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use kdstorage::TopicPartition;
use kdwire::messages::ProduceMode;
use netsim::NodeId;
use rnic::{Access, MemoryRegion, RNic, ShmBuf};

use crate::data::Chain;
use crate::requests::{AckRoute, WorkItem};

/// Shared-mode coordination state.
pub struct SharedState {
    /// The 8-byte order/offset word (Fig 5), FAA-able by producers and by
    /// the broker itself for TCP produce into the same file.
    pub word_buf: ShmBuf,
    pub word_mr: MemoryRegion,
    /// Next producer order expected to commit.
    pub expected_order: Cell<u16>,
    /// Out-of-order arrivals parked until their predecessors commit,
    /// keyed by order number.
    pub pending: RefCell<HashMap<u16, PendingShared>>,
    /// Bumped on abort so stale timeout watchers do nothing.
    pub generation: Cell<u64>,
}

/// A parked out-of-order produce completion.
pub struct PendingShared {
    pub byte_len: u32,
    pub ack: AckRoute,
    pub trace: Option<kdtelem::TraceCtx>,
}

/// An active produce grant on one head file.
pub struct Grant {
    pub file_id: u16,
    pub segment: u32,
    pub mode: ProduceMode,
    pub mr: MemoryRegion,
    /// Node the grant was issued to (exclusive/replication revocation on
    /// disconnect).
    pub owner: NodeId,
    /// Set when the grant is revoked/rolled; late completions get errors.
    pub closed: Cell<bool>,
    /// Completion-order processing chain (§4.2.2: requests are processed
    /// "in the same order as the corresponding completion events").
    pub chain: Chain,
    /// Ticket counter used by the CQ pollers.
    pub next_seq: Cell<u64>,
    /// Reorder stage: commit items enter the shared request queue strictly
    /// in sequence order, even when several poller threads interleave.
    enqueue_next: Cell<u64>,
    enqueue_buf: RefCell<HashMap<u64, WorkItem>>,
    pub shared: Option<SharedState>,
}

impl Grant {
    /// Stages a commit item for enqueueing and emits the consecutive run now
    /// ready, in sequence order. A poller that finishes handling a later
    /// completion first parks its item here until its predecessors flush.
    pub fn stage_enqueue(&self, seq: u64, item: WorkItem, emit: &mut dyn FnMut(WorkItem)) {
        // In-order fast path: nothing parked, this is the next sequence —
        // skip the reorder map entirely (no allocation on the hot path).
        if seq == self.enqueue_next.get() && self.enqueue_buf.borrow().is_empty() {
            self.enqueue_next.set(seq + 1);
            emit(item);
            return;
        }
        self.enqueue_buf.borrow_mut().insert(seq, item);
        let mut next = self.enqueue_next.get();
        while let Some(item) = self.enqueue_buf.borrow_mut().remove(&next) {
            emit(item);
            next += 1;
        }
        self.enqueue_next.set(next);
    }

    /// Shared-mode in-order fast path: when this completion carries the
    /// expected order and nothing is parked, claims the order (bumping
    /// `expected_order`) and returns `true` — the caller commits inline,
    /// exactly like an exclusive grant, with no `ready` vector. Mirrors
    /// the [`stage_enqueue`](Self::stage_enqueue) fast path one level up.
    pub fn shared_fast_path(&self, order: u16) -> bool {
        let shared = self.shared.as_ref().expect("shared grant");
        if order == shared.expected_order.get() && shared.pending.borrow().is_empty() {
            shared.expected_order.set(order.wrapping_add(1));
            true
        } else {
            false
        }
    }

    /// Outcome of an arriving completion in shared mode: which spans are
    /// now committable, in order.
    pub fn on_shared_arrival(
        &self,
        order: u16,
        byte_len: u32,
        ack: AckRoute,
        trace: Option<kdtelem::TraceCtx>,
    ) -> Vec<(u32, AckRoute, Option<kdtelem::TraceCtx>)> {
        let shared = self.shared.as_ref().expect("shared grant");
        let expected = shared.expected_order.get();
        if order != expected {
            // Duplicate / ancient orders are protocol errors; park the rest.
            shared
                .pending
                .borrow_mut()
                .insert(order, PendingShared { byte_len, ack, trace });
            return Vec::new();
        }
        let mut ready = vec![(byte_len, ack, trace)];
        let mut next = expected.wrapping_add(1);
        while let Some(p) = shared.pending.borrow_mut().remove(&next) {
            ready.push((p.byte_len, p.ack, p.trace));
            next = next.wrapping_add(1);
        }
        shared.expected_order.set(next);
        ready
    }

    /// True if `order` is still parked (used by timeout watchers).
    pub fn is_pending(&self, order: u16, generation: u64) -> bool {
        match &self.shared {
            Some(s) => s.generation.get() == generation && s.pending.borrow().contains_key(&order),
            None => false,
        }
    }
}

/// The produce module: file-ID table + grant construction.
#[derive(Default)]
pub struct ProduceModule {
    files: RefCell<HashMap<u16, (TopicPartition, Rc<Grant>)>>,
    next_file_id: Cell<u16>,
}

impl ProduceModule {
    /// Resolves the file ID from a WriteWithImm's immediate data to its
    /// partition and grant (Fig 2 ➎: "maps the file ID to the requested
    /// TP").
    pub fn lookup(&self, file_id: u16) -> Option<(TopicPartition, Rc<Grant>)> {
        self.files.borrow().get(&file_id).cloned()
    }

    fn alloc_file_id(&self) -> u16 {
        let id = self.next_file_id.get();
        self.next_file_id.set(id.wrapping_add(1));
        id
    }

    /// Creates and registers a grant for `segment` of `tp`.
    pub fn create_grant(
        &self,
        nic: &RNic,
        tp: &TopicPartition,
        segment: u32,
        seg_buf: std::rc::Rc<std::cell::RefCell<Vec<u8>>>,
        mode: ProduceMode,
        owner: NodeId,
    ) -> Rc<Grant> {
        let access = Access::REMOTE_WRITE | Access::REMOTE_READ;
        let mr = nic.reg_mr(ShmBuf::from_shared(seg_buf), access);
        let shared = match mode {
            ProduceMode::Shared => {
                let word_buf = ShmBuf::zeroed(8);
                let word_mr = nic.reg_mr(word_buf.clone(), Access::all());
                Some(SharedState {
                    word_buf,
                    word_mr,
                    expected_order: Cell::new(0),
                    pending: RefCell::new(HashMap::new()),
                    generation: Cell::new(0),
                })
            }
            _ => None,
        };
        let grant = Rc::new(Grant {
            file_id: self.alloc_file_id(),
            segment,
            mode,
            mr,
            owner,
            closed: Cell::new(false),
            chain: Chain::new(),
            next_seq: Cell::new(0),
            enqueue_next: Cell::new(0),
            enqueue_buf: RefCell::new(HashMap::new()),
            shared,
        });
        self.files
            .borrow_mut()
            .insert(grant.file_id, (tp.clone(), Rc::clone(&grant)));
        grant
    }

    /// Closes a grant: deregisters its memory (in-flight writes fault, as
    /// §4.2.2's revocation requires) and fails parked completions. The file
    /// ID stays mapped so late completions can be answered with errors.
    pub fn revoke(&self, nic: &RNic, grant: &Rc<Grant>) -> Vec<AckRoute> {
        if grant.closed.get() {
            return Vec::new();
        }
        grant.closed.set(true);
        nic.dereg_mr(&grant.mr);
        let mut failed = Vec::new();
        if let Some(shared) = &grant.shared {
            nic.dereg_mr(&shared.word_mr);
            shared.generation.set(shared.generation.get() + 1);
            for (_, p) in shared.pending.borrow_mut().drain() {
                failed.push(p.ack);
            }
        }
        failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdwire::slots::{pack_shared_word, SharedWord};
    use netsim::profile::Profile;
    use netsim::Fabric;

    fn setup() -> (RNic, ProduceModule, TopicPartition) {
        let f = Fabric::new(Profile::fast_test());
        let node = f.add_node("b");
        (RNic::new(&node), ProduceModule::default(), TopicPartition::new("t", 0))
    }

    fn seg_buf() -> std::rc::Rc<std::cell::RefCell<Vec<u8>>> {
        std::rc::Rc::new(std::cell::RefCell::new(vec![0u8; 4096]))
    }

    #[test]
    fn grant_lookup_by_file_id() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (nic, m, tp) = setup();
            let g = m.create_grant(&nic, &tp, 0, seg_buf(), ProduceMode::Exclusive, NodeId(5));
            let (tp2, g2) = m.lookup(g.file_id).unwrap();
            assert_eq!(tp2, tp);
            assert_eq!(g2.file_id, g.file_id);
            assert!(m.lookup(g.file_id.wrapping_add(1)).is_none());
        });
    }

    #[test]
    fn shared_orders_drain_in_sequence() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (nic, m, tp) = setup();
            let g = m.create_grant(&nic, &tp, 0, seg_buf(), ProduceMode::Shared, NodeId(5));
            // Orders 1 and 2 arrive before 0.
            assert!(g.on_shared_arrival(1, 10, AckRoute::None, None).is_empty());
            assert!(g.on_shared_arrival(2, 20, AckRoute::None, None).is_empty());
            let ready = g.on_shared_arrival(0, 5, AckRoute::None, None);
            let lens: Vec<u32> = ready.iter().map(|(l, _, _)| *l).collect();
            assert_eq!(lens, vec![5, 10, 20]);
            assert_eq!(g.shared.as_ref().unwrap().expected_order.get(), 3);
        });
    }

    #[test]
    fn shared_order_wraps_past_u16() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (nic, m, tp) = setup();
            let g = m.create_grant(&nic, &tp, 0, seg_buf(), ProduceMode::Shared, NodeId(5));
            let s = g.shared.as_ref().unwrap();
            s.expected_order.set(0xffff);
            assert!(g.on_shared_arrival(0, 8, AckRoute::None, None).is_empty());
            let ready = g.on_shared_arrival(0xffff, 4, AckRoute::None, None);
            assert_eq!(ready.len(), 2);
            assert_eq!(s.expected_order.get(), 1);
        });
    }

    #[test]
    fn revoke_invalidates_memory_and_fails_pending() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (nic, m, tp) = setup();
            let g = m.create_grant(&nic, &tp, 0, seg_buf(), ProduceMode::Shared, NodeId(5));
            g.on_shared_arrival(3, 10, AckRoute::None, None);
            assert!(g.is_pending(3, 0));
            let failed = m.revoke(&nic, &g);
            assert_eq!(failed.len(), 1);
            assert!(g.closed.get());
            assert!(!g.mr.is_valid());
            assert!(!g.is_pending(3, 0), "generation bumped");
            // Idempotent.
            assert!(m.revoke(&nic, &g).is_empty());
        });
    }

    #[test]
    fn shared_word_readable_by_design() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (nic, m, tp) = setup();
            let g = m.create_grant(&nic, &tp, 0, seg_buf(), ProduceMode::Shared, NodeId(5));
            let s = g.shared.as_ref().unwrap();
            s.word_buf.write_u64(
                0,
                pack_shared_word(SharedWord { order: 2, offset: 64 }),
            );
            assert_eq!(s.word_buf.read_u64(0) & ((1 << 48) - 1), 64);
        });
    }
}
