//! The RDMA consume module (paper Fig 2 ➑, §4.4.2): read registration of
//! segment files and the per-consumer metadata-slot regions (Fig 9).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use kdstorage::TopicPartition;
use kdwire::slots::{SlotView, SLOT_SIZE};
use rnic::{Access, MemoryRegion, RNic, ShmBuf};

use crate::data::Partition;
use crate::metrics::Metrics;

/// A segment registered for consumer reads, reference-counted across
/// consumers.
pub struct RegSeg {
    pub mr: MemoryRegion,
    pub refs: Cell<usize>,
}

/// Back-reference from a partition's file to a consumer slot tracking it
/// (Fig 9: "Each registered file has a list of metadata slots").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRef {
    pub consumer_id: u64,
    pub slot: usize,
    pub segment: u32,
}

/// One consumer's contiguous slot region.
pub struct ConsumerSlots {
    pub buf: ShmBuf,
    pub mr: MemoryRegion,
    /// `assigns[i]` = the file slot *i* tracks.
    pub assigns: RefCell<Vec<Option<(TopicPartition, u32)>>>,
}

impl ConsumerSlots {
    /// Number of slots in the smallest contiguous prefix containing all
    /// active slots — what the consumer must read (Fig 9).
    pub fn active_span(&self) -> u32 {
        let assigns = self.assigns.borrow();
        assigns
            .iter()
            .rposition(Option::is_some)
            .map_or(0, |i| i as u32 + 1)
    }
}

/// The consume module: consumer slot regions.
pub struct ConsumeModule {
    consumers: RefCell<HashMap<u64, Rc<ConsumerSlots>>>,
    slots_per_consumer: usize,
}

impl ConsumeModule {
    pub fn new(slots_per_consumer: usize) -> Self {
        ConsumeModule {
            consumers: RefCell::new(HashMap::new()),
            slots_per_consumer,
        }
    }

    /// Gets (or creates + registers) a consumer's slot region.
    pub fn consumer(&self, nic: &RNic, metrics: &Metrics, consumer_id: u64) -> Rc<ConsumerSlots> {
        if let Some(c) = self.consumers.borrow().get(&consumer_id) {
            return Rc::clone(c);
        }
        let buf = ShmBuf::zeroed(self.slots_per_consumer * SLOT_SIZE);
        let mr = nic.reg_mr(buf.clone(), Access::REMOTE_READ);
        metrics.add(&metrics.registered_bytes, buf.len() as u64);
        let c = Rc::new(ConsumerSlots {
            buf,
            mr,
            assigns: RefCell::new(vec![None; self.slots_per_consumer]),
        });
        self.consumers
            .borrow_mut()
            .insert(consumer_id, Rc::clone(&c));
        c
    }

    /// Allocates the lowest free slot for `(tp, segment)`, keeping active
    /// slots packed toward the front ("the broker tries to keep assigned
    /// slots in close proximity", §4.4.2). Reuses an existing assignment.
    pub fn alloc_slot(
        &self,
        nic: &RNic,
        metrics: &Metrics,
        consumer_id: u64,
        tp: &TopicPartition,
        segment: u32,
    ) -> Option<(Rc<ConsumerSlots>, usize)> {
        let c = self.consumer(nic, metrics, consumer_id);
        let mut assigns = c.assigns.borrow_mut();
        if let Some(i) = assigns
            .iter()
            .position(|a| a.as_ref() == Some(&(tp.clone(), segment)))
        {
            drop(assigns);
            return Some((c, i));
        }
        let free = assigns.iter().position(Option::is_none)?;
        assigns[free] = Some((tp.clone(), segment));
        drop(assigns);
        Some((c, free))
    }

    /// Frees a slot.
    pub fn free_slot(&self, consumer_id: u64, tp: &TopicPartition, segment: u32) {
        if let Some(c) = self.consumers.borrow().get(&consumer_id) {
            let mut assigns = c.assigns.borrow_mut();
            for a in assigns.iter_mut() {
                if a.as_ref() == Some(&(tp.clone(), segment)) {
                    *a = None;
                }
            }
        }
    }

    pub fn get(&self, consumer_id: u64) -> Option<Rc<ConsumerSlots>> {
        self.consumers.borrow().get(&consumer_id).cloned()
    }
}

/// Computes the slot contents for `segment` of `p`: the last readable byte
/// (replication high watermark position) and whether more bytes may still
/// become readable in this file.
pub fn slot_view_for(p: &Partition, segment: u32) -> SlotView {
    let hwp = p.log.high_watermark_position();
    let seg = p.log.segment(segment).expect("segment exists");
    let last_readable = if segment < hwp.segment {
        seg.committed_pos()
    } else if segment == hwp.segment {
        hwp.pos
    } else {
        0
    };
    // The file stops changing once it is sealed AND the high watermark has
    // passed its end.
    let finished = seg.is_sealed() && segment <= hwp.segment && last_readable >= seg.committed_pos();
    SlotView {
        last_readable,
        mutable: !finished,
        high_watermark: p.log.high_watermark(),
    }
}

/// Refreshes every metadata slot attached to `p` (called when the high
/// watermark advances or a file seals).
pub fn update_partition_slots(p: &Partition, module: &ConsumeModule, metrics: &Metrics) {
    let refs = p.slot_refs.borrow().clone();
    for r in refs {
        if let Some(c) = module.get(r.consumer_id) {
            let view = slot_view_for(p, r.segment);
            c.buf.write_at(r.slot * SLOT_SIZE, &view.encode());
            metrics.add(&metrics.slot_updates, 1);
        }
    }
}

/// Registers `segment` of `p` for RDMA reads (refcounted).
pub fn register_read(
    nic: &RNic,
    metrics: &Metrics,
    p: &Partition,
    segment: u32,
) -> MemoryRegion {
    let mut regs = p.read_regs.borrow_mut();
    if let Some(r) = regs.get(&segment) {
        r.refs.set(r.refs.get() + 1);
        return r.mr.clone();
    }
    let seg = p.log.segment(segment).expect("segment exists");
    let mr = nic.reg_mr(ShmBuf::from_shared(seg.shared_buf()), Access::REMOTE_READ);
    metrics.add(&metrics.registered_bytes, seg.capacity() as u64);
    regs.insert(
        segment,
        RegSeg {
            mr: mr.clone(),
            refs: Cell::new(1),
        },
    );
    mr
}

/// Drops one reference to a registered segment, deregistering at zero
/// ("unregistered from RDMA access to reduce memory usage", §4.4.2).
pub fn release_read(nic: &RNic, metrics: &Metrics, p: &Partition, segment: u32) {
    let mut regs = p.read_regs.borrow_mut();
    let remove = match regs.get(&segment) {
        Some(r) => {
            r.refs.set(r.refs.get().saturating_sub(1));
            r.refs.get() == 0
        }
        None => false,
    };
    if remove {
        let r = regs.remove(&segment).unwrap();
        nic.dereg_mr(&r.mr);
        let cap = p
            .log
            .segment(segment)
            .map_or(0, |s| u64::from(s.capacity()));
        metrics
            .registered_bytes
            .set(metrics.registered_bytes.get().saturating_sub(cap));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdstorage::LogConfig;
    use kdwire::BrokerAddr;
    use netsim::profile::Profile;
    use netsim::Fabric;

    fn setup() -> (RNic, Metrics, Rc<Partition>) {
        let f = Fabric::new(Profile::fast_test());
        let node = f.add_node("b");
        let nic = RNic::new(&node);
        let p = Partition::new(
            TopicPartition::new("t", 0),
            LogConfig {
                segment_size: 4096,
                max_batch_size: 2048,
            },
            BrokerAddr {
                node: 0,
                port: 1,
                rdma_port: 2,
            },
            vec![],
            true,
            0,
        );
        (nic, Metrics::default(), p)
    }

    fn append(p: &Partition, n: usize, size: usize) {
        let mut b = kdstorage::BatchBuilder::new(1);
        for _ in 0..n {
            b.append(&kdstorage::Record::value(vec![7u8; size]));
        }
        p.log.append_batch(&b.build().unwrap()).unwrap();
        p.recompute_hw();
    }

    #[test]
    fn slot_alloc_packs_and_reuses() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (nic, m, _p) = setup();
            let module = ConsumeModule::new(4);
            let tp = TopicPartition::new("t", 0);
            let (c, i0) = module.alloc_slot(&nic, &m, 9, &tp, 0).unwrap();
            let (_, i1) = module.alloc_slot(&nic, &m, 9, &tp, 1).unwrap();
            assert_eq!((i0, i1), (0, 1));
            assert_eq!(c.active_span(), 2);
            // Same file again: same slot.
            let (_, again) = module.alloc_slot(&nic, &m, 9, &tp, 0).unwrap();
            assert_eq!(again, 0);
            // Free the first; next alloc takes the hole.
            module.free_slot(9, &tp, 0);
            assert_eq!(c.active_span(), 2, "slot 1 still active");
            let (_, i2) = module.alloc_slot(&nic, &m, 9, &tp, 2).unwrap();
            assert_eq!(i2, 0);
        });
    }

    #[test]
    fn slot_exhaustion_returns_none() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (nic, m, _p) = setup();
            let module = ConsumeModule::new(2);
            let tp = TopicPartition::new("t", 0);
            assert!(module.alloc_slot(&nic, &m, 9, &tp, 0).is_some());
            assert!(module.alloc_slot(&nic, &m, 9, &tp, 1).is_some());
            assert!(module.alloc_slot(&nic, &m, 9, &tp, 2).is_none());
        });
    }

    #[test]
    fn slot_view_follows_hw() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (_nic, _m, p) = setup();
            append(&p, 1, 100);
            let v = slot_view_for(&p, 0);
            assert!(v.mutable);
            assert_eq!(v.high_watermark, 1);
            assert_eq!(v.last_readable, p.log.head().committed_pos());
        });
    }

    #[test]
    fn sealed_fully_read_file_reports_immutable() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (_nic, _m, p) = setup();
            // Fill past one segment so it rolls.
            for _ in 0..8 {
                append(&p, 1, 900);
            }
            assert!(p.log.segment_count() >= 2);
            let v0 = slot_view_for(&p, 0);
            assert!(!v0.mutable, "sealed + fully replicated");
            assert_eq!(v0.last_readable, p.log.segment(0).unwrap().committed_pos());
            let vh = slot_view_for(&p, p.log.head_index());
            assert!(vh.mutable);
        });
    }

    #[test]
    fn register_release_refcount() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (nic, m, p) = setup();
            append(&p, 1, 64);
            let mr1 = register_read(&nic, &m, &p, 0);
            let mr2 = register_read(&nic, &m, &p, 0);
            assert_eq!(mr1.rkey(), mr2.rkey(), "same registration shared");
            assert_eq!(m.registered_bytes.get(), 4096);
            release_read(&nic, &m, &p, 0);
            assert!(mr1.is_valid(), "still one reader");
            release_read(&nic, &m, &p, 0);
            assert!(!mr1.is_valid(), "deregistered at zero refs");
            assert_eq!(m.registered_bytes.get(), 0);
        });
    }

    #[test]
    fn update_partition_slots_writes_bytes() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (nic, m, p) = setup();
            append(&p, 1, 64);
            let module = ConsumeModule::new(4);
            let (c, idx) = module.alloc_slot(&nic, &m, 7, &p.tp, 0).unwrap();
            p.slot_refs.borrow_mut().push(SlotRef {
                consumer_id: 7,
                slot: idx,
                segment: 0,
            });
            update_partition_slots(&p, &module, &m);
            let view = SlotView::decode(&c.buf.read_at(idx * SLOT_SIZE, SLOT_SIZE));
            assert_eq!(view.high_watermark, 1);
            assert!(view.mutable);
            assert_eq!(m.slot_updates.get(), 1);
        });
    }
}
