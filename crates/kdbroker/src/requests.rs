//! Work items flowing through the shared request queue (paper Fig 2 ➊➋➌).

use kdwire::{Request, Response};
use netsim::NodeId;
use sim::sync::oneshot;

/// How the result of a produce commit reaches the producer.
pub enum AckRoute {
    /// RDMA producers: a small Send on their queue pair (Fig 3's
    /// "Acknowledgement"). Identified by QP number.
    Qp(u32),
    /// TCP producers writing into an RDMA-shared file (§4.2.2 "Shared
    /// RDMA/TCP access"): the RPC response channel.
    Rpc(oneshot::Sender<Response>),
    /// Push replication: no ack message; the leader observes the RDMA write
    /// completion instead (§4.3.2).
    None,
}

/// A unit of work for the API worker pool.
pub enum WorkItem {
    /// A decoded RPC from the TCP or OSU transport.
    Rpc {
        peer: NodeId,
        request: Request,
        reply: oneshot::Sender<Response>,
        /// Caller's lifeline, carried in by the frame header.
        trace: Option<kdtelem::TraceCtx>,
    },
    /// A WriteWithImm completion from the RDMA produce module: records were
    /// already written into a TP file; verify and commit them (§4.2.2).
    RdmaCommit {
        file_id: u16,
        order: u16,
        byte_len: u32,
        /// Sequence assigned by the poller in completion order; workers
        /// must process commits of one file in this order.
        seq: u64,
        ack: AckRoute,
        /// Producer's lifeline, carried in by the WriteImm's WR context.
        trace: Option<kdtelem::TraceCtx>,
    },
    /// A run of consecutive-sequence commits on one (non-shared) file,
    /// drained from the CQ in a single poll batch: the worker takes the
    /// write lock once, charges the verify cost once, commits every span in
    /// sequence order, and rides same-QP acks on one doorbell. Only built
    /// when `cq_batch > 1`; a single-completion drain always ships the
    /// plain [`RdmaCommit`](Self::RdmaCommit).
    RdmaCommitBatch {
        file_id: u16,
        items: Vec<CommitItem>,
    },
}

/// One commit of an [`WorkItem::RdmaCommitBatch`] run.
pub struct CommitItem {
    pub order: u16,
    pub byte_len: u32,
    pub seq: u64,
    pub ack: AckRoute,
    pub trace: Option<kdtelem::TraceCtx>,
}
