//! The KafkaDirect broker (paper Fig 2).
//!
//! One `Broker` per fabric node. The internal structure mirrors the paper's
//! figure:
//!
//! * **Network modules** — TCP processor threads (➊) and, for the OSU-Kafka
//!   baseline, a two-sided RDMA Send/Recv transport; both feed the shared
//!   request queue. The KafkaDirect RDMA network module (➋) polls completion
//!   queues of client QPs and enqueues produce completions.
//! * **API modules** — a pool of API worker threads (➌) that verify, assign
//!   offsets, and commit (➍), consulting the RDMA produce module (➎) for
//!   file-ID mapping and order enforcement.
//! * **Replication modules** — TCP pull fetchers (➏) and the RDMA push
//!   module (➐) with credit-based flow control and opportunistic batching.
//! * **Data management** — topic partitions, per-TP write locks, RDMA
//!   metadata slots (➑) for consumers.
//!
//! Every datapath can be toggled independently (`RdmaToggles`), exactly as
//! the paper's evaluation requires ("KafkaDirect supports enabling only
//! particular RDMA modules", §5.3).

pub mod api;
pub mod broker;
pub mod busy;
pub mod config;
pub mod data;
pub mod metrics;
pub mod rdma_consume;
pub mod rdma_net;
pub mod rdma_produce;
pub mod repl;
pub mod requests;
pub mod server_osu;
pub mod server_tcp;

pub use broker::Broker;
pub use config::{BrokerConfig, ConnMode, ObserveConfig, RdmaToggles, Transport};
pub use metrics::MetricsSnapshot;
