//! Broker configuration.

use std::time::Duration;

use kdstorage::{LogConfig, StorageConfig};

/// Which transport serves the *request/response* datapaths (produce RPCs,
/// fetches, control plane). This is the axis that separates the paper's
/// three systems:
///
/// * `Tcp` + all RDMA toggles off  → "Kafka" (the unmodified baseline),
/// * `RdmaSendRecv` + toggles off  → "OSU Kafka" (two-sided RDMA messaging
///   with intermediate-buffer copies, §4),
/// * `Tcp` + RDMA toggles on       → "KafkaDirect" (TCP control plane,
///   one-sided RDMA datapaths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    Tcp,
    RdmaSendRecv,
}

/// Per-datapath RDMA switches (§5: each module evaluated in isolation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RdmaToggles {
    /// §4.2.2 — producers write records straight into TP files.
    pub produce: bool,
    /// §4.3.2 — leaders push records to followers with WriteWithImm.
    pub replicate: bool,
    /// §4.4.2 — consumers fetch records and metadata slots with RDMA Reads.
    pub consume: bool,
}

impl RdmaToggles {
    pub fn all() -> Self {
        RdmaToggles {
            produce: true,
            replicate: true,
            consume: true,
        }
    }

    pub fn none() -> Self {
        Self::default()
    }

    pub fn any(&self) -> bool {
        self.produce || self.replicate || self.consume
    }
}

/// How the broker's RDMA produce module provisions receive state for its
/// client connections — the connection-scaling axis (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnMode {
    /// One receive queue per accepted QP, `recv_depth` buffers each:
    /// broker recv memory is O(clients × recv_depth) and every client
    /// pins a NIC QP context (the paper's 12-node configuration).
    #[default]
    PerQp,
    /// One shared receive queue feeds every accepted produce QP:
    /// `srq_depth` buffers total, O(1) in client count. QPs still pin
    /// NIC contexts.
    Srq,
    /// SRQ plus DCT-style QP multiplexing: accepted connections borrow a
    /// small lent QP pool (`mux_pool` contexts pinned once) instead of
    /// pinning a context each — NIC cache footprint stays O(pool).
    SrqMux,
}

impl ConnMode {
    pub fn uses_srq(self) -> bool {
        matches!(self, ConnMode::Srq | ConnMode::SrqMux)
    }

    pub fn multiplexed(self) -> bool {
        self == ConnMode::SrqMux
    }
}

/// Continuous-observability switches. `None` (the default) runs the broker
/// exactly as before — no sampler task, no watchdog task, bit-identical
/// schedules. When set, the broker starts a [`kdtelem::Sampler`] and a
/// [`kdtelem::Watchdog`] on its registry and serves their dumps over the
/// admin path (`Request::Series` / `Request::Health`).
#[derive(Debug, Clone)]
pub struct ObserveConfig {
    /// Virtual-time sampling interval for the time-series recorder.
    pub sample_interval: Duration,
    /// Ring capacity per instrument series.
    pub series_capacity: usize,
    /// Watchdog poll period.
    pub watchdog_poll: Duration,
    /// Virtual time without datapath progress before a stall is declared.
    pub watchdog_budget: Duration,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            sample_interval: Duration::from_millis(1),
            series_capacity: 4096,
            watchdog_poll: Duration::from_micros(500),
            watchdog_budget: Duration::from_millis(5),
        }
    }
}

/// Full broker configuration. Defaults follow the paper's §5 "Settings":
/// eight API threads, three network threads, preallocated log files.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// TCP control/data port.
    pub tcp_port: u16,
    /// RDMA CM base port; the broker binds `rdma_port` (produce QPs),
    /// `rdma_port + 1` (OSU transport), `rdma_port + 2` (consumer read-only
    /// QPs).
    pub rdma_port: u16,
    pub transport: Transport,
    pub rdma: RdmaToggles,
    /// Network processor threads (default 3).
    pub net_threads: usize,
    /// API worker threads (default 8).
    pub api_workers: usize,
    /// RDMA completion pollers (threads of the RDMA network module ➋).
    pub rdma_pollers: usize,
    /// Shared request queue depth (Kafka `queued.max.requests`).
    pub request_queue_depth: usize,
    pub log: LogConfig,
    /// Credits a follower grants a push-replication leader (§4.3.2).
    pub replication_credits: u32,
    /// Maximum bytes merged into one push-replication RDMA Write. The paper
    /// selects 1 KiB from the Fig 8 sweep.
    pub replication_max_batch: u32,
    /// Replica long-poll wait when no data is available (§4.3.1 pull).
    pub replica_fetch_wait: Duration,
    /// Replica fetch size cap.
    pub replica_fetch_max_bytes: u32,
    /// Shared-mode hole timeout: how long a produce completion may wait for
    /// its predecessors before the session is aborted (§4.2.2).
    pub shared_order_timeout: Duration,
    /// Receive-CQ capacity of the RDMA produce module.
    pub cq_capacity: usize,
    /// Maximum completions one poller takes per CQ drain (`ibv_poll_cq`
    /// batch size). `1` reproduces the pre-batching one-completion-per-
    /// wakeup loop exactly (bit-identical schedules); larger values
    /// amortise the wakeup and poll charges across the batch.
    pub cq_batch: usize,
    /// Receives pre-posted per accepted produce QP.
    pub recv_depth: usize,
    /// Receive-state provisioning for produce connections (per-QP queues,
    /// a shared receive queue, or SRQ + QP multiplexing).
    pub conn_mode: ConnMode,
    /// Buffers posted on the produce SRQ (SRQ modes only): the broker's
    /// *total* produce receive depth, independent of client count.
    pub srq_depth: usize,
    /// Lending QPs in the multiplexed pool (`SrqMux` only).
    pub mux_pool: usize,
    /// Metadata slots per consumer (Fig 9 region size).
    pub slots_per_consumer: usize,
    /// OSU transport: request receive buffer size (must fit the largest
    /// produce request).
    pub osu_recv_buf: usize,
    /// OSU transport: pre-posted request buffers per connection.
    pub osu_recv_depth: usize,
    /// Continuous telemetry (sampler + watchdog); `None` = off (default).
    pub observe: Option<ObserveConfig>,
    /// Storage backend selection: in-memory (default) or tiered
    /// file-backed with a zero-copy hot tier.
    pub storage: StorageConfig,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            tcp_port: 9092,
            rdma_port: 18515,
            transport: Transport::Tcp,
            rdma: RdmaToggles::none(),
            net_threads: 3,
            api_workers: 8,
            rdma_pollers: 2,
            request_queue_depth: 500,
            log: LogConfig::default(),
            replication_credits: 16,
            replication_max_batch: 1024,
            replica_fetch_wait: Duration::from_millis(500),
            replica_fetch_max_bytes: 1024 * 1024,
            shared_order_timeout: Duration::from_millis(2),
            cq_capacity: 8192,
            cq_batch: 16,
            recv_depth: 256,
            conn_mode: ConnMode::PerQp,
            srq_depth: 4096,
            mux_pool: 8,
            slots_per_consumer: 64,
            osu_recv_buf: 1200 * 1024,
            osu_recv_depth: 8,
            observe: None,
            storage: StorageConfig::default(),
        }
    }
}

impl BrokerConfig {
    /// The unmodified-Kafka baseline.
    pub fn kafka() -> Self {
        BrokerConfig::default()
    }

    /// The OSU-Kafka baseline: request messaging over two-sided RDMA, no
    /// one-sided datapaths.
    pub fn osu() -> Self {
        BrokerConfig {
            transport: Transport::RdmaSendRecv,
            ..BrokerConfig::default()
        }
    }

    /// KafkaDirect with the given datapath toggles.
    pub fn kafkadirect(rdma: RdmaToggles) -> Self {
        BrokerConfig {
            rdma,
            ..BrokerConfig::default()
        }
    }

    pub fn with_log(mut self, log: LogConfig) -> Self {
        self.log = log;
        self
    }

    pub fn with_workers(mut self, api_workers: usize) -> Self {
        self.api_workers = api_workers;
        self
    }

    pub fn with_cq_batch(mut self, cq_batch: usize) -> Self {
        assert!(cq_batch >= 1);
        self.cq_batch = cq_batch;
        self
    }

    pub fn with_rdma_pollers(mut self, rdma_pollers: usize) -> Self {
        assert!(rdma_pollers >= 1);
        self.rdma_pollers = rdma_pollers;
        self
    }

    pub fn with_conn_mode(mut self, conn_mode: ConnMode) -> Self {
        self.conn_mode = conn_mode;
        self
    }

    pub fn with_srq_depth(mut self, srq_depth: usize) -> Self {
        assert!(srq_depth >= 1);
        self.srq_depth = srq_depth;
        self
    }

    pub fn with_mux_pool(mut self, mux_pool: usize) -> Self {
        assert!(mux_pool >= 1);
        self.mux_pool = mux_pool;
        self
    }

    pub fn with_recv_depth(mut self, recv_depth: usize) -> Self {
        assert!(recv_depth >= 1);
        self.recv_depth = recv_depth;
        self
    }

    pub fn with_observe(mut self, observe: ObserveConfig) -> Self {
        self.observe = Some(observe);
        self
    }

    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper_settings() {
        let c = BrokerConfig::default();
        assert_eq!(c.api_workers, 8);
        assert_eq!(c.net_threads, 3);
        assert_eq!(c.replication_max_batch, 1024);
        assert!(!c.rdma.any());
    }

    #[test]
    fn presets() {
        assert_eq!(BrokerConfig::kafka().transport, Transport::Tcp);
        assert_eq!(BrokerConfig::osu().transport, Transport::RdmaSendRecv);
        assert!(BrokerConfig::kafkadirect(RdmaToggles::all()).rdma.any());
    }
}
