//! The RDMA network module (paper Fig 2, ➋): accepts client queue pairs,
//! polls the shared receive completion queue, and turns WriteWithImm
//! completions into work items — in completion order, which the produce
//! module's correctness depends on (§4.2.2).

use std::rc::Rc;
use std::time::Duration;

use rnic::{CqOpcode, Cqe, QpOptions, RdmaListener, RecvWr, SendWr, WorkRequest};

use crate::broker::BrokerInner;
use crate::requests::{AckRoute, CommitItem, WorkItem};

/// Port offsets on top of `config.rdma_port`.
pub const PRODUCE_PORT_OFF: u16 = 0;
pub const OSU_PORT_OFF: u16 = 1;
pub const CONSUME_PORT_OFF: u16 = 2;

/// Cost of handling one RDMA completion on a poller thread (cheap: no
/// copies, just demux). The wakeup cost when idle is modelled by the poller
/// loop itself.
pub const POLL_COST: Duration = Duration::from_nanos(500);

pub fn start(b: &Rc<BrokerInner>) {
    start_produce_listener(b);
    start_consume_listener(b);
    // CQEs taken per drain, across all pollers of this broker (the
    // amortisation signal gated by kdperf).
    let batch_hist = kdtelem::current().histogram("kdbroker", "cq.batch");
    for _ in 0..b.config.rdma_pollers {
        let b = Rc::clone(b);
        let hist = batch_hist.clone();
        sim::spawn(async move { poller_loop(b, hist).await });
    }
    // Drain the ack send CQ (acks are unsignaled; only errors complete).
    let ack_cq = b.ack_send_cq.clone();
    sim::spawn(async move { while ack_cq.next().await.is_some() {} });
}

/// Accepts produce/replication QPs: they share the broker receive CQ and get
/// zero-length receives replenished by the pollers.
fn start_produce_listener(b: &Rc<BrokerInner>) {
    let mut listener = RdmaListener::bind(&b.nic, b.config.rdma_port + PRODUCE_PORT_OFF);
    let b = Rc::clone(b);
    sim::spawn(async move {
        while let Some(inc) = listener.accept().await {
            let from = inc.from();
            let qp = inc.accept(
                &b.nic,
                b.ack_send_cq.clone(),
                b.recv_cq.clone(),
                QpOptions {
                    srq: b.srq.clone(),
                    multiplexed: b.config.conn_mode.multiplexed(),
                    ..QpOptions::default()
                },
            );
            if b.srq.is_none() {
                // Per-QP mode: every connection gets its own pre-posted
                // receive queue. SRQ modes posted the shared pool once in
                // `Broker::start`.
                for i in 0..b.config.recv_depth {
                    let _ = qp.post_recv(RecvWr {
                        wr_id: i as u64,
                        buf: None,
                    });
                }
            }
            // A multiplexed connection time-shares the lent QP pool; the
            // lease lives exactly as long as the connection (held by the
            // disconnect watcher below).
            let lease = b.mux_pool.as_ref().map(|pool| pool.lease());
            let qpn = qp.qpn();
            b.produce_qps.borrow_mut().insert(qpn, qp.clone());
            // Watch for client failure: revoke produce grants held by that
            // node (§4.2.2 failure handling).
            let b2 = Rc::clone(&b);
            sim::spawn(async move {
                qp.disconnected().await;
                drop(lease);
                b2.produce_qps.borrow_mut().remove(&qpn);
                crate::api::revoke_grants_of_node(&b2, from);
            });
        }
    });
}

/// Accepts consumer QPs. Consumers only issue RDMA Reads, which never
/// involve this broker's tasks — the CQs here exist only to satisfy the
/// verbs API. This is the "no CPU involvement" path of §4.4.2/§5.3.
fn start_consume_listener(b: &Rc<BrokerInner>) {
    let mut listener = RdmaListener::bind(&b.nic, b.config.rdma_port + CONSUME_PORT_OFF);
    let b = Rc::clone(b);
    sim::spawn(async move {
        while let Some(inc) = listener.accept().await {
            let send_cq = b.nic.create_cq(64);
            let recv_cq = b.nic.create_cq(64);
            let qp = inc.accept(&b.nic, send_cq, recv_cq, QpOptions::default());
            b.consume_qps.borrow_mut().push(qp);
        }
    });
}

/// One RDMA-module poller thread: completion → (file id, order) → shared
/// request queue. Sequence numbers are assigned here, in completion order.
///
/// The loop drains the CQ in batches of up to `config.cq_batch` (the
/// `ibv_poll_cq` batch size): the whole batch is sequenced in one
/// synchronous step, the wakeup is paid once, `POLL_COST` covers the first
/// completion and `cqe_batch_marginal` each additional one, consumed
/// receives are replenished with one chained `post_recv_list` per QP, and
/// same-QP error acks ride one doorbell. With `cq_batch == 1` every step
/// degenerates to the one-completion-per-iteration loop, bit for bit.
async fn poller_loop(b: Rc<BrokerInner>, batch_hist: kdtelem::Histogram) {
    let wakeup = b.profile.cpu.wakeup;
    let marginal = b.profile.net.cqe_batch_marginal;
    let max_batch = b.config.cq_batch.max(1);
    // Pooled per-poller scratch: steady-state batches allocate nothing.
    let mut batch: Vec<Cqe> = Vec::with_capacity(max_batch);
    let mut seqs: Vec<Option<u64>> = Vec::with_capacity(max_batch);
    let mut replenish: Vec<(u32, u64)> = Vec::with_capacity(max_batch);
    let mut err_acks: Vec<u32> = Vec::new();
    let mut ack_wrs: Vec<SendWr> = Vec::new();
    let mut staged: Vec<WorkItem> = Vec::with_capacity(max_batch);
    loop {
        if !b.alive.get() {
            return; // broker crashed
        }
        // CQ overflow (`None`) means the produce module is dead. Real
        // brokers would tear down; benches never reach this.
        let Some(was_idle) = drain_or_wait(&b.recv_cq, &mut batch, max_batch).await else {
            return;
        };
        // Assign every commit sequence in one synchronous step, in drained
        // (completion) order: with several poller threads, interleaving a
        // sleep between pop and sequencing could invert the completion
        // order — exactly the race §4.2.2 rules out ("processing RDMA
        // produce requests in the same order as the corresponding
        // completion events are generated"). Batching preserves the
        // invariant by construction: nothing awaits between the drain above
        // and the end of this loop.
        seqs.clear();
        for cqe in &batch {
            let seq = if cqe.ok() && cqe.opcode == CqOpcode::RecvRdmaWithImm {
                let (file_id, _) = kdwire::unpack_imm(cqe.imm.unwrap_or(0));
                b.produce_module.lookup(file_id).map(|(_, grant)| {
                    let s = grant.next_seq.get();
                    grant.next_seq.set(s + 1);
                    s
                })
            } else {
                None
            };
            seqs.push(seq);
        }
        batch_hist.record(batch.len() as u64);
        // Costs: blocking-poll wakeup (when idle, once per batch) + the
        // first completion's poll charge + the marginal per-CQE charge.
        if was_idle {
            sim::time::sleep(wakeup).await;
        }
        sim::time::sleep(POLL_COST + marginal * (batch.len() as u32 - 1)).await;
        // Replenish the consumed receives: one chained post per QP, or —
        // in SRQ modes — one chained post back onto the shared queue
        // (buffers return to the pool regardless of which QP consumed
        // them, so a dead client never leaks receive state).
        replenish.clear();
        for cqe in &batch {
            if cqe.ok() && cqe.opcode == CqOpcode::RecvRdmaWithImm {
                replenish.push((cqe.qpn, cqe.wr_id));
            }
        }
        if let Some(srq) = &b.srq {
            if !replenish.is_empty() {
                let _ = srq.post_recv_list(
                    replenish
                        .iter()
                        .map(|&(_, wr_id)| RecvWr { wr_id, buf: None }),
                );
            }
        } else {
            replenish.sort_unstable();
            let mut i = 0;
            while i < replenish.len() {
                let qpn = replenish[i].0;
                let j = replenish[i..].partition_point(|&(q, _)| q == qpn) + i;
                let qp = b.produce_qps.borrow().get(&qpn).cloned();
                if let Some(qp) = qp {
                    let _ = qp.post_recv_list(replenish[i..j].iter().map(|&(_, wr_id)| RecvWr {
                        wr_id,
                        buf: None,
                    }));
                }
                i = j;
            }
        }
        // Route each completion, still in drained order.
        err_acks.clear();
        staged.clear();
        for (cqe, seq) in batch.iter().zip(&seqs) {
            if !cqe.ok() || cqe.opcode != CqOpcode::RecvRdmaWithImm {
                continue; // flushed recv of a dead QP
            }
            let (file_id, order) = kdwire::unpack_imm(cqe.imm.unwrap_or(0));
            let Some(seq) = *seq else {
                // Unknown file: answer with an error ack (coalesced below).
                err_acks.push(cqe.qpn);
                continue;
            };
            let item = WorkItem::RdmaCommit {
                file_id,
                order,
                byte_len: cqe.byte_len,
                seq,
                ack: AckRoute::Qp(cqe.qpn),
                // The producer's lifeline rode in on the WriteImm's WR
                // context.
                trace: cqe.trace,
            };
            let (_, grant) = b.produce_module.lookup(file_id).expect("seq implies grant");
            if max_batch == 1 {
                // The one-CQE loop ships each commit through its own
                // handoff task, exactly as before batching existed.
                enqueue_in_order(&b, &grant, seq, item);
            } else {
                // Collect the in-order emission and group it below: a run
                // of same-file commits becomes one work item.
                grant.stage_enqueue(seq, item, &mut |item| staged.push(item));
            }
        }
        if !staged.is_empty() {
            hand_off_staged(&b, &mut staged);
        }
        if !err_acks.is_empty() {
            send_error_acks(&b, &mut err_acks, &mut ack_wrs);
        }
    }
}

/// Ships the batch's staged commits to the API workers, merging each run of
/// same-file commits into one [`WorkItem::RdmaCommitBatch`] (one queue
/// handoff, one lock/charge at the worker, one ack doorbell per QP).
/// Shared-mode grants keep per-item work items: their reorder machinery
/// (Fig 5) is driven per completion. Emission order — which is sequence
/// order per grant — is preserved, so the shared request queue stays sorted
/// and a lone worker never stalls behind a later commit.
fn hand_off_staged(b: &Rc<BrokerInner>, staged: &mut Vec<WorkItem>) {
    let mut run: Vec<CommitItem> = Vec::new();
    let mut run_file: u16 = 0;
    for item in staged.drain(..) {
        match item {
            WorkItem::RdmaCommit {
                file_id,
                order,
                byte_len,
                seq,
                ack,
                trace,
            } if b
                .produce_module
                .lookup(file_id)
                .is_none_or(|(_, g)| g.shared.is_none()) =>
            {
                if !run.is_empty() && run_file != file_id {
                    flush_run(b, run_file, &mut run);
                }
                run_file = file_id;
                run.push(CommitItem {
                    order,
                    byte_len,
                    seq,
                    ack,
                    trace,
                });
            }
            other => {
                flush_run(b, run_file, &mut run);
                spawn_handoff(b, other);
            }
        }
    }
    flush_run(b, run_file, &mut run);
}

/// Hands one same-file run to the workers: a lone commit ships as the plain
/// per-item work item (identical to the unbatched path), a longer run as
/// one batch item.
fn flush_run(b: &Rc<BrokerInner>, file_id: u16, run: &mut Vec<CommitItem>) {
    if run.is_empty() {
        return;
    }
    let item = if run.len() == 1 {
        let it = run.pop().unwrap();
        WorkItem::RdmaCommit {
            file_id,
            order: it.order,
            byte_len: it.byte_len,
            seq: it.seq,
            ack: it.ack,
            trace: it.trace,
        }
    } else {
        WorkItem::RdmaCommitBatch {
            file_id,
            items: std::mem::take(run),
        }
    };
    spawn_handoff(b, item);
}

/// The 11 µs queue transfer to the API workers, overlapped across requests.
fn spawn_handoff(b: &Rc<BrokerInner>, item: WorkItem) {
    let handoff = b.profile.cpu.handoff;
    let b2 = Rc::clone(b);
    sim::spawn_detached(async move {
        sim::time::sleep(handoff).await;
        let _ = b2.queue.send(item).await;
    });
}

/// Drains up to `max` completions into `out` (cleared first): non-blocking
/// drain, then — if the CQ was empty — one blocking wait plus a sweep of
/// whatever piled up behind the completion we slept on. Returns
/// `Some(was_idle)` (`true` when the blocking wait was taken, so the caller
/// charges the wakeup), or `None` once the CQ has overflowed. With
/// `max == 1` this is exactly `cq.next().await`.
pub(crate) async fn drain_or_wait(
    cq: &rnic::CompletionQueue,
    out: &mut Vec<Cqe>,
    max: usize,
) -> Option<bool> {
    out.clear();
    if cq.drain_into(out, max) > 0 {
        return Some(false);
    }
    let cqe = cq.next().await?;
    out.push(cqe);
    if max > 1 {
        cq.drain_into(out, max - 1);
    }
    Some(true)
}

/// Posts `AccessDenied` acks for the batch's unknown-file completions,
/// chaining same-QP acks into one `post_send_list` (one doorbell per QP
/// instead of one per ack).
fn send_error_acks(b: &Rc<BrokerInner>, qpns: &mut [u32], wrs: &mut Vec<SendWr>) {
    qpns.sort_unstable();
    let mut i = 0;
    while i < qpns.len() {
        let qpn = qpns[i];
        let j = qpns[i..].partition_point(|&q| q == qpn) + i;
        let qp = b.produce_qps.borrow().get(&qpn).cloned();
        if let Some(qp) = qp {
            wrs.clear();
            for _ in i..j {
                let idx = b.ack_ring_next.get();
                b.ack_ring_next.set((idx + 1) % b.ack_ring.len());
                let buf = &b.ack_ring[idx];
                buf.with_mut(|s| {
                    s[0] = kdwire::ErrorCode::AccessDenied as u8;
                    s[1..9].copy_from_slice(&0u64.to_le_bytes());
                });
                wrs.push(SendWr::unsignaled(
                    0,
                    WorkRequest::Send {
                        local: buf.as_slice(),
                    },
                ));
            }
            let n = wrs.len();
            let _ = qp.post_send_list(wrs.drain(..));
            b.metrics.add(&b.metrics.acks_sent, n as u64);
        }
        i = j;
    }
}

/// Stages `item` and hands any now-consecutive run to the API workers (the
/// 11 µs queue transfer, overlapped across requests). Keeping the shared
/// queue in sequence order is what lets a lone API worker make progress:
/// a worker never waits on a commit that is still queued behind it.
pub fn enqueue_in_order(
    b: &Rc<BrokerInner>,
    grant: &Rc<crate::rdma_produce::Grant>,
    seq: u64,
    item: WorkItem,
) {
    grant.stage_enqueue(seq, item, &mut |item| spawn_handoff(b, item));
}

/// Sends a batch's success acks, chaining same-QP acks into one
/// `post_send_list` (one doorbell per QP). `acks` is `(qpn, base_offset)`
/// in commit order; the stable sort keeps per-QP ack order, which producers
/// rely on (acks correlate FIFO per QP). Drains `acks`.
pub fn send_ack_chained(b: &Rc<BrokerInner>, acks: &mut Vec<(u32, u64)>) {
    acks.sort_by_key(|&(qpn, _)| qpn);
    let mut wrs: Vec<SendWr> = Vec::with_capacity(acks.len());
    let mut i = 0;
    while i < acks.len() {
        let qpn = acks[i].0;
        let j = acks[i..].partition_point(|&(q, _)| q == qpn) + i;
        let qp = b.produce_qps.borrow().get(&qpn).cloned();
        if let Some(qp) = qp {
            wrs.clear();
            for &(_, base_offset) in &acks[i..j] {
                let idx = b.ack_ring_next.get();
                b.ack_ring_next.set((idx + 1) % b.ack_ring.len());
                let buf = &b.ack_ring[idx];
                buf.with_mut(|s| {
                    s[0] = kdwire::ErrorCode::None as u8;
                    s[1..9].copy_from_slice(&base_offset.to_le_bytes());
                });
                wrs.push(SendWr::unsignaled(
                    0,
                    WorkRequest::Send {
                        local: buf.as_slice(),
                    },
                ));
            }
            let n = wrs.len();
            let _ = qp.post_send_list(wrs.drain(..));
            b.metrics.add(&b.metrics.acks_sent, n as u64);
        }
        i = j;
    }
    acks.clear();
}

/// Sends a produce acknowledgment (or replication credit return) on a
/// client QP: `[error u8][base_offset u64]`, unsignaled.
pub fn send_ack(b: &Rc<BrokerInner>, qpn: u32, error: kdwire::ErrorCode, base_offset: u64) {
    let qp = match b.produce_qps.borrow().get(&qpn) {
        Some(qp) => qp.clone(),
        None => return,
    };
    // Acks are written through a pre-allocated round-robin ring: the WR has
    // executed long before the ring wraps, so the slot is free to reuse.
    let idx = b.ack_ring_next.get();
    b.ack_ring_next.set((idx + 1) % b.ack_ring.len());
    let buf = &b.ack_ring[idx];
    buf.with_mut(|s| {
        s[0] = error as u8;
        s[1..9].copy_from_slice(&base_offset.to_le_bytes());
    });
    let _ = qp.post_send(SendWr::unsignaled(
        0,
        WorkRequest::Send {
            local: buf.as_slice(),
        },
    ));
    b.metrics.add(&b.metrics.acks_sent, 1);
}

/// Decodes an ack payload on the client side.
pub fn decode_ack(bytes: &[u8]) -> (kdwire::ErrorCode, u64) {
    let error = match bytes.first() {
        Some(0) => kdwire::ErrorCode::None,
        Some(1) => kdwire::ErrorCode::UnknownTopicOrPartition,
        Some(2) => kdwire::ErrorCode::NotLeader,
        Some(3) => kdwire::ErrorCode::CorruptBatch,
        Some(4) => kdwire::ErrorCode::AccessDenied,
        Some(5) => kdwire::ErrorCode::OutOfSpace,
        Some(6) => kdwire::ErrorCode::InvalidRequest,
        Some(7) => kdwire::ErrorCode::AlreadyExists,
        Some(8) => kdwire::ErrorCode::OrderTimeout,
        Some(10) => kdwire::ErrorCode::FencedEpoch,
        _ => kdwire::ErrorCode::Internal,
    };
    let base_offset = bytes
        .get(1..9)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0);
    (error, base_offset)
}
