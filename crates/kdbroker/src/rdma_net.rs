//! The RDMA network module (paper Fig 2, ➋): accepts client queue pairs,
//! polls the shared receive completion queue, and turns WriteWithImm
//! completions into work items — in completion order, which the produce
//! module's correctness depends on (§4.2.2).

use std::rc::Rc;
use std::time::Duration;

use rnic::{CqOpcode, QpOptions, RdmaListener, RecvWr, SendWr, WorkRequest};

use crate::broker::BrokerInner;
use crate::requests::{AckRoute, WorkItem};

/// Port offsets on top of `config.rdma_port`.
pub const PRODUCE_PORT_OFF: u16 = 0;
pub const OSU_PORT_OFF: u16 = 1;
pub const CONSUME_PORT_OFF: u16 = 2;

/// Cost of handling one RDMA completion on a poller thread (cheap: no
/// copies, just demux). The wakeup cost when idle is modelled by the poller
/// loop itself.
pub const POLL_COST: Duration = Duration::from_nanos(500);

pub fn start(b: &Rc<BrokerInner>) {
    start_produce_listener(b);
    start_consume_listener(b);
    for _ in 0..b.config.rdma_pollers {
        let b = Rc::clone(b);
        sim::spawn(async move { poller_loop(b).await });
    }
    // Drain the ack send CQ (acks are unsignaled; only errors complete).
    let ack_cq = b.ack_send_cq.clone();
    sim::spawn(async move { while ack_cq.next().await.is_some() {} });
}

/// Accepts produce/replication QPs: they share the broker receive CQ and get
/// zero-length receives replenished by the pollers.
fn start_produce_listener(b: &Rc<BrokerInner>) {
    let mut listener = RdmaListener::bind(&b.nic, b.config.rdma_port + PRODUCE_PORT_OFF);
    let b = Rc::clone(b);
    sim::spawn(async move {
        while let Some(inc) = listener.accept().await {
            let from = inc.from();
            let qp = inc.accept(
                &b.nic,
                b.ack_send_cq.clone(),
                b.recv_cq.clone(),
                QpOptions::default(),
            );
            for i in 0..b.config.recv_depth {
                let _ = qp.post_recv(RecvWr {
                    wr_id: i as u64,
                    buf: None,
                });
            }
            let qpn = qp.qpn();
            b.produce_qps.borrow_mut().insert(qpn, qp.clone());
            // Watch for client failure: revoke produce grants held by that
            // node (§4.2.2 failure handling).
            let b2 = Rc::clone(&b);
            sim::spawn(async move {
                qp.disconnected().await;
                b2.produce_qps.borrow_mut().remove(&qpn);
                crate::api::revoke_grants_of_node(&b2, from);
            });
        }
    });
}

/// Accepts consumer QPs. Consumers only issue RDMA Reads, which never
/// involve this broker's tasks — the CQs here exist only to satisfy the
/// verbs API. This is the "no CPU involvement" path of §4.4.2/§5.3.
fn start_consume_listener(b: &Rc<BrokerInner>) {
    let mut listener = RdmaListener::bind(&b.nic, b.config.rdma_port + CONSUME_PORT_OFF);
    let b = Rc::clone(b);
    sim::spawn(async move {
        while let Some(inc) = listener.accept().await {
            let send_cq = b.nic.create_cq(64);
            let recv_cq = b.nic.create_cq(64);
            let qp = inc.accept(&b.nic, send_cq, recv_cq, QpOptions::default());
            b.consume_qps.borrow_mut().push(qp);
        }
    });
}

/// One RDMA-module poller thread: completion → (file id, order) → shared
/// request queue. Sequence numbers are assigned here, in completion order.
async fn poller_loop(b: Rc<BrokerInner>) {
    let wakeup = b.profile.cpu.wakeup;
    loop {
        if !b.alive.get() {
            return; // broker crashed
        }
        // Pop the completion and assign its commit sequence in one
        // synchronous step: with several poller threads, interleaving a
        // sleep between pop and sequencing could invert the completion
        // order — exactly the race §4.2.2 rules out ("processing RDMA
        // produce requests in the same order as the corresponding
        // completion events are generated").
        let (cqe, was_idle) = match b.recv_cq.poll() {
            Some(c) => (c, false),
            None => {
                let Some(c) = b.recv_cq.next().await else {
                    // CQ overflow: the produce module is dead. Real brokers
                    // would tear down; benches never reach this.
                    return;
                };
                (c, true)
            }
        };
        let seq = if cqe.ok() && cqe.opcode == CqOpcode::RecvRdmaWithImm {
            let (file_id, _) = kdwire::unpack_imm(cqe.imm.unwrap_or(0));
            b.produce_module.lookup(file_id).map(|(_, grant)| {
                let s = grant.next_seq.get();
                grant.next_seq.set(s + 1);
                s
            })
        } else {
            None
        };
        // Costs: blocking-poll wakeup (when idle) + per-event handling.
        if was_idle {
            sim::time::sleep(wakeup).await;
        }
        sim::time::sleep(POLL_COST).await;
        if !cqe.ok() || cqe.opcode != CqOpcode::RecvRdmaWithImm {
            continue; // flushed recv of a dead QP
        }
        let (file_id, order) = kdwire::unpack_imm(cqe.imm.unwrap_or(0));
        // Replenish the consumed receive.
        if let Some(qp) = b.produce_qps.borrow().get(&cqe.qpn) {
            let _ = qp.post_recv(RecvWr {
                wr_id: cqe.wr_id,
                buf: None,
            });
        }
        let Some(seq) = seq else {
            // Unknown file: answer with an error ack.
            send_ack(&b, cqe.qpn, kdwire::ErrorCode::AccessDenied, 0);
            continue;
        };
        let item = WorkItem::RdmaCommit {
            file_id,
            order,
            byte_len: cqe.byte_len,
            seq,
            ack: AckRoute::Qp(cqe.qpn),
            // The producer's lifeline rode in on the WriteImm's WR context.
            trace: cqe.trace,
        };
        let (_, grant) = b.produce_module.lookup(file_id).expect("seq implies grant");
        enqueue_in_order(&b, &grant, seq, item);
    }
}

/// Stages `item` and hands any now-consecutive run to the API workers (the
/// 11 µs queue transfer, overlapped across requests). Keeping the shared
/// queue in sequence order is what lets a lone API worker make progress:
/// a worker never waits on a commit that is still queued behind it.
pub fn enqueue_in_order(
    b: &Rc<BrokerInner>,
    grant: &Rc<crate::rdma_produce::Grant>,
    seq: u64,
    item: WorkItem,
) {
    let handoff = b.profile.cpu.handoff;
    grant.stage_enqueue(seq, item, &mut |item| {
        let b2 = Rc::clone(b);
        sim::spawn_detached(async move {
            sim::time::sleep(handoff).await;
            let _ = b2.queue.send(item).await;
        });
    });
}

/// Sends a produce acknowledgment (or replication credit return) on a
/// client QP: `[error u8][base_offset u64]`, unsignaled.
pub fn send_ack(b: &Rc<BrokerInner>, qpn: u32, error: kdwire::ErrorCode, base_offset: u64) {
    let qp = match b.produce_qps.borrow().get(&qpn) {
        Some(qp) => qp.clone(),
        None => return,
    };
    // Acks are written through a pre-allocated round-robin ring: the WR has
    // executed long before the ring wraps, so the slot is free to reuse.
    let idx = b.ack_ring_next.get();
    b.ack_ring_next.set((idx + 1) % b.ack_ring.len());
    let buf = &b.ack_ring[idx];
    buf.with_mut(|s| {
        s[0] = error as u8;
        s[1..9].copy_from_slice(&base_offset.to_le_bytes());
    });
    let _ = qp.post_send(SendWr::unsignaled(
        0,
        WorkRequest::Send {
            local: buf.as_slice(),
        },
    ));
    b.metrics.add(&b.metrics.acks_sent, 1);
}

/// Decodes an ack payload on the client side.
pub fn decode_ack(bytes: &[u8]) -> (kdwire::ErrorCode, u64) {
    let error = match bytes.first() {
        Some(0) => kdwire::ErrorCode::None,
        Some(1) => kdwire::ErrorCode::UnknownTopicOrPartition,
        Some(2) => kdwire::ErrorCode::NotLeader,
        Some(3) => kdwire::ErrorCode::CorruptBatch,
        Some(4) => kdwire::ErrorCode::AccessDenied,
        Some(5) => kdwire::ErrorCode::OutOfSpace,
        Some(6) => kdwire::ErrorCode::InvalidRequest,
        Some(7) => kdwire::ErrorCode::AlreadyExists,
        Some(8) => kdwire::ErrorCode::OrderTimeout,
        Some(10) => kdwire::ErrorCode::FencedEpoch,
        _ => kdwire::ErrorCode::Internal,
    };
    let base_offset = bytes
        .get(1..9)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0);
    (error, base_offset)
}
