//! Broker telemetry.
//!
//! Counters back the paper's CPU-load and offload claims: §5.1's "3.3×
//! reduction in CPU load", §5.3's "no CPU involvement" for RDMA fetches, and
//! §7's memory-usage discussion are all observable here (and asserted in
//! integration tests).

use std::cell::Cell;

#[derive(Default)]
pub struct Metrics {
    pub produce_requests: Cell<u64>,
    pub produce_bytes: Cell<u64>,
    pub rdma_commits: Cell<u64>,
    pub rdma_commit_bytes: Cell<u64>,
    pub fetch_requests: Cell<u64>,
    pub empty_fetches: Cell<u64>,
    pub fetch_bytes: Cell<u64>,
    pub replica_fetches: Cell<u64>,
    pub push_writes: Cell<u64>,
    pub push_bytes: Cell<u64>,
    /// Bytes moved by broker-CPU copies (network buffer → file buffer).
    /// Zero on the RDMA produce path — the test for "zero copy".
    pub heap_copied_bytes: Cell<u64>,
    /// Virtual nanoseconds API workers spent processing.
    pub worker_busy_ns: Cell<u64>,
    pub acks_sent: Cell<u64>,
    pub slot_updates: Cell<u64>,
    /// Bytes currently pinned for RDMA (registered segments + slot regions).
    pub registered_bytes: Cell<u64>,
    pub produce_aborts: Cell<u64>,
    pub grants_revoked: Cell<u64>,
}

impl Metrics {
    pub fn add(&self, cell: &Cell<u64>, v: u64) {
        cell.set(cell.get() + v);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            produce_requests: self.produce_requests.get(),
            produce_bytes: self.produce_bytes.get(),
            rdma_commits: self.rdma_commits.get(),
            rdma_commit_bytes: self.rdma_commit_bytes.get(),
            fetch_requests: self.fetch_requests.get(),
            empty_fetches: self.empty_fetches.get(),
            fetch_bytes: self.fetch_bytes.get(),
            replica_fetches: self.replica_fetches.get(),
            push_writes: self.push_writes.get(),
            push_bytes: self.push_bytes.get(),
            heap_copied_bytes: self.heap_copied_bytes.get(),
            worker_busy_ns: self.worker_busy_ns.get(),
            acks_sent: self.acks_sent.get(),
            slot_updates: self.slot_updates.get(),
            registered_bytes: self.registered_bytes.get(),
            produce_aborts: self.produce_aborts.get(),
            grants_revoked: self.grants_revoked.get(),
            net_busy_ns: 0,
        }
    }
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub produce_requests: u64,
    pub produce_bytes: u64,
    pub rdma_commits: u64,
    pub rdma_commit_bytes: u64,
    pub fetch_requests: u64,
    pub empty_fetches: u64,
    pub fetch_bytes: u64,
    pub replica_fetches: u64,
    pub push_writes: u64,
    pub push_bytes: u64,
    pub heap_copied_bytes: u64,
    pub worker_busy_ns: u64,
    pub acks_sent: u64,
    pub slot_updates: u64,
    pub registered_bytes: u64,
    pub produce_aborts: u64,
    pub grants_revoked: u64,
    /// Network-thread busy time (filled in by the broker snapshot).
    pub net_busy_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.add(&m.produce_requests, 2);
        m.add(&m.produce_requests, 3);
        m.add(&m.heap_copied_bytes, 100);
        let s = m.snapshot();
        assert_eq!(s.produce_requests, 5);
        assert_eq!(s.heap_copied_bytes, 100);
        assert_eq!(s.rdma_commits, 0);
    }
}
