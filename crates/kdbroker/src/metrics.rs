//! Broker telemetry.
//!
//! Counters back the paper's CPU-load and offload claims: §5.1's "3.3×
//! reduction in CPU load", §5.3's "no CPU involvement" for RDMA fetches, and
//! §7's memory-usage discussion are all observable here (and asserted in
//! integration tests).
//!
//! Every counter is a [`kdtelem::Counter`] registered with the ambient
//! [`kdtelem::Registry`] under component `"kdbroker"`: each broker keeps
//! private cells (so [`Metrics::snapshot`] is exact per broker) while the
//! registry's own snapshot rolls all brokers up by name.

use kdtelem::Counter;

pub struct Metrics {
    pub produce_requests: Counter,
    pub produce_bytes: Counter,
    pub rdma_commits: Counter,
    pub rdma_commit_bytes: Counter,
    pub fetch_requests: Counter,
    pub empty_fetches: Counter,
    pub fetch_bytes: Counter,
    pub replica_fetches: Counter,
    pub push_writes: Counter,
    pub push_bytes: Counter,
    /// Bytes moved by broker-CPU copies (network buffer → file buffer).
    /// Zero on the RDMA produce path — the test for "zero copy".
    pub heap_copied_bytes: Counter,
    /// Virtual nanoseconds API workers spent processing.
    pub worker_busy_ns: Counter,
    pub acks_sent: Counter,
    pub slot_updates: Counter,
    /// Bytes currently pinned for RDMA (registered segments + slot regions).
    pub registered_bytes: Counter,
    pub produce_aborts: Counter,
    pub grants_revoked: Counter,
    /// Virtual nanoseconds network threads spent processing (fed by the
    /// broker's `ServicePool`).
    pub net_busy_ns: Counter,
    /// Bytes written to segment files by the durable tier.
    pub storage_bytes_flushed: Counter,
    /// Fsyncs issued by the durable tier.
    pub storage_fsyncs: Counter,
    /// Segments sealed (rotated to a new head file).
    pub storage_segments_rotated: Counter,
    /// Segments reclaimed by retention.
    pub storage_segments_reclaimed: Counter,
    /// Reads served from the in-memory (hot) tier.
    pub storage_hot_hits: Counter,
    /// Reads that had to go to the file (cold) tier.
    pub storage_hot_misses: Counter,
    /// Bytes read back from segment files (cold fetches + page-ins).
    pub storage_cold_read_bytes: Counter,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new(&kdtelem::current())
    }
}

impl Metrics {
    pub fn new(registry: &kdtelem::Registry) -> Self {
        // Registry names follow the `subsystem.metric` schema (see the
        // metric inventory in DESIGN.md); struct fields keep their flat
        // names for call-site brevity.
        let c = |name| registry.counter("kdbroker", name);
        Metrics {
            produce_requests: c("produce.requests"),
            produce_bytes: c("produce.bytes"),
            rdma_commits: c("rdma.commits"),
            rdma_commit_bytes: c("rdma.commit_bytes"),
            fetch_requests: c("fetch.requests"),
            empty_fetches: c("fetch.empty"),
            fetch_bytes: c("fetch.bytes"),
            replica_fetches: c("fetch.replica"),
            push_writes: c("repl.push_writes"),
            push_bytes: c("repl.push_bytes"),
            heap_copied_bytes: c("copy.heap_bytes"),
            worker_busy_ns: c("cpu.worker_busy_ns"),
            acks_sent: c("produce.acks_sent"),
            slot_updates: c("rdma.slot_updates"),
            registered_bytes: c("rdma.registered_bytes"),
            produce_aborts: c("produce.aborts"),
            grants_revoked: c("rdma.grants_revoked"),
            net_busy_ns: c("cpu.net_busy_ns"),
            storage_bytes_flushed: c("storage.bytes_flushed"),
            storage_fsyncs: c("storage.fsyncs"),
            storage_segments_rotated: c("storage.segments_rotated"),
            storage_segments_reclaimed: c("storage.segments_reclaimed"),
            storage_hot_hits: c("storage.hot_hits"),
            storage_hot_misses: c("storage.hot_misses"),
            storage_cold_read_bytes: c("storage.cold_read_bytes"),
        }
    }

    pub fn add(&self, counter: &Counter, v: u64) {
        counter.add(v);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            produce_requests: self.produce_requests.get(),
            produce_bytes: self.produce_bytes.get(),
            rdma_commits: self.rdma_commits.get(),
            rdma_commit_bytes: self.rdma_commit_bytes.get(),
            fetch_requests: self.fetch_requests.get(),
            empty_fetches: self.empty_fetches.get(),
            fetch_bytes: self.fetch_bytes.get(),
            replica_fetches: self.replica_fetches.get(),
            push_writes: self.push_writes.get(),
            push_bytes: self.push_bytes.get(),
            heap_copied_bytes: self.heap_copied_bytes.get(),
            worker_busy_ns: self.worker_busy_ns.get(),
            acks_sent: self.acks_sent.get(),
            slot_updates: self.slot_updates.get(),
            registered_bytes: self.registered_bytes.get(),
            produce_aborts: self.produce_aborts.get(),
            grants_revoked: self.grants_revoked.get(),
            net_busy_ns: self.net_busy_ns.get(),
            storage_bytes_flushed: self.storage_bytes_flushed.get(),
            storage_fsyncs: self.storage_fsyncs.get(),
            storage_segments_rotated: self.storage_segments_rotated.get(),
            storage_segments_reclaimed: self.storage_segments_reclaimed.get(),
            storage_hot_hits: self.storage_hot_hits.get(),
            storage_hot_misses: self.storage_hot_misses.get(),
            storage_cold_read_bytes: self.storage_cold_read_bytes.get(),
        }
    }
}

/// Latency histograms and span plumbing for one broker, registered with the
/// ambient [`kdtelem::Registry`]. Histograms record per-API *service*
/// latency: time an API worker spends on a request (excluding deferred
/// replication waits), in virtual nanoseconds.
pub struct BrokerTelem {
    /// The registry this broker reports into; also serves the admin
    /// `Telemetry` request (JSON-lines snapshot) and collects spans.
    pub registry: kdtelem::Registry,
    pub api_produce_ns: kdtelem::Histogram,
    pub api_fetch_ns: kdtelem::Histogram,
    pub api_control_ns: kdtelem::Histogram,
    /// RDMA produce commits: completion dequeue → records visible (§4.2.2).
    pub rdma_commit_ns: kdtelem::Histogram,
    /// Replication latency: push write post → follower NIC ack, or pull
    /// fetch round-trips that returned data (§4.3).
    pub replicate_ns: kdtelem::Histogram,
    /// Modeled latency of one durable-tier drain (flush bytes + fsyncs) as
    /// charged on the virtual clock — the fsync latency distribution.
    pub storage_fsync_ns: kdtelem::Histogram,
}

impl Default for BrokerTelem {
    fn default() -> Self {
        BrokerTelem::new(&kdtelem::current())
    }
}

impl BrokerTelem {
    pub fn new(registry: &kdtelem::Registry) -> Self {
        let h = |name| registry.histogram("kdbroker", name);
        BrokerTelem {
            registry: registry.clone(),
            api_produce_ns: h("api.produce_ns"),
            api_fetch_ns: h("api.fetch_ns"),
            api_control_ns: h("api.control_ns"),
            rdma_commit_ns: h("rdma.commit_ns"),
            replicate_ns: h("repl.replicate_ns"),
            storage_fsync_ns: h("storage.fsync_ns"),
        }
    }
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub produce_requests: u64,
    pub produce_bytes: u64,
    pub rdma_commits: u64,
    pub rdma_commit_bytes: u64,
    pub fetch_requests: u64,
    pub empty_fetches: u64,
    pub fetch_bytes: u64,
    pub replica_fetches: u64,
    pub push_writes: u64,
    pub push_bytes: u64,
    pub heap_copied_bytes: u64,
    pub worker_busy_ns: u64,
    pub acks_sent: u64,
    pub slot_updates: u64,
    pub registered_bytes: u64,
    pub produce_aborts: u64,
    pub grants_revoked: u64,
    /// Network-thread busy time (fed live by the broker's `ServicePool`; no
    /// longer patched in after the fact).
    pub net_busy_ns: u64,
    pub storage_bytes_flushed: u64,
    pub storage_fsyncs: u64,
    pub storage_segments_rotated: u64,
    pub storage_segments_reclaimed: u64,
    pub storage_hot_hits: u64,
    pub storage_hot_misses: u64,
    pub storage_cold_read_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.add(&m.produce_requests, 2);
        m.add(&m.produce_requests, 3);
        m.add(&m.heap_copied_bytes, 100);
        let s = m.snapshot();
        assert_eq!(s.produce_requests, 5);
        assert_eq!(s.heap_copied_bytes, 100);
        assert_eq!(s.rdma_commits, 0);
    }

    #[test]
    fn counters_roll_up_into_registry() {
        let r = kdtelem::Registry::new();
        let a = Metrics::new(&r);
        let b = Metrics::new(&r);
        a.add(&a.produce_requests, 2);
        b.add(&b.produce_requests, 5);
        // Per-broker snapshots stay private ...
        assert_eq!(a.snapshot().produce_requests, 2);
        assert_eq!(b.snapshot().produce_requests, 5);
        // ... while the registry aggregates by name.
        let snap = r.snapshot();
        assert_eq!(snap.counter("kdbroker", "produce.requests"), Some(7));
    }
}
