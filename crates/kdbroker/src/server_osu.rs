//! The OSU-Kafka transport (§4, "RDMA-based Apache Kafka" baseline): the
//! TCP sockets are replaced with two-sided RDMA Send/Recv, but requests are
//! still copied out of (and responses into) intermediate network buffers and
//! flow through the same request queue — "its performance is still
//! obstructed by the need to copy messages from and to network buffers of
//! the multipurpose request processing module".

use std::rc::Rc;
use std::time::Duration;

use netsim::profile::copy_time;
use rnic::{CqOpcode, QpOptions, QueuePair, RdmaListener, RecvWr, SendWr, ShmBuf, WorkRequest};
use sim::sync::{mpsc, oneshot};
use sim::SimTime;

use crate::broker::BrokerInner;
use crate::requests::WorkItem;

/// Per-message processing cost of the OSU network module: no kernel stack,
/// but still parse/serialize on a network thread.
pub const OSU_REQUEST_COST: Duration = Duration::from_micros(5);

pub fn start(b: &Rc<BrokerInner>) {
    let mut listener = RdmaListener::bind(&b.nic, b.config.rdma_port + crate::rdma_net::OSU_PORT_OFF);
    let b = Rc::clone(b);
    sim::spawn(async move {
        while let Some(inc) = listener.accept().await {
            let from = inc.from();
            let send_cq = b.nic.create_cq(1024);
            let recv_cq = b.nic.create_cq(1024);
            let qp = inc.accept(&b.nic, send_cq.clone(), recv_cq.clone(), QpOptions::default());
            let b2 = Rc::clone(&b);
            sim::spawn(async move {
                serve_connection(b2, qp, recv_cq, from).await;
            });
            // Drain send completions (responses are unsignaled; errors only).
            sim::spawn(async move { while send_cq.next().await.is_some() {} });
        }
    });
}

async fn serve_connection(
    b: Rc<BrokerInner>,
    qp: QueuePair,
    recv_cq: rnic::CompletionQueue,
    peer: netsim::NodeId,
) {
    let net_idx = b.net_pool.assign();
    // Pre-post the request receive buffers (the "network buffers" whose
    // copies define this baseline).
    let bufs: Vec<ShmBuf> = (0..b.config.osu_recv_depth)
        .map(|_| ShmBuf::zeroed(b.config.osu_recv_buf))
        .collect();
    for (i, buf) in bufs.iter().enumerate() {
        let _ = qp.post_recv(RecvWr {
            wr_id: i as u64,
            buf: Some(buf.as_slice()),
        });
    }

    // Response path: copy into a send buffer, post a Send.
    let (reply_tx, mut reply_rx) = mpsc::unbounded::<(u64, SimTime, kdwire::Response)>();
    let bw = Rc::clone(&b);
    let qp_resp = qp.clone();
    sim::spawn(async move {
        let kcopy = bw.profile.net.kernel_copy_bandwidth;
        while let Some((corr, ready_at, resp)) = reply_rx.recv().await {
            sim::time::sleep_until(ready_at).await;
            let body = resp.encode();
            // Serialize + copy into the send buffer on a network thread.
            bw.net_pool
                .thread(net_idx)
                .run(OSU_REQUEST_COST + copy_time(body.len() as u64, kcopy))
                .await;
            let mut frame = Vec::with_capacity(8 + body.len());
            frame.extend_from_slice(&corr.to_le_bytes());
            frame.extend_from_slice(&body);
            let buf = ShmBuf::from_vec(frame);
            if qp_resp
                .post_send(SendWr::unsignaled(
                    0,
                    WorkRequest::Send {
                        local: buf.as_slice(),
                    },
                ))
                .is_err()
            {
                break;
            }
        }
    });

    // Request path: drain the CQ in batches (pooled, like the produce
    // pollers) and recycle the consumed buffers with one chained
    // `post_recv_list` per batch instead of one doorbell per message.
    let max_batch = b.config.cq_batch.max(1);
    let mut batch: Vec<rnic::Cqe> = Vec::with_capacity(max_batch);
    let mut recycle: Vec<u64> = Vec::with_capacity(max_batch);
    'conn: loop {
        if crate::rdma_net::drain_or_wait(&recv_cq, &mut batch, max_batch)
            .await
            .is_none()
        {
            break;
        }
        recycle.clear();
        for cqe in &batch {
            if !cqe.ok() || cqe.opcode != CqOpcode::Recv {
                break 'conn;
            }
            let buf = &bufs[cqe.wr_id as usize];
            let frame = buf.read_at(0, cqe.byte_len as usize);
            // The copy out of the network receive buffer, charged on the
            // network thread.
            b.net_pool
                .thread(net_idx)
                .run(
                    OSU_REQUEST_COST
                        + copy_time(frame.len() as u64, b.profile.net.kernel_copy_bandwidth),
                )
                .await;
            recycle.push(cqe.wr_id);
            if frame.len() < 8 {
                break 'conn;
            }
            let corr = u64::from_le_bytes(frame[..8].try_into().unwrap());
            let Ok(request) = kdwire::Request::decode(&frame[8..]) else {
                break 'conn;
            };
            let (tx, rx) = oneshot::channel();
            let reply_tx2 = reply_tx.clone();
            let handoff = b.profile.cpu.handoff;
            sim::spawn(async move {
                if let Ok(resp) = rx.await {
                    let ready_at = sim::now() + handoff;
                    let _ = reply_tx2.try_send((corr, ready_at, resp));
                }
            });
            let item = WorkItem::Rpc {
                peer,
                request,
                reply: tx,
                // OSU requests arrive as verbs Sends; the WR context (if
                // any) rode in on the receive completion.
                trace: cqe.trace,
            };
            let b2 = Rc::clone(&b);
            sim::spawn(async move {
                sim::time::sleep(b2.profile.cpu.handoff).await;
                let _ = b2.queue.send(item).await;
            });
        }
        let _ = qp.post_recv_list(recycle.drain(..).map(|wr_id| RecvWr {
            wr_id,
            buf: Some(bufs[wr_id as usize].as_slice()),
        }));
    }
    // Recvs consumed by a batch that broke the loop still go back: the QP
    // may outlive this serving task.
    let _ = qp.post_recv_list(recycle.drain(..).map(|wr_id| RecvWr {
        wr_id,
        buf: Some(bufs[wr_id as usize].as_slice()),
    }));
}
