//! Data management: partitions, leadership, the high watermark.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use kdstorage::{Log, LogConfig, TopicPartition};
use kdwire::{BrokerAddr, PartitionMeta, TopicMeta};
use sim::sync::watch;

/// FIFO ticket chain: lets concurrent workers impose a required processing
/// order on commits to one file (§4.2.2: "processing RDMA produce requests
/// in the same order as the corresponding completion events are generated").
pub struct Chain {
    done: Cell<u64>,
    notify: sim::sync::Notify,
}

impl Default for Chain {
    fn default() -> Self {
        Self::new()
    }
}

impl Chain {
    pub fn new() -> Self {
        Chain {
            done: Cell::new(0),
            notify: sim::sync::Notify::new(),
        }
    }

    pub async fn wait_turn(&self, ticket: u64) {
        while self.done.get() < ticket {
            self.notify.notified().await;
        }
    }

    pub fn advance(&self, ticket: u64) {
        debug_assert_eq!(self.done.get(), ticket);
        self.done.set(ticket + 1);
        self.notify.notify_waiters();
    }

    /// Advances past a whole run of consecutive tickets in one step (one
    /// broadcast instead of one per ticket). The caller must own every
    /// ticket in `done..next`, i.e. have passed `wait_turn` for the first.
    pub fn advance_to(&self, next: u64) {
        debug_assert!(next > self.done.get());
        self.done.set(next);
        self.notify.notify_waiters();
    }
}

/// One topic partition hosted by this broker (leader or follower replica).
pub struct Partition {
    pub tp: TopicPartition,
    pub log: Log,
    /// Per-TP write lock: "each TP file can be accessed by at most one API
    /// worker at a time due to locking" (§5.1, Fig 12).
    pub write_lock: sim::sync::Mutex<()>,
    leader: Cell<BrokerAddr>,
    /// Followers (leader excluded).
    replicas: RefCell<Vec<BrokerAddr>>,
    is_leader: Cell<bool>,
    /// Leadership epoch: bumped by the controller on every leader change.
    /// Replication tasks capture it at spawn and exit when it moves on, and
    /// grants issued under an older epoch are revoked (fencing).
    epoch: Cell<u64>,
    /// Log-end-offset announcements (wakes push replication / long-poll
    /// replica fetches).
    pub leo_tx: watch::Sender<u64>,
    /// High-watermark announcements (completes acks, updates slots).
    pub hw_tx: watch::Sender<u64>,
    /// Per-follower acknowledged log-end offsets.
    follower_leo: RefCell<HashMap<u32, u64>>,
    /// Active RDMA produce grant, if any (managed by `rdma_produce`).
    pub grant: RefCell<Option<Rc<crate::rdma_produce::Grant>>>,
    /// Registered-for-read segments (managed by `rdma_consume`).
    pub read_regs: RefCell<HashMap<u32, crate::rdma_consume::RegSeg>>,
    /// Metadata slots tracking this partition's files (Fig 9: "each
    /// registered file has a list of slots associated with it").
    pub slot_refs: RefCell<Vec<crate::rdma_consume::SlotRef>>,
    /// Whether push-replication tasks have been started.
    pub push_started: Cell<bool>,
}

impl Partition {
    pub fn new(
        tp: TopicPartition,
        log_config: LogConfig,
        leader: BrokerAddr,
        replicas: Vec<BrokerAddr>,
        is_leader: bool,
        epoch: u64,
    ) -> Rc<Partition> {
        Self::with_log(tp, Log::new(log_config), leader, replicas, is_leader, epoch)
    }

    /// Builds a partition around an existing log — the crash-recovery path,
    /// where the log was rebuilt from surviving segment buffers.
    pub fn with_log(
        tp: TopicPartition,
        log: Log,
        leader: BrokerAddr,
        replicas: Vec<BrokerAddr>,
        is_leader: bool,
        epoch: u64,
    ) -> Rc<Partition> {
        let (leo_tx, _) = watch::channel(0u64);
        let (hw_tx, _) = watch::channel(0u64);
        Rc::new(Partition {
            tp,
            log,
            write_lock: sim::sync::Mutex::new(()),
            leader: Cell::new(leader),
            replicas: RefCell::new(replicas),
            is_leader: Cell::new(is_leader),
            epoch: Cell::new(epoch),
            leo_tx,
            hw_tx,
            follower_leo: RefCell::new(HashMap::new()),
            grant: RefCell::new(None),
            read_regs: RefCell::new(HashMap::new()),
            slot_refs: RefCell::new(Vec::new()),
            push_started: Cell::new(false),
        })
    }

    pub fn leader(&self) -> BrokerAddr {
        self.leader.get()
    }

    pub fn is_leader(&self) -> bool {
        self.is_leader.get()
    }

    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    pub fn replicas(&self) -> Vec<BrokerAddr> {
        self.replicas.borrow().clone()
    }

    /// Installs a newer-epoch leadership view in place (failover).
    pub fn apply_leadership(
        &self,
        epoch: u64,
        leader: BrokerAddr,
        replicas: Vec<BrokerAddr>,
        is_leader: bool,
    ) {
        debug_assert!(epoch > self.epoch.get());
        self.epoch.set(epoch);
        self.leader.set(leader);
        *self.replicas.borrow_mut() = replicas;
        self.is_leader.set(is_leader);
    }

    /// Replication factor (leader + followers).
    pub fn replication_factor(&self) -> usize {
        self.replicas.borrow().len() + 1
    }

    /// Announces new committed-to-log records (wakes replication).
    pub fn announce_leo(&self) {
        self.leo_tx.send(self.log.next_offset());
    }

    /// Records a follower's acknowledged log-end offset and recomputes the
    /// high watermark (min over ISR, as in Kafka).
    pub fn follower_ack(&self, node: u32, leo: u64) -> u64 {
        {
            let mut m = self.follower_leo.borrow_mut();
            let e = m.entry(node).or_insert(0);
            if leo > *e {
                *e = leo;
            }
        }
        self.recompute_hw()
    }

    /// Recomputes and publishes the high watermark. With no followers the
    /// HW is the leader log end.
    pub fn recompute_hw(&self) -> u64 {
        let leader_leo = self.log.next_offset();
        let hw = {
            let m = self.follower_leo.borrow();
            self.replicas
                .borrow()
                .iter()
                .map(|r| m.get(&r.node).copied().unwrap_or(0))
                .fold(leader_leo, u64::min)
        };
        if hw > self.log.high_watermark() {
            self.log.set_high_watermark(hw);
            self.hw_tx.send(hw);
        }
        self.log.high_watermark()
    }

    /// Sets the follower-side high watermark from the leader's fetch
    /// response (never past the local log end).
    pub fn follower_set_hw(&self, leader_hw: u64) {
        let hw = leader_hw.min(self.log.next_offset());
        if hw > self.log.high_watermark() {
            self.log.set_high_watermark(hw);
            self.hw_tx.send(hw);
        }
    }

    /// Waits until records below `offset` are committed (acks=all).
    pub async fn wait_committed(&self, offset: u64) {
        if self.log.high_watermark() >= offset {
            return;
        }
        let mut rx = self.hw_tx.subscribe();
        loop {
            if rx.borrow_and_update(|hw| *hw) >= offset {
                return;
            }
            if rx.changed().await.is_err() {
                return;
            }
        }
    }
}

/// All partitions and topic metadata known to one broker.
#[derive(Default)]
pub struct PartitionStore {
    partitions: RefCell<HashMap<TopicPartition, Rc<Partition>>>,
    /// Cluster-wide metadata view (also covers partitions this broker does
    /// not host).
    topics: RefCell<HashMap<String, Vec<PartitionMeta>>>,
}

impl PartitionStore {
    pub fn get(&self, tp: &TopicPartition) -> Option<Rc<Partition>> {
        self.partitions.borrow().get(tp).cloned()
    }

    pub fn insert(&self, p: Rc<Partition>) {
        self.partitions.borrow_mut().insert(p.tp.clone(), p);
    }

    pub fn topic_exists(&self, topic: &str) -> bool {
        self.topics.borrow().contains_key(topic)
    }

    pub fn record_meta(&self, topic: &str, meta: PartitionMeta) {
        let mut topics = self.topics.borrow_mut();
        let parts = topics.entry(topic.to_string()).or_default();
        parts.retain(|p| p.partition != meta.partition);
        parts.push(meta);
        parts.sort_by_key(|p| p.partition);
    }

    pub fn topic_meta(&self, topic: &str) -> Option<TopicMeta> {
        self.topics.borrow().get(topic).map(|parts| TopicMeta {
            name: topic.to_string(),
            partitions: parts.clone(),
        })
    }

    pub fn all_topics(&self) -> Vec<TopicMeta> {
        let topics = self.topics.borrow();
        let mut names: Vec<_> = topics.keys().cloned().collect();
        names.sort();
        names
            .into_iter()
            .map(|name| TopicMeta {
                partitions: topics[&name].clone(),
                name,
            })
            .collect()
    }

    pub fn partition_meta(&self, tp: &TopicPartition) -> Option<PartitionMeta> {
        self.topics
            .borrow()
            .get(tp.topic.as_str())?
            .iter()
            .find(|p| p.partition == tp.partition)
            .cloned()
    }

    /// Hosted partitions, sorted by topic partition so that sweeps over
    /// them (grant revocation, crash teardown) happen in a deterministic
    /// order regardless of hash-map iteration.
    pub fn local_partitions(&self) -> Vec<Rc<Partition>> {
        let mut v: Vec<Rc<Partition>> = self.partitions.borrow().values().cloned().collect();
        v.sort_by(|a, b| a.tp.cmp(&b.tp));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(node: u32) -> BrokerAddr {
        BrokerAddr {
            node,
            port: 9092,
            rdma_port: 18515,
        }
    }

    fn tp() -> TopicPartition {
        TopicPartition::new("t", 0)
    }

    #[test]
    fn hw_is_min_over_isr() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let p = Partition::new(
                tp(),
                LogConfig::default().with_segment_size(1 << 20),
                addr(0),
                vec![addr(1), addr(2)],
                true,
                0,
            );
            // Leader commits 10 records locally.
            let mut b = kdstorage::BatchBuilder::new(1);
            for _ in 0..10 {
                b.append(&kdstorage::Record::value(b"x".to_vec()));
            }
            p.log.append_batch(&b.build().unwrap()).unwrap();
            assert_eq!(p.recompute_hw(), 0, "no follower acks yet");
            p.follower_ack(1, 10);
            assert_eq!(p.log.high_watermark(), 0, "second follower still behind");
            p.follower_ack(2, 4);
            // HW limited by... follower acks are batch-boundary offsets; our
            // single batch commits all 10, so follower 2 acking 4 would be a
            // protocol anomaly — but min() math is what we assert here.
            assert_eq!(p.follower_leo.borrow()[&2], 4);
        });
    }

    #[test]
    fn rf1_hw_tracks_leo() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let p = Partition::new(
                tp(),
                LogConfig::default().with_segment_size(1 << 20),
                addr(0),
                vec![],
                true,
                0,
            );
            let b = kdstorage::record::single_record_batch(1, &kdstorage::Record::value(b"x".to_vec()));
            p.log.append_batch(&b).unwrap();
            assert_eq!(p.recompute_hw(), 1);
        });
    }

    #[test]
    fn wait_committed_resolves_on_hw_advance() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let p = Partition::new(
                tp(),
                LogConfig::default().with_segment_size(1 << 20),
                addr(0),
                vec![addr(1)],
                true,
                0,
            );
            let b = kdstorage::record::single_record_batch(1, &kdstorage::Record::value(b"x".to_vec()));
            p.log.append_batch(&b).unwrap();
            let p2 = Rc::clone(&p);
            let waiter = sim::spawn(async move {
                p2.wait_committed(1).await;
                sim::now()
            });
            sim::time::sleep(std::time::Duration::from_micros(50)).await;
            p.follower_ack(1, 1);
            let when = waiter.await.unwrap();
            assert_eq!(when.as_nanos(), 50_000);
        });
    }

    #[test]
    fn chain_orders_commits() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let chain = Rc::new(Chain::new());
            let log = Rc::new(RefCell::new(Vec::new()));
            // Spawn out of order: ticket 1 first, then 0.
            for ticket in [1u64, 0] {
                let chain = Rc::clone(&chain);
                let log = Rc::clone(&log);
                sim::spawn(async move {
                    chain.wait_turn(ticket).await;
                    log.borrow_mut().push(ticket);
                    chain.advance(ticket);
                });
            }
            sim::time::sleep(std::time::Duration::from_micros(1)).await;
            assert_eq!(*log.borrow(), vec![0, 1]);
        });
    }

    #[test]
    fn store_metadata_roundtrip() {
        let s = PartitionStore::default();
        s.record_meta(
            "t",
            PartitionMeta {
                partition: 1,
                epoch: 0,
                leader: addr(0),
                replicas: vec![addr(1)],
            },
        );
        s.record_meta(
            "t",
            PartitionMeta {
                partition: 0,
                epoch: 0,
                leader: addr(1),
                replicas: vec![],
            },
        );
        let meta = s.topic_meta("t").unwrap();
        assert_eq!(meta.partitions.len(), 2);
        assert_eq!(meta.partitions[0].partition, 0, "sorted");
        assert!(s.topic_exists("t"));
        assert!(!s.topic_exists("u"));
        assert_eq!(s.all_topics().len(), 1);
    }
}
