//! The TCP network module (paper Fig 2 ➊): the unmodified-Kafka front end,
//! fully reused by KafkaDirect for its control plane (§4.1).

use std::rc::Rc;

use netsim::tcp::TcpListener;
use sim::sync::{mpsc, oneshot};
use sim::SimTime;

use crate::broker::BrokerInner;
use crate::requests::WorkItem;

pub fn start(b: &Rc<BrokerInner>) {
    let mut listener = TcpListener::bind(&b.node, b.config.tcp_port);
    let b = Rc::clone(b);
    sim::spawn(async move {
        while let Some(stream) = listener.accept().await {
            let b = Rc::clone(&b);
            sim::spawn(async move { serve_connection(b, stream).await });
        }
    });
}

async fn serve_connection(b: Rc<BrokerInner>, stream: netsim::tcp::TcpStream) {
    let peer = stream.peer();
    let net_idx = b.net_pool.assign();
    let (mut read, mut write) = stream.into_split();
    let (reply_tx, mut reply_rx) = mpsc::unbounded::<(u64, SimTime, kdwire::Response)>();

    // Response writer: waits out the worker→net handoff per message, then
    // occupies the network thread to serialise + send.
    let bw = Rc::clone(&b);
    sim::spawn(async move {
        let cost = bw.profile.cpu.net_request_cost;
        let mut body = Vec::new();
        while let Some((corr, ready_at, resp)) = reply_rx.recv().await {
            sim::time::sleep_until(ready_at).await;
            bw.net_pool.thread(net_idx).run(cost).await;
            body.clear();
            resp.encode_into(&mut body);
            if kdwire::write_frame(&mut write, corr, None, &body)
                .await
                .is_err()
            {
                break;
            }
        }
    });

    // Request reader loop (the processor thread's receive side). A broker
    // crash races the read: the shutdown broadcast wins, the loop breaks,
    // and dropping the stream halves is what makes the peer see the
    // connection die.
    let mut payload = Vec::new();
    loop {
        if !b.alive.get() {
            break;
        }
        let (corr, trace) = match sim::future::race(
            kdwire::read_frame_into(&mut read, &mut payload),
            b.shutdown.notified(),
        )
        .await
        {
            sim::future::Either::Left(Ok(f)) => f,
            _ => break, // connection closed or broker crashed
        };
        if !b.alive.get() {
            break;
        }
        b.net_pool
            .thread(net_idx)
            .run(b.profile.cpu.net_request_cost)
            .await;
        let Ok(request) = kdwire::Request::decode(&payload) else {
            break; // protocol error: drop the connection
        };
        let (tx, rx) = oneshot::channel();
        // Route the eventual response back through this connection.
        let reply_tx2 = reply_tx.clone();
        let handoff = b.profile.cpu.handoff;
        sim::spawn(async move {
            if let Ok(resp) = rx.await {
                // Worker → network thread handoff.
                let ready_at = sim::now() + handoff;
                let _ = reply_tx2.try_send((corr, ready_at, resp));
            }
        });
        // Network thread → API worker handoff (➊→queue), overlapped.
        let item = WorkItem::Rpc {
            peer,
            request,
            reply: tx,
            trace,
        };
        let b2 = Rc::clone(&b);
        sim::spawn(async move {
            sim::time::sleep(b2.profile.cpu.handoff).await;
            let _ = b2.queue.send(item).await;
        });
    }
}
