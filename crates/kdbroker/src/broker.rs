//! Broker assembly: wires the network modules, worker pool, RDMA modules,
//! and data management together (paper Fig 2) and exposes the public handle.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use kdwire::{BrokerAddr, RemoteRegion, RpcClient};
use netsim::profile::Profile;
use netsim::NodeHandle;
use rnic::{CompletionQueue, QpOptions, QueuePair, RNic, ShmBuf};
use sim::sync::mpmc::WorkQueue;

use crate::busy::ServicePool;
use crate::config::{BrokerConfig, ConnMode, Transport};
use crate::data::PartitionStore;
use crate::metrics::{BrokerTelem, Metrics, MetricsSnapshot};
use crate::rdma_consume::ConsumeModule;
use crate::rdma_produce::ProduceModule;
use crate::requests::WorkItem;

/// An RDMA-writable consumer-offset slot (buffer + its registration).
pub type OffsetSlot = (rnic::ShmBuf, rnic::MemoryRegion);

/// Depth of the pre-allocated ack-buffer ring. Must exceed the number of
/// ack WRs that can be in flight at once, which is bounded by CQ capacity.
const ACK_RING_DEPTH: usize = 1024;

/// One partition's raw segment images as `(base_offset, bytes)` — the
/// "disk" that survives a broker crash (see [`Broker::durable_state`]). In
/// memory mode these are the live shared buffers; in tiered mode they are
/// read back from the segment files, so only synced bytes survive.
pub type SegmentBuffers = Vec<(u64, Rc<RefCell<Vec<u8>>>)>;

/// Lazily-created loopback QP the broker uses to issue atomics to itself
/// (§4.2.2: a TCP produce into a shared file "needs to reserve a memory
/// region by issuing an RDMA atomic to itself").
pub struct SelfRdma {
    qp: QueuePair,
    send_cq: CompletionQueue,
    lock: sim::sync::Mutex<()>,
}

/// Shared state of one broker. Module code receives `Rc<BrokerInner>`.
pub struct BrokerInner {
    pub node: NodeHandle,
    pub me: BrokerAddr,
    pub config: BrokerConfig,
    pub profile: Rc<Profile>,
    pub nic: RNic,
    pub metrics: Metrics,
    pub telem: BrokerTelem,
    pub store: PartitionStore,
    pub queue: WorkQueue<WorkItem>,
    pub net_pool: ServicePool,
    /// Every broker of the cluster, sorted by node id; `peers[0]` acts as
    /// the controller.
    pub peers: Vec<BrokerAddr>,
    peer_clients: RefCell<HashMap<u32, RpcClient>>,
    pub offsets: RefCell<HashMap<(String, String, u32), u64>>,
    /// EXTENSION (§5.4 future work): RDMA-writable offset slots keyed by
    /// (group, topic, partition). `u64::MAX` = nothing committed.
    pub offset_slots: RefCell<HashMap<(String, String, u32), OffsetSlot>>,
    /// Accepted produce/replication QPs by QP number (ack routing).
    pub produce_qps: RefCell<HashMap<u32, QueuePair>>,
    /// Consumer QPs are held only to keep them alive; they never generate
    /// broker-side work.
    pub consume_qps: RefCell<Vec<QueuePair>>,
    /// Shared receive CQ of the RDMA produce module (§4.1).
    pub recv_cq: CompletionQueue,
    /// Shared receive queue of the produce module; `Some` in
    /// [`ConnMode::Srq`]/[`ConnMode::SrqMux`], where every accepted
    /// produce QP consumes from it instead of a per-QP receive queue
    /// (DESIGN.md §13).
    pub srq: Option<rnic::Srq>,
    /// DCT-style lending pool; `Some` only in [`ConnMode::SrqMux`].
    /// Accepted produce connections hold a lease for their lifetime.
    pub mux_pool: Option<rnic::MuxPool>,
    /// Send CQ for (unsignaled) acks.
    pub ack_send_cq: CompletionQueue,
    /// Round-robin ring of pre-allocated 9-byte ack buffers (error byte +
    /// base offset). An ack is a tiny unsignaled Send; by the time the ring
    /// wraps, the earlier WR has long since executed, so slots can be
    /// reused without tracking completions.
    pub ack_ring: Vec<ShmBuf>,
    pub ack_ring_next: Cell<usize>,
    pub produce_module: ProduceModule,
    pub consume_module: ConsumeModule,
    self_rdma: RefCell<Option<Rc<SelfRdma>>>,
    /// False once the broker process has "crashed"; long-lived tasks check
    /// it and exit.
    pub alive: Cell<bool>,
    /// Broadcast on crash to wake tasks parked on network reads.
    pub shutdown: sim::sync::Notify,
    /// Leader-side push-replication QPs (failed on crash so followers see
    /// the disconnect).
    pub repl_qps: RefCell<Vec<QueuePair>>,
    /// Virtual-time time-series recorder; `Some` only when
    /// `config.observe` is set. Served over `Request::Series`.
    pub series: Option<kdtelem::SeriesLog>,
    /// Health watchdog (stall / MTTR detection); `Some` only when
    /// `config.observe` is set. Served over `Request::Health`.
    pub watchdog: Option<kdtelem::Watchdog>,
}

impl BrokerInner {
    /// Lazily connects (and caches) an RPC client to a peer broker.
    pub async fn peer_client(&self, addr: BrokerAddr) -> Option<RpcClient> {
        if let Some(c) = self.peer_clients.borrow().get(&addr.node) {
            if !c.is_dead() {
                return Some(c.clone());
            }
        }
        let stream = netsim::tcp::connect(&self.node, netsim::NodeId(addr.node), addr.port)
            .await
            .ok()?;
        let client = RpcClient::new(stream);
        self.peer_clients
            .borrow_mut()
            .insert(addr.node, client.clone());
        Some(client)
    }

    /// Issues a fetch-and-add to this broker's own NIC (loopback RC QP) and
    /// returns the old value.
    pub async fn self_faa(&self, region: RemoteRegion, add: u64) -> Option<u64> {
        let s = self.ensure_self_rdma().await?;
        let _guard = s.lock.lock().await;
        let result = ShmBuf::zeroed(8);
        crate::api::post_self(&s.qp, result.clone(), region, add).ok()?;
        let cqe = s.send_cq.next().await?;
        if !cqe.ok() {
            return None;
        }
        cqe.atomic_old.or_else(|| Some(result.read_u64(0)))
    }

    async fn ensure_self_rdma(&self) -> Option<Rc<SelfRdma>> {
        if let Some(s) = self.self_rdma.borrow().clone() {
            return Some(s);
        }
        let send_cq = self.nic.create_cq(64);
        let recv_cq = self.nic.create_cq(64);
        let qp = self
            .nic
            .connect(
                self.node.id,
                self.config.rdma_port + crate::rdma_net::PRODUCE_PORT_OFF,
                send_cq.clone(),
                recv_cq,
                QpOptions::default(),
            )
            .await
            .ok()?;
        let s = Rc::new(SelfRdma {
            qp,
            send_cq,
            lock: sim::sync::Mutex::new(()),
        });
        // Another task may have raced us; keep the first.
        let mut slot = self.self_rdma.borrow_mut();
        if slot.is_none() {
            *slot = Some(Rc::clone(&s));
        }
        Some(slot.clone().unwrap())
    }
}

/// A running broker.
#[derive(Clone)]
pub struct Broker {
    inner: Rc<BrokerInner>,
}

impl Broker {
    /// Starts a broker on `node`. `peers` must list every broker of the
    /// cluster (including this one) with identical ordering everywhere;
    /// `peers[0]` is the controller.
    pub fn start(node: &NodeHandle, config: BrokerConfig, peers: Vec<BrokerAddr>) -> Broker {
        let mut peers = peers;
        peers.sort_by_key(|p| p.node);
        let me = *peers
            .iter()
            .find(|p| p.node == node.id.0)
            .expect("this broker must be in the peer list");
        assert_eq!(me.port, config.tcp_port, "peer list port mismatch");
        let profile = node.profile();
        let nic = RNic::new(node);
        let recv_cq = nic.create_cq(config.cq_capacity);
        let ack_send_cq = nic.create_cq(config.cq_capacity);
        // Connection-scaling provisioning (DESIGN.md §13): SRQ modes post
        // the broker's entire produce receive depth once, up front —
        // accepted QPs consume from this pool instead of carrying
        // `recv_depth` receives each.
        let (srq, mux_pool) = match config.conn_mode {
            ConnMode::PerQp => (None, None),
            mode => {
                let srq = nic.create_srq(config.srq_depth);
                srq.post_recv_list((0..config.srq_depth).map(|i| rnic::RecvWr {
                    wr_id: i as u64,
                    buf: None,
                }))
                .expect("fresh SRQ accepts its initial posting");
                let pool = mode
                    .multiplexed()
                    .then(|| rnic::MuxPool::new(&nic, config.mux_pool));
                (Some(srq), pool)
            }
        };
        let metrics = Metrics::default();
        let net_pool = ServicePool::with_counter(
            config.net_threads,
            profile.cpu.wakeup,
            metrics.net_busy_ns.clone(),
        );
        let telem = BrokerTelem::default();
        // Continuous telemetry rides on the broker's (ambient) registry:
        // the sampler snapshots every instrument on the virtual-time wheel;
        // the watchdog declares a stall when the datapath stops making
        // progress for a budget of virtual time. Both default OFF — a
        // broker without `observe` runs bit-identically to before.
        let (series, watchdog) = match &config.observe {
            Some(o) => {
                let series = kdtelem::Sampler::start(
                    &telem.registry,
                    kdtelem::SeriesOptions {
                        interval: o.sample_interval,
                        capacity: o.series_capacity,
                    },
                );
                let watchdog = kdtelem::Watchdog::start(
                    &telem.registry,
                    kdtelem::WatchdogOptions {
                        poll: o.watchdog_poll,
                        budget: o.watchdog_budget,
                        ..kdtelem::WatchdogOptions::default()
                    },
                );
                (Some(series), Some(watchdog))
            }
            None => (None, None),
        };
        let inner = Rc::new(BrokerInner {
            node: node.clone(),
            me,
            profile: Rc::clone(&profile),
            nic,
            metrics,
            telem,
            store: PartitionStore::default(),
            queue: WorkQueue::new(config.request_queue_depth),
            net_pool,
            peers,
            peer_clients: RefCell::new(HashMap::new()),
            offsets: RefCell::new(HashMap::new()),
            offset_slots: RefCell::new(HashMap::new()),
            produce_qps: RefCell::new(HashMap::new()),
            consume_qps: RefCell::new(Vec::new()),
            recv_cq,
            srq,
            mux_pool,
            ack_send_cq,
            ack_ring: (0..ACK_RING_DEPTH).map(|_| ShmBuf::zeroed(9)).collect(),
            ack_ring_next: Cell::new(0),
            produce_module: ProduceModule::default(),
            consume_module: ConsumeModule::new(config.slots_per_consumer),
            self_rdma: RefCell::new(None),
            alive: Cell::new(true),
            shutdown: sim::sync::Notify::new(),
            repl_qps: RefCell::new(Vec::new()),
            series,
            watchdog,
            config,
        });

        // Front ends.
        crate::server_tcp::start(&inner);
        if inner.config.transport == Transport::RdmaSendRecv {
            crate::server_osu::start(&inner);
        }
        if inner.config.rdma.any() || inner.config.transport == Transport::RdmaSendRecv {
            crate::rdma_net::start(&inner);
        }
        // Worker pool.
        for _ in 0..inner.config.api_workers {
            let b = Rc::clone(&inner);
            sim::spawn(async move { crate::api::worker_loop(b).await });
        }
        // Durable-tier background tasks: the every-N-ms flusher and the
        // retention sweep. Memory mode spawns neither — schedules stay
        // bit-identical to the pre-durability broker.
        if inner.config.storage.mode == kdstorage::StorageMode::Tiered {
            if let kdstorage::SyncMode::EveryMs(ms) = inner.config.storage.sync {
                let b = Rc::clone(&inner);
                sim::spawn(async move { crate::api::flusher_loop(b, ms).await });
            }
            if inner.config.storage.retention.is_enabled() {
                let b = Rc::clone(&inner);
                sim::spawn(async move { crate::api::retention_loop(b).await });
            }
        }
        Broker { inner }
    }

    pub fn addr(&self) -> BrokerAddr {
        self.inner.me
    }

    pub fn node_id(&self) -> netsim::NodeId {
        self.inner.node.id
    }

    /// Creates topic metadata directly (admin path used by the cluster
    /// harness); equivalent to sending `CreateTopic` to the controller.
    pub fn inner(&self) -> &Rc<BrokerInner> {
        &self.inner
    }

    /// Telemetry snapshot, including network-thread busy time (fed live into
    /// the metrics registry by the broker's `ServicePool`).
    pub fn metrics(&self) -> MetricsSnapshot {
        let s = self.inner.metrics.snapshot();
        debug_assert_eq!(s.net_busy_ns, self.inner.net_pool.busy_ns());
        s
    }

    /// One-sided RDMA traffic served by this broker's NIC (no CPU).
    pub fn nic_stats(&self) -> rnic::NicStats {
        self.inner.nic.stats()
    }

    /// True until [`crash`](Self::crash) is called.
    pub fn is_alive(&self) -> bool {
        self.inner.alive.get()
    }

    /// Simulates a broker process crash: listeners unbind, the worker pool
    /// dies, and every RDMA endpoint fails so peers (producers, consumers,
    /// push leaders) observe RC disconnects — exactly what a dying host's
    /// NIC produces. Volatile state freezes; the segment buffers (the
    /// "disk") survive and can be harvested with
    /// [`durable_state`](Self::durable_state) for a restarted broker.
    pub fn crash(&self) {
        let b = &self.inner;
        if !b.alive.get() {
            return;
        }
        b.alive.set(false);
        // The observability tasks belong to this broker process: they die
        // with it (a restarted broker starts fresh ones).
        if let Some(s) = &b.series {
            s.stop();
        }
        if let Some(w) = &b.watchdog {
            w.stop();
        }
        // Stop accepting new connections on every front end.
        netsim::tcp::unbind(&b.node, b.config.tcp_port);
        for off in [
            crate::rdma_net::PRODUCE_PORT_OFF,
            crate::rdma_net::OSU_PORT_OFF,
            crate::rdma_net::CONSUME_PORT_OFF,
        ] {
            rnic::cm::unbind(&b.nic, b.config.rdma_port + off);
        }
        // Kill the worker pool; queued requests die unanswered (clients see
        // the connection drop, never a fabricated reply).
        b.queue.close();
        for (_, qp) in b.produce_qps.borrow_mut().drain() {
            qp.close();
        }
        for qp in b.consume_qps.borrow_mut().drain(..) {
            qp.close();
        }
        for qp in b.repl_qps.borrow_mut().drain(..) {
            qp.close();
        }
        if let Some(s) = b.self_rdma.borrow_mut().take() {
            s.qp.close();
        }
        // Revoke surviving grants (deregistering their MRs) and wake parked
        // replication tasks so they observe death and exit.
        for p in b.store.local_partitions() {
            let grant = p.grant.borrow().clone();
            if let Some(g) = grant.filter(|g| !g.closed.get()) {
                crate::api::revoke_grant(b, &p, &g, kdwire::ErrorCode::Internal);
            }
            p.announce_leo();
        }
        // Wake connection readers parked on the TCP front end.
        b.shutdown.notify_waiters();
    }

    /// Harvests the surviving "disk": every hosted partition's raw segment
    /// images, sorted by topic partition. Usable before or after `crash`;
    /// the buffers stay valid (and shared) after the broker object is gone.
    ///
    /// Memory mode hands out the live shared buffers (the historical
    /// model: RAM is the durable medium). Tiered mode reads the images
    /// back from the segment files — a machine crash keeps only what a
    /// sync point made durable, and torn-write faults that garbled file
    /// bytes are faithfully visible to recovery.
    pub fn durable_state(&self) -> Vec<(kdstorage::TopicPartition, SegmentBuffers)> {
        let mut out: Vec<_> = self
            .inner
            .store
            .local_partitions()
            .into_iter()
            .map(|p| {
                let bufs = match p.log.store().durable_snapshot() {
                    Some(parts) => parts
                        .into_iter()
                        .map(|(base, bytes)| (base, Rc::new(RefCell::new(bytes))))
                        .collect(),
                    None => (0..=p.log.head_index())
                        .filter_map(|i| {
                            p.log
                                .segment(i)
                                .map(|s| (s.base_offset(), s.shared_buf()))
                        })
                        .collect(),
                };
                (p.tp.clone(), bufs)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Fault hook: garble the last `k` durable bytes of the active segment
    /// file of every hosted partition (torn-write injection). Returns total
    /// bytes garbled — zero on memory-mode brokers.
    pub fn garble_storage_tail(&self, k: u32) -> u64 {
        self.inner
            .store
            .local_partitions()
            .into_iter()
            .map(|p| p.log.garble_active_tail(k))
            .sum()
    }

    /// Installs a partition recovered from pre-crash segment buffers; used
    /// by the harness right after `start` when restarting a crashed broker.
    pub fn install_recovered(
        &self,
        topic: &str,
        partition: u32,
        epoch: u64,
        leader: BrokerAddr,
        replicas: Vec<BrokerAddr>,
        buffers: SegmentBuffers,
    ) {
        crate::api::install_recovered_partition(
            &self.inner,
            topic,
            partition,
            epoch,
            leader,
            replicas,
            buffers,
        );
    }
}
