//! Replication (paper §4.3).
//!
//! * **TCP pull** (➏, §4.3.1): follower fetcher tasks long-poll the leader
//!   with replica fetch requests and append the returned batches; the
//!   leader treats a fetch at offset X as an acknowledgment of everything
//!   before X.
//! * **RDMA push** (➐, §4.3.2): the leader obtains produce access to the
//!   replica file on each follower and writes committed bytes straight from
//!   its own mapped file into the follower's — zero copies on both ends —
//!   with credit-based flow control and opportunistic batching of
//!   contiguous writes.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

use kdstorage::record::verify_batch;
use kdwire::messages::{ProduceMode, Request, Response};
use kdwire::ProduceAccessResp;
use netsim::profile::copy_time;
use rnic::{CompletionQueue, CqOpcode, QpOptions, QueuePair, RecvWr, SendWr, ShmBuf, WorkRequest};
use sim::sync::Semaphore;

use crate::broker::BrokerInner;
use crate::data::Partition;

/// Starts the pull fetcher for a follower replica (original Kafka).
pub fn start_pull_fetcher(b: &Rc<BrokerInner>, p: &Rc<Partition>) {
    let b = Rc::clone(b);
    let p = Rc::clone(p);
    sim::spawn(async move { pull_loop(b, p).await });
}

async fn pull_loop(b: Rc<BrokerInner>, p: Rc<Partition>) {
    let my_epoch = p.epoch();
    loop {
        // A crashed broker or a leadership change retires this fetcher (a
        // new one is spawned under the new epoch if still a follower).
        if !b.alive.get() || p.is_leader() || p.epoch() != my_epoch {
            return;
        }
        let leader = p.leader();
        let client = match b.peer_client(leader).await {
            Some(c) => c,
            None => {
                sim::time::sleep(Duration::from_millis(10)).await;
                continue;
            }
        };
        let req = Request::Fetch {
            topic: p.tp.topic.as_str().to_string(),
            partition: p.tp.partition,
            offset: p.log.next_offset(),
            max_bytes: b.config.replica_fetch_max_bytes,
            replica_id: b.me.node,
        };
        let fetch_start = sim::now();
        let resp = match client.call(&req).await {
            Ok(Response::Fetch(f)) => f,
            Ok(_) | Err(_) => {
                sim::time::sleep(Duration::from_millis(10)).await;
                continue;
            }
        };
        if !resp.error.is_ok() {
            // Leader not ready yet (topic creation racing): back off.
            sim::time::sleep(Duration::from_millis(1)).await;
            continue;
        }
        b.metrics.add(&b.metrics.replica_fetches, 1);
        if !resp.bytes.is_empty() {
            apply_replicated(&b, &p, &resp.bytes).await;
            // Replication latency, pull flavour: fetch issued → batches
            // applied locally. Empty long-polls are not latency samples.
            b.telem.replicate_ns.record_since(fetch_start);
            b.telem.registry.record_span(
                "broker.replicate.pull",
                fetch_start.as_nanos(),
                sim::now().as_nanos(),
            );
        }
        p.follower_set_hw(resp.high_watermark);
        crate::rdma_consume::update_partition_slots(&p, &b.consume_module, &b.metrics);
        // No data → the leader long-polled already; loop immediately.
    }
}

/// Applies a run of replicated batches on the follower: verify + the two
/// receive-side copies the paper attributes to pull replication (§5.2).
async fn apply_replicated(b: &Rc<BrokerInner>, p: &Rc<Partition>, bytes: &[u8]) {
    let cpu = &b.profile.cpu;
    let mut at = 0usize;
    while at < bytes.len() {
        let Ok(header) = verify_batch(&bytes[at..]) else {
            return; // corrupt replication stream: stop (leader will resend)
        };
        let total = header.total_len();
        let cost = cpu.api_produce_base
            + copy_time(total as u64, cpu.crc_bandwidth)
            + copy_time(total as u64, cpu.heap_copy_bandwidth);
        crate::api::charge_worker(b, cost).await;
        b.metrics.add(&b.metrics.heap_copied_bytes, total as u64);
        if p.log.append_replica(&bytes[at..at + total]).is_err() {
            return; // offset mismatch: retry from our log end next round
        }
        crate::api::charge_storage(b, p).await;
        at += total;
    }
    p.announce_leo();
}

/// Starts push-replication tasks (one per follower) for a leader partition.
pub fn maybe_start_push(b: &Rc<BrokerInner>, p: &Rc<Partition>) {
    let replicas = p.replicas();
    if p.push_started.get() || !p.is_leader() || replicas.is_empty() || !b.config.rdma.replicate {
        return;
    }
    p.push_started.set(true);
    for follower in replicas {
        let b = Rc::clone(b);
        let p = Rc::clone(p);
        sim::spawn(async move { push_loop(b, p, follower).await });
    }
}

struct PushSession {
    qp: QueuePair,
    grant: ProduceAccessResp,
    credits: Semaphore,
}

/// Leader-side push loop for one follower.
async fn push_loop(b: Rc<BrokerInner>, p: Rc<Partition>, follower: kdwire::BrokerAddr) {
    let my_epoch = p.epoch();
    let mut leo_rx = p.leo_tx.subscribe();
    let mut cursor_seg: u32 = 0;
    let mut cursor_pos: u32 = 0;
    // Index of the next not-yet-pushed batch within the cursor segment.
    let mut cursor_idx: usize = 0;
    // True when the cursor just advanced past a sealed file: the follower
    // must roll its head (which mirrors our sealed file) on re-establish.
    let mut just_rolled = false;
    let mut session: Option<PushSession> = None;
    let acked = Rc::new(Cell::new(0u64));
    // Replication lag for this (partition, follower): records the leader
    // has pushed but the follower has not yet acked. Each pusher holds a
    // private cell under the shared name, so a registry snapshot reports
    // total outstanding lag across the cluster (peak = worst instant).
    let lag = b.telem.registry.gauge("kdbroker", "repl.lag");
    // Post times of in-flight writes (wr_id = follower LEO when acked),
    // consumed by the collector to measure push replication latency.
    let inflight: Rc<RefCell<VecDeque<(u64, sim::SimTime)>>> =
        Rc::new(RefCell::new(VecDeque::new()));

    loop {
        // A crashed broker or a leadership change retires this pusher.
        if !b.alive.get() || !p.is_leader() || p.epoch() != my_epoch {
            return;
        }
        // Wait for new committed-to-leader bytes at the cursor.
        loop {
            let seg = p.log.segment(cursor_seg).expect("cursor segment");
            if seg.committed_pos() > cursor_pos {
                break;
            }
            if seg.is_sealed() && seg.committed_pos() == cursor_pos {
                // Move to the next file; the session must be re-established
                // on the follower's next head file.
                cursor_seg += 1;
                cursor_pos = 0;
                cursor_idx = 0;
                just_rolled = true;
                session = None;
                continue;
            }
            if leo_rx.changed().await.is_err() {
                return;
            }
            if !b.alive.get() || !p.is_leader() || p.epoch() != my_epoch {
                return;
            }
        }

        // Establish the session lazily: "get RDMA produce address" on the
        // follower (§4.3.2), then an RC QP.
        if session.is_none() {
            session = establish(
                &b,
                &p,
                follower,
                just_rolled,
                Rc::clone(&acked),
                Rc::clone(&inflight),
                lag.clone(),
            )
            .await;
            if session.is_none() {
                sim::time::sleep(Duration::from_millis(1)).await;
                continue;
            }
            just_rolled = false;
            // Re-sync the cursor to the follower's actual frontier: a
            // restarted follower can be behind it (recovery truncated its
            // torn tail) or still on an earlier file. Follower files mirror
            // leader files byte for byte, so its committed frontier is
            // always one of our batch boundaries.
            let g = &session.as_ref().unwrap().grant;
            if g.segment != cursor_seg || g.write_pos != cursor_pos {
                cursor_seg = g.segment;
                cursor_pos = g.write_pos;
                cursor_idx = batch_index_at(&p, cursor_seg, cursor_pos);
                // A frontier that is not one of our batch boundaries (or
                // lies past our end) means the follower recovered a log
                // that diverged from ours and was never truncated (no live
                // leader existed at its recovery). Retire rather than
                // interleave mismatched bytes; a later restart against a
                // live leader repairs the follower.
                let aligned = match p.log.segment(cursor_seg) {
                    Some(seg) => seg
                        .batch_at(cursor_idx)
                        .map(|e| e.pos == cursor_pos)
                        .unwrap_or_else(|| seg.committed_pos() == cursor_pos),
                    None => false,
                };
                if !aligned {
                    return;
                }
            }
        }
        let s = session.as_ref().unwrap();

        // Opportunistic batching: merge contiguous committed batches up to
        // the configured cap (the paper settles on 1 KiB, Fig 8/17), but
        // always at batch granularity and at least one batch.
        let seg = p.log.segment(cursor_seg).expect("cursor segment");
        let mut end = cursor_pos;
        let mut last_offset = 0u64;
        // Tentative: committed to `cursor_idx` only once the write is
        // posted, so a dead session never leaves the index ahead of the
        // byte cursor.
        let mut next_idx = cursor_idx;
        while let Some(entry) = seg.batch_at(next_idx) {
            debug_assert_eq!(entry.pos, end, "push cursor at batch boundary");
            let new_end = entry.end_pos();
            if end > cursor_pos && new_end - cursor_pos > b.config.replication_max_batch {
                break;
            }
            end = new_end;
            last_offset = entry.next_offset();
            next_idx += 1;
        }
        if end == cursor_pos {
            sim::time::sleep(Duration::from_micros(1)).await;
            continue;
        }

        // The replication worker pays a per-post cost (the reason batching
        // matters for floods of small records, §4.3.2 / Fig 17).
        sim::time::sleep(b.profile.cpu.repl_post_cost).await;
        // Flow control: one credit per outstanding replicate request.
        let Ok(permit) = s.credits.acquire(1).await else {
            session = None;
            continue;
        };
        permit.forget(); // returned by the collector on the follower's ack

        let len = end - cursor_pos;
        let local = ShmBuf::from_shared(seg.shared_buf()).slice(cursor_pos as usize, len as usize);
        // Each push write is its own lifeline: the context crosses to the
        // follower in the WR (its commit lands on this trace) and comes back
        // on the leader's send CQE (the ack edge).
        let wr = SendWr::new(
            last_offset, // wr_id doubles as "follower LEO when acked"
            WorkRequest::WriteImm {
                local,
                remote_addr: s.grant.region.addr + u64::from(cursor_pos),
                rkey: s.grant.region.rkey,
                imm: kdwire::pack_imm(s.grant.file_id, 0),
            },
        )
        .with_trace(Some(kdtelem::TraceCtx::root()));
        if s.qp.post_send(wr).is_err() {
            session = None;
            continue;
        }
        inflight.borrow_mut().push_back((last_offset, sim::now()));
        lag.set(last_offset.saturating_sub(acked.get()));
        b.metrics.add(&b.metrics.push_writes, 1);
        b.metrics.add(&b.metrics.push_bytes, u64::from(len));
        cursor_pos = end;
        cursor_idx = next_idx;
    }
}

/// Index of the batch starting at byte `pos` of leader segment `seg_idx`
/// (the number of batches that end at or before `pos`).
fn batch_index_at(p: &Rc<Partition>, seg_idx: u32, pos: u32) -> usize {
    let Some(seg) = p.log.segment(seg_idx) else {
        return 0;
    };
    let mut i = 0;
    while let Some(e) = seg.batch_at(i) {
        if e.pos >= pos {
            break;
        }
        i += 1;
    }
    i
}

/// Gets produce access on the follower and connects the push QP; spawns the
/// completion collector.
#[allow(clippy::too_many_arguments)]
async fn establish(
    b: &Rc<BrokerInner>,
    p: &Rc<Partition>,
    follower: kdwire::BrokerAddr,
    just_rolled: bool,
    acked: Rc<Cell<u64>>,
    inflight: Rc<RefCell<VecDeque<(u64, sim::SimTime)>>>,
    lag: kdtelem::Gauge,
) -> Option<PushSession> {
    let client = b.peer_client(follower).await?;
    // (Re)attach wherever the follower's head is — except right after our
    // file sealed, when the follower must roll (its old head mirrors our
    // sealed file exactly).
    let min_bytes = if just_rolled {
        b.config.log.segment_size
    } else {
        0
    };
    let resp = client
        .call(&Request::ProduceAccess {
            topic: p.tp.topic.as_str().to_string(),
            partition: p.tp.partition,
            mode: ProduceMode::Replication,
            min_bytes,
        })
        .await
        .ok()?;
    let Response::ProduceAccess(grant) = resp else {
        return None;
    };
    if !grant.error.is_ok() {
        return None;
    }
    let send_cq = b.nic.create_cq(4096);
    let recv_cq = b.nic.create_cq(4096);
    let qp = b
        .nic
        .connect(
            netsim::NodeId(follower.node),
            follower.rdma_port + crate::rdma_net::PRODUCE_PORT_OFF,
            send_cq.clone(),
            recv_cq.clone(),
            QpOptions::default(),
        )
        .await
        .ok()?;
    // Post receives for the follower's credit-return acks — one chained
    // post (one doorbell), not 64.
    let ack_buf = ShmBuf::zeroed(16 * 64);
    let _ = qp.post_recv_list((0..64).map(|i| RecvWr {
        wr_id: i,
        buf: Some(ack_buf.slice(i as usize * 16, 16)),
    }));
    b.repl_qps.borrow_mut().push(qp.clone());
    // The grant tells us the follower's recovered log end: treat it as an
    // ack so the high watermark can re-advance after a leader restart even
    // when there is nothing left to push.
    let before = p.log.high_watermark();
    p.follower_ack(follower.node, grant.next_offset);
    if p.log.high_watermark() != before {
        crate::api::on_hw_advanced(b, p);
    }
    let credits = Semaphore::new(grant.credits as usize);
    // Writes of a dead session never complete; drop their post times.
    inflight.borrow_mut().clear();
    spawn_collector(
        b,
        p,
        follower.node,
        qp.clone(),
        send_cq,
        recv_cq,
        credits.clone(),
        ack_buf,
        acked,
        lag,
        inflight,
    );
    Some(PushSession { qp, grant, credits })
}

/// Collects completions of one push session: write acks advance the high
/// watermark; credit-return receives replenish the leader's credits.
#[allow(clippy::too_many_arguments)]
fn spawn_collector(
    b: &Rc<BrokerInner>,
    p: &Rc<Partition>,
    follower_node: u32,
    qp: QueuePair,
    send_cq: CompletionQueue,
    recv_cq: CompletionQueue,
    credits: Semaphore,
    ack_buf: ShmBuf,
    acked: Rc<Cell<u64>>,
    lag: kdtelem::Gauge,
    inflight: Rc<RefCell<VecDeque<(u64, sim::SimTime)>>>,
) {
    // Write acks: the record "is fully replicated" once the RDMA write is
    // acknowledged by the follower's NIC.
    let b2 = Rc::clone(b);
    let p2 = Rc::clone(p);
    let stream = kdtelem::stream_key(p.tp.topic.as_str(), p.tp.partition);
    let max_batch = b.config.cq_batch.max(1);
    sim::spawn(async move {
        let mut batch: Vec<rnic::Cqe> = Vec::with_capacity(max_batch);
        'collect: loop {
            if crate::rdma_net::drain_or_wait(&send_cq, &mut batch, max_batch)
                .await
                .is_none()
            {
                break;
            }
            for cqe in &batch {
                if !cqe.ok() {
                    break 'collect;
                }
                if cqe.opcode == CqOpcode::RdmaWrite && cqe.wr_id > acked.get() {
                    acked.set(cqe.wr_id);
                    let posted = inflight.borrow().back().map_or(cqe.wr_id, |(off, _)| *off);
                    lag.set(posted.saturating_sub(cqe.wr_id));
                    if let Some(ctx) = cqe.trace {
                        b2.telem.registry.trace_event_now(
                            ctx,
                            kdtelem::EventKind::ReplAck {
                                stream,
                                offset: cqe.wr_id,
                            },
                        );
                    }
                    // Replication latency, push flavour: write posted →
                    // follower NIC ack (a cumulative ack covers all earlier
                    // writes).
                    let now = sim::now();
                    let mut q = inflight.borrow_mut();
                    while q.front().is_some_and(|(off, _)| *off <= cqe.wr_id) {
                        let (_, posted) = q.pop_front().unwrap();
                        b2.telem.replicate_ns.record_since(posted);
                        b2.telem.registry.record_span(
                            "broker.replicate.push",
                            posted.as_nanos(),
                            now.as_nanos(),
                        );
                    }
                    drop(q);
                    p2.follower_ack(follower_node, cqe.wr_id);
                    crate::api::on_hw_advanced(&b2, &p2);
                }
            }
        }
    });
    // Credit returns: a drained batch replenishes all its permits and
    // reposts its recvs through one chained post.
    sim::spawn(async move {
        let mut batch: Vec<rnic::Cqe> = Vec::with_capacity(max_batch);
        'collect: loop {
            if crate::rdma_net::drain_or_wait(&recv_cq, &mut batch, max_batch)
                .await
                .is_none()
            {
                break;
            }
            let mut ok = 0;
            for cqe in &batch {
                if !cqe.ok() {
                    break;
                }
                ok += 1;
            }
            if ok > 0 {
                credits.add_permits(ok);
                let _ = qp.post_recv_list(batch[..ok].iter().map(|cqe| RecvWr {
                    wr_id: cqe.wr_id,
                    buf: Some(ack_buf.slice(cqe.wr_id as usize * 16, 16)),
                }));
            }
            if ok < batch.len() {
                break 'collect;
            }
        }
    });
}
