//! Thread-occupancy modelling.
//!
//! The simulation runs every logical thread as a task, so "a thread is busy"
//! must be modelled explicitly. [`ServiceQueue`] represents one OS thread
//! multiplexing many event sources (a Kafka network processor thread
//! serving its connections): requests queue FIFO behind one another, and a
//! request that finds the thread idle pays the blocking-poll wakeup latency
//! the paper measures (§5.1: "thread invocations due to blocking polling").

use std::cell::Cell;
use std::time::Duration;

use sim::SimTime;

/// One logical OS thread shared by many tasks. Busy time is accumulated both
/// locally (per-thread accounting) and into a shared [`kdtelem::Counter`]
/// (e.g. the broker's `net_busy_ns`).
pub struct ServiceQueue {
    busy_until: Cell<u64>,
    wakeup: Duration,
    busy_ns: Cell<u64>,
    busy_total: kdtelem::Counter,
}

impl ServiceQueue {
    pub fn new(wakeup: Duration) -> Self {
        ServiceQueue::with_counter(wakeup, kdtelem::Counter::new())
    }

    /// As [`new`](Self::new), but busy time also accumulates into `total`
    /// (shared across the threads of a pool).
    pub fn with_counter(wakeup: Duration, total: kdtelem::Counter) -> Self {
        ServiceQueue {
            busy_until: Cell::new(0),
            wakeup,
            busy_ns: Cell::new(0),
            busy_total: total,
        }
    }

    /// Occupies the thread for `cost`, waiting behind earlier work. If the
    /// thread was idle, the wakeup latency is paid first (but does not count
    /// as busy time).
    pub async fn run(&self, cost: Duration) {
        let now = sim::now().as_nanos();
        let busy = self.busy_until.get();
        let start = if busy <= now {
            now + self.wakeup.as_nanos() as u64
        } else {
            busy
        };
        let end = start + cost.as_nanos() as u64;
        self.busy_until.set(end);
        self.busy_ns.set(self.busy_ns.get() + cost.as_nanos() as u64);
        self.busy_total.add(cost.as_nanos() as u64);
        sim::time::sleep_until(SimTime::from_nanos(end)).await;
    }

    /// Total virtual time this thread spent doing work (CPU-load metric).
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.get()
    }
}

/// A pool of [`ServiceQueue`]s with round-robin assignment (how connections
/// are spread over Kafka's network threads).
pub struct ServicePool {
    threads: Vec<ServiceQueue>,
    next: Cell<usize>,
}

impl ServicePool {
    pub fn new(n: usize, wakeup: Duration) -> Self {
        ServicePool::with_counter(n, wakeup, kdtelem::Counter::new())
    }

    /// As [`new`](Self::new), but every thread's busy time also accumulates
    /// into `total` (e.g. the broker's `net_busy_ns` metric).
    pub fn with_counter(n: usize, wakeup: Duration, total: kdtelem::Counter) -> Self {
        assert!(n > 0);
        ServicePool {
            threads: (0..n)
                .map(|_| ServiceQueue::with_counter(wakeup, total.clone()))
                .collect(),
            next: Cell::new(0),
        }
    }

    /// Assigns the next thread index round-robin.
    pub fn assign(&self) -> usize {
        let i = self.next.get();
        self.next.set((i + 1) % self.threads.len());
        i
    }

    pub fn thread(&self, i: usize) -> &ServiceQueue {
        &self.threads[i]
    }

    pub fn len(&self) -> usize {
        self.threads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    pub fn busy_ns(&self) -> u64 {
        self.threads.iter().map(ServiceQueue::busy_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_thread_pays_wakeup() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let q = ServiceQueue::new(Duration::from_micros(10));
            let t0 = sim::now();
            q.run(Duration::from_micros(5)).await;
            assert_eq!((sim::now() - t0).as_nanos(), 15_000);
            assert_eq!(q.busy_ns(), 5_000);
        });
    }

    #[test]
    fn busy_thread_queues_without_wakeup() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let q = std::rc::Rc::new(ServiceQueue::new(Duration::from_micros(10)));
            let q2 = std::rc::Rc::clone(&q);
            let a = sim::spawn(async move { q2.run(Duration::from_micros(5)).await });
            let q3 = std::rc::Rc::clone(&q);
            let b = sim::spawn(async move { q3.run(Duration::from_micros(5)).await });
            a.await.unwrap();
            b.await.unwrap();
            // wakeup(10) + 5 + 5 serialised: done at t=20us.
            assert_eq!(sim::now().as_nanos(), 20_000);
            assert_eq!(q.busy_ns(), 10_000);
        });
    }

    #[test]
    fn pool_round_robin() {
        let p = ServicePool::new(3, Duration::ZERO);
        assert_eq!(
            (0..7).map(|_| p.assign()).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2, 0]
        );
    }
}
