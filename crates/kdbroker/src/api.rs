//! API workers (paper Fig 2 ➌➍): dequeue work items, verify and commit
//! records, answer fetches, and serve the RDMA control plane.

use std::rc::Rc;
use std::time::Duration;

use kdstorage::{AppendError, TopicPartition};
use kdwire::messages::{ProduceMode, Request, Response};
use kdwire::slots::{pack_shared_word, shared_word_addend, unpack_shared_word, SharedWord};
use kdwire::{
    ConsumeAccessResp, ErrorCode, FetchResp, ProduceAccessResp, RemoteRegion, SlotGrant,
};
use netsim::profile::copy_time;
use netsim::NodeId;
use rnic::{SendWr, ShmBuf, WorkRequest};
use sim::sync::oneshot;

use crate::broker::BrokerInner;
use crate::data::Partition;
use crate::rdma_consume::{self, SlotRef};
use crate::rdma_net::send_ack;
use crate::rdma_produce::Grant;
use crate::requests::{AckRoute, CommitItem, WorkItem};

/// Cost of trivial control-plane requests (metadata, offsets, grants).
const CONTROL_COST: Duration = Duration::from_micros(3);

/// Sleeps `cost` of worker time and accounts it as CPU load.
pub async fn charge_worker(b: &Rc<BrokerInner>, cost: Duration) {
    b.metrics
        .add(&b.metrics.worker_busy_ns, cost.as_nanos() as u64);
    sim::time::sleep(cost).await;
}

/// One API worker thread.
pub async fn worker_loop(b: Rc<BrokerInner>) {
    loop {
        let item = match b.queue.try_recv() {
            Some(i) => i,
            None => {
                let Some(i) = b.queue.recv().await else {
                    return;
                };
                // The worker was parked; waking it costs (§5.1).
                sim::time::sleep(b.profile.cpu.wakeup).await;
                i
            }
        };
        if !b.alive.get() {
            return; // crashed: the item dies unanswered
        }
        dispatch(&b, item).await;
    }
}

async fn dispatch(b: &Rc<BrokerInner>, item: WorkItem) {
    let start = sim::now();
    match item {
        WorkItem::Rpc {
            peer,
            request,
            reply,
            trace,
        } => {
            // Per-API service latency (worker dequeue → reply sent or
            // deferred); long-poll/replication waits run off-worker and are
            // deliberately excluded.
            let (hist, span_name) = match &request {
                Request::Produce { .. } => (&b.telem.api_produce_ns, "broker.api.produce"),
                Request::Fetch { .. } => (&b.telem.api_fetch_ns, "broker.api.fetch"),
                _ => (&b.telem.api_control_ns, "broker.api.control"),
            };
            let hist = hist.clone();
            // A traced RPC continues the caller's lifeline in a child span;
            // untraced ones keep the classic duration-only span.
            let tspan = trace.map(|ctx| b.telem.registry.trace_span(span_name, Some(ctx)));
            let span = if tspan.is_none() {
                Some(b.telem.registry.span(span_name))
            } else {
                None
            };
            let ctx = tspan.as_ref().map(|s| s.ctx());
            handle_rpc(b, peer, request, reply, ctx).await;
            hist.record_since(start);
            if let Some(s) = tspan {
                s.end();
            }
            if let Some(s) = span {
                s.end();
            }
        }
        WorkItem::RdmaCommit {
            file_id,
            order,
            byte_len,
            seq,
            ack,
            trace,
        } => {
            let tspan = trace.map(|ctx| b.telem.registry.trace_span("broker.rdma_commit", Some(ctx)));
            let span = if tspan.is_none() {
                Some(b.telem.registry.span("broker.rdma_commit"))
            } else {
                None
            };
            let ctx = tspan.as_ref().map(|s| s.ctx());
            handle_rdma_commit(b, file_id, order, byte_len, seq, ack, ctx).await;
            b.telem.rdma_commit_ns.record_since(start);
            if let Some(s) = tspan {
                s.end();
            }
            if let Some(s) = span {
                s.end();
            }
        }
        WorkItem::RdmaCommitBatch { file_id, items } => {
            let span = b.telem.registry.span("broker.rdma_commit_batch");
            handle_rdma_commit_batch(b, file_id, items).await;
            b.telem.rdma_commit_ns.record_since(start);
            span.end();
        }
    }
}

fn send(reply: oneshot::Sender<Response>, resp: Response) {
    let _ = reply.send(resp);
}

async fn handle_rpc(
    b: &Rc<BrokerInner>,
    peer: NodeId,
    request: Request,
    reply: oneshot::Sender<Response>,
    ctx: Option<kdtelem::TraceCtx>,
) {
    match request {
        Request::Metadata { topics } => {
            charge_worker(b, CONTROL_COST).await;
            let metas = if topics.is_empty() {
                b.store.all_topics()
            } else {
                topics
                    .iter()
                    .filter_map(|t| b.store.topic_meta(t))
                    .collect()
            };
            send(
                reply,
                Response::Metadata {
                    error: ErrorCode::None,
                    brokers: b.peers.clone(),
                    topics: metas,
                },
            );
        }
        Request::CreateTopic {
            topic,
            partitions,
            replication,
        } => {
            charge_worker(b, CONTROL_COST).await;
            // Topic management runs off-worker (it performs cluster RPCs).
            let b2 = Rc::clone(b);
            sim::spawn(async move {
                let error = create_topic(&b2, &topic, partitions, replication).await;
                send(reply, Response::CreateTopic { error });
            });
        }
        Request::InternalAddPartition {
            topic,
            partition,
            epoch,
            leader,
            replicas,
        } => {
            charge_worker(b, CONTROL_COST).await;
            let error = apply_add_partition(b, &topic, partition, epoch, leader, replicas);
            send(reply, Response::InternalAddPartition { error });
        }
        Request::Produce {
            topic,
            partition,
            acks,
            batch,
        } => {
            handle_produce(
                b,
                &TopicPartition::new(&*topic, partition),
                acks,
                batch,
                reply,
                ctx,
            )
            .await
        }
        Request::Fetch {
            topic,
            partition,
            offset,
            max_bytes,
            replica_id,
        } => {
            handle_fetch(
                b,
                &TopicPartition::new(&*topic, partition),
                offset,
                max_bytes,
                replica_id,
                reply,
                ctx,
            )
            .await
        }
        Request::ListOffsets { topic, partition } => {
            charge_worker(b, CONTROL_COST).await;
            let resp = match b.store.get(&TopicPartition::new(&*topic, partition)) {
                Some(p) if p.is_leader() => Response::ListOffsets {
                    error: ErrorCode::None,
                    earliest: p.log.start_offset(),
                    latest: p.log.high_watermark(),
                },
                Some(_) => Response::ListOffsets {
                    error: ErrorCode::NotLeader,
                    earliest: 0,
                    latest: 0,
                },
                None => Response::ListOffsets {
                    error: ErrorCode::UnknownTopicOrPartition,
                    earliest: 0,
                    latest: 0,
                },
            };
            send(reply, resp);
        }
        Request::OffsetCommit {
            group,
            topic,
            partition,
            offset,
        } => {
            charge_worker(b, CONTROL_COST).await;
            b.offsets
                .borrow_mut()
                .insert((group, topic, partition), offset);
            send(
                reply,
                Response::OffsetCommit {
                    error: ErrorCode::None,
                },
            );
        }
        Request::OffsetFetch {
            group,
            topic,
            partition,
        } => {
            charge_worker(b, CONTROL_COST).await;
            let key = (group, topic, partition);
            // An RDMA-committed offset (slot) takes precedence over the
            // TCP-committed map when newer.
            let tcp = b.offsets.borrow().get(&key).copied().unwrap_or(u64::MAX);
            let slot = b
                .offset_slots
                .borrow()
                .get(&key)
                .map(|(buf, _)| buf.read_u64(0))
                .unwrap_or(u64::MAX);
            let offset = match (tcp, slot) {
                (u64::MAX, s) => s,
                (t, u64::MAX) => t,
                (t, s) => t.max(s),
            };
            send(
                reply,
                Response::OffsetFetch {
                    error: ErrorCode::None,
                    offset,
                },
            );
        }
        Request::OffsetSlotAccess {
            group,
            topic,
            partition,
        } => {
            charge_worker(b, CONTROL_COST).await;
            if !b.config.rdma.consume {
                send(
                    reply,
                    Response::OffsetSlotAccess {
                        error: ErrorCode::InvalidRequest,
                        region: RemoteRegion { addr: 0, rkey: 0, len: 0 },
                    },
                );
                return;
            }
            let key = (group, topic, partition);
            let region = {
                let mut slots = b.offset_slots.borrow_mut();
                let (_, mr) = slots.entry(key).or_insert_with(|| {
                    let buf = ShmBuf::zeroed(8);
                    buf.write_u64(0, u64::MAX);
                    let mr = b
                        .nic
                        .reg_mr(buf.clone(), rnic::Access::REMOTE_WRITE | rnic::Access::REMOTE_READ);
                    b.metrics.add(&b.metrics.registered_bytes, 8);
                    (buf, mr)
                });
                RemoteRegion {
                    addr: mr.addr(),
                    rkey: mr.rkey(),
                    len: 8,
                }
            };
            send(
                reply,
                Response::OffsetSlotAccess {
                    error: ErrorCode::None,
                    region,
                },
            );
        }
        Request::ProduceAccess {
            topic,
            partition,
            mode,
            min_bytes,
        } => {
            handle_produce_access(
                b,
                peer,
                &TopicPartition::new(&*topic, partition),
                mode,
                min_bytes,
                reply,
            )
            .await
        }
        Request::ProduceRelease { topic, partition } => {
            charge_worker(b, CONTROL_COST).await;
            if let Some(p) = b.store.get(&TopicPartition::new(&*topic, partition)) {
                let grant = p.grant.borrow().clone();
                if let Some(g) = grant {
                    if g.owner == peer || g.mode == ProduceMode::Shared {
                        revoke_grant(b, &p, &g, ErrorCode::AccessDenied);
                    }
                }
            }
            send(
                reply,
                Response::ProduceRelease {
                    error: ErrorCode::None,
                },
            );
        }
        Request::ConsumeAccess {
            topic,
            partition,
            offset,
            consumer_id,
        } => {
            handle_consume_access(
                b,
                &TopicPartition::new(&*topic, partition),
                offset,
                consumer_id,
                reply,
            )
            .await
        }
        Request::Telemetry => {
            charge_worker(b, CONTROL_COST).await;
            let json = b.telem.registry.snapshot().to_json_lines();
            send(
                reply,
                Response::Telemetry {
                    error: ErrorCode::None,
                    json,
                },
            );
        }
        Request::Series => {
            charge_worker(b, CONTROL_COST).await;
            let (error, json) = match &b.series {
                Some(s) => (ErrorCode::None, s.dump().to_json_lines()),
                None => (ErrorCode::NotSupported, String::new()),
            };
            send(reply, Response::Series { error, json });
        }
        Request::Health => {
            charge_worker(b, CONTROL_COST).await;
            let (error, json) = match &b.watchdog {
                Some(w) => (
                    ErrorCode::None,
                    kdtelem::health::to_json_lines(&w.events()),
                ),
                None => (ErrorCode::NotSupported, String::new()),
            };
            send(reply, Response::Health { error, json });
        }
        Request::ConsumeRelease {
            topic,
            partition,
            consumer_id,
            segment,
        } => {
            charge_worker(b, CONTROL_COST).await;
            if let Some(p) = b.store.get(&TopicPartition::new(&*topic, partition)) {
                rdma_consume::release_read(&b.nic, &b.metrics, &p, segment);
                b.consume_module.free_slot(consumer_id, &p.tp, segment);
                p.slot_refs
                    .borrow_mut()
                    .retain(|r| !(r.consumer_id == consumer_id && r.segment == segment));
                // Last reader gone: the sealed segment may spill back out.
                maybe_evict(b, &p, segment);
            }
            send(
                reply,
                Response::ConsumeRelease {
                    error: ErrorCode::None,
                },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Topic management (controller role).
// ---------------------------------------------------------------------------

async fn create_topic(b: &Rc<BrokerInner>, topic: &str, partitions: u32, replication: u32) -> ErrorCode {
    let controller = b.peers[0];
    if b.me.node != controller.node {
        // Forward to the controller.
        let Some(client) = b.peer_client(controller).await else {
            return ErrorCode::Internal;
        };
        return match client
            .call(&Request::CreateTopic {
                topic: topic.to_string(),
                partitions,
                replication,
            })
            .await
        {
            Ok(Response::CreateTopic { error }) => error,
            _ => ErrorCode::Internal,
        };
    }
    if partitions == 0 || replication == 0 || replication as usize > b.peers.len() {
        return ErrorCode::InvalidRequest;
    }
    if b.store.topic_exists(topic) {
        return ErrorCode::AlreadyExists;
    }
    let n = b.peers.len();
    for pt in 0..partitions {
        let leader = b.peers[pt as usize % n];
        let followers: Vec<_> = (1..replication as usize)
            .map(|k| b.peers[(pt as usize + k) % n])
            .collect();
        // Install on every broker (full metadata view everywhere).
        for target in b.peers.clone() {
            let req = Request::InternalAddPartition {
                topic: topic.to_string(),
                partition: pt,
                epoch: 0,
                leader,
                replicas: followers.clone(),
            };
            if target.node == b.me.node {
                apply_add_partition(b, topic, pt, 0, leader, followers.clone());
            } else if let Some(client) = b.peer_client(target).await {
                let _ = client.call(&req).await;
            }
        }
    }
    ErrorCode::None
}

/// Installs partition metadata and, when this broker hosts it, the local
/// replica plus its replication machinery. A view with a newer epoch for an
/// already-hosted partition is a leadership change and is applied in place;
/// a view with an older epoch is stale and rejected (`FencedEpoch`).
pub fn apply_add_partition(
    b: &Rc<BrokerInner>,
    topic: &str,
    partition: u32,
    epoch: u64,
    leader: kdwire::BrokerAddr,
    followers: Vec<kdwire::BrokerAddr>,
) -> ErrorCode {
    let tp = TopicPartition::new(topic, partition);
    if let Some(existing) = b.store.partition_meta(&tp) {
        if epoch < existing.epoch {
            return ErrorCode::FencedEpoch;
        }
    }
    b.store.record_meta(
        topic,
        kdwire::PartitionMeta {
            partition,
            epoch,
            leader,
            replicas: followers.clone(),
        },
    );
    let is_leader = leader.node == b.me.node;
    let is_follower = followers.iter().any(|f| f.node == b.me.node);
    if let Some(p) = b.store.get(&tp) {
        if epoch > p.epoch() {
            apply_leadership_change(b, &p, epoch, leader, followers, is_leader);
        }
        return ErrorCode::None;
    }
    if !(is_leader || is_follower) {
        return ErrorCode::None;
    }
    let log = partition_log(b, &tp);
    let p = Partition::with_log(tp, log, leader, followers, is_leader, epoch);
    b.store.insert(Rc::clone(&p));
    start_replication(b, &p);
    ErrorCode::None
}

/// Installs a partition recovered from surviving segment buffers (broker
/// restart after a crash). The log is rebuilt by a CRC scan that truncates
/// any torn tail; committed records all survive because commits only cover
/// CRC-verified bytes.
pub fn install_recovered_partition(
    b: &Rc<BrokerInner>,
    topic: &str,
    partition: u32,
    epoch: u64,
    leader: kdwire::BrokerAddr,
    followers: Vec<kdwire::BrokerAddr>,
    buffers: crate::broker::SegmentBuffers,
) {
    b.store.record_meta(
        topic,
        kdwire::PartitionMeta {
            partition,
            epoch,
            leader,
            replicas: followers.clone(),
        },
    );
    let tp = TopicPartition::new(topic, partition);
    let is_leader = leader.node == b.me.node;
    let store: Rc<dyn kdstorage::SegmentStore> = match tiered_store(b, &tp) {
        Some(store) => store,
        None => Rc::new(kdstorage::MemStore),
    };
    let log = kdstorage::Log::recover_with_store(b.config.log.clone(), store, buffers);
    if b.config.storage.mode == kdstorage::StorageMode::Tiered {
        log.set_clock(Box::new(|| sim::now().as_nanos()));
    }
    let p = Partition::with_log(tp, log, leader, followers, is_leader, epoch);
    b.store.insert(Rc::clone(&p));
    if is_leader {
        p.announce_leo();
        // RF=1: the high watermark is recovered directly from the log end.
        // RF>1: it re-advances as followers ack (push re-learns each
        // follower's frontier at session establish).
        if p.replication_factor() == 1 {
            p.recompute_hw();
            on_hw_advanced(b, &p);
        }
    }
    start_replication(b, &p);
}

// ---------------------------------------------------------------------------
// Durable tier (segment files) plumbing.
// ---------------------------------------------------------------------------

/// Tiered mode: creates (wiping any stale files) the partition's segment
/// file store under `<storage.dir>/node<N>/<topic>-<partition>`. Memory
/// mode returns `None`.
fn tiered_store(b: &Rc<BrokerInner>, tp: &TopicPartition) -> Option<Rc<kdstorage::FileStore>> {
    if b.config.storage.mode != kdstorage::StorageMode::Tiered {
        return None;
    }
    let root = b
        .config
        .storage
        .dir
        .as_ref()
        .expect("tiered storage requires a directory");
    let dir = root
        .join(format!("node{}", b.me.node))
        .join(format!("{}-{}", tp.topic.as_str(), tp.partition));
    let store =
        kdstorage::FileStore::create(&dir, &b.config.storage).expect("create segment file store");
    Some(Rc::new(store))
}

/// Builds a fresh partition log on the configured storage backend.
fn partition_log(b: &Rc<BrokerInner>, tp: &TopicPartition) -> kdstorage::Log {
    match tiered_store(b, tp) {
        Some(store) => {
            let log = kdstorage::Log::with_store(b.config.log.clone(), store);
            log.set_clock(Box::new(|| sim::now().as_nanos()));
            log
        }
        None => kdstorage::Log::new(b.config.log.clone()),
    }
}

/// Drains the partition's accumulated storage I/O charge: bumps the
/// `storage.*` counters and sleeps the modeled latency on the virtual
/// clock. Memory mode never accrues a charge, so this returns without
/// awaiting and the pre-durability schedule is untouched.
pub async fn charge_storage(b: &Rc<BrokerInner>, p: &Partition) {
    let io = p.log.take_io();
    if io.is_zero() {
        return;
    }
    let m = &b.metrics;
    m.add(&m.storage_bytes_flushed, io.flushed_bytes);
    m.add(&m.storage_fsyncs, io.fsyncs);
    m.add(&m.storage_segments_rotated, io.rotated);
    m.add(&m.storage_segments_reclaimed, io.reclaimed);
    m.add(&m.storage_cold_read_bytes, io.cold_read_bytes);
    if io.fsyncs > 0 {
        b.telem.storage_fsync_ns.record(io.ns);
    }
    sim::time::sleep(Duration::from_nanos(io.ns)).await;
}

/// Background flusher for `SyncMode::EveryMs`: periodically pushes every
/// partition's unsynced committed suffix out to its segment files.
pub async fn flusher_loop(b: Rc<BrokerInner>, every_ms: u64) {
    let period = Duration::from_millis(every_ms.max(1));
    loop {
        sim::time::sleep(period).await;
        if !b.alive.get() {
            return;
        }
        for p in b.store.local_partitions() {
            p.log.sync_all();
            charge_storage(&b, &p).await;
        }
    }
}

/// Background retention sweep: reclaims sealed segments past the size/age
/// budget and re-spills sealed segments left resident (e.g. paged in for a
/// consumer that has since disconnected).
pub async fn retention_loop(b: Rc<BrokerInner>) {
    let cfg = b.config.storage.retention;
    let period = Duration::from_millis(cfg.check_every_ms.max(1));
    loop {
        sim::time::sleep(period).await;
        if !b.alive.get() {
            return;
        }
        for p in b.store.local_partitions() {
            p.log.apply_retention(sim::now().as_nanos(), &cfg);
            for i in 0..p.log.head_index() {
                maybe_evict(&b, &p, i);
            }
            charge_storage(&b, &p).await;
        }
    }
}

/// Tiered mode: spill a sealed segment's bytes out of broker memory once
/// nothing pins the buffer — no open produce grant and no consumer read
/// registration (zero-copy access always wins over memory reclaim).
/// `Log::evict_segment` additionally refuses head/unsealed/unsynced/
/// reclaimed segments, so the call is safe to make speculatively.
fn maybe_evict(b: &Rc<BrokerInner>, p: &Rc<Partition>, segment: u32) {
    if b.config.storage.mode != kdstorage::StorageMode::Tiered {
        return;
    }
    if p.read_regs.borrow().contains_key(&segment) {
        return;
    }
    if p.grant
        .borrow()
        .as_ref()
        .is_some_and(|g| g.segment == segment && !g.closed.get())
    {
        return;
    }
    p.log.evict_segment(segment);
}

fn start_replication(b: &Rc<BrokerInner>, p: &Rc<Partition>) {
    if p.is_leader() {
        crate::repl::maybe_start_push(b, p);
    } else if !b.config.rdma.replicate {
        crate::repl::start_pull_fetcher(b, p);
    }
}

/// Epoch-fenced leadership change. Revoking the active grant deregisters its
/// MR, rotating the rkey out from under any producer or pusher still
/// operating under the old epoch: their one-sided writes fail the NIC's
/// rkey lookup and never become consumer-visible.
fn apply_leadership_change(
    b: &Rc<BrokerInner>,
    p: &Rc<Partition>,
    epoch: u64,
    leader: kdwire::BrokerAddr,
    followers: Vec<kdwire::BrokerAddr>,
    is_leader: bool,
) {
    let grant = p.grant.borrow().clone();
    if let Some(g) = grant.filter(|g| !g.closed.get()) {
        revoke_grant(b, p, &g, ErrorCode::FencedEpoch);
    }
    p.apply_leadership(epoch, leader, followers, is_leader);
    if is_leader {
        // Promoted follower: serve from the local log. The HW learned from
        // the old leader stays put until the new ISR acks past it.
        p.push_started.set(false);
        if p.replication_factor() == 1 {
            p.recompute_hw();
            on_hw_advanced(b, p);
        }
    }
    start_replication(b, p);
    // Wake any replication task parked on the LEO watch so it observes the
    // epoch change and exits.
    p.announce_leo();
}

// ---------------------------------------------------------------------------
// Produce (TCP datapath, §4.2.1).
// ---------------------------------------------------------------------------

/// Trace the two broker CPU copies the TCP produce path pays (§4.2.1):
/// socket receive buffer → request heap, then heap → log file.
fn trace_tcp_copies(b: &Rc<BrokerInner>, ctx: Option<kdtelem::TraceCtx>, len: u64) {
    if let Some(ctx) = ctx {
        let r = &b.telem.registry;
        r.trace_event_now(
            ctx,
            kdtelem::EventKind::CpuCopy {
                site: "broker.net_to_user",
                bytes: len,
            },
        );
        r.trace_event_now(
            ctx,
            kdtelem::EventKind::CpuCopy {
                site: "broker.log_append",
                bytes: len,
            },
        );
    }
}

/// Trace a commit of `[base, next)` on the producer's lifeline.
fn trace_commit(
    b: &Rc<BrokerInner>,
    ctx: Option<kdtelem::TraceCtx>,
    tp: &TopicPartition,
    base_offset: u64,
    next_offset: u64,
) {
    if let Some(ctx) = ctx {
        b.telem.registry.trace_event_now(
            ctx,
            kdtelem::EventKind::Commit {
                stream: kdtelem::stream_key(tp.topic.as_str(), tp.partition),
                base_offset,
                next_offset,
            },
        );
    }
}

async fn handle_produce(
    b: &Rc<BrokerInner>,
    tp: &TopicPartition,
    acks: u8,
    batch: Vec<u8>,
    reply: oneshot::Sender<Response>,
    ctx: Option<kdtelem::TraceCtx>,
) {
    b.metrics.add(&b.metrics.produce_requests, 1);
    b.metrics.add(&b.metrics.produce_bytes, batch.len() as u64);
    let Some(p) = b.store.get(tp) else {
        let error = if b.store.topic_exists(tp.topic.as_str()) {
            ErrorCode::NotLeader
        } else {
            ErrorCode::UnknownTopicOrPartition
        };
        send(reply, Response::Produce { error, base_offset: 0 });
        return;
    };
    if !p.is_leader() {
        send(
            reply,
            Response::Produce {
                error: ErrorCode::NotLeader,
                base_offset: 0,
            },
        );
        return;
    }
    // A TCP produce into an RDMA-shared file must reserve through the same
    // atomic word as the remote producers (§4.2.2 "Shared RDMA/TCP access").
    let grant = p.grant.borrow().clone();
    if let Some(g) = grant.filter(|g| g.mode == ProduceMode::Shared && !g.closed.get()) {
        produce_via_shared(b, &p, &g, batch, reply, ctx).await;
        return;
    }

    let cpu = &b.profile.cpu;
    let len = batch.len() as u64;
    let guard = p.write_lock.lock().await;
    // Verify (CRC) + the receive-buffer → file-buffer copy (§4.2.1's second
    // redundant copy; the copy itself really happens in `append_batch`).
    charge_worker(
        b,
        cpu.api_produce_base
            + copy_time(len, cpu.crc_bandwidth)
            + copy_time(len, cpu.heap_copy_bandwidth),
    )
    .await;
    b.metrics.add(&b.metrics.heap_copied_bytes, len);
    trace_tcp_copies(b, ctx, len);
    let res = p.log.append_batch(&batch);
    drop(guard);
    match res {
        Ok(info) => {
            trace_commit(
                b,
                ctx,
                tp,
                info.base_offset,
                info.base_offset + u64::from(info.record_count),
            );
            after_local_commit(b, &p);
            charge_storage(b, &p).await;
            finish_produce_rpc(b, &p, acks, info.base_offset, info.record_count, reply);
        }
        Err(e) => send(
            reply,
            Response::Produce {
                error: map_append_error(e),
                base_offset: 0,
            },
        ),
    }
}

/// Post-commit bookkeeping shared by every produce path.
fn after_local_commit(b: &Rc<BrokerInner>, p: &Rc<Partition>) {
    p.announce_leo();
    if p.replication_factor() == 1 {
        p.recompute_hw();
        on_hw_advanced(b, p);
    }
}

/// Completes a TCP produce according to its `acks` mode.
fn finish_produce_rpc(
    b: &Rc<BrokerInner>,
    p: &Rc<Partition>,
    acks: u8,
    base_offset: u64,
    record_count: u32,
    reply: oneshot::Sender<Response>,
) {
    let needs_full_commit = acks >= 2 && p.replication_factor() > 1;
    if needs_full_commit {
        let p = Rc::clone(p);
        let _ = b;
        sim::spawn(async move {
            p.wait_committed(base_offset + u64::from(record_count)).await;
            send(
                reply,
                Response::Produce {
                    error: ErrorCode::None,
                    base_offset,
                },
            );
        });
    } else {
        send(
            reply,
            Response::Produce {
                error: ErrorCode::None,
                base_offset,
            },
        );
    }
}

fn map_append_error(e: AppendError) -> ErrorCode {
    match e {
        AppendError::TooLarge { .. } => ErrorCode::InvalidRequest,
        AppendError::Batch(_) => ErrorCode::CorruptBatch,
        AppendError::NonContiguousCommit { .. } | AppendError::OffsetMismatch { .. } => {
            ErrorCode::Internal
        }
    }
}

/// TCP produce into a shared-RDMA file: reserve via a loopback FAA, copy the
/// bytes into the reserved region, and join the completion-ordered commit
/// stream.
async fn produce_via_shared(
    b: &Rc<BrokerInner>,
    p: &Rc<Partition>,
    g: &Rc<Grant>,
    batch: Vec<u8>,
    reply: oneshot::Sender<Response>,
    ctx: Option<kdtelem::TraceCtx>,
) {
    let shared = g.shared.as_ref().expect("shared grant");
    let word_region = RemoteRegion {
        addr: shared.word_mr.addr(),
        rkey: shared.word_mr.rkey(),
        len: 8,
    };
    let len = batch.len() as u64;
    let Some(old) = b.self_faa(word_region, shared_word_addend(len)).await else {
        send(
            reply,
            Response::Produce {
                error: ErrorCode::Internal,
                base_offset: 0,
            },
        );
        return;
    };
    let w = unpack_shared_word(old);
    let seg = p.log.segment(g.segment).expect("grant segment");
    if w.offset + len > u64::from(seg.capacity()) {
        // Out of space: abort the shared session and fall back to a plain
        // append on the fresh head file.
        revoke_grant(b, p, g, ErrorCode::OutOfSpace);
        roll_head(b, p);
        let cpu = &b.profile.cpu;
        let guard = p.write_lock.lock().await;
        charge_worker(
            b,
            cpu.api_produce_base
                + copy_time(len, cpu.crc_bandwidth)
                + copy_time(len, cpu.heap_copy_bandwidth),
        )
        .await;
        trace_tcp_copies(b, ctx, len);
        let res = p.log.append_batch(&batch);
        drop(guard);
        match res {
            Ok(info) => {
                trace_commit(
                    b,
                    ctx,
                    &p.tp,
                    info.base_offset,
                    info.base_offset + u64::from(info.record_count),
                );
                after_local_commit(b, p);
                charge_storage(b, p).await;
                finish_produce_rpc(b, p, 2, info.base_offset, info.record_count, reply);
            }
            Err(e) => send(
                reply,
                Response::Produce {
                    error: map_append_error(e),
                    base_offset: 0,
                },
            ),
        }
        return;
    }
    // Copy the records into the reserved region (this path still copies —
    // it is the TCP datapath; zero copy is the RDMA producers' privilege).
    let cpu = &b.profile.cpu;
    charge_worker(b, copy_time(len, cpu.heap_copy_bandwidth)).await;
    b.metrics.add(&b.metrics.heap_copied_bytes, len);
    trace_tcp_copies(b, ctx, len);
    seg.write_at(w.offset as u32, &batch);
    seg.advance_write_pos(w.offset as u32 + len as u32);
    // Join the completion-ordered commit stream at the current sequence.
    let seq = g.next_seq.get();
    g.next_seq.set(seq + 1);
    let item = WorkItem::RdmaCommit {
        file_id: g.file_id,
        order: w.order,
        byte_len: len as u32,
        seq,
        ack: AckRoute::Rpc(reply),
        trace: ctx,
    };
    crate::rdma_net::enqueue_in_order(b, g, seq, item);
}

// ---------------------------------------------------------------------------
// RDMA produce commits (§4.2.2).
// ---------------------------------------------------------------------------

/// Outcome of committing one produce span.
struct SpanInfo {
    base_offset: u64,
    next_offset: u64,
}

async fn handle_rdma_commit(
    b: &Rc<BrokerInner>,
    file_id: u16,
    order: u16,
    byte_len: u32,
    seq: u64,
    ack: AckRoute,
    ctx: Option<kdtelem::TraceCtx>,
) {
    let Some((tp, grant)) = b.produce_module.lookup(file_id) else {
        ack_error(b, ack, ErrorCode::AccessDenied);
        return;
    };
    // Enforce completion-order processing per file (§4.2.2).
    grant.chain.wait_turn(seq).await;
    let p = b.store.get(&tp).expect("grant partition exists");
    if grant.closed.get() {
        grant.chain.advance(seq);
        ack_error(b, ack, ErrorCode::OutOfSpace);
        return;
    }
    let ready = match grant.mode {
        // Shared-mode fast path: an in-order completion with no parked
        // successors commits inline exactly like an exclusive one — no
        // `ready` vector, no reorder bookkeeping.
        ProduceMode::Shared if !grant.shared_fast_path(order) => {
            grant.on_shared_arrival(order, byte_len, ack, ctx)
        }
        _ => {
            // Exclusive/replication/in-order-shared fast path: exactly one
            // span per completion and no reorder buffer, so commit inline
            // without building the intermediate vectors. Same sequence of
            // awaits and side effects as the general path below.
            let res = {
                let _guard = p.write_lock.lock().await;
                if grant.closed.get() {
                    Err(ErrorCode::OutOfSpace)
                } else {
                    charge_worker(
                        b,
                        b.profile.cpu.api_produce_base
                            + copy_time(u64::from(byte_len), b.profile.cpu.crc_bandwidth),
                    )
                    .await;
                    commit_span(b, &p, &grant, byte_len)
                }
            };
            grant.chain.advance(seq);
            match res {
                Ok(span) => {
                    b.metrics.add(&b.metrics.rdma_commits, 1);
                    b.metrics.add(&b.metrics.rdma_commit_bytes, u64::from(byte_len));
                    trace_commit(b, ctx, &tp, span.base_offset, span.next_offset);
                    finish_rdma_ack(b, &p, &grant, span, ack);
                    after_local_commit(b, &p);
                    charge_storage(b, &p).await;
                }
                Err(code) => ack_error(b, ack, code),
            }
            return;
        }
    };
    if ready.is_empty() {
        // Parked out-of-order: arm the hole timeout (§4.2.2).
        arm_order_timeout(b, &p, &grant, order);
        grant.chain.advance(seq);
        return;
    }
    let mut results = Vec::with_capacity(ready.len());
    {
        let _guard = p.write_lock.lock().await;
        for (len, route, trace) in ready {
            if grant.closed.get() {
                results.push((Err(ErrorCode::OutOfSpace), route, trace, len));
                continue;
            }
            // Verify in place: CRC over bytes already in the file; no copy.
            charge_worker(
                b,
                b.profile.cpu.api_produce_base
                    + copy_time(u64::from(len), b.profile.cpu.crc_bandwidth),
            )
            .await;
            let res = commit_span(b, &p, &grant, len);
            results.push((res, route, trace, len));
        }
    }
    grant.chain.advance(seq);
    let mut committed = false;
    for (res, route, trace, len) in results {
        match res {
            Ok(span) => {
                committed = true;
                b.metrics.add(&b.metrics.rdma_commits, 1);
                b.metrics.add(&b.metrics.rdma_commit_bytes, u64::from(len));
                trace_commit(b, trace, &tp, span.base_offset, span.next_offset);
                finish_rdma_ack(b, &p, &grant, span, route);
            }
            Err(code) => ack_error(b, route, code),
        }
    }
    if committed {
        after_local_commit(b, &p);
        charge_storage(b, &p).await;
    }
}

/// Commits a run of consecutive-sequence completions on one non-shared
/// file in a single worker pass: the per-file chain is claimed once for the
/// whole run, the write lock taken once, the verify CPU charged as one
/// amortised sleep, and the resulting same-QP acks ride one doorbell
/// through `send_ack_chained`. Per-commit semantics — span accounting,
/// closed/out-of-space handling, revocation on corruption, replication
/// deferral — match the per-item path; only the park/wake and doorbell
/// bookkeeping is amortised. Shared-mode grants never reach here (the
/// poller keeps them per-item for the Fig 5 reorder machinery).
async fn handle_rdma_commit_batch(b: &Rc<BrokerInner>, file_id: u16, items: Vec<CommitItem>) {
    let Some((tp, grant)) = b.produce_module.lookup(file_id) else {
        for it in items {
            ack_error(b, it.ack, ErrorCode::AccessDenied);
        }
        return;
    };
    let first_seq = items[0].seq;
    let last_seq = items[items.len() - 1].seq;
    // Claim the whole run on the completion-order chain (§4.2.2): the run's
    // sequences are consecutive, so passing the first ticket owns them all.
    grant.chain.wait_turn(first_seq).await;
    let p = b.store.get(&tp).expect("grant partition exists");
    if grant.closed.get() {
        grant.chain.advance_to(last_seq + 1);
        for it in items {
            ack_error(b, it.ack, ErrorCode::OutOfSpace);
        }
        return;
    }
    // Each producer's lifeline gets its own commit span over the batch.
    let spans: Vec<_> = items
        .iter()
        .map(|it| {
            it.trace
                .map(|ctx| b.telem.registry.trace_span("broker.rdma_commit", Some(ctx)))
        })
        .collect();
    let mut results = Vec::with_capacity(items.len());
    {
        let _guard = p.write_lock.lock().await;
        let mut cost = Duration::ZERO;
        for it in &items {
            cost += b.profile.cpu.api_produce_base
                + copy_time(u64::from(it.byte_len), b.profile.cpu.crc_bandwidth);
        }
        charge_worker(b, cost).await;
        for it in &items {
            results.push(if grant.closed.get() {
                Err(ErrorCode::OutOfSpace)
            } else {
                commit_span(b, &p, &grant, it.byte_len)
            });
        }
    }
    grant.chain.advance_to(last_seq + 1);
    let mut committed = false;
    // Immediate success acks, coalesced into one doorbell per QP below.
    let mut chained: Vec<(u32, u64)> = Vec::with_capacity(results.len());
    let single_replica = p.replication_factor() <= 1;
    for (it, res) in items.into_iter().zip(results) {
        match res {
            Ok(span) => {
                committed = true;
                b.metrics.add(&b.metrics.rdma_commits, 1);
                b.metrics
                    .add(&b.metrics.rdma_commit_bytes, u64::from(it.byte_len));
                trace_commit(b, it.trace, &tp, span.base_offset, span.next_offset);
                match grant.mode {
                    ProduceMode::Replication => {
                        // Follower side of push replication (§4.3.2): the
                        // credit returns on the chained doorbell.
                        p.follower_set_hw(p.log.next_offset());
                        on_hw_advanced(b, &p);
                        if let AckRoute::Qp(qpn) = it.ack {
                            chained.push((qpn, span.next_offset));
                        }
                    }
                    _ if single_replica => match it.ack {
                        AckRoute::Qp(qpn) => chained.push((qpn, span.base_offset)),
                        route => deliver_ack(b, route, ErrorCode::None, span.base_offset),
                    },
                    // Replicated leader: the ack waits off-worker for the
                    // high watermark, exactly as per-item commits do.
                    _ => finish_rdma_ack(b, &p, &grant, span, it.ack),
                }
            }
            Err(code) => ack_error(b, it.ack, code),
        }
    }
    if !chained.is_empty() {
        crate::rdma_net::send_ack_chained(b, &mut chained);
    }
    if committed {
        after_local_commit(b, &p);
        charge_storage(b, &p).await;
    }
    for s in spans.into_iter().flatten() {
        s.end();
    }
}

/// Verifies and commits `len` bytes sitting at the committed frontier of
/// the grant's file. May contain several batches (push replication merges
/// contiguous writes, §4.3.2).
fn commit_span(
    b: &Rc<BrokerInner>,
    p: &Rc<Partition>,
    grant: &Rc<Grant>,
    len: u32,
) -> Result<SpanInfo, ErrorCode> {
    if grant.segment != p.log.head_index() {
        return Err(ErrorCode::OutOfSpace);
    }
    let head = p.log.head();
    let start = head.committed_pos();
    if u64::from(start) + u64::from(len) > u64::from(head.capacity()) {
        return Err(ErrorCode::OutOfSpace);
    }
    head.advance_write_pos(start + len);
    let mut base_offset = None;
    let mut next_offset = p.log.next_offset();
    while head.committed_pos() < start + len {
        match p.log.commit_in_place(head.committed_pos()) {
            Ok(info) => {
                base_offset.get_or_insert(info.base_offset);
                next_offset = info.base_offset + u64::from(info.record_count);
            }
            Err(_) => {
                // Corrupt bytes inside the span: drop the uncommitted tail
                // and kill the session (clients must re-request access).
                head.truncate_to_committed();
                revoke_grant(b, p, grant, ErrorCode::CorruptBatch);
                return Err(ErrorCode::CorruptBatch);
            }
        }
    }
    Ok(SpanInfo {
        base_offset: base_offset.unwrap_or(next_offset),
        next_offset,
    })
}

/// Sends the produce result to its origin, deferring until full replication
/// where required.
fn finish_rdma_ack(
    b: &Rc<BrokerInner>,
    p: &Rc<Partition>,
    grant: &Rc<Grant>,
    span: SpanInfo,
    route: AckRoute,
) {
    match grant.mode {
        ProduceMode::Replication => {
            // Follower side of push replication: track our own progress and
            // return a credit to the leader (§4.3.2).
            p.follower_set_hw(p.log.next_offset());
            on_hw_advanced(b, p);
            if let AckRoute::Qp(qpn) = route {
                send_ack(b, qpn, ErrorCode::None, span.next_offset);
            }
        }
        _ => {
            if p.replication_factor() > 1 {
                let b2 = Rc::clone(b);
                let p2 = Rc::clone(p);
                sim::spawn(async move {
                    p2.wait_committed(span.next_offset).await;
                    deliver_ack(&b2, route, ErrorCode::None, span.base_offset);
                });
            } else {
                deliver_ack(b, route, ErrorCode::None, span.base_offset);
            }
        }
    }
}

fn deliver_ack(b: &Rc<BrokerInner>, route: AckRoute, error: ErrorCode, base_offset: u64) {
    match route {
        AckRoute::Qp(qpn) => send_ack(b, qpn, error, base_offset),
        AckRoute::Rpc(reply) => send(
            reply,
            Response::Produce {
                error,
                base_offset,
            },
        ),
        AckRoute::None => {}
    }
}

fn ack_error(b: &Rc<BrokerInner>, route: AckRoute, error: ErrorCode) {
    deliver_ack(b, route, error, 0);
}

/// Arms the §4.2.2 hole watchdog: if `order` is still parked when the
/// timeout fires, the whole shared session is aborted and access revoked.
fn arm_order_timeout(b: &Rc<BrokerInner>, p: &Rc<Partition>, grant: &Rc<Grant>, order: u16) {
    let generation = grant
        .shared
        .as_ref()
        .map(|s| s.generation.get())
        .unwrap_or(0);
    let timeout = b.config.shared_order_timeout;
    let b = Rc::clone(b);
    let p = Rc::clone(p);
    let grant = Rc::clone(grant);
    sim::spawn(async move {
        sim::time::sleep(timeout).await;
        if grant.is_pending(order, generation) {
            b.metrics.add(&b.metrics.produce_aborts, 1);
            revoke_grant(&b, &p, &grant, ErrorCode::OrderTimeout);
        }
    });
}

/// Revokes a grant: deregisters memory (in-flight writes fault), fails
/// parked completions, discards reserved-but-uncommitted bytes.
pub fn revoke_grant(b: &Rc<BrokerInner>, p: &Rc<Partition>, grant: &Rc<Grant>, error: ErrorCode) {
    let failed = b.produce_module.revoke(&b.nic, grant);
    for route in failed {
        ack_error(b, route, error);
    }
    if let Some(seg) = p.log.segment(grant.segment) {
        if !seg.is_sealed() {
            seg.truncate_to_committed();
        }
        b.metrics
            .registered_bytes
            .set(b.metrics.registered_bytes.get().saturating_sub(u64::from(seg.capacity())));
    }
    let mut cell = p.grant.borrow_mut();
    if cell.as_ref().is_some_and(|g| Rc::ptr_eq(g, grant)) {
        *cell = None;
    }
    b.metrics.add(&b.metrics.grants_revoked, 1);
}

/// Revokes exclusive/replication grants owned by a disconnected node
/// (§4.2.2: "If the RDMA producer fails, its exclusive RDMA access will be
/// revoked").
pub fn revoke_grants_of_node(b: &Rc<BrokerInner>, node: NodeId) {
    for p in b.store.local_partitions() {
        let grant = p.grant.borrow().clone();
        if let Some(g) = grant {
            if g.owner == node && g.mode != ProduceMode::Shared && !g.closed.get() {
                revoke_grant(b, &p, &g, ErrorCode::AccessDenied);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Produce access grants (§4.2.2 "Getting RDMA access").
// ---------------------------------------------------------------------------

fn roll_head(b: &Rc<BrokerInner>, p: &Rc<Partition>) {
    let sealed = p.log.head_index();
    p.log.roll();
    // The old head just became immutable: let consumers know (§4.4.2).
    on_hw_advanced(b, p);
    maybe_evict(b, p, sealed);
}

async fn handle_produce_access(
    b: &Rc<BrokerInner>,
    peer: NodeId,
    tp: &TopicPartition,
    mode: ProduceMode,
    min_bytes: u32,
    reply: oneshot::Sender<Response>,
) {
    charge_worker(b, CONTROL_COST).await;
    let fail = |error: ErrorCode| {
        Response::ProduceAccess(ProduceAccessResp {
            error,
            file_id: 0,
            segment: 0,
            region: RemoteRegion {
                addr: 0,
                rkey: 0,
                len: 0,
            },
            write_pos: 0,
            next_offset: 0,
            shared_word: None,
            credits: 0,
        })
    };
    let Some(p) = b.store.get(tp) else {
        send(reply, fail(ErrorCode::UnknownTopicOrPartition));
        return;
    };
    let allowed = match mode {
        ProduceMode::Replication => {
            if b.config.rdma.replicate && peer.0 != p.leader().node {
                // A pusher that is not the current leader lost a leadership
                // election it has not heard about yet: fence it.
                send(reply, fail(ErrorCode::FencedEpoch));
                return;
            }
            b.config.rdma.replicate && !p.is_leader()
        }
        _ => b.config.rdma.produce && p.is_leader(),
    };
    if !allowed {
        let code = if p.is_leader() || mode == ProduceMode::Replication {
            ErrorCode::AccessDenied
        } else {
            ErrorCode::NotLeader
        };
        send(reply, fail(code));
        return;
    }

    let existing = p.grant.borrow().clone().filter(|g| !g.closed.get());
    if let Some(g) = existing {
        let needs_roll =
            g.segment != p.log.head_index() || p.log.head().remaining() < min_bytes;
        let compatible = g.mode == mode
            && (mode == ProduceMode::Shared || g.owner == peer);
        if !compatible {
            send(reply, fail(ErrorCode::AccessDenied));
            return;
        }
        if !needs_roll {
            send(reply, grant_response(b, &p, &g));
            return;
        }
        // Roll: retire the old session, seal the file, open a new head.
        revoke_grant(b, &p, &g, ErrorCode::OutOfSpace);
        roll_head(b, &p);
    } else if p.log.head().remaining() < min_bytes {
        roll_head(b, &p);
    }

    let head = p.log.head();
    head.truncate_to_committed();
    let grant = b.produce_module.create_grant(
        &b.nic,
        tp,
        p.log.head_index(),
        head.shared_buf(),
        mode,
        peer,
    );
    if let Some(shared) = &grant.shared {
        shared.word_buf.write_u64(
            0,
            pack_shared_word(SharedWord {
                order: 0,
                offset: u64::from(head.committed_pos()),
            }),
        );
    }
    b.metrics
        .add(&b.metrics.registered_bytes, u64::from(head.capacity()));
    *p.grant.borrow_mut() = Some(Rc::clone(&grant));
    send(reply, grant_response(b, &p, &grant));
}

fn grant_response(b: &Rc<BrokerInner>, p: &Rc<Partition>, g: &Rc<Grant>) -> Response {
    let head = p.log.segment(g.segment).expect("grant segment");
    Response::ProduceAccess(ProduceAccessResp {
        error: ErrorCode::None,
        file_id: g.file_id,
        segment: g.segment,
        region: RemoteRegion {
            addr: g.mr.addr(),
            rkey: g.mr.rkey(),
            len: g.mr.len() as u64,
        },
        write_pos: head.committed_pos(),
        next_offset: p.log.next_offset(),
        shared_word: g.shared.as_ref().map(|s| RemoteRegion {
            addr: s.word_mr.addr(),
            rkey: s.word_mr.rkey(),
            len: 8,
        }),
        credits: b.config.replication_credits,
    })
}

// ---------------------------------------------------------------------------
// Fetch (consumers §4.4.1 and pull replication §4.3.1).
// ---------------------------------------------------------------------------

async fn handle_fetch(
    b: &Rc<BrokerInner>,
    tp: &TopicPartition,
    offset: u64,
    max_bytes: u32,
    replica_id: u32,
    reply: oneshot::Sender<Response>,
    ctx: Option<kdtelem::TraceCtx>,
) {
    let fail = |error: ErrorCode| {
        Response::Fetch(FetchResp {
            error,
            high_watermark: 0,
            log_end: 0,
            start_offset: offset,
            next_offset: offset,
            bytes: Vec::new(),
        })
    };
    let Some(p) = b.store.get(tp) else {
        send(reply, fail(ErrorCode::UnknownTopicOrPartition));
        return;
    };
    if !p.is_leader() {
        send(reply, fail(ErrorCode::NotLeader));
        return;
    }
    let is_replica = replica_id != u32::MAX;
    charge_worker(b, b.profile.cpu.api_fetch_base).await;
    if is_replica {
        // A fetch at `offset` acknowledges everything before it.
        let before = p.log.high_watermark();
        p.follower_ack(replica_id, offset);
        if p.log.high_watermark() != before {
            on_hw_advanced(b, &p);
        }
        if offset < p.log.start_offset() {
            send(reply, fail(ErrorCode::OffsetOutOfRange));
            return;
        }
        let f = p.log.read_from(offset, max_bytes, false);
        charge_storage(b, &p).await;
        if f.bytes.is_empty() {
            // Long-poll: park off-worker until data appears (Kafka's fetch
            // purgatory).
            let b2 = Rc::clone(b);
            let p2 = Rc::clone(&p);
            let wait = b.config.replica_fetch_wait;
            sim::spawn(async move {
                let deadline = sim::now() + wait;
                let mut rx = p2.leo_tx.subscribe();
                while p2.log.next_offset() <= offset && sim::now() < deadline {
                    let remaining = deadline.saturating_since(sim::now());
                    if sim::time::timeout(remaining, rx.changed()).await.is_err() {
                        break;
                    }
                }
                let f = p2.log.read_from(offset, max_bytes, false);
                charge_storage(&b2, &p2).await;
                b2.metrics.add(&b2.metrics.fetch_bytes, f.bytes.len() as u64);
                send(reply, fetch_response(&p2, f));
            });
            return;
        }
        b.metrics.add(&b.metrics.fetch_bytes, f.bytes.len() as u64);
        send(reply, fetch_response(&p, f));
    } else {
        b.metrics.add(&b.metrics.fetch_requests, 1);
        // Below the retention floor: the typed out-of-range error, not an
        // empty read (the data is gone, not merely unwritten).
        if offset < p.log.start_offset() {
            send(reply, fail(ErrorCode::OffsetOutOfRange));
            return;
        }
        if b.config.storage.mode == kdstorage::StorageMode::Tiered {
            match p.log.is_offset_resident(offset) {
                Some(true) => b.metrics.add(&b.metrics.storage_hot_hits, 1),
                Some(false) => b.metrics.add(&b.metrics.storage_hot_misses, 1),
                None => {}
            }
        }
        let f = p.log.read_from(offset, max_bytes, true);
        charge_storage(b, &p).await;
        if f.bytes.is_empty() {
            b.metrics.add(&b.metrics.empty_fetches, 1);
        }
        b.metrics.add(&b.metrics.fetch_bytes, f.bytes.len() as u64);
        // Consumer fetches only: replica fetches legitimately read past the
        // high watermark and are not "served records" in the §4.4 sense.
        if let Some(ctx) = ctx {
            b.telem.registry.trace_event_now(
                ctx,
                kdtelem::EventKind::FetchServed {
                    stream: kdtelem::stream_key(tp.topic.as_str(), tp.partition),
                    start_offset: f.start_offset,
                    next_offset: f.next_offset,
                    bytes: f.bytes.len() as u64,
                },
            );
        }
        send(reply, fetch_response(&p, f));
    }
}

fn fetch_response(p: &Rc<Partition>, f: kdstorage::log::FetchSlice) -> Response {
    Response::Fetch(FetchResp {
        error: ErrorCode::None,
        high_watermark: p.log.high_watermark(),
        log_end: p.log.next_offset(),
        start_offset: f.start_offset,
        next_offset: f.next_offset,
        bytes: f.bytes,
    })
}

// ---------------------------------------------------------------------------
// Consume access (§4.4.2).
// ---------------------------------------------------------------------------

async fn handle_consume_access(
    b: &Rc<BrokerInner>,
    tp: &TopicPartition,
    offset: u64,
    consumer_id: u64,
    reply: oneshot::Sender<Response>,
) {
    charge_worker(b, CONTROL_COST).await;
    let fail = |error: ErrorCode| {
        Response::ConsumeAccess(ConsumeAccessResp {
            error,
            segment: 0,
            region: RemoteRegion {
                addr: 0,
                rkey: 0,
                len: 0,
            },
            start_pos: 0,
            start_offset: 0,
            last_readable: 0,
            mutable: false,
            slot: None,
            high_watermark: 0,
        })
    };
    if !b.config.rdma.consume {
        send(reply, fail(ErrorCode::InvalidRequest));
        return;
    }
    let Some(p) = b.store.get(tp) else {
        send(reply, fail(ErrorCode::UnknownTopicOrPartition));
        return;
    };
    if !p.is_leader() {
        send(reply, fail(ErrorCode::NotLeader));
        return;
    }
    let hw = p.log.high_watermark();
    let hwp = p.log.high_watermark_position();
    if offset < p.log.start_offset() {
        send(reply, fail(ErrorCode::OffsetOutOfRange));
        return;
    }
    let (segment, start_pos, start_offset) = if offset < hw {
        match p.log.locate(offset) {
            Some((seg, entry)) => (seg, entry.pos, entry.base_offset),
            None => {
                send(reply, fail(ErrorCode::InvalidRequest));
                return;
            }
        }
    } else {
        (hwp.segment, hwp.pos, hw)
    };
    // Tiered: page a spilled segment back into memory before registering
    // it — the zero-copy read region must expose real bytes.
    if b.config.storage.mode == kdstorage::StorageMode::Tiered {
        if p.log.segment(segment).is_some_and(|s| s.is_resident()) {
            b.metrics.add(&b.metrics.storage_hot_hits, 1);
        } else {
            b.metrics.add(&b.metrics.storage_hot_misses, 1);
            if !p.log.restore_segment(segment) {
                send(reply, fail(ErrorCode::OffsetOutOfRange));
                return;
            }
            charge_storage(b, &p).await;
        }
    }
    let mr = rdma_consume::register_read(&b.nic, &b.metrics, &p, segment);
    let view = rdma_consume::slot_view_for(&p, segment);
    let slot = if view.mutable {
        match b
            .consume_module
            .alloc_slot(&b.nic, &b.metrics, consumer_id, tp, segment)
        {
            Some((slots, index)) => {
                let r = SlotRef {
                    consumer_id,
                    slot: index,
                    segment,
                };
                if !p.slot_refs.borrow().contains(&r) {
                    p.slot_refs.borrow_mut().push(r);
                }
                slots
                    .buf
                    .write_at(index * kdwire::SLOT_SIZE, &view.encode());
                Some(SlotGrant {
                    region: RemoteRegion {
                        addr: slots.mr.addr(),
                        rkey: slots.mr.rkey(),
                        len: slots.mr.len() as u64,
                    },
                    index: index as u32,
                    active_span: slots.active_span(),
                })
            }
            None => {
                rdma_consume::release_read(&b.nic, &b.metrics, &p, segment);
                send(reply, fail(ErrorCode::AccessDenied));
                return;
            }
        }
    } else {
        None
    };
    send(
        reply,
        Response::ConsumeAccess(ConsumeAccessResp {
            error: ErrorCode::None,
            segment,
            region: RemoteRegion {
                addr: mr.addr(),
                rkey: mr.rkey(),
                len: mr.len() as u64,
            },
            start_pos,
            start_offset,
            last_readable: view.last_readable,
            mutable: view.mutable,
            slot,
            high_watermark: hw,
        }),
    );
}

/// High-watermark side effects: refresh every RDMA-readable metadata slot
/// attached to the partition (§4.4.2).
pub fn on_hw_advanced(b: &Rc<BrokerInner>, p: &Rc<Partition>) {
    rdma_consume::update_partition_slots(p, &b.consume_module, &b.metrics);
}

/// Sends a batch on the broker's loopback QP — used by `self_faa`.
pub(crate) fn post_self(
    qp: &rnic::QueuePair,
    local: ShmBuf,
    region: RemoteRegion,
    add: u64,
) -> Result<(), rnic::PostError> {
    qp.post_send(SendWr::new(
        0,
        WorkRequest::FetchAdd {
            local: local.as_slice(),
            remote_addr: region.addr,
            rkey: region.rkey,
            add,
        },
    ))
}
