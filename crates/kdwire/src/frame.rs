//! Length-prefixed framing over the simulated TCP byte stream, and a
//! pipelining RPC client.
//!
//! Frame layout: `u32 LE total-length | u64 LE correlation id |
//! u64 LE trace id | u64 LE span id | payload`. Correlation ids let a
//! client keep many requests in flight on one connection (Kafka pipelines
//! produce requests the same way). The trace pair carries a
//! [`kdtelem::TraceCtx`] across the process boundary so one message's
//! lifeline is stitched end to end; trace id 0 means "none".

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use netsim::tcp::{Closed, ReadHalf, TcpStream, WriteHalf};

use crate::messages::{Request, Response};

/// Upper bound on a frame; a decoded length above this means stream
/// corruption (fail fast rather than allocate absurdly).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Errors surfaced by the RPC client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// Connection closed (peer gone / broker shut down).
    Closed,
    /// Peer sent bytes that do not decode.
    Protocol,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Closed => write!(f, "connection closed"),
            RpcError::Protocol => write!(f, "protocol decode error"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<Closed> for RpcError {
    fn from(_: Closed) -> Self {
        RpcError::Closed
    }
}

/// Writes one `(correlation, trace, payload)` frame. The trace context also
/// scopes the write's wire reservations, so link enqueue/deliver events land
/// on the message's lifeline.
pub async fn write_frame(
    w: &mut WriteHalf,
    correlation: u64,
    trace: Option<kdtelem::TraceCtx>,
    payload: &[u8],
) -> Result<(), Closed> {
    let total = 24 + payload.len();
    // Assembled in a recycled scratch buffer: steady-state framing does not
    // allocate.
    let mut frame = kdbuf::scratch();
    frame.reserve(4 + total);
    frame.extend_from_slice(&(total as u32).to_le_bytes());
    frame.extend_from_slice(&correlation.to_le_bytes());
    let (trace_id, span_id) = trace.map_or((0, 0), |t| (t.trace_id, t.span_id));
    frame.extend_from_slice(&trace_id.to_le_bytes());
    frame.extend_from_slice(&span_id.to_le_bytes());
    frame.extend_from_slice(payload);
    w.set_trace(trace);
    let res = w.write_all(&frame).await;
    w.set_trace(None);
    res
}

/// Reads one `(correlation, trace, payload)` frame.
pub async fn read_frame(
    r: &mut ReadHalf,
) -> Result<(u64, Option<kdtelem::TraceCtx>, Vec<u8>), Closed> {
    let mut payload = Vec::new();
    let (correlation, trace) = read_frame_into(r, &mut payload).await?;
    Ok((correlation, trace, payload))
}

/// Reads one frame, replacing `out`'s contents with the payload. Returns
/// `(correlation, trace)`. Allocation-free when `out` already has capacity,
/// so decode loops can reuse one buffer across frames.
pub async fn read_frame_into(
    r: &mut ReadHalf,
    out: &mut Vec<u8>,
) -> Result<(u64, Option<kdtelem::TraceCtx>), Closed> {
    let mut head = kdbuf::scratch();
    r.read_exact_into(4, &mut head).await?;
    let total = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    if !(24..=MAX_FRAME).contains(&total) {
        return Err(Closed);
    }
    head.clear();
    r.read_exact_into(24, &mut head).await?;
    let correlation = u64::from_le_bytes(head[..8].try_into().unwrap());
    let trace_id = u64::from_le_bytes(head[8..16].try_into().unwrap());
    let span_id = u64::from_le_bytes(head[16..24].try_into().unwrap());
    out.clear();
    r.read_exact_into(total - 24, out).await?;
    let trace = (trace_id != 0).then_some(kdtelem::TraceCtx { trace_id, span_id });
    Ok((correlation, trace))
}

/// A reusable reply rendezvous: the caller parks here until the demux
/// reader fulfills it. Slots cycle through a free list so steady-state
/// `call`s allocate nothing (the per-call `oneshot::channel` this replaces
/// cost one `Rc` allocation per request).
struct ReplySlot {
    value: RefCell<Option<Result<Response, RpcError>>>,
    waker: RefCell<Option<std::task::Waker>>,
}

impl ReplySlot {
    fn fulfill(&self, v: Result<Response, RpcError>) {
        *self.value.borrow_mut() = Some(v);
        if let Some(w) = self.waker.borrow_mut().take() {
            w.wake();
        }
    }
}

struct RpcShared {
    pending: RefCell<HashMap<u64, Rc<ReplySlot>>>,
    free: RefCell<Vec<Rc<ReplySlot>>>,
    next_correlation: std::cell::Cell<u64>,
    dead: std::cell::Cell<bool>,
}

impl RpcShared {
    fn take_slot(&self) -> Rc<ReplySlot> {
        let slot = self.free.borrow_mut().pop().unwrap_or_else(|| {
            Rc::new(ReplySlot {
                value: RefCell::new(None),
                waker: RefCell::new(None),
            })
        });
        *slot.value.borrow_mut() = None;
        *slot.waker.borrow_mut() = None;
        slot
    }

    /// Returns a slot to the free list once the caller is its only owner.
    /// A slot whose caller was cancelled mid-flight still sits in `pending`
    /// (count > 1) and is simply dropped when the reader fulfills it.
    fn recycle(&self, slot: Rc<ReplySlot>) {
        if Rc::strong_count(&slot) == 1 {
            self.free.borrow_mut().push(slot);
        }
    }
}

/// A client connection that pipelines requests: `call` may be invoked from
/// many tasks concurrently; responses are demultiplexed by correlation id by
/// a background reader task.
#[derive(Clone)]
pub struct RpcClient {
    write: Rc<sim::sync::Mutex<WriteHalf>>,
    shared: Rc<RpcShared>,
}

impl RpcClient {
    /// Wraps a connected stream, spawning the demux reader task.
    pub fn new(stream: TcpStream) -> RpcClient {
        let (mut read, write) = stream.into_split();
        let shared = Rc::new(RpcShared {
            pending: RefCell::new(HashMap::new()),
            free: RefCell::new(Vec::new()),
            next_correlation: std::cell::Cell::new(1),
            dead: std::cell::Cell::new(false),
        });
        let shared2 = Rc::clone(&shared);
        sim::spawn(async move {
            let mut payload = Vec::new();
            while let Ok((correlation, _trace)) = read_frame_into(&mut read, &mut payload).await {
                let waiter = shared2.pending.borrow_mut().remove(&correlation);
                if let Some(slot) = waiter {
                    match Response::decode(&payload) {
                        Ok(resp) => slot.fulfill(Ok(resp)),
                        Err(_) => slot.fulfill(Err(RpcError::Closed)),
                    }
                }
            }
            // Connection gone: fail everything pending.
            shared2.dead.set(true);
            for (_, slot) in shared2.pending.borrow_mut().drain() {
                slot.fulfill(Err(RpcError::Closed));
            }
        });
        RpcClient {
            write: Rc::new(sim::sync::Mutex::new(write)),
            shared,
        }
    }

    /// True once the connection has failed.
    pub fn is_dead(&self) -> bool {
        self.shared.dead.get()
    }

    /// Sends a request and waits for its response. Multiple `call`s from
    /// different tasks pipeline on the wire.
    pub async fn call(&self, request: &Request) -> Result<Response, RpcError> {
        self.call_traced(request, None).await
    }

    /// As [`call`](Self::call), stamping the frame with a trace context so
    /// the broker continues the caller's lifeline.
    pub async fn call_traced(
        &self,
        request: &Request,
        trace: Option<kdtelem::TraceCtx>,
    ) -> Result<Response, RpcError> {
        if self.shared.dead.get() {
            return Err(RpcError::Closed);
        }
        let correlation = self.shared.next_correlation.get();
        self.shared.next_correlation.set(correlation + 1);
        let slot = self.shared.take_slot();
        self.shared
            .pending
            .borrow_mut()
            .insert(correlation, Rc::clone(&slot));
        {
            let mut body = kdbuf::scratch();
            request.encode_into(&mut body);
            let mut w = self.write.lock().await;
            if write_frame(&mut w, correlation, trace, &body)
                .await
                .is_err()
            {
                drop(self.shared.pending.borrow_mut().remove(&correlation));
                self.shared.recycle(slot);
                return Err(RpcError::Closed);
            }
        }
        let res = std::future::poll_fn(|cx| {
            if let Some(v) = slot.value.borrow_mut().take() {
                return std::task::Poll::Ready(v);
            }
            *slot.waker.borrow_mut() = Some(cx.waker().clone());
            std::task::Poll::Pending
        })
        .await;
        self.shared.recycle(slot);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::ErrorCode;
    use netsim::profile::Profile;
    use netsim::tcp::TcpListener;
    use netsim::Fabric;

    #[test]
    fn frame_round_trip() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let a = f.add_node("a");
            let b = f.add_node("b");
            let mut l = TcpListener::bind(&b, 1);
            sim::spawn(async move {
                let s = l.accept().await.unwrap();
                let (mut r, mut w) = s.into_split();
                let (corr, trace, payload) = read_frame(&mut r).await.unwrap();
                assert_eq!(corr, 42);
                assert_eq!(
                    trace,
                    Some(kdtelem::TraceCtx {
                        trace_id: 7,
                        span_id: 9
                    })
                );
                write_frame(&mut w, corr, None, &payload).await.unwrap();
            });
            let s = netsim::tcp::connect(&a, b.id, 1).await.unwrap();
            let (mut r, mut w) = s.into_split();
            let ctx = kdtelem::TraceCtx {
                trace_id: 7,
                span_id: 9,
            };
            write_frame(&mut w, 42, Some(ctx), b"hello").await.unwrap();
            let (corr, trace, echoed) = read_frame(&mut r).await.unwrap();
            assert_eq!(corr, 42);
            assert_eq!(trace, None);
            assert_eq!(echoed, b"hello");
        });
    }

    #[test]
    fn rpc_client_pipelines_and_demuxes() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let a = f.add_node("a");
            let b = f.add_node("b");
            let mut l = TcpListener::bind(&b, 1);
            // Server answering ListOffsets with latest = partition, in
            // REVERSE arrival order, to exercise demux.
            sim::spawn(async move {
                let s = l.accept().await.unwrap();
                let (mut r, mut w) = s.into_split();
                let mut got = Vec::new();
                for _ in 0..3 {
                    got.push(read_frame(&mut r).await.unwrap());
                }
                got.reverse();
                for (corr, _trace, payload) in got {
                    let req = Request::decode(&payload).unwrap();
                    let Request::ListOffsets { partition, .. } = req else {
                        panic!("unexpected request");
                    };
                    let resp = Response::ListOffsets {
                        error: ErrorCode::None,
                        earliest: 0,
                        latest: u64::from(partition),
                    };
                    write_frame(&mut w, corr, None, &resp.encode()).await.unwrap();
                }
            });
            let s = netsim::tcp::connect(&a, b.id, 1).await.unwrap();
            let client = RpcClient::new(s);
            let mut handles = Vec::new();
            for p in 0..3u32 {
                let c = client.clone();
                handles.push(sim::spawn(async move {
                    let resp = c
                        .call(&Request::ListOffsets {
                            topic: "t".into(),
                            partition: p,
                        })
                        .await
                        .unwrap();
                    match resp {
                        Response::ListOffsets { latest, .. } => {
                            assert_eq!(latest, u64::from(p));
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }));
            }
            for h in handles {
                h.await.unwrap();
            }
        });
    }

    #[test]
    fn rpc_client_fails_cleanly_on_close() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let a = f.add_node("a");
            let b = f.add_node("b");
            let mut l = TcpListener::bind(&b, 1);
            sim::spawn(async move {
                let s = l.accept().await.unwrap();
                drop(s); // immediate close
            });
            let s = netsim::tcp::connect(&a, b.id, 1).await.unwrap();
            let client = RpcClient::new(s);
            let err = client
                .call(&Request::Metadata { topics: vec![] })
                .await
                .err();
            assert_eq!(err, Some(RpcError::Closed));
            assert!(client.is_dead());
        });
    }
}
