//! Binary layouts shared by broker and clients *outside* the RPC protocol:
//! values read or written with one-sided RDMA, where both ends must agree on
//! bytes with no request to negotiate them.

/// Packs the 32-bit immediate value of a WriteWithImm produce request
/// (paper Fig 4): high 16 bits identify the target file, low 16 bits carry
/// the producer order (shared mode; 0 in exclusive mode).
pub fn pack_imm(file_id: u16, order: u16) -> u32 {
    (u32::from(file_id) << 16) | u32::from(order)
}

/// Inverse of [`pack_imm`] → `(file_id, order)`.
pub fn unpack_imm(imm: u32) -> (u16, u16) {
    ((imm >> 16) as u16, (imm & 0xffff) as u16)
}

/// The 64-bit atomic word coordinating shared produce access (paper Fig 5):
/// high 16 bits = producer order, low 48 bits = file offset. Producers
/// FAA `(1 << 48) + record_len` to reserve a region *and* take an order
/// number in one round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedWord {
    pub order: u16,
    pub offset: u64,
}

/// Bit position of the order field.
pub const ORDER_SHIFT: u32 = 48;
/// Mask of the 48-bit offset field.
pub const OFFSET_MASK: u64 = (1 << ORDER_SHIFT) - 1;

/// FAA addend that takes one order number and reserves `len` bytes.
pub fn shared_word_addend(len: u64) -> u64 {
    debug_assert!(len <= OFFSET_MASK);
    (1u64 << ORDER_SHIFT) + len
}

pub fn pack_shared_word(w: SharedWord) -> u64 {
    debug_assert!(w.offset <= OFFSET_MASK);
    (u64::from(w.order) << ORDER_SHIFT) | (w.offset & OFFSET_MASK)
}

pub fn unpack_shared_word(v: u64) -> SharedWord {
    SharedWord {
        order: (v >> ORDER_SHIFT) as u16,
        offset: v & OFFSET_MASK,
    }
}

/// Size of one RDMA-readable metadata slot (§4.4.2). A consumer fetches the
/// slots of all its subscribed files with a single RDMA Read of
/// `n * SLOT_SIZE` bytes.
pub const SLOT_SIZE: usize = 16;

/// Decoded view of a metadata slot.
///
/// Layout (little-endian):
/// ```text
/// 0..4   last_readable: u32   -- first byte a consumer may NOT read
/// 4      flags: u8            -- bit0: file still mutable
/// 5..8   padding
/// 8..16  high_watermark: u64  -- committed record offset (lag accounting)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotView {
    /// Byte position after the last fully replicated record in the file
    /// ("the last readable byte", §4.4.2).
    pub last_readable: u32,
    /// False once the file is sealed; the consumer must request access to
    /// the next head file.
    pub mutable: bool,
    /// Record-offset high watermark, for consumer lag metrics.
    pub high_watermark: u64,
}

impl SlotView {
    pub fn encode(&self) -> [u8; SLOT_SIZE] {
        let mut b = [0u8; SLOT_SIZE];
        b[0..4].copy_from_slice(&self.last_readable.to_le_bytes());
        b[4] = u8::from(self.mutable);
        b[8..16].copy_from_slice(&self.high_watermark.to_le_bytes());
        b
    }

    pub fn decode(b: &[u8]) -> SlotView {
        assert!(b.len() >= SLOT_SIZE);
        SlotView {
            last_readable: u32::from_le_bytes(b[0..4].try_into().unwrap()),
            mutable: b[4] & 1 != 0,
            high_watermark: u64::from_le_bytes(b[8..16].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imm_round_trip() {
        for (f, o) in [(0u16, 0u16), (1, 2), (0xffff, 0xffff), (0x1234, 0xabcd)] {
            assert_eq!(unpack_imm(pack_imm(f, o)), (f, o));
        }
    }

    #[test]
    fn shared_word_round_trip() {
        for w in [
            SharedWord { order: 0, offset: 0 },
            SharedWord { order: 0xffff, offset: OFFSET_MASK },
            SharedWord { order: 7, offset: 4 * 1024 * 1024 * 1024 }, // past 4 GiB file: overflow detectable
        ] {
            assert_eq!(unpack_shared_word(pack_shared_word(w)), w);
        }
    }

    #[test]
    fn faa_addend_increments_order_and_offset() {
        let w0 = pack_shared_word(SharedWord { order: 9, offset: 1000 });
        let w1 = unpack_shared_word(w0.wrapping_add(shared_word_addend(512)));
        assert_eq!(w1, SharedWord { order: 10, offset: 1512 });
    }

    #[test]
    fn order_wraps_without_touching_offset() {
        let w0 = pack_shared_word(SharedWord { order: 0xffff, offset: 42 });
        let w1 = unpack_shared_word(w0.wrapping_add(shared_word_addend(8)));
        assert_eq!(w1.order, 0);
        assert_eq!(w1.offset, 50);
    }

    #[test]
    fn offset_overflow_is_detectable_not_destructive() {
        // Paper §4.2.2: the 6-byte offset lets producers detect running past
        // the (≤4 GiB) file without corrupting the order field.
        let file_len = 1u64 << 32;
        let w0 = pack_shared_word(SharedWord { order: 3, offset: file_len - 100 });
        let w1 = unpack_shared_word(w0.wrapping_add(shared_word_addend(4096)));
        assert_eq!(w1.order, 4);
        assert!(w1.offset > file_len, "reservation beyond file is visible");
    }

    #[test]
    fn slot_round_trip() {
        let s = SlotView {
            last_readable: 123_456,
            mutable: true,
            high_watermark: 99,
        };
        let enc = s.encode();
        assert_eq!(SlotView::decode(&enc), s);
        let sealed = SlotView { mutable: false, ..s };
        assert_eq!(SlotView::decode(&sealed.encode()), sealed);
    }
}
