//! The client↔broker wire protocol.
//!
//! Covers both the original Kafka-style RPCs (metadata, produce, fetch,
//! offsets) and KafkaDirect's RDMA control plane (§4.2.2 "Getting RDMA
//! access", §4.4.2): requests that grant one-sided access to topic-partition
//! files and metadata slots. Data-plane bytes (record batches) are opaque
//! payloads produced by `kdstorage`.
//!
//! Three modules:
//! * [`messages`] — typed requests/responses with hand-rolled binary codec,
//! * [`frame`] — length-prefixed framing over `netsim::tcp`, plus a
//!   pipelining RPC client,
//! * [`slots`] — the shared binary layouts both ends must agree on without
//!   an RPC: the 32-bit immediate value (Fig 4), the 64-bit shared
//!   order/offset word (Fig 5), and the RDMA-readable metadata slot
//!   (§4.4.2).

pub mod frame;
pub mod messages;
pub mod slots;

pub use frame::{read_frame, read_frame_into, write_frame, RpcClient, RpcError};
pub use messages::{
    BrokerAddr, ConsumeAccessResp, ErrorCode, FetchResp, PartitionMeta, ProduceAccessResp,
    ProduceMode, RemoteRegion, Request, Response, SlotGrant, TopicMeta,
};
pub use slots::{
    pack_imm, pack_shared_word, unpack_imm, unpack_shared_word, SharedWord, SlotView, SLOT_SIZE,
};
