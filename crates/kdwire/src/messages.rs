//! Typed protocol messages and their binary codec.
//!
//! Every request/response pair the broker understands, including the RDMA
//! control plane. Encoding uses `kdstorage::codec` primitives; each message
//! starts with a one-byte discriminant. Round-trip correctness is enforced
//! by unit tests and proptest.

use kdstorage::codec::{Reader, WireError, Writer};

/// Where a broker can be reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerAddr {
    /// Fabric node id.
    pub node: u32,
    /// TCP control-plane port.
    pub port: u16,
    /// RDMA CM service port (0 if the broker has RDMA disabled).
    pub rdma_port: u16,
}

/// Per-partition metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMeta {
    pub partition: u32,
    /// Leader epoch: bumped on every leader change. Brokers reject stale
    /// installs and fence producers holding grants from an older epoch.
    pub epoch: u64,
    pub leader: BrokerAddr,
    pub replicas: Vec<BrokerAddr>,
}

/// Per-topic metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicMeta {
    pub name: String,
    pub partitions: Vec<PartitionMeta>,
}

/// Protocol-level error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    None = 0,
    UnknownTopicOrPartition = 1,
    NotLeader = 2,
    CorruptBatch = 3,
    /// RDMA access rejected or revoked (e.g. exclusive grant already held).
    AccessDenied = 4,
    /// Preallocated file cannot hold the request; re-request access.
    OutOfSpace = 5,
    InvalidRequest = 6,
    AlreadyExists = 7,
    /// Shared-mode produce aborted: a predecessor never arrived (§4.2.2).
    OrderTimeout = 8,
    Internal = 9,
    /// The request carries (or the broker holds) a stale leader epoch: a
    /// failover happened and the caller must refresh metadata.
    FencedEpoch = 10,
    /// The broker is not running the requested optional facility (e.g. a
    /// `Series`/`Health` request against a broker with no sampler/watchdog).
    NotSupported = 11,
    /// The requested offset precedes the retention floor: its segment was
    /// reclaimed from every storage tier.
    OffsetOutOfRange = 12,
}

impl ErrorCode {
    pub fn is_ok(self) -> bool {
        self == ErrorCode::None
    }

    fn from_u8(v: u8) -> Result<ErrorCode, WireError> {
        Ok(match v {
            0 => ErrorCode::None,
            1 => ErrorCode::UnknownTopicOrPartition,
            2 => ErrorCode::NotLeader,
            3 => ErrorCode::CorruptBatch,
            4 => ErrorCode::AccessDenied,
            5 => ErrorCode::OutOfSpace,
            6 => ErrorCode::InvalidRequest,
            7 => ErrorCode::AlreadyExists,
            8 => ErrorCode::OrderTimeout,
            9 => ErrorCode::Internal,
            10 => ErrorCode::FencedEpoch,
            11 => ErrorCode::NotSupported,
            12 => ErrorCode::OffsetOutOfRange,
            _ => return Err(WireError::BadValue),
        })
    }
}

/// `(addr, rkey, len)` of a remotely accessible region — what "get RDMA
/// access" hands to clients (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteRegion {
    pub addr: u64,
    pub rkey: u32,
    pub len: u64,
}

/// Produce access mode (§4.2.2 "Approaches to RDMA produce").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProduceMode {
    /// One producer owns the head file; no reservation word needed.
    Exclusive,
    /// Multiple producers coordinate through the FAA word (Fig 5).
    Shared,
    /// Leader→follower push replication (exclusive by construction,
    /// flow-controlled by credits, §4.3.2).
    Replication,
}

impl ProduceMode {
    fn to_u8(self) -> u8 {
        match self {
            ProduceMode::Exclusive => 0,
            ProduceMode::Shared => 1,
            ProduceMode::Replication => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => ProduceMode::Exclusive,
            1 => ProduceMode::Shared,
            2 => ProduceMode::Replication,
            _ => return Err(WireError::BadValue),
        })
    }
}

/// Client→broker requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Topic/partition discovery; empty list = all topics.
    Metadata { topics: Vec<String> },
    CreateTopic {
        topic: String,
        partitions: u32,
        replication: u32,
    },
    /// The original TCP produce datapath (§4.2.1).
    Produce {
        topic: String,
        partition: u32,
        /// 0 = fire-and-forget, 1 = leader ack, 2 = all in-sync replicas.
        acks: u8,
        batch: Vec<u8>,
    },
    /// Consumer fetch, or follower pull-replication fetch when `replica_id`
    /// is set (§4.3.1).
    Fetch {
        topic: String,
        partition: u32,
        offset: u64,
        max_bytes: u32,
        /// `u32::MAX` = a consumer; otherwise the fetching follower's node.
        replica_id: u32,
    },
    ListOffsets { topic: String, partition: u32 },
    OffsetCommit {
        group: String,
        topic: String,
        partition: u32,
        offset: u64,
    },
    OffsetFetch {
        group: String,
        topic: String,
        partition: u32,
    },
    /// "Get RDMA produce address" (§4.2.2 / §4.3.2): map + register the head
    /// file and return its region.
    ProduceAccess {
        topic: String,
        partition: u32,
        mode: ProduceMode,
        /// Roll to a new head file unless this many bytes are still free —
        /// how a producer "timely requests allocation of a new head file"
        /// (§4.2.2).
        min_bytes: u32,
    },
    /// Voluntarily drop a produce grant.
    ProduceRelease { topic: String, partition: u32 },
    /// Get RDMA read access to the file containing `offset` (§4.4.2).
    ConsumeAccess {
        topic: String,
        partition: u32,
        offset: u64,
        consumer_id: u64,
    },
    /// Tell the broker a fully-read file can be unregistered (§4.4.2:
    /// "notifies the broker about the files that can be unregistered").
    ConsumeRelease {
        topic: String,
        partition: u32,
        consumer_id: u64,
        segment: u32,
    },
    /// EXTENSION (paper §5.4 future work): get an RDMA-writable offset slot
    /// so the consumer can commit its offset with a one-sided write instead
    /// of a TCP request ("KafkaDirect could implement an accelerated commit
    /// offset request with the use of RDMA").
    OffsetSlotAccess {
        group: String,
        topic: String,
        partition: u32,
    },
    /// Controller→broker: install a partition with its leader/replica
    /// assignment (stands in for Kafka's ZooKeeper-driven state, which the
    /// paper does not exercise).
    InternalAddPartition {
        topic: String,
        partition: u32,
        /// Leader epoch of this assignment; installs with a stale epoch are
        /// rejected with [`ErrorCode::FencedEpoch`].
        epoch: u64,
        leader: BrokerAddr,
        replicas: Vec<BrokerAddr>,
    },
    /// Admin: dump the broker's telemetry registry (counters, gauges,
    /// latency histograms) as JSON lines.
    Telemetry,
    /// Admin: dump the broker's virtual-time time-series recorder
    /// (`kdtelem::SeriesDump`) as JSON lines. Errors with
    /// [`ErrorCode::NotSupported`] when the broker runs without a sampler.
    Series,
    /// Admin: dump the broker's health-watchdog event log
    /// (`kdtelem::HealthEvent`s) as JSON lines. Errors with
    /// [`ErrorCode::NotSupported`] when the broker runs without a watchdog.
    Health,
}

/// Broker→client responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Metadata {
        error: ErrorCode,
        brokers: Vec<BrokerAddr>,
        topics: Vec<TopicMeta>,
    },
    CreateTopic { error: ErrorCode },
    Produce { error: ErrorCode, base_offset: u64 },
    Fetch(FetchResp),
    ListOffsets {
        error: ErrorCode,
        earliest: u64,
        latest: u64,
    },
    OffsetCommit { error: ErrorCode },
    OffsetFetch {
        error: ErrorCode,
        /// `u64::MAX` = no committed offset.
        offset: u64,
    },
    ProduceAccess(ProduceAccessResp),
    ProduceRelease { error: ErrorCode },
    ConsumeAccess(ConsumeAccessResp),
    ConsumeRelease { error: ErrorCode },
    /// EXTENSION: the 8-byte RDMA-writable offset slot.
    OffsetSlotAccess {
        error: ErrorCode,
        region: RemoteRegion,
    },
    InternalAddPartition { error: ErrorCode },
    /// JSON-lines encoding of a `kdtelem::TelemetryReport`.
    Telemetry { error: ErrorCode, json: String },
    /// JSON-lines encoding of a `kdtelem::SeriesDump`.
    Series { error: ErrorCode, json: String },
    /// JSON-lines encoding of the watchdog's `kdtelem::HealthEvent` log.
    Health { error: ErrorCode, json: String },
}

/// Fetch response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResp {
    pub error: ErrorCode,
    pub high_watermark: u64,
    pub log_end: u64,
    /// Offset of the first record in `bytes` (reads start at batch
    /// boundaries).
    pub start_offset: u64,
    pub next_offset: u64,
    pub bytes: Vec<u8>,
}

/// Produce-access grant (§4.2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProduceAccessResp {
    pub error: ErrorCode,
    /// 16-bit file id the producer must put in the immediate data (Fig 4).
    pub file_id: u16,
    /// Segment index of the granted head file.
    pub segment: u32,
    pub region: RemoteRegion,
    /// Current append position: first writable byte (exclusive mode).
    pub write_pos: u32,
    /// Offset the next committed record will get (informational).
    pub next_offset: u64,
    /// Shared mode only: where to FAA the order/offset word (Fig 5).
    pub shared_word: Option<RemoteRegion>,
    /// Replication mode: how many outstanding push writes the follower
    /// allows before more credits are granted (§4.3.2).
    pub credits: u32,
}

/// One consumer metadata slot grant (§4.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotGrant {
    /// Region holding this consumer's whole slot array.
    pub region: RemoteRegion,
    /// Index of the slot for the granted file.
    pub index: u32,
    /// Number of contiguous slots worth reading (the "smallest contiguous
    /// region containing all active slots", Fig 9).
    pub active_span: u32,
}

/// Consume-access grant (§4.4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumeAccessResp {
    pub error: ErrorCode,
    pub segment: u32,
    pub region: RemoteRegion,
    /// Byte position of the batch containing the requested offset.
    pub start_pos: u32,
    /// Base offset of the batch at `start_pos`.
    pub start_offset: u64,
    /// First unreadable byte at grant time.
    pub last_readable: u32,
    /// Whether the file can still grow.
    pub mutable: bool,
    /// Present iff `mutable`: where to poll the metadata slot.
    pub slot: Option<SlotGrant>,
    pub high_watermark: u64,
}

fn put_broker(w: &mut Writer, b: &BrokerAddr) {
    w.put_u32(b.node);
    w.put_u16(b.port);
    w.put_u16(b.rdma_port);
}

fn get_broker(r: &mut Reader) -> Result<BrokerAddr, WireError> {
    Ok(BrokerAddr {
        node: r.get_u32()?,
        port: r.get_u16()?,
        rdma_port: r.get_u16()?,
    })
}

fn put_region(w: &mut Writer, reg: &RemoteRegion) {
    w.put_u64(reg.addr);
    w.put_u32(reg.rkey);
    w.put_u64(reg.len);
}

fn get_region(r: &mut Reader) -> Result<RemoteRegion, WireError> {
    Ok(RemoteRegion {
        addr: r.get_u64()?,
        rkey: r.get_u32()?,
        len: r.get_u64()?,
    })
}

fn put_bytes_field(w: &mut Writer, b: &[u8]) {
    w.put_uvarint(b.len() as u64);
    w.put_bytes(b);
}

fn get_bytes_field(r: &mut Reader) -> Result<Vec<u8>, WireError> {
    let len = r.get_uvarint()? as usize;
    Ok(r.take(len)?.to_vec())
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the encoding to `out`; allocation-free once `out` has grown
    /// to steady-state capacity (hot paths pass a reused scratch buffer).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(out));
        match self {
            Request::Metadata { topics } => {
                w.put_u8(0);
                w.put_uvarint(topics.len() as u64);
                for t in topics {
                    w.put_string(t);
                }
            }
            Request::CreateTopic {
                topic,
                partitions,
                replication,
            } => {
                w.put_u8(1);
                w.put_string(topic);
                w.put_u32(*partitions);
                w.put_u32(*replication);
            }
            Request::Produce {
                topic,
                partition,
                acks,
                batch,
            } => {
                w.put_u8(2);
                w.put_string(topic);
                w.put_u32(*partition);
                w.put_u8(*acks);
                put_bytes_field(&mut w, batch);
            }
            Request::Fetch {
                topic,
                partition,
                offset,
                max_bytes,
                replica_id,
            } => {
                w.put_u8(3);
                w.put_string(topic);
                w.put_u32(*partition);
                w.put_u64(*offset);
                w.put_u32(*max_bytes);
                w.put_u32(*replica_id);
            }
            Request::ListOffsets { topic, partition } => {
                w.put_u8(4);
                w.put_string(topic);
                w.put_u32(*partition);
            }
            Request::OffsetCommit {
                group,
                topic,
                partition,
                offset,
            } => {
                w.put_u8(5);
                w.put_string(group);
                w.put_string(topic);
                w.put_u32(*partition);
                w.put_u64(*offset);
            }
            Request::OffsetFetch {
                group,
                topic,
                partition,
            } => {
                w.put_u8(6);
                w.put_string(group);
                w.put_string(topic);
                w.put_u32(*partition);
            }
            Request::ProduceAccess {
                topic,
                partition,
                mode,
                min_bytes,
            } => {
                w.put_u8(7);
                w.put_string(topic);
                w.put_u32(*partition);
                w.put_u8(mode.to_u8());
                w.put_u32(*min_bytes);
            }
            Request::ProduceRelease { topic, partition } => {
                w.put_u8(8);
                w.put_string(topic);
                w.put_u32(*partition);
            }
            Request::ConsumeAccess {
                topic,
                partition,
                offset,
                consumer_id,
            } => {
                w.put_u8(9);
                w.put_string(topic);
                w.put_u32(*partition);
                w.put_u64(*offset);
                w.put_u64(*consumer_id);
            }
            Request::ConsumeRelease {
                topic,
                partition,
                consumer_id,
                segment,
            } => {
                w.put_u8(10);
                w.put_string(topic);
                w.put_u32(*partition);
                w.put_u64(*consumer_id);
                w.put_u32(*segment);
            }
            Request::OffsetSlotAccess {
                group,
                topic,
                partition,
            } => {
                w.put_u8(12);
                w.put_string(group);
                w.put_string(topic);
                w.put_u32(*partition);
            }
            Request::InternalAddPartition {
                topic,
                partition,
                epoch,
                leader,
                replicas,
            } => {
                w.put_u8(11);
                w.put_string(topic);
                w.put_u32(*partition);
                w.put_u64(*epoch);
                put_broker(&mut w, leader);
                w.put_uvarint(replicas.len() as u64);
                for r in replicas {
                    put_broker(&mut w, r);
                }
            }
            Request::Telemetry => {
                w.put_u8(13);
            }
            Request::Series => {
                w.put_u8(14);
            }
            Request::Health => {
                w.put_u8(15);
            }
        }
        *out = w.into_vec();
    }

    pub fn decode(bytes: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(bytes);
        let tag = r.get_u8()?;
        let req = match tag {
            0 => {
                let n = r.get_uvarint()? as usize;
                let mut topics = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    topics.push(r.get_string()?);
                }
                Request::Metadata { topics }
            }
            1 => Request::CreateTopic {
                topic: r.get_string()?,
                partitions: r.get_u32()?,
                replication: r.get_u32()?,
            },
            2 => Request::Produce {
                topic: r.get_string()?,
                partition: r.get_u32()?,
                acks: r.get_u8()?,
                batch: get_bytes_field(&mut r)?,
            },
            3 => Request::Fetch {
                topic: r.get_string()?,
                partition: r.get_u32()?,
                offset: r.get_u64()?,
                max_bytes: r.get_u32()?,
                replica_id: r.get_u32()?,
            },
            4 => Request::ListOffsets {
                topic: r.get_string()?,
                partition: r.get_u32()?,
            },
            5 => Request::OffsetCommit {
                group: r.get_string()?,
                topic: r.get_string()?,
                partition: r.get_u32()?,
                offset: r.get_u64()?,
            },
            6 => Request::OffsetFetch {
                group: r.get_string()?,
                topic: r.get_string()?,
                partition: r.get_u32()?,
            },
            7 => Request::ProduceAccess {
                topic: r.get_string()?,
                partition: r.get_u32()?,
                mode: ProduceMode::from_u8(r.get_u8()?)?,
                min_bytes: r.get_u32()?,
            },
            8 => Request::ProduceRelease {
                topic: r.get_string()?,
                partition: r.get_u32()?,
            },
            9 => Request::ConsumeAccess {
                topic: r.get_string()?,
                partition: r.get_u32()?,
                offset: r.get_u64()?,
                consumer_id: r.get_u64()?,
            },
            10 => Request::ConsumeRelease {
                topic: r.get_string()?,
                partition: r.get_u32()?,
                consumer_id: r.get_u64()?,
                segment: r.get_u32()?,
            },
            11 => {
                let topic = r.get_string()?;
                let partition = r.get_u32()?;
                let epoch = r.get_u64()?;
                let leader = get_broker(&mut r)?;
                let n = r.get_uvarint()? as usize;
                let mut replicas = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    replicas.push(get_broker(&mut r)?);
                }
                Request::InternalAddPartition {
                    topic,
                    partition,
                    epoch,
                    leader,
                    replicas,
                }
            }
            12 => Request::OffsetSlotAccess {
                group: r.get_string()?,
                topic: r.get_string()?,
                partition: r.get_u32()?,
            },
            13 => Request::Telemetry,
            14 => Request::Series,
            15 => Request::Health,
            _ => return Err(WireError::BadValue),
        };
        Ok(req)
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the encoding to `out`; allocation-free once `out` has grown
    /// to steady-state capacity.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::from_vec(std::mem::take(out));
        match self {
            Response::Metadata {
                error,
                brokers,
                topics,
            } => {
                w.put_u8(0);
                w.put_u8(*error as u8);
                w.put_uvarint(brokers.len() as u64);
                for b in brokers {
                    put_broker(&mut w, b);
                }
                w.put_uvarint(topics.len() as u64);
                for t in topics {
                    w.put_string(&t.name);
                    w.put_uvarint(t.partitions.len() as u64);
                    for p in &t.partitions {
                        w.put_u32(p.partition);
                        w.put_u64(p.epoch);
                        put_broker(&mut w, &p.leader);
                        w.put_uvarint(p.replicas.len() as u64);
                        for rep in &p.replicas {
                            put_broker(&mut w, rep);
                        }
                    }
                }
            }
            Response::CreateTopic { error } => {
                w.put_u8(1);
                w.put_u8(*error as u8);
            }
            Response::Produce { error, base_offset } => {
                w.put_u8(2);
                w.put_u8(*error as u8);
                w.put_u64(*base_offset);
            }
            Response::Fetch(f) => {
                w.put_u8(3);
                w.put_u8(f.error as u8);
                w.put_u64(f.high_watermark);
                w.put_u64(f.log_end);
                w.put_u64(f.start_offset);
                w.put_u64(f.next_offset);
                put_bytes_field(&mut w, &f.bytes);
            }
            Response::ListOffsets {
                error,
                earliest,
                latest,
            } => {
                w.put_u8(4);
                w.put_u8(*error as u8);
                w.put_u64(*earliest);
                w.put_u64(*latest);
            }
            Response::OffsetCommit { error } => {
                w.put_u8(5);
                w.put_u8(*error as u8);
            }
            Response::OffsetFetch { error, offset } => {
                w.put_u8(6);
                w.put_u8(*error as u8);
                w.put_u64(*offset);
            }
            Response::ProduceAccess(p) => {
                w.put_u8(7);
                w.put_u8(p.error as u8);
                w.put_u16(p.file_id);
                w.put_u32(p.segment);
                put_region(&mut w, &p.region);
                w.put_u32(p.write_pos);
                w.put_u64(p.next_offset);
                match &p.shared_word {
                    None => w.put_u8(0),
                    Some(reg) => {
                        w.put_u8(1);
                        put_region(&mut w, reg);
                    }
                }
                w.put_u32(p.credits);
            }
            Response::ProduceRelease { error } => {
                w.put_u8(8);
                w.put_u8(*error as u8);
            }
            Response::ConsumeAccess(c) => {
                w.put_u8(9);
                w.put_u8(c.error as u8);
                w.put_u32(c.segment);
                put_region(&mut w, &c.region);
                w.put_u32(c.start_pos);
                w.put_u64(c.start_offset);
                w.put_u32(c.last_readable);
                w.put_u8(u8::from(c.mutable));
                match &c.slot {
                    None => w.put_u8(0),
                    Some(s) => {
                        w.put_u8(1);
                        put_region(&mut w, &s.region);
                        w.put_u32(s.index);
                        w.put_u32(s.active_span);
                    }
                }
                w.put_u64(c.high_watermark);
            }
            Response::ConsumeRelease { error } => {
                w.put_u8(10);
                w.put_u8(*error as u8);
            }
            Response::InternalAddPartition { error } => {
                w.put_u8(11);
                w.put_u8(*error as u8);
            }
            Response::OffsetSlotAccess { error, region } => {
                w.put_u8(12);
                w.put_u8(*error as u8);
                put_region(&mut w, region);
            }
            Response::Telemetry { error, json } => {
                w.put_u8(13);
                w.put_u8(*error as u8);
                w.put_string(json);
            }
            Response::Series { error, json } => {
                w.put_u8(14);
                w.put_u8(*error as u8);
                w.put_string(json);
            }
            Response::Health { error, json } => {
                w.put_u8(15);
                w.put_u8(*error as u8);
                w.put_string(json);
            }
        }
        *out = w.into_vec();
    }

    pub fn decode(bytes: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(bytes);
        let tag = r.get_u8()?;
        let resp = match tag {
            0 => {
                let error = ErrorCode::from_u8(r.get_u8()?)?;
                let nb = r.get_uvarint()? as usize;
                let mut brokers = Vec::with_capacity(nb.min(1024));
                for _ in 0..nb {
                    brokers.push(get_broker(&mut r)?);
                }
                let nt = r.get_uvarint()? as usize;
                let mut topics = Vec::with_capacity(nt.min(1024));
                for _ in 0..nt {
                    let name = r.get_string()?;
                    let np = r.get_uvarint()? as usize;
                    let mut partitions = Vec::with_capacity(np.min(4096));
                    for _ in 0..np {
                        let partition = r.get_u32()?;
                        let epoch = r.get_u64()?;
                        let leader = get_broker(&mut r)?;
                        let nr = r.get_uvarint()? as usize;
                        let mut replicas = Vec::with_capacity(nr.min(64));
                        for _ in 0..nr {
                            replicas.push(get_broker(&mut r)?);
                        }
                        partitions.push(PartitionMeta {
                            partition,
                            epoch,
                            leader,
                            replicas,
                        });
                    }
                    topics.push(TopicMeta { name, partitions });
                }
                Response::Metadata {
                    error,
                    brokers,
                    topics,
                }
            }
            1 => Response::CreateTopic {
                error: ErrorCode::from_u8(r.get_u8()?)?,
            },
            2 => Response::Produce {
                error: ErrorCode::from_u8(r.get_u8()?)?,
                base_offset: r.get_u64()?,
            },
            3 => Response::Fetch(FetchResp {
                error: ErrorCode::from_u8(r.get_u8()?)?,
                high_watermark: r.get_u64()?,
                log_end: r.get_u64()?,
                start_offset: r.get_u64()?,
                next_offset: r.get_u64()?,
                bytes: get_bytes_field(&mut r)?,
            }),
            4 => Response::ListOffsets {
                error: ErrorCode::from_u8(r.get_u8()?)?,
                earliest: r.get_u64()?,
                latest: r.get_u64()?,
            },
            5 => Response::OffsetCommit {
                error: ErrorCode::from_u8(r.get_u8()?)?,
            },
            6 => Response::OffsetFetch {
                error: ErrorCode::from_u8(r.get_u8()?)?,
                offset: r.get_u64()?,
            },
            7 => {
                let error = ErrorCode::from_u8(r.get_u8()?)?;
                let file_id = r.get_u16()?;
                let segment = r.get_u32()?;
                let region = get_region(&mut r)?;
                let write_pos = r.get_u32()?;
                let next_offset = r.get_u64()?;
                let shared_word = match r.get_u8()? {
                    0 => None,
                    1 => Some(get_region(&mut r)?),
                    _ => return Err(WireError::BadValue),
                };
                let credits = r.get_u32()?;
                Response::ProduceAccess(ProduceAccessResp {
                    error,
                    file_id,
                    segment,
                    region,
                    write_pos,
                    next_offset,
                    shared_word,
                    credits,
                })
            }
            8 => Response::ProduceRelease {
                error: ErrorCode::from_u8(r.get_u8()?)?,
            },
            9 => {
                let error = ErrorCode::from_u8(r.get_u8()?)?;
                let segment = r.get_u32()?;
                let region = get_region(&mut r)?;
                let start_pos = r.get_u32()?;
                let start_offset = r.get_u64()?;
                let last_readable = r.get_u32()?;
                let mutable = r.get_u8()? != 0;
                let slot = match r.get_u8()? {
                    0 => None,
                    1 => Some(SlotGrant {
                        region: get_region(&mut r)?,
                        index: r.get_u32()?,
                        active_span: r.get_u32()?,
                    }),
                    _ => return Err(WireError::BadValue),
                };
                let high_watermark = r.get_u64()?;
                Response::ConsumeAccess(ConsumeAccessResp {
                    error,
                    segment,
                    region,
                    start_pos,
                    start_offset,
                    last_readable,
                    mutable,
                    slot,
                    high_watermark,
                })
            }
            10 => Response::ConsumeRelease {
                error: ErrorCode::from_u8(r.get_u8()?)?,
            },
            11 => Response::InternalAddPartition {
                error: ErrorCode::from_u8(r.get_u8()?)?,
            },
            12 => Response::OffsetSlotAccess {
                error: ErrorCode::from_u8(r.get_u8()?)?,
                region: get_region(&mut r)?,
            },
            13 => Response::Telemetry {
                error: ErrorCode::from_u8(r.get_u8()?)?,
                json: r.get_string()?,
            },
            14 => Response::Series {
                error: ErrorCode::from_u8(r.get_u8()?)?,
                json: r.get_string()?,
            },
            15 => Response::Health {
                error: ErrorCode::from_u8(r.get_u8()?)?,
                json: r.get_string()?,
            },
            _ => return Err(WireError::BadValue),
        };
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> RemoteRegion {
        RemoteRegion {
            addr: 0x7f00_0000_1000,
            rkey: 42,
            len: 1 << 26,
        }
    }

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Metadata {
                topics: vec!["a".into(), "b".into()],
            },
            Request::Metadata { topics: vec![] },
            Request::CreateTopic {
                topic: "events".into(),
                partitions: 4,
                replication: 3,
            },
            Request::Produce {
                topic: "t".into(),
                partition: 2,
                acks: 2,
                batch: vec![1, 2, 3],
            },
            Request::Fetch {
                topic: "t".into(),
                partition: 0,
                offset: 99,
                max_bytes: 1 << 20,
                replica_id: u32::MAX,
            },
            Request::ListOffsets {
                topic: "t".into(),
                partition: 1,
            },
            Request::OffsetCommit {
                group: "g".into(),
                topic: "t".into(),
                partition: 0,
                offset: 12,
            },
            Request::OffsetFetch {
                group: "g".into(),
                topic: "t".into(),
                partition: 0,
            },
            Request::ProduceAccess {
                topic: "t".into(),
                partition: 0,
                mode: ProduceMode::Shared,
                min_bytes: 4096,
            },
            Request::InternalAddPartition {
                topic: "t".into(),
                partition: 1,
                epoch: 3,
                leader: BrokerAddr { node: 0, port: 9092, rdma_port: 18515 },
                replicas: vec![BrokerAddr { node: 1, port: 9092, rdma_port: 18515 }],
            },
            Request::OffsetSlotAccess {
                group: "g".into(),
                topic: "t".into(),
                partition: 0,
            },
            Request::ProduceRelease {
                topic: "t".into(),
                partition: 0,
            },
            Request::ConsumeAccess {
                topic: "t".into(),
                partition: 0,
                offset: 5,
                consumer_id: 0xdead,
            },
            Request::ConsumeRelease {
                topic: "t".into(),
                partition: 0,
                consumer_id: 0xdead,
                segment: 3,
            },
            Request::Telemetry,
            Request::Series,
            Request::Health,
        ];
        for req in reqs {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let broker = BrokerAddr {
            node: 1,
            port: 9092,
            rdma_port: 18515,
        };
        let resps = vec![
            Response::Metadata {
                error: ErrorCode::None,
                brokers: vec![broker],
                topics: vec![TopicMeta {
                    name: "t".into(),
                    partitions: vec![PartitionMeta {
                        partition: 0,
                        epoch: 7,
                        leader: broker,
                        replicas: vec![broker, broker],
                    }],
                }],
            },
            Response::CreateTopic {
                error: ErrorCode::AlreadyExists,
            },
            Response::Produce {
                error: ErrorCode::None,
                base_offset: 17,
            },
            Response::Fetch(FetchResp {
                error: ErrorCode::None,
                high_watermark: 10,
                log_end: 12,
                start_offset: 4,
                next_offset: 9,
                bytes: vec![9; 100],
            }),
            Response::ListOffsets {
                error: ErrorCode::None,
                earliest: 0,
                latest: 55,
            },
            Response::OffsetCommit {
                error: ErrorCode::None,
            },
            Response::OffsetFetch {
                error: ErrorCode::None,
                offset: u64::MAX,
            },
            Response::ProduceAccess(ProduceAccessResp {
                error: ErrorCode::None,
                file_id: 7,
                segment: 2,
                region: region(),
                write_pos: 1024,
                next_offset: 33,
                shared_word: Some(RemoteRegion {
                    addr: 0x8000,
                    rkey: 5,
                    len: 8,
                }),
                credits: 16,
            }),
            Response::ProduceAccess(ProduceAccessResp {
                error: ErrorCode::AccessDenied,
                file_id: 0,
                segment: 0,
                region: RemoteRegion {
                    addr: 0,
                    rkey: 0,
                    len: 0,
                },
                write_pos: 0,
                next_offset: 0,
                shared_word: None,
                credits: 0,
            }),
            Response::ProduceRelease {
                error: ErrorCode::None,
            },
            Response::ConsumeAccess(ConsumeAccessResp {
                error: ErrorCode::None,
                segment: 1,
                region: region(),
                start_pos: 512,
                start_offset: 40,
                last_readable: 2048,
                mutable: true,
                slot: Some(SlotGrant {
                    region: region(),
                    index: 3,
                    active_span: 5,
                }),
                high_watermark: 60,
            }),
            Response::ConsumeRelease {
                error: ErrorCode::None,
            },
            Response::OffsetSlotAccess {
                error: ErrorCode::None,
                region: region(),
            },
            Response::Telemetry {
                error: ErrorCode::None,
                json: "{\"kind\":\"counter\"}\n".into(),
            },
            Response::Series {
                error: ErrorCode::None,
                json: "{\"kind\":\"series\",\"interval_ns\":1000000}\n".into(),
            },
            Response::Health {
                error: ErrorCode::NotSupported,
                json: String::new(),
            },
        ];
        for resp in resps {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[200]).is_err());
        assert!(Response::decode(&[200]).is_err());
        // Truncated produce.
        let enc = Request::Produce {
            topic: "t".into(),
            partition: 0,
            acks: 1,
            batch: vec![0; 64],
        }
        .encode();
        assert!(Request::decode(&enc[..enc.len() - 1]).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use sim::rng::SimRng;

    fn arb_topic(rng: &mut SimRng) -> String {
        let len = rng.random_range(1usize..=12);
        (0..len)
            .map(|_| (b'a' + rng.random_range(0u8..26)) as char)
            .collect()
    }

    fn arb_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
        let len = rng.random_range(0usize..max_len);
        let mut v = vec![0u8; len];
        rng.fill(&mut v);
        v
    }

    fn arb_request(rng: &mut SimRng) -> Request {
        match rng.below(5) {
            0 => Request::Metadata {
                topics: (0..rng.random_range(0usize..4))
                    .map(|_| arb_topic(rng))
                    .collect(),
            },
            1 => Request::CreateTopic {
                topic: arb_topic(rng),
                partitions: rng.random_range(1u32..64),
                replication: rng.random_range(1u32..4),
            },
            2 => Request::Produce {
                topic: arb_topic(rng),
                partition: rng.random_range(0u32..=u32::MAX),
                acks: rng.random_range(0u8..3),
                batch: arb_bytes(rng, 512),
            },
            3 => Request::Fetch {
                topic: arb_topic(rng),
                partition: rng.random_range(0u32..=u32::MAX),
                offset: rng.next_u64(),
                max_bytes: rng.random_range(0u32..=u32::MAX),
                replica_id: rng.random_range(0u32..=u32::MAX),
            },
            _ => Request::ConsumeAccess {
                topic: arb_topic(rng),
                partition: rng.random_range(0u32..=u32::MAX),
                offset: rng.next_u64(),
                consumer_id: rng.next_u64(),
            },
        }
    }

    #[test]
    fn requests_round_trip() {
        for case in 0..256u64 {
            let mut rng = SimRng::seed_from_u64(0x33A6_0001 ^ case);
            let req = arb_request(&mut rng);
            assert_eq!(Request::decode(&req.encode()).unwrap(), req, "case {case}");
        }
    }

    #[test]
    fn decoder_never_panics() {
        for case in 0..256u64 {
            let mut rng = SimRng::seed_from_u64(0x33A6_0002 ^ case);
            let data = arb_bytes(&mut rng, 256);
            let _ = Request::decode(&data);
            let _ = Response::decode(&data);
        }
    }
}
