//! The per-node RDMA device and the fabric-global device registry.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::{Rc, Weak};

use std::time::Duration;

use netsim::profile::NetProfile;
use netsim::{Fabric, NodeHandle, NodeId};

use crate::cq::CompletionQueue;
use crate::mr::{Access, MemoryRegion, MrInner, ShmBuf};

/// Modeled NIC memory held by one posted receive WQE, beyond its data
/// buffer (the WQE itself plus scatter-gather bookkeeping). Used for the
/// receive-buffer accounting behind the connection-scaling sweeps: per-QP
/// receive posting costs `clients × depth × (WQE_BYTES + buf)`, an SRQ
/// costs `srq_depth × (WQE_BYTES + buf)` regardless of client count.
pub const WQE_BYTES: u64 = 128;

/// Fabric-global RDMA state: device lookup (for resolving remote memory) and
/// the connection-manager rendezvous table. Stored as a [`Fabric`] extension.
pub(crate) struct Registry {
    pub(crate) nics: RefCell<HashMap<NodeId, Weak<NicInner>>>,
    pub(crate) cm_listeners: RefCell<HashMap<(NodeId, u16), crate::cm::ListenerSlot>>,
    next_vaddr: Cell<u64>,
    next_rkey: Cell<u32>,
    next_qpn: Cell<u32>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            nics: RefCell::new(HashMap::new()),
            cm_listeners: RefCell::new(HashMap::new()),
            // Start virtual addresses well away from zero so accidental
            // "offset used as address" bugs fault loudly.
            next_vaddr: Cell::new(0x0000_7f00_0000_0000),
            next_rkey: Cell::new(1),
            next_qpn: Cell::new(1),
        }
    }

    pub(crate) fn get(fabric: &Fabric) -> Rc<Registry> {
        fabric.extension(Registry::new)
    }

    pub(crate) fn alloc_vaddr(&self, len: u64) -> u64 {
        let base = self.next_vaddr.get();
        // 4 KiB guard gap between regions: off-by-one across region ends
        // must fault rather than silently touch a neighbour.
        self.next_vaddr.set(base + len + 4096);
        base
    }

    pub(crate) fn alloc_rkey(&self) -> u32 {
        let k = self.next_rkey.get();
        self.next_rkey.set(k + 1);
        k
    }

    pub(crate) fn alloc_qpn(&self) -> u32 {
        let q = self.next_qpn.get();
        self.next_qpn.set(q + 1);
        q
    }

    #[allow(dead_code)] // registry lookup kept for cross-crate debugging tools
    pub(crate) fn nic(&self, node: NodeId) -> Option<Rc<NicInner>> {
        self.nics.borrow().get(&node).and_then(Weak::upgrade)
    }
}

pub(crate) struct NicInner {
    pub(crate) node: NodeHandle,
    pub(crate) registry: Rc<Registry>,
    /// rkey → region.
    pub(crate) mrs: RefCell<HashMap<u32, Rc<MrInner>>>,
    // Telemetry: one-sided traffic served by this NIC *without* CPU
    // involvement — the quantity §5.3's offload claims are about.
    pub(crate) writes_in: Cell<u64>,
    pub(crate) reads_served: Cell<u64>,
    pub(crate) atomics_served: Cell<u64>,
    pub(crate) sends_in: Cell<u64>,
    // Registry-backed telemetry: work-request post rate and post→completion
    // latency across every QP on this device.
    pub(crate) qp_posts: kdtelem::Counter,
    pub(crate) one_sided_in: kdtelem::Counter,
    pub(crate) post_to_comp_ns: kdtelem::Histogram,
    /// Resident QP contexts on this device: connected QPs that occupy a
    /// slot in the NIC's on-chip context cache. Multiplexed (DCT-style
    /// lent) QPs do not count — their pinned pool is charged once via
    /// [`NicInner::pin_contexts`]. Drives the connection-count cache-knee
    /// penalty ([`NicInner::cache_penalty`]).
    pub(crate) qp_contexts: Cell<u64>,
    pub(crate) qp_contexts_peak: Cell<u64>,
    /// Bytes of posted receive state on this device (WQEs + data buffers,
    /// per-QP queues and SRQs combined) — the quantity the fan-in sweep
    /// asserts is O(1) in client count under an SRQ.
    pub(crate) recv_wr_bytes: Cell<u64>,
    pub(crate) recv_wr_bytes_peak: Cell<u64>,
    /// Registry captured at construction; trace events (WqePosted,
    /// Completion) for WRs carrying a [`kdtelem::TraceCtx`] go here.
    pub(crate) telem: kdtelem::Registry,
}

impl NicInner {
    /// Looks up a live region by rkey.
    pub(crate) fn find_mr(&self, rkey: u32) -> Option<Rc<MrInner>> {
        self.mrs
            .borrow()
            .get(&rkey)
            .filter(|mr| mr.valid.get())
            .cloned()
    }

    /// Pins `n` QP contexts on the device (QP creation, or a multiplexed
    /// pool reserving its lending QPs up front).
    pub(crate) fn pin_contexts(&self, n: u64) {
        let v = self.qp_contexts.get() + n;
        self.qp_contexts.set(v);
        if v > self.qp_contexts_peak.get() {
            self.qp_contexts_peak.set(v);
        }
    }

    /// Releases `n` pinned QP contexts (QP teardown).
    pub(crate) fn unpin_contexts(&self, n: u64) {
        self.qp_contexts.set(self.qp_contexts.get().saturating_sub(n));
    }

    pub(crate) fn recv_buf_add(&self, bytes: u64) {
        let v = self.recv_wr_bytes.get() + bytes;
        self.recv_wr_bytes.set(v);
        if v > self.recv_wr_bytes_peak.get() {
            self.recv_wr_bytes_peak.set(v);
        }
    }

    pub(crate) fn recv_buf_sub(&self, bytes: u64) {
        self.recv_wr_bytes
            .set(self.recv_wr_bytes.get().saturating_sub(bytes));
    }

    /// Fraction of this device's ops that miss the QP-context cache:
    /// `(resident - capacity) / resident` once resident contexts exceed
    /// the profile's `nic_cache_qps`, else 0. Deterministic — a pure
    /// function of the connection count, no randomness.
    pub(crate) fn cache_miss_rate(&self, net: &NetProfile) -> f64 {
        let cap = net.nic_cache_qps;
        if cap == 0 {
            return 0.0;
        }
        let n = self.qp_contexts.get();
        if n <= cap {
            0.0
        } else {
            (n - cap) as f64 / n as f64
        }
    }

    /// Extra per-op port occupancy from QP-context cache misses: the
    /// profile's full-miss cost scaled by the current miss rate. Charged
    /// on this NIC's port for every verbs op it initiates or serves, so
    /// past the knee the whole device — not one QP — slows down, which is
    /// what RDMAvisor §2 measures.
    pub(crate) fn cache_penalty(&self, net: &NetProfile) -> Duration {
        let miss = self.cache_miss_rate(net);
        if miss == 0.0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((net.qp_cache_miss.as_nanos() as f64 * miss) as u64)
        }
    }
}

/// Telemetry snapshot of a NIC's one-sided service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    pub writes_in: u64,
    pub reads_served: u64,
    pub atomics_served: u64,
    pub sends_in: u64,
}

/// An RDMA-capable NIC attached to one fabric node.
#[derive(Clone)]
pub struct RNic {
    pub(crate) inner: Rc<NicInner>,
}

impl RNic {
    /// Attaches an RNIC to `node`. One device per node is the usual setup
    /// (the testbed has a single ConnectX-4 per machine).
    pub fn new(node: &NodeHandle) -> RNic {
        let registry = Registry::get(&node.fabric);
        let telem = kdtelem::current();
        let inner = Rc::new(NicInner {
            node: node.clone(),
            registry: Rc::clone(&registry),
            mrs: RefCell::new(HashMap::new()),
            writes_in: Cell::new(0),
            reads_served: Cell::new(0),
            atomics_served: Cell::new(0),
            sends_in: Cell::new(0),
            qp_posts: telem.counter("rnic", "qp.posts"),
            one_sided_in: telem.counter("rnic", "qp.one_sided_in"),
            post_to_comp_ns: telem.histogram("rnic", "qp.post_to_comp_ns"),
            qp_contexts: Cell::new(0),
            qp_contexts_peak: Cell::new(0),
            recv_wr_bytes: Cell::new(0),
            recv_wr_bytes_peak: Cell::new(0),
            telem,
        });
        registry
            .nics
            .borrow_mut()
            .insert(node.id, Rc::downgrade(&inner));
        RNic { inner }
    }

    pub fn node(&self) -> &NodeHandle {
        &self.inner.node
    }

    /// Registers `buf` for (remote) access — the `ibv_reg_mr` of §4.2.2.
    /// The returned region shares storage with `buf`: remote writes land in
    /// the caller's own memory.
    pub fn reg_mr(&self, buf: ShmBuf, access: Access) -> MemoryRegion {
        let registry = &self.inner.registry;
        let mr = Rc::new(MrInner {
            addr: registry.alloc_vaddr(buf.len() as u64),
            rkey: registry.alloc_rkey(),
            buf,
            access,
            node: self.inner.node.id,
            valid: Cell::new(true),
        });
        self.inner.mrs.borrow_mut().insert(mr.rkey, Rc::clone(&mr));
        MemoryRegion { inner: mr }
    }

    /// Deregisters a region. In-flight and future remote accesses fail with
    /// `RemoteAccessError` (breaking their QPs), as on hardware. This is how
    /// the broker "disables RDMA access to the file" when revoking a faulty
    /// client (§4.2.2) and how consumers release read files (§4.4.2).
    pub fn dereg_mr(&self, mr: &MemoryRegion) {
        mr.inner.valid.set(false);
        self.inner.mrs.borrow_mut().remove(&mr.inner.rkey);
    }

    /// Creates a completion queue of the given capacity.
    pub fn create_cq(&self, capacity: usize) -> CompletionQueue {
        CompletionQueue::with_capacity(capacity)
    }

    /// Resident QP contexts on this device right now (multiplexed QPs
    /// count only through their pool's pinned contexts).
    pub fn qp_contexts(&self) -> u64 {
        self.inner.qp_contexts.get()
    }

    /// Peak resident QP contexts ever on this device.
    pub fn qp_contexts_peak(&self) -> u64 {
        self.inner.qp_contexts_peak.get()
    }

    /// Bytes of posted receive state (WQEs + buffers) on this device now.
    pub fn recv_buffer_bytes(&self) -> u64 {
        self.inner.recv_wr_bytes.get()
    }

    /// Peak bytes of posted receive state ever on this device.
    pub fn recv_buffer_bytes_peak(&self) -> u64 {
        self.inner.recv_wr_bytes_peak.get()
    }

    /// Current modeled QP-context cache miss rate of this device under the
    /// fabric's profile (0 below the knee or with the model disabled).
    pub fn cache_miss_rate(&self) -> f64 {
        let profile = self.inner.node.fabric.profile();
        self.inner.cache_miss_rate(&profile.net)
    }

    /// Telemetry: one-sided operations served by this NIC.
    pub fn stats(&self) -> NicStats {
        NicStats {
            writes_in: self.inner.writes_in.get(),
            reads_served: self.inner.reads_served.get(),
            atomics_served: self.inner.atomics_served.get(),
            sends_in: self.inner.sends_in.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::profile::Profile;

    #[test]
    fn regions_get_unique_disjoint_vaddrs() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let n = f.add_node("a");
            let nic = RNic::new(&n);
            let m1 = nic.reg_mr(ShmBuf::zeroed(100), Access::all());
            let m2 = nic.reg_mr(ShmBuf::zeroed(100), Access::all());
            assert_ne!(m1.rkey(), m2.rkey());
            assert!(m2.addr() >= m1.addr() + 100 + 4096);
        });
    }

    #[test]
    fn dereg_invalidates() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let n = f.add_node("a");
            let nic = RNic::new(&n);
            let m = nic.reg_mr(ShmBuf::zeroed(8), Access::all());
            assert!(nic.inner.find_mr(m.rkey()).is_some());
            nic.dereg_mr(&m);
            assert!(!m.is_valid());
            assert!(nic.inner.find_mr(m.rkey()).is_none());
        });
    }
}
