//! Shared memory buffers and memory regions.
//!
//! [`ShmBuf`] is the unit of "physical" memory in the simulation: the broker
//! allocates a segment as a `ShmBuf`, registers it ([`MemoryRegion`]), and
//! hands the `(addr, rkey, len)` triple ([`RemoteMr`]) to clients over the
//! control plane — exactly the mmap + `ibv_reg_mr` flow of §4.2.2.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use netsim::NodeId;

/// A shared, heap-backed buffer. Cloning shares the storage.
///
/// All the interior mutability is transient (no borrow is held across an
/// `.await`), so `RefCell` is sufficient on the single-threaded runtime.
#[derive(Clone)]
pub struct ShmBuf {
    data: Rc<RefCell<Vec<u8>>>,
}

impl ShmBuf {
    /// Allocates a zeroed buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        ShmBuf {
            data: Rc::new(RefCell::new(vec![0; len])),
        }
    }

    /// Wraps an existing vector.
    pub fn from_vec(v: Vec<u8>) -> Self {
        ShmBuf {
            data: Rc::new(RefCell::new(v)),
        }
    }

    /// Wraps storage shared with another subsystem (e.g. a `kdstorage`
    /// segment): registering the returned buffer gives RDMA peers direct
    /// access to that subsystem's memory — the zero-copy seam of the paper.
    pub fn from_shared(data: Rc<RefCell<Vec<u8>>>) -> Self {
        ShmBuf { data }
    }

    /// The underlying shared storage.
    pub fn shared(&self) -> Rc<RefCell<Vec<u8>>> {
        Rc::clone(&self.data)
    }

    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies `src` into the buffer at `offset`.
    ///
    /// # Panics
    /// Panics on out-of-bounds; callers (the NIC engine) validate first.
    pub fn write_at(&self, offset: usize, src: &[u8]) {
        self.data.borrow_mut()[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Copies `len` bytes starting at `offset` out of the buffer.
    pub fn read_at(&self, offset: usize, len: usize) -> Vec<u8> {
        self.data.borrow()[offset..offset + len].to_vec()
    }

    /// Copies bytes into a caller-provided slice.
    pub fn read_into(&self, offset: usize, dst: &mut [u8]) {
        dst.copy_from_slice(&self.data.borrow()[offset..offset + dst.len()]);
    }

    /// Runs `f` over an immutable view of the whole buffer (no `.await`
    /// while inside).
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.data.borrow())
    }

    /// Runs `f` over a mutable view of the whole buffer.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.data.borrow_mut())
    }

    /// Reads a little-endian u64 at `offset` (8-aligned not required for
    /// local access).
    pub fn read_u64(&self, offset: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read_into(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian u64 at `offset`.
    pub fn write_u64(&self, offset: usize, v: u64) {
        self.write_at(offset, &v.to_le_bytes());
    }

    /// A slice view `[offset, offset+len)` of this buffer.
    pub fn slice(&self, offset: usize, len: usize) -> BufSlice {
        assert!(offset + len <= self.len(), "ShmBuf::slice out of bounds");
        BufSlice {
            buf: self.clone(),
            offset,
            len,
        }
    }

    /// Whole-buffer slice.
    pub fn as_slice(&self) -> BufSlice {
        self.slice(0, self.len())
    }

    /// True if both handles refer to the same storage.
    pub fn same_buffer(&self, other: &ShmBuf) -> bool {
        Rc::ptr_eq(&self.data, &other.data)
    }
}

impl fmt::Debug for ShmBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShmBuf(len={})", self.len())
    }
}

/// A view into a [`ShmBuf`]; the local-buffer argument of work requests.
#[derive(Clone, Debug)]
pub struct BufSlice {
    pub(crate) buf: ShmBuf,
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl BufSlice {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.read_at(self.offset, self.len)
    }

    /// Runs `f` over the slice's bytes without copying (no `.await` while
    /// inside).
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        self.buf.with(|s| f(&s[self.offset..self.offset + self.len]))
    }

    pub fn copy_from(&self, src: &[u8]) {
        assert!(src.len() <= self.len, "BufSlice::copy_from overflow");
        self.buf.write_at(self.offset, src);
    }

    /// Copies this slice's bytes into `dst` without an intermediate
    /// allocation. Alias-safe: when both views share storage (a loopback
    /// RDMA op), the copy goes through a single mutable borrow via
    /// `copy_within`.
    pub fn copy_to(&self, dst: &BufSlice) {
        assert!(self.len <= dst.len, "BufSlice::copy_to overflow");
        if self.buf.same_buffer(&dst.buf) {
            self.buf
                .with_mut(|d| d.copy_within(self.offset..self.offset + self.len, dst.offset));
        } else {
            self.with(|s| dst.buf.write_at(dst.offset, s));
        }
    }

    /// Narrows the slice.
    pub fn sub(&self, offset: usize, len: usize) -> BufSlice {
        assert!(offset + len <= self.len, "BufSlice::sub out of bounds");
        BufSlice {
            buf: self.buf.clone(),
            offset: self.offset + offset,
            len,
        }
    }

    pub fn read_u64(&self) -> u64 {
        assert!(self.len >= 8);
        self.buf.read_u64(self.offset)
    }
}

/// Access permissions of a memory region, mirroring `ibv_access_flags`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Access(u32);

impl Access {
    pub const LOCAL: Access = Access(0);
    pub const REMOTE_READ: Access = Access(1);
    pub const REMOTE_WRITE: Access = Access(2);
    pub const REMOTE_ATOMIC: Access = Access(4);

    /// Read + write + atomic.
    pub fn all() -> Access {
        Access(7)
    }

    pub fn union(self, other: Access) -> Access {
        Access(self.0 | other.0)
    }

    pub fn allows(self, needed: Access) -> bool {
        self.0 & needed.0 == needed.0
    }
}

impl std::ops::BitOr for Access {
    type Output = Access;
    fn bitor(self, rhs: Access) -> Access {
        self.union(rhs)
    }
}

pub(crate) struct MrInner {
    pub(crate) buf: ShmBuf,
    pub(crate) addr: u64,
    pub(crate) rkey: u32,
    pub(crate) access: Access,
    pub(crate) node: NodeId,
    pub(crate) valid: Cell<bool>,
}

/// A registered memory region. Deregistering (or dropping the last handle)
/// invalidates remote access; in-flight remote operations then fail with
/// `RemoteAccessError`, breaking the QP — as on real hardware.
#[derive(Clone)]
pub struct MemoryRegion {
    pub(crate) inner: Rc<MrInner>,
}

impl MemoryRegion {
    /// Virtual base address of the region (fabric-unique).
    pub fn addr(&self) -> u64 {
        self.inner.addr
    }

    pub fn rkey(&self) -> u32 {
        self.inner.rkey
    }

    pub fn len(&self) -> usize {
        self.inner.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    pub fn buf(&self) -> &ShmBuf {
        &self.inner.buf
    }

    pub fn is_valid(&self) -> bool {
        self.inner.valid.get()
    }

    /// Description for the remote side (sent over the control plane).
    pub fn remote(&self) -> RemoteMr {
        RemoteMr {
            addr: self.addr(),
            rkey: self.rkey(),
            len: self.len() as u64,
        }
    }

    /// Local slice addressed by region-relative offset.
    pub fn slice(&self, offset: usize, len: usize) -> BufSlice {
        self.inner.buf.slice(offset, len)
    }
}

impl fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MemoryRegion {{ addr: {:#x}, rkey: {}, len: {}, valid: {} }}",
            self.addr(),
            self.rkey(),
            self.len(),
            self.is_valid()
        )
    }
}

/// The remote description of a memory region: what the broker returns from a
/// "get RDMA access" request (§4.2.2: "the virtual address and the full
/// length of the preallocated head file").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteMr {
    pub addr: u64,
    pub rkey: u32,
    pub len: u64,
}

impl RemoteMr {
    /// Remote address at `offset` into the region.
    pub fn at(&self, offset: u64) -> u64 {
        self.addr + offset
    }

    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.addr && addr + len <= self.addr + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shmbuf_read_write() {
        let b = ShmBuf::zeroed(16);
        b.write_at(4, &[1, 2, 3]);
        assert_eq!(b.read_at(3, 5), vec![0, 1, 2, 3, 0]);
        b.write_u64(8, 0xdead_beef);
        assert_eq!(b.read_u64(8), 0xdead_beef);
    }

    #[test]
    fn slice_views_share_storage() {
        let b = ShmBuf::zeroed(8);
        let s = b.slice(2, 4);
        s.copy_from(&[9, 9]);
        assert_eq!(b.read_at(0, 8), vec![0, 0, 9, 9, 0, 0, 0, 0]);
        assert_eq!(s.sub(1, 2).to_vec(), vec![9, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_checked() {
        ShmBuf::zeroed(4).slice(2, 4);
    }

    #[test]
    fn access_flags() {
        let a = Access::REMOTE_READ | Access::REMOTE_WRITE;
        assert!(a.allows(Access::REMOTE_READ));
        assert!(a.allows(Access::REMOTE_WRITE));
        assert!(!a.allows(Access::REMOTE_ATOMIC));
        assert!(Access::all().allows(a));
        assert!(a.allows(Access::LOCAL));
    }

    #[test]
    fn remote_mr_bounds() {
        let r = RemoteMr {
            addr: 0x1000,
            rkey: 7,
            len: 64,
        };
        assert!(r.contains(0x1000, 64));
        assert!(r.contains(0x1020, 32));
        assert!(!r.contains(0x1020, 33));
        assert!(!r.contains(0xfff, 1));
        assert_eq!(r.at(16), 0x1010);
    }
}
