//! Work requests and completions — the verbs data types.

use std::fmt;

use crate::mr::BufSlice;

/// The operation part of a send-queue work request (§2 of the paper lists
/// exactly these).
#[derive(Clone, Debug)]
pub enum WorkRequest {
    /// Two-sided send: the receiver must have posted a receive buffer.
    Send { local: BufSlice },
    /// Two-sided send carrying 32-bit immediate data.
    SendImm { local: BufSlice, imm: u32 },
    /// One-sided write to `(rkey, remote_addr)`; the target CPU is not
    /// involved and sees no completion.
    Write {
        local: BufSlice,
        remote_addr: u64,
        rkey: u32,
    },
    /// One-sided write that additionally consumes a posted receive at the
    /// target and generates a receive completion carrying `imm` — the
    /// notification mechanism of the produce datapath (§4.2.2, Fig 4).
    WriteImm {
        local: BufSlice,
        remote_addr: u64,
        rkey: u32,
        imm: u32,
    },
    /// One-sided read from `(rkey, remote_addr)` into `local`.
    Read {
        local: BufSlice,
        remote_addr: u64,
        rkey: u32,
    },
    /// 8-byte compare-and-swap; the old value lands in `local` (8 bytes).
    CompareSwap {
        local: BufSlice,
        remote_addr: u64,
        rkey: u32,
        compare: u64,
        swap: u64,
    },
    /// 8-byte fetch-and-add; the old value lands in `local` (8 bytes).
    /// "RDMA FAA always succeeds" (§4.2.2) — the produce offset word relies
    /// on that.
    FetchAdd {
        local: BufSlice,
        remote_addr: u64,
        rkey: u32,
        add: u64,
    },
}

impl WorkRequest {
    /// Payload bytes this request puts on the forward wire.
    pub(crate) fn request_bytes(&self) -> u64 {
        match self {
            WorkRequest::Send { local } | WorkRequest::SendImm { local, .. } => local.len() as u64,
            WorkRequest::Write { local, .. } | WorkRequest::WriteImm { local, .. } => {
                local.len() as u64
            }
            // Read request / atomics carry only headers + addresses.
            WorkRequest::Read { .. } => 16,
            WorkRequest::CompareSwap { .. } => 32,
            WorkRequest::FetchAdd { .. } => 24,
        }
    }

    /// Payload bytes on the response wire.
    pub(crate) fn response_bytes(&self) -> u64 {
        match self {
            WorkRequest::Read { local, .. } => local.len() as u64,
            WorkRequest::CompareSwap { .. } | WorkRequest::FetchAdd { .. } => 8,
            _ => 0,
        }
    }

    /// Static name of the completion opcode, for trace events.
    pub(crate) fn opcode_name(&self) -> &'static str {
        match self.opcode() {
            CqOpcode::Send => "Send",
            CqOpcode::RdmaWrite => "RdmaWrite",
            CqOpcode::RdmaRead => "RdmaRead",
            CqOpcode::CompSwap => "CompSwap",
            CqOpcode::FetchAdd => "FetchAdd",
            CqOpcode::Recv | CqOpcode::RecvRdmaWithImm => unreachable!(),
        }
    }

    pub(crate) fn opcode(&self) -> CqOpcode {
        match self {
            WorkRequest::Send { .. } | WorkRequest::SendImm { .. } => CqOpcode::Send,
            WorkRequest::Write { .. } | WorkRequest::WriteImm { .. } => CqOpcode::RdmaWrite,
            WorkRequest::Read { .. } => CqOpcode::RdmaRead,
            WorkRequest::CompareSwap { .. } => CqOpcode::CompSwap,
            WorkRequest::FetchAdd { .. } => CqOpcode::FetchAdd,
        }
    }
}

/// A send-queue work request.
#[derive(Clone, Debug)]
pub struct SendWr {
    /// Application cookie returned in the completion.
    pub wr_id: u64,
    pub op: WorkRequest,
    /// Unsignalled requests produce no success completion (errors always
    /// complete).
    pub signaled: bool,
    /// Causal trace context riding with the WR. Copied into the initiator's
    /// send CQE *and* the target's receive CQE (for WriteImm/Send), which is
    /// how a lifeline crosses the verbs "process boundary" — the 32-bit
    /// immediate stays free for protocol data.
    pub trace: Option<kdtelem::TraceCtx>,
}

impl SendWr {
    pub fn new(wr_id: u64, op: WorkRequest) -> Self {
        SendWr {
            wr_id,
            op,
            signaled: true,
            trace: None,
        }
    }

    pub fn unsignaled(wr_id: u64, op: WorkRequest) -> Self {
        SendWr {
            wr_id,
            op,
            signaled: false,
            trace: None,
        }
    }

    /// Attaches a trace context (builder style).
    pub fn with_trace(mut self, trace: Option<kdtelem::TraceCtx>) -> Self {
        self.trace = trace;
        self
    }
}

/// A receive-queue work request. `buf: None` posts a zero-length receive,
/// enough to absorb a WriteWithImm notification.
#[derive(Clone, Debug)]
pub struct RecvWr {
    pub wr_id: u64,
    pub buf: Option<BufSlice>,
}

/// Completion status, mirroring `ibv_wc_status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqStatus {
    Success,
    /// rkey unknown / deregistered, out of bounds, or permission denied.
    RemoteAccessError,
    /// Remote operation failed (e.g. misaligned atomic).
    RemoteOpError,
    /// Receiver had no posted receive and the RNR timeout expired.
    RnrRetryExceeded,
    /// The QP entered the error state; queued work was flushed.
    FlushError,
    /// The local receive buffer was too small for an incoming Send.
    LocalLengthError,
}

impl CqStatus {
    pub fn is_ok(self) -> bool {
        self == CqStatus::Success
    }
}

/// Completion opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqOpcode {
    Send,
    RdmaWrite,
    RdmaRead,
    CompSwap,
    FetchAdd,
    Recv,
    /// Receive completion generated by a remote WriteWithImm (carries `imm`,
    /// no data in the receive buffer).
    RecvRdmaWithImm,
}

/// A completion queue entry.
#[derive(Debug, Clone)]
pub struct Cqe {
    pub wr_id: u64,
    /// Number of the QP this completion belongs to.
    pub qpn: u32,
    pub status: CqStatus,
    pub opcode: CqOpcode,
    /// Bytes transferred (receive side: bytes written).
    pub byte_len: u32,
    /// Immediate data, for `RecvRdmaWithImm` / `Recv` of a SendImm.
    pub imm: Option<u32>,
    /// Convenience copy of the old value returned by an atomic (also written
    /// to the WR's local buffer, as on real hardware).
    pub atomic_old: Option<u64>,
    /// Trace context carried by the WR that caused this completion (both
    /// directions: the poster's CQE and, for WriteImm/Send, the target's).
    pub trace: Option<kdtelem::TraceCtx>,
}

impl Cqe {
    pub fn ok(&self) -> bool {
        self.status.is_ok()
    }
}

/// Error returned by `post_send`/`post_recv` on a broken QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// The QP is in the error state (disconnected or flushed).
    QpError,
    /// The QP is not connected yet.
    NotConnected,
}

impl fmt::Display for PostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostError::QpError => write!(f, "queue pair is in the error state"),
            PostError::NotConnected => write!(f, "queue pair is not connected"),
        }
    }
}

impl std::error::Error for PostError {}
