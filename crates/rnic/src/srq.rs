//! Shared receive queues.
//!
//! A single pool of receive WRs that many QPs attach to (`ibv_create_srq`):
//! an incoming Send/WriteWithImm on *any* attached QP consumes the SRQ's
//! head buffer instead of a per-QP `recv_queue` entry, so the receiver's
//! posted-buffer memory is O(1) in connection count instead of
//! O(connections × recv_depth). Completions still land in the consuming
//! QP's receive CQ and carry that QP's number — demultiplexing is
//! unchanged. When the SRQ runs dry the sender sees ordinary RNR
//! semantics (parks until a buffer is posted, or fails with
//! `RnrRetryExceeded` under a bounded `rnr_timeout`).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use sim::sync::Notify;

use crate::nic::{NicInner, RNic, WQE_BYTES};
use crate::verbs::{PostError, RecvWr};

pub(crate) struct SrqInner {
    queue: RefCell<VecDeque<RecvWr>>,
    max_wr: usize,
    /// One stored permit / FIFO wakeup per posted WR: each may satisfy a
    /// distinct RNR waiter, exactly like a QP's `recv_posted`.
    pub(crate) posted_notify: Notify,
    /// Device the SRQ's buffers are accounted against.
    nic: Rc<NicInner>,
    // Registry-backed telemetry (`rnic srq.*`).
    posted: kdtelem::Counter,
    stolen: kdtelem::Counter,
    pub(crate) rnr_dry: kdtelem::Counter,
    depth: kdtelem::Gauge,
}

/// A shared receive queue. Cheap to clone; attach to QPs via
/// [`QpOptions::srq`](crate::QpOptions).
#[derive(Clone)]
pub struct Srq {
    pub(crate) inner: Rc<SrqInner>,
}

impl std::fmt::Debug for Srq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Srq")
            .field("len", &self.len())
            .field("max_wr", &self.inner.max_wr)
            .finish()
    }
}

impl RNic {
    /// Creates a shared receive queue on this device holding at most
    /// `max_wr` posted receives.
    pub fn create_srq(&self, max_wr: usize) -> Srq {
        assert!(max_wr > 0);
        let telem = kdtelem::current();
        Srq {
            inner: Rc::new(SrqInner {
                queue: RefCell::new(VecDeque::new()),
                max_wr,
                posted_notify: Notify::new(),
                nic: Rc::clone(&self.inner),
                posted: telem.counter("rnic", "srq.posted"),
                stolen: telem.counter("rnic", "srq.stolen_by_qp"),
                rnr_dry: telem.counter("rnic", "srq.rnr_dry"),
                depth: telem.gauge("rnic", "srq.depth"),
            }),
        }
    }
}

impl Srq {
    /// Posts one receive (`ibv_post_srq_recv`). Overflowing `max_wr`
    /// panics, same contract as [`QueuePair::post_recv`]
    /// (crate::QueuePair::post_recv): a simulation program bug, not a
    /// runtime condition.
    pub fn post_recv(&self, wr: RecvWr) -> Result<(), PostError> {
        self.post_recv_list(std::iter::once(wr))
    }

    /// Posts a chained receive list: one queue lock for the whole chain,
    /// the doorbell-batched replenish path brokers use. Every WR is held
    /// to the same `max_wr` bound as a single post.
    pub fn post_recv_list(&self, wrs: impl IntoIterator<Item = RecvWr>) -> Result<(), PostError> {
        let inner = &self.inner;
        let mut posted = 0usize;
        {
            let mut q = inner.queue.borrow_mut();
            for wr in wrs {
                assert!(
                    q.len() < inner.max_wr,
                    "shared receive queue overflow (max_wr={})",
                    inner.max_wr
                );
                inner
                    .nic
                    .recv_buf_add(WQE_BYTES + wr.buf.as_ref().map_or(0, |b| b.len() as u64));
                q.push_back(wr);
                posted += 1;
            }
        }
        inner.posted.add(posted as u64);
        inner.depth.add(posted as u64);
        for _ in 0..posted {
            inner.posted_notify.notify_one();
        }
        Ok(())
    }

    /// Pops the head receive for a consuming QP. `None` when dry (the
    /// caller parks on RNR semantics).
    pub(crate) fn pop(&self) -> Option<RecvWr> {
        let wr = self.inner.queue.borrow_mut().pop_front();
        if let Some(wr) = &wr {
            self.inner
                .nic
                .recv_buf_sub(WQE_BYTES + wr.buf.as_ref().map_or(0, |b| b.len() as u64));
            self.inner.stolen.inc();
            self.inner.depth.sub(1);
        }
        wr
    }

    /// Posted receives currently waiting.
    pub fn len(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum posted receives.
    pub fn max_wr(&self) -> usize {
        self.inner.max_wr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::RdmaListener;
    use crate::cq::CompletionQueue;
    use crate::mr::ShmBuf;
    use crate::qp::{QpOptions, QueuePair};
    use crate::verbs::{SendWr, WorkRequest};
    use netsim::profile::Profile;
    use netsim::Fabric;

    /// Two initiator nodes connected to one receiver node whose accepted
    /// QPs share a recv CQ and (optionally) an SRQ.
    async fn fan_in_pair(
        f: &Fabric,
        srv_opts: QpOptions,
    ) -> (RNic, Vec<(QueuePair, CompletionQueue)>, CompletionQueue) {
        let ns = f.add_node("srv");
        let nic_s = RNic::new(&ns);
        let mut listener = RdmaListener::bind(&nic_s, 1);
        let s_send = nic_s.create_cq(64);
        let s_recv = nic_s.create_cq(64);
        let nic_s2 = nic_s.clone();
        let s_recv2 = s_recv.clone();
        let accepts = sim::spawn(async move {
            let mut qps = Vec::new();
            for _ in 0..2 {
                let inc = listener.accept().await.unwrap();
                qps.push(inc.accept(&nic_s2, s_send.clone(), s_recv2.clone(), srv_opts.clone()));
            }
            qps
        });
        let mut clients = Vec::new();
        for i in 0..2 {
            let nc = f.add_node(&format!("c{i}"));
            let nic_c = RNic::new(&nc);
            let c_send = nic_c.create_cq(64);
            let c_recv = nic_c.create_cq(64);
            let qp = nic_c
                .connect(ns.id, 1, c_send.clone(), c_recv, QpOptions::default())
                .await
                .unwrap();
            clients.push((qp, c_send));
        }
        let _srv_qps = accepts.await.unwrap();
        // Keep the server endpoints alive for the test body.
        std::mem::forget(_srv_qps);
        (nic_s, clients, s_recv)
    }

    fn send(qp: &QueuePair, wr_id: u64, payload: &[u8]) {
        qp.post_send(SendWr::new(
            wr_id,
            WorkRequest::Send {
                local: ShmBuf::from_vec(payload.to_vec()).as_slice(),
            },
        ))
        .unwrap();
    }

    #[test]
    fn srq_feeds_many_qps_and_cqes_carry_source_qp() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let ns = f.add_node("srv");
            let nic_s = RNic::new(&ns);
            let srq = nic_s.create_srq(16);
            let bufs: Vec<ShmBuf> = (0..4).map(|_| ShmBuf::zeroed(16)).collect();
            srq.post_recv_list(bufs.iter().enumerate().map(|(i, b)| RecvWr {
                wr_id: i as u64,
                buf: Some(b.as_slice()),
            }))
            .unwrap();
            assert_eq!(srq.len(), 4);

            let mut listener = RdmaListener::bind(&nic_s, 1);
            let s_send = nic_s.create_cq(64);
            let s_recv = nic_s.create_cq(64);
            let opts = QpOptions {
                srq: Some(srq.clone()),
                ..QpOptions::default()
            };
            let nic_s2 = nic_s.clone();
            let s_recv2 = s_recv.clone();
            let accepts = sim::spawn(async move {
                let mut qps = Vec::new();
                for _ in 0..2 {
                    let inc = listener.accept().await.unwrap();
                    qps.push(inc.accept(&nic_s2, s_send.clone(), s_recv2.clone(), opts.clone()));
                }
                qps
            });
            let mut clients = Vec::new();
            for i in 0..2 {
                let nc = f.add_node(&format!("c{i}"));
                let nic_c = RNic::new(&nc);
                let c_send = nic_c.create_cq(64);
                let c_recv = nic_c.create_cq(64);
                let qp = nic_c
                    .connect(ns.id, 1, c_send.clone(), c_recv, QpOptions::default())
                    .await
                    .unwrap();
                clients.push(qp);
            }
            let srv_qps = accepts.await.unwrap();

            send(&clients[0], 10, b"from0");
            send(&clients[1], 11, b"from1");
            let a = s_recv.next().await.unwrap();
            let b = s_recv.next().await.unwrap();
            assert!(a.ok() && b.ok());
            // Each completion names the server-side QP it arrived on.
            let mut got: Vec<u32> = vec![a.qpn, b.qpn];
            got.sort_unstable();
            let mut want: Vec<u32> = srv_qps.iter().map(|q| q.qpn()).collect();
            want.sort_unstable();
            assert_eq!(got, want);
            assert_eq!(srq.len(), 2, "two of four SRQ buffers consumed");
        });
    }

    #[test]
    fn srq_dry_parks_sender_until_replenished() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let ns = f.add_node("srv");
            let nic_s = RNic::new(&ns);
            let srq = nic_s.create_srq(8);
            let (_nic, clients, s_recv) = {
                let mut listener = RdmaListener::bind(&nic_s, 1);
                let s_send = nic_s.create_cq(64);
                let s_recv = nic_s.create_cq(64);
                let opts = QpOptions {
                    srq: Some(srq.clone()),
                    ..QpOptions::default()
                };
                let nic_s2 = nic_s.clone();
                let s_recv2 = s_recv.clone();
                let accepts = sim::spawn(async move {
                    let inc = listener.accept().await.unwrap();
                    inc.accept(&nic_s2, s_send.clone(), s_recv2.clone(), opts.clone())
                });
                let nc = f.add_node("c0");
                let nic_c = RNic::new(&nc);
                let c_send = nic_c.create_cq(64);
                let c_recv = nic_c.create_cq(64);
                let qp = nic_c
                    .connect(ns.id, 1, c_send.clone(), c_recv, QpOptions::default())
                    .await
                    .unwrap();
                let _srv = accepts.await.unwrap();
                std::mem::forget(_srv);
                (nic_s.clone(), vec![qp], s_recv)
            };
            // SRQ is dry: the send parks on RNR semantics.
            send(&clients[0], 1, b"x");
            sim::time::sleep(std::time::Duration::from_micros(50)).await;
            assert!(s_recv.is_empty(), "no buffer yet — send must be parked");
            let buf = ShmBuf::zeroed(16);
            srq.post_recv(RecvWr {
                wr_id: 7,
                buf: Some(buf.as_slice()),
            })
            .unwrap();
            let cqe = s_recv.next().await.unwrap();
            assert!(cqe.ok());
            assert_eq!(cqe.wr_id, 7);
            assert_eq!(buf.read_at(0, 1), b"x".to_vec());
        });
    }

    #[test]
    fn qp_error_flush_does_not_strand_srq_buffers() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let ns = f.add_node("srv");
            let nic_s = RNic::new(&ns);
            let srq = nic_s.create_srq(16);
            let bufs: Vec<ShmBuf> = (0..3).map(|_| ShmBuf::zeroed(16)).collect();
            srq.post_recv_list(bufs.iter().enumerate().map(|(i, b)| RecvWr {
                wr_id: i as u64,
                buf: Some(b.as_slice()),
            }))
            .unwrap();

            let mut listener = RdmaListener::bind(&nic_s, 1);
            let s_send = nic_s.create_cq(64);
            let s_recv = nic_s.create_cq(64);
            let opts = QpOptions {
                srq: Some(srq.clone()),
                ..QpOptions::default()
            };
            let nic_s2 = nic_s.clone();
            let s_recv2 = s_recv.clone();
            let accepts = sim::spawn(async move {
                let mut qps = Vec::new();
                for _ in 0..2 {
                    let inc = listener.accept().await.unwrap();
                    qps.push(inc.accept(&nic_s2, s_send.clone(), s_recv2.clone(), opts.clone()));
                }
                qps
            });
            let mut clients = Vec::new();
            for i in 0..2 {
                let nc = f.add_node(&format!("c{i}"));
                let nic_c = RNic::new(&nc);
                let c_send = nic_c.create_cq(64);
                let c_recv = nic_c.create_cq(64);
                let qp = nic_c
                    .connect(ns.id, 1, c_send.clone(), c_recv, QpOptions::default())
                    .await
                    .unwrap();
                clients.push(qp);
            }
            let srv_qps = accepts.await.unwrap();

            // Kill the first server QP while attached: the error flush must
            // leave every SRQ buffer available to the survivor.
            let bytes_before = nic_s.recv_buffer_bytes();
            srv_qps[0].close();
            assert!(!clients[0].is_alive(), "peer observes the disconnect");
            assert_eq!(srq.len(), 3, "SRQ buffers must not be flushed");
            assert_eq!(
                nic_s.recv_buffer_bytes(),
                bytes_before,
                "no SRQ buffer accounting may be dropped by the QP flush"
            );
            for i in 0..3u64 {
                send(&clients[1], 20 + i, b"s");
            }
            for _ in 0..3 {
                let cqe = s_recv.next().await.unwrap();
                assert!(cqe.ok());
                assert_eq!(cqe.qpn, srv_qps[1].qpn());
            }
            assert_eq!(srq.len(), 0);
        });
    }

    #[test]
    fn recv_buffer_accounting_tracks_posts_and_consumption() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let (nic_s, clients, s_recv) = fan_in_pair(&f, QpOptions::default()).await;
            assert_eq!(nic_s.recv_buffer_bytes(), 0);
            let srq = nic_s.create_srq(8);
            let buf = ShmBuf::zeroed(64);
            srq.post_recv(RecvWr {
                wr_id: 0,
                buf: Some(buf.as_slice()),
            })
            .unwrap();
            assert_eq!(nic_s.recv_buffer_bytes(), WQE_BYTES + 64);
            assert!(srq.pop().is_some());
            assert_eq!(nic_s.recv_buffer_bytes(), 0);
            assert_eq!(nic_s.recv_buffer_bytes_peak(), WQE_BYTES + 64);
            drop(clients);
            drop(s_recv);
        });
    }

    #[test]
    #[should_panic(expected = "shared receive queue overflow")]
    fn srq_capacity_bound_enforced_on_lists() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let n = f.add_node("a");
            let nic = RNic::new(&n);
            let srq = nic.create_srq(2);
            srq.post_recv_list((0..3).map(|i| RecvWr { wr_id: i, buf: None }))
                .unwrap();
        });
    }

    #[test]
    fn multiplexed_qps_do_not_pin_contexts() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let ns = f.add_node("srv");
            let nic_s = RNic::new(&ns);
            let pool = crate::cm::MuxPool::new(&nic_s, 4);
            assert_eq!(nic_s.qp_contexts(), 4, "pool pins its contexts once");

            let mut listener = RdmaListener::bind(&nic_s, 1);
            let s_send = nic_s.create_cq(64);
            let s_recv = nic_s.create_cq(64);
            let opts = QpOptions {
                multiplexed: true,
                ..QpOptions::default()
            };
            let nic_s2 = nic_s.clone();
            let accepts = sim::spawn(async move {
                let inc = listener.accept().await.unwrap();
                inc.accept(&nic_s2, s_send, s_recv, opts)
            });
            let nc = f.add_node("c0");
            let nic_c = RNic::new(&nc);
            let c_send = nic_c.create_cq(64);
            let c_recv = nic_c.create_cq(64);
            let client = nic_c
                .connect(ns.id, 1, c_send, c_recv, QpOptions::default())
                .await
                .unwrap();
            let srv = accepts.await.unwrap();
            let lease = pool.lease();
            assert_eq!(pool.active(), 1);
            assert_eq!(
                nic_s.qp_contexts(),
                4,
                "a multiplexed connection adds no resident context"
            );
            // The client side still pins its own (its NIC is not the
            // scaling bottleneck).
            assert_eq!(nic_c.qp_contexts(), 1);
            drop(lease);
            assert_eq!(pool.active(), 0);
            srv.close();
            assert_eq!(nic_s.qp_contexts(), 4, "teardown releases nothing it never pinned");
            assert_eq!(nic_c.qp_contexts(), 0, "client context released on disconnect");
            drop(client);
        });
    }
}
