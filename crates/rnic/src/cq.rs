//! Completion queues.
//!
//! Bounded, like hardware CQs: pushing into a full CQ is a fatal event that
//! breaks every attached QP. The paper's push-replication module exists to
//! avoid exactly this ("a flood of small records could ... overflow the RDMA
//! completion queue of a slow follower leading to disconnection of all
//! corresponding QPs", §4.3.2), so overflow must be a real, observable
//! failure here.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::{Rc, Weak};

use sim::sync::Notify;

use crate::qp::QpShared;
use crate::verbs::Cqe;

pub(crate) struct CqInner {
    queue: RefCell<VecDeque<Cqe>>,
    capacity: usize,
    notify: Notify,
    overflowed: Cell<bool>,
    attached: RefCell<Vec<Weak<QpShared>>>,
    completions_total: Cell<u64>,
    // Registry-backed telemetry: current/peak occupancy across all CQs and
    // total CQEs delivered (the overflow-risk signal of §4.3.2).
    depth: kdtelem::Gauge,
    cqes: kdtelem::Counter,
    overflows: kdtelem::Counter,
}

/// A completion queue shared by one or more QPs.
#[derive(Clone)]
pub struct CompletionQueue {
    pub(crate) inner: Rc<CqInner>,
}

impl CompletionQueue {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0);
        let telem = kdtelem::current();
        CompletionQueue {
            inner: Rc::new(CqInner {
                queue: RefCell::new(VecDeque::new()),
                capacity,
                notify: Notify::new(),
                overflowed: Cell::new(false),
                attached: RefCell::new(Vec::new()),
                completions_total: Cell::new(0),
                depth: telem.gauge("rnic", "cq.depth"),
                cqes: telem.counter("rnic", "cq.cqes"),
                overflows: telem.counter("rnic", "cq.overflows"),
            }),
        }
    }

    pub(crate) fn attach(&self, qp: &Rc<QpShared>) {
        self.inner.attached.borrow_mut().push(Rc::downgrade(qp));
    }

    /// Poisons the CQ as a hardware overflow would: every attached QP
    /// transitions to the error state and further completions are lost.
    fn poison(&self) {
        self.inner.overflowed.set(true);
        self.inner.overflows.inc();
        let attached: Vec<_> = self.inner.attached.borrow().clone();
        for qp in attached.into_iter().filter_map(|w| w.upgrade()) {
            QpShared::fail(&qp, crate::verbs::CqStatus::FlushError);
        }
        self.inner.notify.notify_waiters();
    }

    /// Fault injection: overflows this CQ now, regardless of occupancy —
    /// the §4.3.2 slow-follower disaster on demand. All attached QPs fail
    /// (and, per RC semantics, their peers observe the disconnect).
    pub fn inject_overflow(&self) {
        if !self.inner.overflowed.get() {
            self.poison();
        }
    }

    /// Pushes a completion. On overflow the CQ is poisoned and every
    /// attached QP transitions to the error state.
    pub(crate) fn push(&self, cqe: Cqe) {
        if self.inner.overflowed.get() {
            return; // poisoned: completions are lost
        }
        {
            let mut q = self.inner.queue.borrow_mut();
            if q.len() >= self.inner.capacity {
                drop(q);
                self.poison();
                return;
            }
            q.push_back(cqe);
            self.inner
                .completions_total
                .set(self.inner.completions_total.get() + 1);
            self.inner.cqes.inc();
            self.inner.depth.add(1);
        }
        self.inner.notify.notify_one();
    }

    /// Non-blocking poll, like `ibv_poll_cq`.
    pub fn poll(&self) -> Option<Cqe> {
        let cqe = self.inner.queue.borrow_mut().pop_front();
        if cqe.is_some() {
            self.inner.depth.sub(1);
        }
        cqe
    }

    /// Non-blocking batch poll, like `ibv_poll_cq(cq, N, wc)`: pops up to
    /// the free capacity of `out` in completion order. Returns how many were
    /// taken. Never allocates — the destination is stack space.
    pub fn poll_batch<const N: usize>(&self, out: &mut kdbuf::ArrayVec<Cqe, N>) -> usize {
        let mut q = self.inner.queue.borrow_mut();
        let mut taken = 0;
        while !out.is_full() {
            let Some(cqe) = q.pop_front() else { break };
            self.inner.depth.sub(1);
            let _ = out.push(cqe);
            taken += 1;
        }
        taken
    }

    /// As [`poll_batch`](Self::poll_batch) but into a caller-pooled `Vec`
    /// (appends; retained capacity makes steady-state drains allocation-free)
    /// bounded by `max`. Returns how many were taken.
    pub fn drain_into(&self, out: &mut Vec<Cqe>, max: usize) -> usize {
        let mut q = self.inner.queue.borrow_mut();
        let mut taken = 0;
        while taken < max {
            let Some(cqe) = q.pop_front() else { break };
            self.inner.depth.sub(1);
            out.push(cqe);
            taken += 1;
        }
        taken
    }

    /// Waits (virtual time) for the next completion.
    ///
    /// Returns `None` if the CQ has overflowed (fatal).
    pub async fn next(&self) -> Option<Cqe> {
        loop {
            if let Some(cqe) = self.poll() {
                return Some(cqe);
            }
            if self.inner.overflowed.get() {
                return None;
            }
            self.inner.notify.notified().await;
        }
    }

    pub fn len(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// True once an overflow has poisoned this CQ.
    pub fn overflowed(&self) -> bool {
        self.inner.overflowed.get()
    }

    /// Total completions ever delivered (telemetry).
    pub fn completions_total(&self) -> u64 {
        self.inner.completions_total.get()
    }
}
