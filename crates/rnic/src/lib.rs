//! A software model of RDMA reliable-connection (RC) verbs.
//!
//! This crate stands in for the InfiniBand ConnectX-4 RNICs of the paper's
//! testbed (§2, §5). It implements the full set of semantics KafkaDirect's
//! protocols rely on:
//!
//! * **One-sided operations** — RDMA Write, WriteWithImm, RDMA Read — that
//!   move bytes directly between registered memory regions without any
//!   involvement of the target's "CPU" (no target task runs).
//! * **Remote atomics** — Compare-and-Swap and Fetch-and-Add on 8-byte
//!   words, serialised per address at the paper's measured 2.68 Mops/s
//!   (§4.2.2).
//! * **Two-sided Send/Recv** with posted receive buffers, RNR stalls, and
//!   receive-side completions (used by the OSU-Kafka baseline, §4).
//! * **Reliable delivery and strict ordering**: work requests on one QP
//!   execute remotely in post order, and completions are delivered in order
//!   — the property §4.2.2 uses to process produce requests consistently.
//! * **Failure semantics**: access violations break the connection, CQ
//!   overflow disconnects all attached QPs (the motivation for credit-based
//!   replication flow control, §4.3.2), and peers observe disconnects
//!   asynchronously (used for revoking produce access on client failure).
//!
//! Memory registered with [`RNic::reg_mr`] is *shared* with the owner: an
//! RDMA Write lands bytes directly in the buffer the broker's storage layer
//! reads — the zero-copy property the paper is built on.

pub mod cm;
pub mod cq;
pub mod mr;
pub mod qp;
pub mod srq;
pub mod verbs;

mod nic;

pub use cm::{MuxLease, MuxPool, RdmaConnectError, RdmaListener};
pub use cq::CompletionQueue;
pub use mr::{Access, BufSlice, MemoryRegion, RemoteMr, ShmBuf};
pub use nic::{NicStats, RNic, WQE_BYTES};
pub use qp::{QpOptions, QueuePair};
pub use srq::Srq;
pub use verbs::{CqOpcode, CqStatus, Cqe, PostError, RecvWr, SendWr, WorkRequest};
