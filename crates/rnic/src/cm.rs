//! Connection management: rendezvous between nodes to establish RC QPs.
//!
//! Real applications (and KafkaDirect, §4.2.2) exchange QP attributes over a
//! TCP control channel before moving to verbs; the model charges the same
//! connection-setup latency without simulating the exchange byte-by-byte.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use netsim::NodeId;
use sim::sync::{mpsc, oneshot};

use crate::cq::CompletionQueue;
use crate::nic::{NicInner, RNic, Registry};
use crate::qp::{QpOptions, QueuePair};

/// A DCT-style QP-lending pool: a small, fixed set of broker-side QP
/// contexts multiplexed across many logical client connections.
///
/// The pool pins its `capacity` contexts on the device once, at creation;
/// connections accepted with [`QpOptions::multiplexed`] then borrow a
/// lending slot via [`MuxPool::lease`] instead of pinning a context each —
/// so the device's QP-context cache footprint stays O(pool), not
/// O(clients), and the cache-knee penalty never engages (Storm's
/// minimal-NIC-state design point). The connect/detach bookkeeping is what
/// real DC-transport implementations do in their CM: acquire on accept,
/// release on disconnect.
pub struct MuxPool {
    inner: Rc<MuxPoolInner>,
}

struct MuxPoolInner {
    nic: Rc<NicInner>,
    capacity: usize,
    active: Cell<usize>,
    // Registry-backed telemetry (`rnic qpmux.*`).
    acquires: kdtelem::Counter,
    releases: kdtelem::Counter,
    gauge: kdtelem::Gauge,
}

impl MuxPool {
    /// Creates a pool of `capacity` lending QPs on `nic`, pinning their
    /// NIC contexts up front.
    pub fn new(nic: &RNic, capacity: usize) -> MuxPool {
        assert!(capacity > 0);
        let telem = kdtelem::current();
        nic.inner.pin_contexts(capacity as u64);
        MuxPool {
            inner: Rc::new(MuxPoolInner {
                nic: Rc::clone(&nic.inner),
                capacity,
                active: Cell::new(0),
                acquires: telem.counter("rnic", "qpmux.lease_acquire"),
                releases: telem.counter("rnic", "qpmux.lease_release"),
                gauge: telem.gauge("rnic", "qpmux.active"),
            }),
        }
    }

    /// Borrows a lending slot for one logical connection. Dropping the
    /// lease (disconnect/detach) releases it. Leases are not a scarce
    /// resource — many logical connections time-share each lending QP, as
    /// with hardware DCTs — so this never blocks; `active()` reports the
    /// multiplexing degree.
    pub fn lease(&self) -> MuxLease {
        self.inner.acquires.inc();
        self.inner.active.set(self.inner.active.get() + 1);
        self.inner.gauge.add(1);
        MuxLease {
            pool: Rc::clone(&self.inner),
        }
    }

    /// Logical connections currently leased onto the pool.
    pub fn active(&self) -> usize {
        self.inner.active.get()
    }

    /// Lending QPs (pinned NIC contexts) in the pool.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

impl Drop for MuxPool {
    fn drop(&mut self) {
        self.inner.nic.unpin_contexts(self.inner.capacity as u64);
    }
}

/// One logical connection's borrow of a [`MuxPool`] lending slot; dropped
/// on disconnect.
pub struct MuxLease {
    pool: Rc<MuxPoolInner>,
}

impl Drop for MuxLease {
    fn drop(&mut self) {
        self.pool.releases.inc();
        self.pool.active.set(self.pool.active.get().saturating_sub(1));
        self.pool.gauge.sub(1);
    }
}

/// Error establishing an RDMA connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaConnectError {
    /// No listener at the destination.
    ConnectionRefused,
    /// The listener dropped the request without accepting.
    Rejected,
}

impl fmt::Display for RdmaConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaConnectError::ConnectionRefused => write!(f, "rdma connection refused"),
            RdmaConnectError::Rejected => write!(f, "rdma connection rejected"),
        }
    }
}

impl std::error::Error for RdmaConnectError {}

pub(crate) struct ConnRequest {
    pub(crate) from: NodeId,
    reply: oneshot::Sender<QueuePair>,
    initiator_cqs: (CompletionQueue, CompletionQueue),
    initiator_opts: QpOptions,
    initiator_nic: RNic,
}

/// A pending inbound connection; accept it to create the QP pair.
pub struct IncomingConnection {
    request: ConnRequest,
}

impl IncomingConnection {
    /// Node asking to connect.
    pub fn from(&self) -> NodeId {
        self.request.from
    }

    /// Accepts, creating the local endpoint with the given CQs/options. The
    /// initiator's `connect` resolves with its own endpoint.
    pub fn accept(
        self,
        nic: &RNic,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        opts: QpOptions,
    ) -> QueuePair {
        let (initiator, acceptor) = QueuePair::create_connected_pair(
            &self.request.initiator_nic.inner,
            &nic.inner,
            self.request.initiator_cqs,
            (send_cq, recv_cq),
            self.request.initiator_opts,
            opts,
        );
        // If the initiator vanished, the pair is dropped and the acceptor
        // side observes a dead peer on first use.
        let _ = self.request.reply.send(initiator);
        acceptor
    }

    /// Declines the connection.
    pub fn reject(self) {
        drop(self.request.reply);
    }
}

/// A rendezvous-table slot: the bind generation that owns the port plus the
/// accept-queue sender. The generation lets a stale listener's `Drop` detect
/// that the port has been rebound since (crash + synchronous restart) and
/// leave the fresh slot alone.
pub(crate) type ListenerSlot = (u64, sim::sync::mpsc::Sender<ConnRequest>);

// Thread-local, not process-global: under the sharded executor
// (DESIGN.md §12) each worker thread numbers its own bind generations.
// Values are only ever compared within one rendezvous table (per-fabric,
// hence shard-local) and never enter traces, so cross-group interleaving
// of the counter cannot leak into the determinism contract.
thread_local! {
    static NEXT_BIND_GEN: std::cell::Cell<u64> = const { std::cell::Cell::new(1) };
}

fn next_bind_gen() -> u64 {
    NEXT_BIND_GEN.with(|g| {
        let v = g.get();
        g.set(v + 1);
        v
    })
}

/// A listening RDMA service id (port).
pub struct RdmaListener {
    nic: RNic,
    port: u16,
    gen: u64,
    incoming: mpsc::Receiver<ConnRequest>,
}

impl RdmaListener {
    /// Binds a service id on the NIC's node.
    ///
    /// # Panics
    /// Panics if the port is already bound.
    pub fn bind(nic: &RNic, port: u16) -> RdmaListener {
        let registry = Registry::get(&nic.node().fabric);
        let (tx, rx) = mpsc::unbounded();
        let gen = next_bind_gen();
        let prev = registry
            .cm_listeners
            .borrow_mut()
            .insert((nic.node().id, port), (gen, tx));
        assert!(prev.is_none(), "rdma port {port} already bound");
        RdmaListener {
            nic: nic.clone(),
            port,
            gen,
            incoming: rx,
        }
    }

    pub fn port(&self) -> u16 {
        self.port
    }

    /// Waits for the next inbound connection request.
    pub async fn accept(&mut self) -> Option<IncomingConnection> {
        self.incoming
            .recv()
            .await
            .map(|request| IncomingConnection { request })
    }
}

impl Drop for RdmaListener {
    fn drop(&mut self) {
        // Remove the slot only if it is still OUR bind: after a force
        // `unbind` the service id may have been re-bound by a restarted
        // broker before this stale listener unwound, and evicting the
        // successor would refuse every future connect to the port.
        let registry = Registry::get(&self.nic.node().fabric);
        let mut map = registry.cm_listeners.borrow_mut();
        if map
            .get(&(self.nic.node().id, self.port))
            .is_some_and(|(gen, _)| *gen == self.gen)
        {
            map.remove(&(self.nic.node().id, self.port));
        }
    }
}

/// Force-unbinds a listening service id from the outside (fault injection:
/// a crashed broker's CM teardown happens even though the accept loop still
/// owns the [`RdmaListener`]). New connects are refused immediately, and
/// once transient senders drop, the owner's `accept()` returns `None` so
/// its loop exits. The eventual `Drop` is an idempotent no-op.
pub fn unbind(nic: &RNic, port: u16) -> bool {
    let registry = Registry::get(&nic.node().fabric);
    let removed = registry
        .cm_listeners
        .borrow_mut()
        .remove(&(nic.node().id, port));
    removed.is_some()
}

impl RNic {
    /// Connects to an [`RdmaListener`] at `(dst, port)`, paying connection
    /// setup latency. Returns the initiator-side endpoint once accepted.
    pub async fn connect(
        &self,
        dst: NodeId,
        port: u16,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        opts: QpOptions,
    ) -> Result<QueuePair, RdmaConnectError> {
        let registry = Registry::get(&self.node().fabric);
        let slot = registry
            .cm_listeners
            .borrow()
            .get(&(dst, port))
            .map(|(_, tx)| tx.clone());
        let slot = slot.ok_or(RdmaConnectError::ConnectionRefused)?;
        // QP attribute exchange happens over TCP in real deployments.
        sim::time::sleep(self.node().profile().net.tcp_connect).await;
        let (reply_tx, reply_rx) = oneshot::channel();
        slot.try_send(ConnRequest {
            from: self.node().id,
            reply: reply_tx,
            initiator_cqs: (send_cq, recv_cq),
            initiator_opts: opts,
            initiator_nic: self.clone(),
        })
        .map_err(|_| RdmaConnectError::ConnectionRefused)?;
        reply_rx.await.map_err(|_| RdmaConnectError::Rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr::{Access, ShmBuf};
    use crate::verbs::{RecvWr, SendWr, WorkRequest};
    use netsim::profile::Profile;
    use netsim::Fabric;

    #[test]
    fn connect_and_write() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::testbed());
            let na = f.add_node("a");
            let nb = f.add_node("b");
            let nic_a = RNic::new(&na);
            let nic_b = RNic::new(&nb);
            let mut listener = RdmaListener::bind(&nic_b, 1);
            let b_send = nic_b.create_cq(16);
            let b_recv = nic_b.create_cq(16);
            let nic_b2 = nic_b.clone();
            let accept = sim::spawn(async move {
                let inc = listener.accept().await.unwrap();
                assert_eq!(inc.from(), netsim::NodeId(0));
                inc.accept(&nic_b2, b_send, b_recv, QpOptions::default())
            });
            let a_send = nic_a.create_cq(16);
            let a_recv = nic_a.create_cq(16);
            let qp_a = nic_a
                .connect(nb.id, 1, a_send.clone(), a_recv, QpOptions::default())
                .await
                .unwrap();
            let _qp_b = accept.await.unwrap();

            // One-sided write into b's registered memory.
            let target = ShmBuf::zeroed(64);
            let mr = nic_b.reg_mr(target.clone(), Access::all());
            let src = ShmBuf::from_vec(vec![7u8; 16]);
            qp_a.post_send(SendWr::new(
                1,
                WorkRequest::Write {
                    local: src.as_slice(),
                    remote_addr: mr.addr() + 8,
                    rkey: mr.rkey(),
                },
            ))
            .unwrap();
            let cqe = a_send.next().await.unwrap();
            assert!(cqe.ok());
            assert_eq!(target.read_at(8, 16), vec![7u8; 16]);
            assert_eq!(target.read_at(0, 8), vec![0u8; 8]);
            assert_eq!(nic_b.stats().writes_in, 1);
        });
    }

    #[test]
    fn refused_without_listener() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let na = f.add_node("a");
            let nb = f.add_node("b");
            let nic_a = RNic::new(&na);
            let _nic_b = RNic::new(&nb);
            let cq1 = nic_a.create_cq(4);
            let cq2 = nic_a.create_cq(4);
            let err = nic_a
                .connect(nb.id, 99, cq1, cq2, QpOptions::default())
                .await
                .err();
            assert_eq!(err, Some(RdmaConnectError::ConnectionRefused));
        });
    }

    #[test]
    fn reject_surfaces() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let na = f.add_node("a");
            let nb = f.add_node("b");
            let nic_a = RNic::new(&na);
            let nic_b = RNic::new(&nb);
            let mut listener = RdmaListener::bind(&nic_b, 1);
            sim::spawn(async move {
                listener.accept().await.unwrap().reject();
            });
            let cq1 = nic_a.create_cq(4);
            let cq2 = nic_a.create_cq(4);
            let err = nic_a
                .connect(nb.id, 1, cq1, cq2, QpOptions::default())
                .await
                .err();
            assert_eq!(err, Some(RdmaConnectError::Rejected));
        });
    }

    async fn connected_pair(
        f: &Fabric,
        a_opts: QpOptions,
        b_opts: QpOptions,
    ) -> (QueuePair, QueuePair, CompletionQueue, CompletionQueue) {
        let na = f.add_node("a");
        let nb = f.add_node("b");
        let nic_a = RNic::new(&na);
        let nic_b = RNic::new(&nb);
        let mut listener = RdmaListener::bind(&nic_b, 1);
        let b_send = nic_b.create_cq(16);
        let b_recv = nic_b.create_cq(16);
        let nic_b2 = nic_b.clone();
        let b_recv2 = b_recv.clone();
        let accept = sim::spawn(async move {
            let inc = listener.accept().await.unwrap();
            inc.accept(&nic_b2, b_send, b_recv2, b_opts)
        });
        let a_send = nic_a.create_cq(16);
        let a_recv = nic_a.create_cq(16);
        let qp_a = nic_a
            .connect(nb.id, 1, a_send.clone(), a_recv, a_opts)
            .await
            .unwrap();
        let qp_b = accept.await.unwrap();
        (qp_a, qp_b, a_send, b_recv)
    }

    #[test]
    fn unbind_refuses_connects_and_wakes_accept() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let na = f.add_node("a");
            let nb = f.add_node("b");
            let nic_a = RNic::new(&na);
            let nic_b = RNic::new(&nb);
            let mut listener = RdmaListener::bind(&nic_b, 7);
            let accepts = sim::spawn(async move {
                let mut n = 0;
                while listener.accept().await.is_some() {
                    n += 1;
                }
                n
            });
            assert!(unbind(&nic_b, 7), "was bound");
            assert!(!unbind(&nic_b, 7), "idempotent");
            let cq1 = nic_a.create_cq(4);
            let cq2 = nic_a.create_cq(4);
            let err = nic_a
                .connect(nb.id, 7, cq1, cq2, QpOptions::default())
                .await
                .err();
            assert_eq!(err, Some(RdmaConnectError::ConnectionRefused));
            assert_eq!(accepts.await.unwrap(), 0);
        });
    }

    #[test]
    fn injected_cq_overflow_fails_attached_qps() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let (qp_a, qp_b, a_send, b_recv) =
                connected_pair(&f, QpOptions::default(), QpOptions::default()).await;
            assert!(qp_b.is_alive());
            b_recv.inject_overflow();
            assert!(b_recv.overflowed());
            assert!(!qp_b.is_alive(), "attached QP must fail");
            assert!(!qp_a.is_alive(), "RC peer observes the disconnect");
            drop(a_send);
        });
    }

    #[test]
    fn rnr_storm_delays_delivery_until_it_passes() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let (qp_a, qp_b, a_send, b_recv) =
                connected_pair(&f, QpOptions::default(), QpOptions::default()).await;
            let storm = std::time::Duration::from_millis(2);
            let storm_end = sim::now() + storm;
            qp_b.inject_rnr_storm(storm);
            // The receive is posted, but the storm hides it.
            let rbuf = ShmBuf::zeroed(16);
            qp_b.post_recv(RecvWr {
                wr_id: 1,
                buf: Some(rbuf.as_slice()),
            })
            .unwrap();
            qp_a.post_send(SendWr::new(
                2,
                WorkRequest::Send {
                    local: ShmBuf::from_vec(b"x".to_vec()).as_slice(),
                },
            ))
            .unwrap();
            let rc = b_recv.next().await.unwrap();
            assert!(rc.ok());
            assert!(
                sim::now() >= storm_end,
                "delivery happened mid-storm at {:?}",
                sim::now()
            );
            let sc = a_send.next().await.unwrap();
            assert!(sc.ok());
        });
    }

    #[test]
    fn rnr_storm_exhausts_bounded_rnr_timeout() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let a_opts = QpOptions {
                rnr_timeout: Some(std::time::Duration::from_micros(100)),
                ..QpOptions::default()
            };
            let (qp_a, qp_b, a_send, _b_recv) =
                connected_pair(&f, a_opts, QpOptions::default()).await;
            qp_b.inject_rnr_storm(std::time::Duration::from_millis(10));
            qp_a.post_send(SendWr::new(
                3,
                WorkRequest::Send {
                    local: ShmBuf::from_vec(b"x".to_vec()).as_slice(),
                },
            ))
            .unwrap();
            let sc = a_send.next().await.unwrap();
            assert_eq!(sc.status, crate::verbs::CqStatus::RnrRetryExceeded);
        });
    }

    #[test]
    #[should_panic(expected = "receive queue overflow (max_recv_wr=2)")]
    fn post_recv_enforces_capacity() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let opts = QpOptions {
                max_recv_wr: 2,
                ..QpOptions::default()
            };
            let (_qp_a, qp_b, _a_send, _b_recv) =
                connected_pair(&f, QpOptions::default(), opts).await;
            for i in 0..3 {
                qp_b.post_recv(RecvWr { wr_id: i, buf: None }).unwrap();
            }
        });
    }

    #[test]
    #[should_panic(expected = "receive queue overflow (max_recv_wr=2)")]
    fn post_recv_list_enforces_same_capacity_bound() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::fast_test());
            let opts = QpOptions {
                max_recv_wr: 2,
                ..QpOptions::default()
            };
            let (_qp_a, qp_b, _a_send, _b_recv) =
                connected_pair(&f, QpOptions::default(), opts).await;
            // A chained list must hit exactly the bound a loop of single
            // posts would: the third WR overflows.
            qp_b.post_recv_list((0..3).map(|i| RecvWr { wr_id: i, buf: None }))
                .unwrap();
        });
    }

    #[test]
    fn send_recv_roundtrip_with_recv() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::testbed());
            let na = f.add_node("a");
            let nb = f.add_node("b");
            let nic_a = RNic::new(&na);
            let nic_b = RNic::new(&nb);
            let mut listener = RdmaListener::bind(&nic_b, 1);
            let b_send = nic_b.create_cq(16);
            let b_recv = nic_b.create_cq(16);
            let nic_b2 = nic_b.clone();
            let b_recv2 = b_recv.clone();
            let accept = sim::spawn(async move {
                let inc = listener.accept().await.unwrap();
                inc.accept(&nic_b2, b_send, b_recv2, QpOptions::default())
            });
            let a_send = nic_a.create_cq(16);
            let a_recv = nic_a.create_cq(16);
            let qp_a = nic_a
                .connect(nb.id, 1, a_send.clone(), a_recv, QpOptions::default())
                .await
                .unwrap();
            let qp_b = accept.await.unwrap();

            let rbuf = ShmBuf::zeroed(32);
            qp_b.post_recv(RecvWr {
                wr_id: 77,
                buf: Some(rbuf.as_slice()),
            })
            .unwrap();
            qp_a.post_send(SendWr::new(
                5,
                WorkRequest::Send {
                    local: ShmBuf::from_vec(b"ping".to_vec()).as_slice(),
                },
            ))
            .unwrap();
            let rc = b_recv.next().await.unwrap();
            assert!(rc.ok());
            assert_eq!(rc.wr_id, 77);
            assert_eq!(rc.byte_len, 4);
            assert_eq!(rbuf.read_at(0, 4), b"ping".to_vec());
            let sc = a_send.next().await.unwrap();
            assert!(sc.ok());
        });
    }
}
