//! Reliably-connected queue pairs.
//!
//! Each posted work request is simulated by its own task, but two FIFO
//! ticket chains per QP enforce the RC ordering guarantees the paper's
//! protocols depend on (§4.1, §4.2.2):
//!
//! * the **delivery chain** — remote effects (memory writes, receive
//!   consumption, atomics) happen strictly in post order;
//! * the **completion chain** — initiator completions are delivered to the
//!   send CQ strictly in post order.
//!
//! Timing comes from the fabric's link reservations, made synchronously at
//! post time (the NIC pipelines; the link model serialises).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::{Rc, Weak};
use std::time::Duration;

use netsim::NodeId;
use sim::sync::Notify;
use sim::SimTime;

use crate::cq::CompletionQueue;
use crate::mr::{Access, BufSlice, MrInner};
use crate::nic::{NicInner, WQE_BYTES};
use crate::srq::Srq;
use crate::verbs::{CqOpcode, CqStatus, Cqe, PostError, RecvWr, SendWr, WorkRequest};

/// QP configuration.
#[derive(Debug, Clone)]
pub struct QpOptions {
    /// How long a Send/WriteWithImm waits for the receiver to post a receive
    /// before failing with `RnrRetryExceeded`. `None` waits forever
    /// (infinite RNR retry, the common datacenter setting).
    pub rnr_timeout: Option<Duration>,
    /// Receive-queue depth: posting more receives than this panics (it is a
    /// program bug in the simulation, not a runtime condition).
    pub max_recv_wr: usize,
    /// Attach this endpoint to a shared receive queue: incoming
    /// Send/WriteWithImm consume the SRQ's buffers instead of a per-QP
    /// receive queue (posting per-QP receives on such an endpoint is a
    /// bug and panics). Completions still land in this QP's receive CQ
    /// with this QP's number.
    pub srq: Option<Srq>,
    /// DCT-style multiplexed endpoint: this logical connection borrows a
    /// QP from a small lent pool instead of pinning its own NIC context,
    /// so it does not count toward the device's QP-context cache
    /// footprint (the pool pins its contexts once — see
    /// [`MuxPool`](crate::MuxPool)).
    pub multiplexed: bool,
}

impl Default for QpOptions {
    fn default() -> Self {
        QpOptions {
            rnr_timeout: None,
            max_recv_wr: 4096,
            srq: None,
            multiplexed: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QpState {
    Connected,
    Error,
}

struct Chain {
    done: Cell<u64>,
    /// Parked wakers by ticket. Advancing wakes only the next ticket's
    /// task: with a deep post list in flight, a broadcast here is O(k²)
    /// spurious polls per chain of k WRs (every advance wakes every
    /// waiter), which dominated executor polls once senders started
    /// doorbell-batching.
    waiters: RefCell<Vec<(u64, std::task::Waker)>>,
}

impl Chain {
    fn new() -> Self {
        Chain {
            done: Cell::new(0),
            waiters: RefCell::new(Vec::new()),
        }
    }

    async fn wait_turn(&self, ticket: u64) {
        std::future::poll_fn(|cx| {
            if self.done.get() >= ticket {
                return std::task::Poll::Ready(());
            }
            let mut ws = self.waiters.borrow_mut();
            if let Some(slot) = ws.iter_mut().find(|(t, _)| *t == ticket) {
                slot.1.clone_from(cx.waker());
            } else {
                ws.push((ticket, cx.waker().clone()));
            }
            std::task::Poll::Pending
        })
        .await;
    }

    fn advance(&self, ticket: u64) {
        debug_assert_eq!(self.done.get(), ticket);
        let next = ticket + 1;
        self.done.set(next);
        let woken = {
            let mut ws = self.waiters.borrow_mut();
            ws.iter()
                .position(|(t, _)| *t <= next)
                .map(|i| ws.swap_remove(i).1)
        };
        if let Some(w) = woken {
            w.wake();
        }
    }

    /// Wakes every parked task (QP teardown). Liveness does not depend on
    /// this — `run_wr` advances the chain even on a dead QP — it only
    /// hurries the flush along, as the old broadcast did.
    fn wake_all(&self) {
        let ws = std::mem::take(&mut *self.waiters.borrow_mut());
        for (_, w) in ws {
            w.wake();
        }
    }
}

pub(crate) struct QpShared {
    pub(crate) qpn: u32,
    nic: Rc<NicInner>,
    peer: RefCell<Weak<QpShared>>,
    state: Cell<QpState>,
    send_cq: CompletionQueue,
    recv_cq: CompletionQueue,
    recv_queue: RefCell<VecDeque<RecvWr>>,
    recv_posted: Notify,
    opts: QpOptions,
    next_ticket: Cell<u64>,
    delivery: Chain,
    completion: Chain,
    error_notify: Notify,
    /// Fault injection: posted receives on this endpoint are invisible to
    /// the peer until this virtual time — a receiver-not-ready storm.
    rnr_storm_until: Cell<Option<SimTime>>,
}

impl QpShared {
    fn new(
        qpn: u32,
        nic: Rc<NicInner>,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        opts: QpOptions,
    ) -> Rc<QpShared> {
        if !opts.multiplexed {
            nic.pin_contexts(1);
        }
        let qp = Rc::new(QpShared {
            qpn,
            nic,
            peer: RefCell::new(Weak::new()),
            state: Cell::new(QpState::Connected),
            send_cq: send_cq.clone(),
            recv_cq: recv_cq.clone(),
            recv_queue: RefCell::new(VecDeque::new()),
            recv_posted: Notify::new(),
            opts,
            next_ticket: Cell::new(0),
            delivery: Chain::new(),
            completion: Chain::new(),
            error_notify: Notify::new(),
            rnr_storm_until: Cell::new(None),
        });
        send_cq.attach(&qp);
        recv_cq.attach(&qp);
        qp
    }

    fn peer(&self) -> Option<Rc<QpShared>> {
        self.peer.borrow().upgrade()
    }

    fn is_alive(&self) -> bool {
        self.state.get() == QpState::Connected
    }

    /// Transitions this QP (and its peer) to the error state, flushing
    /// posted receives.
    pub(crate) fn fail(qp: &Rc<QpShared>, status: CqStatus) {
        if qp.state.get() == QpState::Error {
            return;
        }
        qp.state.set(QpState::Error);
        if !qp.opts.multiplexed {
            qp.nic.unpin_contexts(1);
        }
        // Flush posted receives. Only this QP's own queue: buffers on an
        // attached SRQ belong to the SRQ and stay available to every
        // other attached QP — an error flush must not strand them.
        let recvs: Vec<RecvWr> = qp.recv_queue.borrow_mut().drain(..).collect();
        for wr in recvs {
            qp.nic
                .recv_buf_sub(WQE_BYTES + wr.buf.as_ref().map_or(0, |b| b.len() as u64));
            qp.recv_cq.push(Cqe {
                wr_id: wr.wr_id,
                qpn: qp.qpn,
                status: CqStatus::FlushError,
                opcode: CqOpcode::Recv,
                byte_len: 0,
                imm: None,
                atomic_old: None,
                trace: None,
            });
        }
        let _ = status;
        qp.recv_posted.notify_waiters();
        qp.delivery.wake_all();
        qp.completion.wake_all();
        qp.error_notify.notify_waiters();
        if let Some(peer) = qp.peer() {
            QpShared::fail(&peer, CqStatus::FlushError);
        }
    }

    fn pop_recv(&self) -> Option<RecvWr> {
        if let Some(srq) = &self.opts.srq {
            return srq.pop();
        }
        let wr = self.recv_queue.borrow_mut().pop_front();
        if let Some(wr) = &wr {
            self.nic
                .recv_buf_sub(WQE_BYTES + wr.buf.as_ref().map_or(0, |b| b.len() as u64));
        }
        wr
    }

    /// The notify a sender parks on while this endpoint has no receive
    /// posted: the attached SRQ's, or this QP's own.
    fn recv_notify(&self) -> &Notify {
        match &self.opts.srq {
            Some(srq) => &srq.inner.posted_notify,
            None => &self.recv_posted,
        }
    }
}

/// One endpoint of a reliably-connected queue pair.
#[derive(Clone)]
pub struct QueuePair {
    pub(crate) shared: Rc<QpShared>,
}

impl QueuePair {
    pub(crate) fn create_connected_pair(
        a_nic: &Rc<NicInner>,
        b_nic: &Rc<NicInner>,
        a_cqs: (CompletionQueue, CompletionQueue),
        b_cqs: (CompletionQueue, CompletionQueue),
        a_opts: QpOptions,
        b_opts: QpOptions,
    ) -> (QueuePair, QueuePair) {
        let registry = &a_nic.registry;
        let a = QpShared::new(
            registry.alloc_qpn(),
            Rc::clone(a_nic),
            a_cqs.0,
            a_cqs.1,
            a_opts,
        );
        let b = QpShared::new(
            registry.alloc_qpn(),
            Rc::clone(b_nic),
            b_cqs.0,
            b_cqs.1,
            b_opts,
        );
        *a.peer.borrow_mut() = Rc::downgrade(&b);
        *b.peer.borrow_mut() = Rc::downgrade(&a);
        (QueuePair { shared: a }, QueuePair { shared: b })
    }

    /// QP number (used to demultiplex completions on shared CQs).
    pub fn qpn(&self) -> u32 {
        self.shared.qpn
    }

    /// Node this endpoint lives on.
    pub fn local_node(&self) -> NodeId {
        self.shared.nic.node.id
    }

    /// Node of the remote endpoint (if still connected).
    pub fn remote_node(&self) -> Option<NodeId> {
        self.shared.peer().map(|p| p.nic.node.id)
    }

    pub fn is_alive(&self) -> bool {
        self.shared.is_alive()
    }

    /// Resolves when the QP enters the error state (peer failure/close) —
    /// §4.2.2: "Client failure can be detected from QP disconnection
    /// events."
    pub async fn disconnected(&self) {
        while self.shared.is_alive() {
            self.shared.error_notify.notified().await;
        }
    }

    /// Tears the connection down; the peer observes a disconnect.
    pub fn close(&self) {
        QpShared::fail(&self.shared, CqStatus::FlushError);
    }

    /// Fault injection: receiver-not-ready storm. For `duration` (virtual
    /// time), receives posted on *this* endpoint are invisible to the peer,
    /// so the peer's Send/WriteWithImm stall in RNR retry — and fail with
    /// `RnrRetryExceeded` if their [`QpOptions::rnr_timeout`] elapses first
    /// (§4.3.2's slow-follower scenario on demand).
    pub fn inject_rnr_storm(&self, duration: Duration) {
        self.shared.rnr_storm_until.set(Some(sim::now() + duration));
    }

    /// Posts a receive work request (`ibv_post_recv`).
    pub fn post_recv(&self, wr: RecvWr) -> Result<(), PostError> {
        if !self.shared.is_alive() {
            return Err(PostError::QpError);
        }
        assert!(
            self.shared.opts.srq.is_none(),
            "post_recv on an SRQ-attached QP: post to the SRQ instead"
        );
        let mut q = self.shared.recv_queue.borrow_mut();
        assert!(
            q.len() < self.shared.opts.max_recv_wr,
            "receive queue overflow (max_recv_wr={})",
            self.shared.opts.max_recv_wr
        );
        self.shared
            .nic
            .recv_buf_add(WQE_BYTES + wr.buf.as_ref().map_or(0, |b| b.len() as u64));
        q.push_back(wr);
        drop(q);
        self.shared.recv_posted.notify_one();
        Ok(())
    }

    /// Posts a list of receive work requests (`ibv_post_recv` with a chained
    /// WR list): one receive-queue lock for the whole chain. Receives carry
    /// no initiator timing, so the only difference from repeated
    /// [`post_recv`](Self::post_recv) calls is the amortised bookkeeping.
    pub fn post_recv_list(&self, wrs: impl IntoIterator<Item = RecvWr>) -> Result<(), PostError> {
        if !self.shared.is_alive() {
            return Err(PostError::QpError);
        }
        assert!(
            self.shared.opts.srq.is_none(),
            "post_recv_list on an SRQ-attached QP: post to the SRQ instead"
        );
        let mut posted = 0usize;
        {
            let mut q = self.shared.recv_queue.borrow_mut();
            for wr in wrs {
                assert!(
                    q.len() < self.shared.opts.max_recv_wr,
                    "receive queue overflow (max_recv_wr={})",
                    self.shared.opts.max_recv_wr
                );
                self.shared
                    .nic
                    .recv_buf_add(WQE_BYTES + wr.buf.as_ref().map_or(0, |b| b.len() as u64));
                q.push_back(wr);
                posted += 1;
            }
        }
        // One permit per WR: each may satisfy a distinct RNR waiter.
        for _ in 0..posted {
            self.shared.recv_posted.notify_one();
        }
        Ok(())
    }

    /// Posts a chained send WR list (`ibv_post_send` postlist): the head WR
    /// pays the full doorbell/WQE-fetch overhead, each linked WR only the
    /// marginal `doorbell_overhead` — the initiator-side amortisation real
    /// verbs applications batch for. Requests execute remotely in list
    /// order; a one-element list is exactly [`post_send`](Self::post_send).
    ///
    /// A chain of two or more WRs runs on one simulation task (`run_wr_chain`)
    /// instead of one task per WR: the chain holds consecutive tickets on
    /// both FIFO chains, so a single task stepping through them in order
    /// produces the same remote effects and CQEs at the same virtual times,
    /// without per-WR park/wake churn.
    pub fn post_send_list(&self, wrs: impl IntoIterator<Item = SendWr>) -> Result<(), PostError> {
        if !self.shared.is_alive() {
            return Err(PostError::QpError);
        }
        let peer = self.shared.peer().ok_or(PostError::QpError)?;
        let doorbell = self.shared.nic.node.fabric.profile().net.doorbell_overhead;
        let mut extra = Duration::ZERO;
        let mut prepared: Vec<(SendWr, u64, Timing)> = Vec::new();
        for (i, wr) in wrs.into_iter().enumerate() {
            if i > 0 {
                extra += doorbell;
            }
            prepared.push(self.prepare(wr, &peer, extra));
        }
        match prepared.len() {
            0 => {}
            1 => {
                let (wr, ticket, timing) = prepared.pop().unwrap();
                let qp = Rc::clone(&self.shared);
                sim::spawn_detached(async move {
                    run_wr(qp, peer, wr, ticket, timing).await;
                });
            }
            _ => {
                let qp = Rc::clone(&self.shared);
                sim::spawn_detached(async move {
                    run_wr_chain(qp, peer, prepared).await;
                });
            }
        }
        Ok(())
    }

    /// Posts a single send work request — the one-doorbell-per-WR entry
    /// point; see [`post_send_list`](Self::post_send_list) for chains.
    pub fn post_send(&self, wr: SendWr) -> Result<(), PostError> {
        if !self.shared.is_alive() {
            return Err(PostError::QpError);
        }
        let peer = self.shared.peer().ok_or(PostError::QpError)?;
        let (wr, ticket, timing) = self.prepare(wr, &peer, Duration::ZERO);
        let qp = Rc::clone(&self.shared);
        sim::spawn_detached(async move {
            run_wr(qp, peer, wr, ticket, timing).await;
        });
        Ok(())
    }

    /// Allocates a ticket and computes the timing of `wr` against the
    /// fabric (all link reservations commit now, at post time). `extra_post`
    /// delays the doorbell/WQE fetch — the position-dependent cost of a
    /// linked WR in a posted list.
    fn prepare(&self, wr: SendWr, peer: &Rc<QpShared>, extra_post: Duration) -> (SendWr, u64, Timing) {
        let qp = &self.shared;
        let ticket = qp.next_ticket.get();
        qp.next_ticket.set(ticket + 1);
        qp.nic.qp_posts.inc();
        let posted = sim::now();
        if let Some(ctx) = wr.trace {
            qp.nic.telem.record_trace_event(
                ctx,
                posted.as_nanos(),
                kdtelem::EventKind::WqePosted {
                    qpn: qp.qpn,
                    ticket,
                },
            );
        }
        // The reservation calls below are synchronous, so the ambient trace
        // context is sound here: the fabric tags each link hop it reserves
        // with this WR's lifeline.
        let _trace_scope = wr.trace.map(kdtelem::enter_ctx);

        let fabric = qp.nic.node.fabric.clone();
        let profile = fabric.profile();
        let net = &profile.net;
        let src = qp.nic.node.id;
        let dst = peer.nic.node.id;

        // All link reservations are committed now (post time): the NIC
        // pipelines WRs and the links serialise them. Each endpoint's
        // per-op gap widens by its NIC's QP-context cache miss penalty —
        // occupancy, not latency, so past the connection-count knee the
        // affected port's aggregate op rate collapses (RDMAvisor §2).
        let src_gap = net.rdma_min_op_gap + qp.nic.cache_penalty(net);
        let dst_gap = net.rdma_min_op_gap + peer.nic.cache_penalty(net);
        let post_done = sim::now() + net.rdma_post_overhead + extra_post;
        let req_arrival = fabric.reserve_path_with(
            post_done,
            src,
            dst,
            wr.op.request_bytes(),
            src_gap,
            dst_gap,
        );
        let timing = match &wr.op {
            WorkRequest::CompareSwap { remote_addr, .. }
            | WorkRequest::FetchAdd { remote_addr, .. } => {
                let exec = fabric.reserve_atomic(dst, *remote_addr, req_arrival);
                let resp = fabric.reserve_path_with(
                    exec,
                    dst,
                    src,
                    wr.op.response_bytes(),
                    dst_gap,
                    src_gap,
                );
                Timing {
                    posted,
                    req_arrival,
                    exec,
                    comp: resp + net.rdma_completion_overhead,
                }
            }
            WorkRequest::Read { .. } => {
                let exec = req_arrival + net.read_response_overhead;
                let resp = fabric.reserve_path_with(
                    exec,
                    dst,
                    src,
                    wr.op.response_bytes(),
                    dst_gap,
                    src_gap,
                );
                Timing {
                    posted,
                    req_arrival,
                    exec,
                    comp: resp + net.rdma_completion_overhead,
                }
            }
            _ => Timing {
                posted,
                req_arrival,
                exec: req_arrival,
                // Hardware ack + initiator CQE.
                comp: req_arrival + net.propagation + net.rdma_completion_overhead,
            },
        };

        (wr, ticket, timing)
    }
}

#[derive(Clone, Copy)]
struct Timing {
    /// When the initiator posted the work request.
    posted: SimTime,
    /// When the request fully arrives at the responder.
    req_arrival: SimTime,
    /// When the responder executes it (atomics serialise; reads pay the DMA
    /// fetch).
    exec: SimTime,
    /// When the initiator completion is visible.
    comp: SimTime,
}

async fn run_wr(qp: Rc<QpShared>, peer: Rc<QpShared>, wr: SendWr, ticket: u64, t: Timing) {
    qp.delivery.wait_turn(ticket).await;

    if !qp.is_alive() {
        qp.delivery.advance(ticket);
        complete(&qp, &wr, ticket, CqStatus::FlushError, 0, None).await;
        return;
    }

    sim::time::sleep_until(t.req_arrival).await;

    // Execute the remote effect.
    let outcome = execute_remote(&qp, &peer, &wr, t).await;

    qp.delivery.advance(ticket);

    let (status, old) = match outcome {
        Ok(old) => (CqStatus::Success, old),
        Err(status) => {
            // Access/protocol errors break the connection (RC semantics).
            QpShared::fail(&qp, status);
            (status, None)
        }
    };

    // Response / ack travel time. An unsignaled success produces no
    // initiator CQE — nothing observable happens at `comp`, so the task
    // does not stay alive just to sleep until then. The completion chain
    // still advances in ticket order, and a later signaled WR waits for
    // its own `comp` before pushing its CQE, so CQE times are unchanged.
    if status != CqStatus::Success || wr.signaled {
        sim::time::sleep_until(t.comp).await;
    }
    if status == CqStatus::Success && wr.signaled {
        qp.nic
            .post_to_comp_ns
            .record(t.comp.saturating_since(t.posted).as_nanos() as u64);
    }
    let byte_len = wr.op.request_bytes().max(wr.op.response_bytes()) as u32;
    complete(&qp, &wr, ticket, status, byte_len, old).await;
}

/// A completion owed by a chain runner, delivered strictly in ticket order.
struct PendingComp {
    wr: SendWr,
    ticket: u64,
    status: CqStatus,
    byte_len: u32,
    old: Option<u64>,
    /// CQE delivery time for signaled/failed WRs; `None` for unsignaled
    /// successes (no CQE — complete as soon as predecessors have).
    due: Option<SimTime>,
    posted: SimTime,
}

/// Completes owed CQEs from the front of `pending`, in ticket order.
/// Immediate entries (`due == None`) complete without sleeping; timed
/// entries sleep to their delivery time first. With `horizon` set, timed
/// entries due after it stay queued (they belong after the caller's next
/// arrival); with `None` everything flushes.
async fn flush_comps(qp: &Rc<QpShared>, pending: &mut VecDeque<PendingComp>, horizon: Option<SimTime>) {
    while let Some(front) = pending.front() {
        if let (Some(due), Some(h)) = (front.due, horizon) {
            if due > h {
                break;
            }
        }
        let c = pending.pop_front().unwrap();
        if let Some(due) = c.due {
            sim::time::sleep_until(due).await;
        }
        if c.status == CqStatus::Success && c.wr.signaled {
            qp.nic
                .post_to_comp_ns
                .record(c.due.unwrap_or(c.posted).saturating_since(c.posted).as_nanos() as u64);
        }
        complete(qp, &c.wr, c.ticket, c.status, c.byte_len, c.old).await;
    }
}

/// Runs a whole posted WR list on one task. The list owns consecutive
/// tickets on both FIFO chains, so stepping through it in order replicates
/// the per-task path: each WR's remote effect lands at its reserved
/// `req_arrival`, the delivery chain advances per WR, and completions are
/// deferred through [`flush_comps`] so CQEs still surface in ticket order at
/// their reserved times. What the merge removes is the per-WR park/wake on
/// the two chains — the executor-poll churn doorbell batching exists to
/// amortise.
async fn run_wr_chain(qp: Rc<QpShared>, peer: Rc<QpShared>, items: Vec<(SendWr, u64, Timing)>) {
    let mut pending: VecDeque<PendingComp> = VecDeque::with_capacity(items.len());
    let first_ticket = items[0].1;
    qp.delivery.wait_turn(first_ticket).await;
    for (wr, ticket, t) in items {
        if !qp.is_alive() {
            // Same as the per-task path: advance and owe an immediate flush
            // completion, no sleeps.
            qp.delivery.advance(ticket);
            pending.push_back(PendingComp {
                wr,
                ticket,
                status: CqStatus::FlushError,
                byte_len: 0,
                old: None,
                due: None,
                posted: t.posted,
            });
            continue;
        }
        // Deliver CQEs that fall before this WR's arrival while the wire is
        // "in flight" — exactly when their stand-alone tasks would have.
        flush_comps(&qp, &mut pending, Some(t.req_arrival)).await;
        sim::time::sleep_until(t.req_arrival).await;
        let outcome = execute_remote(&qp, &peer, &wr, t).await;
        qp.delivery.advance(ticket);
        let (status, old) = match outcome {
            Ok(old) => (CqStatus::Success, old),
            Err(status) => {
                QpShared::fail(&qp, status);
                (status, None)
            }
        };
        let byte_len = wr.op.request_bytes().max(wr.op.response_bytes()) as u32;
        let due = if status != CqStatus::Success || wr.signaled {
            Some(t.comp)
        } else {
            None
        };
        pending.push_back(PendingComp {
            wr,
            ticket,
            status,
            byte_len,
            old,
            due,
            posted: t.posted,
        });
        // Unsignaled successes complete right after advancing delivery on
        // the per-task path; match that whenever nothing timed is owed
        // ahead of them.
        flush_comps(&qp, &mut pending, Some(sim::now())).await;
    }
    flush_comps(&qp, &mut pending, None).await;
}

async fn complete(
    qp: &Rc<QpShared>,
    wr: &SendWr,
    ticket: u64,
    status: CqStatus,
    byte_len: u32,
    atomic_old: Option<u64>,
) {
    qp.completion.wait_turn(ticket).await;
    if wr.signaled || status != CqStatus::Success {
        if let Some(ctx) = wr.trace {
            qp.nic.telem.trace_event_now(
                ctx,
                kdtelem::EventKind::Completion {
                    qpn: qp.qpn,
                    ticket,
                    opcode: wr.op.opcode_name(),
                    ok: status.is_ok(),
                },
            );
        }
        qp.send_cq.push(Cqe {
            wr_id: wr.wr_id,
            qpn: qp.qpn,
            status,
            opcode: wr.op.opcode(),
            byte_len,
            imm: None,
            atomic_old,
            trace: wr.trace,
        });
    }
    qp.completion.advance(ticket);
}

/// Validates and applies the remote effect of `wr`. Returns the old value
/// for atomics.
async fn execute_remote(
    qp: &Rc<QpShared>,
    peer: &Rc<QpShared>,
    wr: &SendWr,
    t: Timing,
) -> Result<Option<u64>, CqStatus> {
    if !peer.is_alive() {
        return Err(CqStatus::FlushError);
    }
    match &wr.op {
        WorkRequest::Write {
            local,
            remote_addr,
            rkey,
        } => {
            let mr = check_remote(peer, *rkey, *remote_addr, local.len() as u64, Access::REMOTE_WRITE)?;
            write_region(&mr, *remote_addr, local);
            peer.nic.writes_in.set(peer.nic.writes_in.get() + 1);
            peer.nic.one_sided_in.inc();
            Ok(None)
        }
        WorkRequest::WriteImm {
            local,
            remote_addr,
            rkey,
            imm,
        } => {
            let mr = check_remote(peer, *rkey, *remote_addr, local.len() as u64, Access::REMOTE_WRITE)?;
            write_region(&mr, *remote_addr, local);
            peer.nic.writes_in.set(peer.nic.writes_in.get() + 1);
            peer.nic.one_sided_in.inc();
            let recv = wait_recv(qp, peer).await?;
            peer.recv_cq.push(Cqe {
                wr_id: recv.wr_id,
                qpn: peer.qpn,
                status: CqStatus::Success,
                opcode: CqOpcode::RecvRdmaWithImm,
                byte_len: local.len() as u32,
                imm: Some(*imm),
                atomic_old: None,
                // WR context crosses to the target with the notification —
                // the immediate stays free for the file-ID/order word.
                trace: wr.trace,
            });
            Ok(None)
        }
        WorkRequest::Send { local } | WorkRequest::SendImm { local, .. } => {
            let recv = wait_recv(qp, peer).await?;
            match &recv.buf {
                Some(buf) if buf.len() >= local.len() => local.copy_to(buf),
                Some(_) => return Err(CqStatus::LocalLengthError),
                None if local.is_empty() => {}
                None => return Err(CqStatus::LocalLengthError),
            }
            peer.nic.sends_in.set(peer.nic.sends_in.get() + 1);
            let imm = match &wr.op {
                WorkRequest::SendImm { imm, .. } => Some(*imm),
                _ => None,
            };
            peer.recv_cq.push(Cqe {
                wr_id: recv.wr_id,
                qpn: peer.qpn,
                status: CqStatus::Success,
                opcode: CqOpcode::Recv,
                byte_len: local.len() as u32,
                imm,
                atomic_old: None,
                trace: wr.trace,
            });
            Ok(None)
        }
        WorkRequest::Read {
            local,
            remote_addr,
            rkey,
        } => {
            let mr = check_remote(peer, *rkey, *remote_addr, local.len() as u64, Access::REMOTE_READ)?;
            // Snapshot at execution time; deliver after response travel.
            let offset = (*remote_addr - mr.addr) as usize;
            peer.nic.reads_served.set(peer.nic.reads_served.get() + 1);
            peer.nic.one_sided_in.inc();
            mr.buf.slice(offset, local.len()).copy_to(local);
            Ok(None)
        }
        WorkRequest::CompareSwap {
            local,
            remote_addr,
            rkey,
            compare,
            swap,
        } => {
            let mr = check_atomic(peer, *rkey, *remote_addr)?;
            sim::time::sleep_until(t.exec).await;
            let offset = (*remote_addr - mr.addr) as usize;
            let old = mr.buf.read_u64(offset);
            if old == *compare {
                mr.buf.write_u64(offset, *swap);
            }
            peer.nic.atomics_served.set(peer.nic.atomics_served.get() + 1);
            peer.nic.one_sided_in.inc();
            local.copy_from(&old.to_le_bytes());
            Ok(Some(old))
        }
        WorkRequest::FetchAdd {
            local,
            remote_addr,
            rkey,
            add,
        } => {
            let mr = check_atomic(peer, *rkey, *remote_addr)?;
            sim::time::sleep_until(t.exec).await;
            let offset = (*remote_addr - mr.addr) as usize;
            let old = mr.buf.read_u64(offset);
            mr.buf.write_u64(offset, old.wrapping_add(*add));
            peer.nic.atomics_served.set(peer.nic.atomics_served.get() + 1);
            peer.nic.one_sided_in.inc();
            local.copy_from(&old.to_le_bytes());
            Ok(Some(old))
        }
    }
}

fn write_region(mr: &Rc<MrInner>, remote_addr: u64, local: &BufSlice) {
    let offset = (remote_addr - mr.addr) as usize;
    // Borrowed-slice copy straight into the region; alias-safe when the
    // source slice lives in the same ShmBuf (loopback writes).
    local.copy_to(&mr.buf.slice(offset, local.len()));
}

fn check_remote(
    peer: &Rc<QpShared>,
    rkey: u32,
    addr: u64,
    len: u64,
    needed: Access,
) -> Result<Rc<MrInner>, CqStatus> {
    let mr = peer.nic.find_mr(rkey).ok_or(CqStatus::RemoteAccessError)?;
    if !mr.access.allows(needed) {
        return Err(CqStatus::RemoteAccessError);
    }
    let end = addr.checked_add(len).ok_or(CqStatus::RemoteAccessError)?;
    if addr < mr.addr || end > mr.addr + mr.buf.len() as u64 {
        return Err(CqStatus::RemoteAccessError);
    }
    Ok(mr)
}

fn check_atomic(peer: &Rc<QpShared>, rkey: u32, addr: u64) -> Result<Rc<MrInner>, CqStatus> {
    let mr = check_remote(peer, rkey, addr, 8, Access::REMOTE_ATOMIC)?;
    if !addr.is_multiple_of(8) {
        return Err(CqStatus::RemoteOpError);
    }
    Ok(mr)
}

/// Waits for a posted receive at the peer (RNR behaviour). An injected RNR
/// storm at the peer makes posted receives invisible until it passes.
async fn wait_recv(qp: &Rc<QpShared>, peer: &Rc<QpShared>) -> Result<RecvWr, CqStatus> {
    let storming = |p: &QpShared| p.rnr_storm_until.get().is_some_and(|u| sim::now() < u);
    if !storming(peer) {
        if let Some(r) = peer.pop_recv() {
            return Ok(r);
        }
    }
    let deadline = qp
        .opts
        .rnr_timeout
        .map(|d| sim::now() + d);
    loop {
        if !peer.is_alive() || !qp.is_alive() {
            return Err(CqStatus::FlushError);
        }
        if storming(peer) {
            let until = peer.rnr_storm_until.get().unwrap();
            match deadline {
                Some(dl) if dl <= until => {
                    sim::time::sleep_until(dl).await;
                    return Err(CqStatus::RnrRetryExceeded);
                }
                _ => sim::time::sleep_until(until).await,
            }
            continue;
        }
        if let Some(r) = peer.pop_recv() {
            return Ok(r);
        }
        // Telemetry: the receiver's SRQ ran dry and this sender parks on
        // RNR semantics until a buffer is replenished.
        if let Some(srq) = &peer.opts.srq {
            srq.inner.rnr_dry.inc();
        }
        match deadline {
            None => peer.recv_notify().notified().await,
            Some(dl) => {
                let remaining = dl.saturating_since(sim::now());
                if remaining.is_zero() {
                    return Err(CqStatus::RnrRetryExceeded);
                }
                let _ = sim::time::timeout(remaining, peer.recv_notify().notified()).await;
            }
        }
    }
}
