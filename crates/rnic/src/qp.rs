//! Reliably-connected queue pairs.
//!
//! Each posted work request is simulated by its own task, but two FIFO
//! ticket chains per QP enforce the RC ordering guarantees the paper's
//! protocols depend on (§4.1, §4.2.2):
//!
//! * the **delivery chain** — remote effects (memory writes, receive
//!   consumption, atomics) happen strictly in post order;
//! * the **completion chain** — initiator completions are delivered to the
//!   send CQ strictly in post order.
//!
//! Timing comes from the fabric's link reservations, made synchronously at
//! post time (the NIC pipelines; the link model serialises).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::{Rc, Weak};
use std::time::Duration;

use netsim::NodeId;
use sim::sync::Notify;
use sim::SimTime;

use crate::cq::CompletionQueue;
use crate::mr::{Access, BufSlice, MrInner};
use crate::nic::NicInner;
use crate::verbs::{CqOpcode, CqStatus, Cqe, PostError, RecvWr, SendWr, WorkRequest};

/// QP configuration.
#[derive(Debug, Clone)]
pub struct QpOptions {
    /// How long a Send/WriteWithImm waits for the receiver to post a receive
    /// before failing with `RnrRetryExceeded`. `None` waits forever
    /// (infinite RNR retry, the common datacenter setting).
    pub rnr_timeout: Option<Duration>,
    /// Receive-queue depth: posting more receives than this panics (it is a
    /// program bug in the simulation, not a runtime condition).
    pub max_recv_wr: usize,
}

impl Default for QpOptions {
    fn default() -> Self {
        QpOptions {
            rnr_timeout: None,
            max_recv_wr: 4096,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QpState {
    Connected,
    Error,
}

struct Chain {
    done: Cell<u64>,
    notify: Notify,
}

impl Chain {
    fn new() -> Self {
        Chain {
            done: Cell::new(0),
            notify: Notify::new(),
        }
    }

    async fn wait_turn(&self, ticket: u64) {
        while self.done.get() < ticket {
            self.notify.notified().await;
        }
    }

    fn advance(&self, ticket: u64) {
        debug_assert_eq!(self.done.get(), ticket);
        self.done.set(ticket + 1);
        self.notify.notify_waiters();
    }
}

pub(crate) struct QpShared {
    pub(crate) qpn: u32,
    nic: Rc<NicInner>,
    peer: RefCell<Weak<QpShared>>,
    state: Cell<QpState>,
    send_cq: CompletionQueue,
    recv_cq: CompletionQueue,
    recv_queue: RefCell<VecDeque<RecvWr>>,
    recv_posted: Notify,
    opts: QpOptions,
    next_ticket: Cell<u64>,
    delivery: Chain,
    completion: Chain,
    error_notify: Notify,
    /// Fault injection: posted receives on this endpoint are invisible to
    /// the peer until this virtual time — a receiver-not-ready storm.
    rnr_storm_until: Cell<Option<SimTime>>,
}

impl QpShared {
    fn new(
        qpn: u32,
        nic: Rc<NicInner>,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        opts: QpOptions,
    ) -> Rc<QpShared> {
        let qp = Rc::new(QpShared {
            qpn,
            nic,
            peer: RefCell::new(Weak::new()),
            state: Cell::new(QpState::Connected),
            send_cq: send_cq.clone(),
            recv_cq: recv_cq.clone(),
            recv_queue: RefCell::new(VecDeque::new()),
            recv_posted: Notify::new(),
            opts,
            next_ticket: Cell::new(0),
            delivery: Chain::new(),
            completion: Chain::new(),
            error_notify: Notify::new(),
            rnr_storm_until: Cell::new(None),
        });
        send_cq.attach(&qp);
        recv_cq.attach(&qp);
        qp
    }

    fn peer(&self) -> Option<Rc<QpShared>> {
        self.peer.borrow().upgrade()
    }

    fn is_alive(&self) -> bool {
        self.state.get() == QpState::Connected
    }

    /// Transitions this QP (and its peer) to the error state, flushing
    /// posted receives.
    pub(crate) fn fail(qp: &Rc<QpShared>, status: CqStatus) {
        if qp.state.get() == QpState::Error {
            return;
        }
        qp.state.set(QpState::Error);
        // Flush posted receives.
        let recvs: Vec<RecvWr> = qp.recv_queue.borrow_mut().drain(..).collect();
        for wr in recvs {
            qp.recv_cq.push(Cqe {
                wr_id: wr.wr_id,
                qpn: qp.qpn,
                status: CqStatus::FlushError,
                opcode: CqOpcode::Recv,
                byte_len: 0,
                imm: None,
                atomic_old: None,
                trace: None,
            });
        }
        let _ = status;
        qp.recv_posted.notify_waiters();
        qp.delivery.notify.notify_waiters();
        qp.completion.notify.notify_waiters();
        qp.error_notify.notify_waiters();
        if let Some(peer) = qp.peer() {
            QpShared::fail(&peer, CqStatus::FlushError);
        }
    }

    fn pop_recv(&self) -> Option<RecvWr> {
        self.recv_queue.borrow_mut().pop_front()
    }
}

/// One endpoint of a reliably-connected queue pair.
#[derive(Clone)]
pub struct QueuePair {
    pub(crate) shared: Rc<QpShared>,
}

impl QueuePair {
    pub(crate) fn create_connected_pair(
        a_nic: &Rc<NicInner>,
        b_nic: &Rc<NicInner>,
        a_cqs: (CompletionQueue, CompletionQueue),
        b_cqs: (CompletionQueue, CompletionQueue),
        a_opts: QpOptions,
        b_opts: QpOptions,
    ) -> (QueuePair, QueuePair) {
        let registry = &a_nic.registry;
        let a = QpShared::new(
            registry.alloc_qpn(),
            Rc::clone(a_nic),
            a_cqs.0,
            a_cqs.1,
            a_opts,
        );
        let b = QpShared::new(
            registry.alloc_qpn(),
            Rc::clone(b_nic),
            b_cqs.0,
            b_cqs.1,
            b_opts,
        );
        *a.peer.borrow_mut() = Rc::downgrade(&b);
        *b.peer.borrow_mut() = Rc::downgrade(&a);
        (QueuePair { shared: a }, QueuePair { shared: b })
    }

    /// QP number (used to demultiplex completions on shared CQs).
    pub fn qpn(&self) -> u32 {
        self.shared.qpn
    }

    /// Node this endpoint lives on.
    pub fn local_node(&self) -> NodeId {
        self.shared.nic.node.id
    }

    /// Node of the remote endpoint (if still connected).
    pub fn remote_node(&self) -> Option<NodeId> {
        self.shared.peer().map(|p| p.nic.node.id)
    }

    pub fn is_alive(&self) -> bool {
        self.shared.is_alive()
    }

    /// Resolves when the QP enters the error state (peer failure/close) —
    /// §4.2.2: "Client failure can be detected from QP disconnection
    /// events."
    pub async fn disconnected(&self) {
        while self.shared.is_alive() {
            self.shared.error_notify.notified().await;
        }
    }

    /// Tears the connection down; the peer observes a disconnect.
    pub fn close(&self) {
        QpShared::fail(&self.shared, CqStatus::FlushError);
    }

    /// Fault injection: receiver-not-ready storm. For `duration` (virtual
    /// time), receives posted on *this* endpoint are invisible to the peer,
    /// so the peer's Send/WriteWithImm stall in RNR retry — and fail with
    /// `RnrRetryExceeded` if their [`QpOptions::rnr_timeout`] elapses first
    /// (§4.3.2's slow-follower scenario on demand).
    pub fn inject_rnr_storm(&self, duration: Duration) {
        self.shared.rnr_storm_until.set(Some(sim::now() + duration));
    }

    /// Posts a receive work request (`ibv_post_recv`).
    pub fn post_recv(&self, wr: RecvWr) -> Result<(), PostError> {
        if !self.shared.is_alive() {
            return Err(PostError::QpError);
        }
        let mut q = self.shared.recv_queue.borrow_mut();
        assert!(
            q.len() < self.shared.opts.max_recv_wr,
            "receive queue overflow (max_recv_wr={})",
            self.shared.opts.max_recv_wr
        );
        q.push_back(wr);
        drop(q);
        self.shared.recv_posted.notify_one();
        Ok(())
    }

    /// Posts a list of send work requests (`ibv_post_send` with a chained
    /// WR list). Requests execute remotely in list order.
    pub fn post_send_batch(&self, wrs: Vec<SendWr>) -> Result<(), PostError> {
        if !self.shared.is_alive() {
            return Err(PostError::QpError);
        }
        let peer = self.shared.peer().ok_or(PostError::QpError)?;
        for wr in wrs {
            self.launch(wr, &peer);
        }
        Ok(())
    }

    /// Posts a single send work request. Unlike [`post_send_batch`] this
    /// allocates nothing for the WR list — it is the hot-path entry point.
    ///
    /// [`post_send_batch`]: Self::post_send_batch
    pub fn post_send(&self, wr: SendWr) -> Result<(), PostError> {
        if !self.shared.is_alive() {
            return Err(PostError::QpError);
        }
        let peer = self.shared.peer().ok_or(PostError::QpError)?;
        self.launch(wr, &peer);
        Ok(())
    }

    /// Computes the timing of `wr` against the fabric and spawns its
    /// simulation task.
    fn launch(&self, wr: SendWr, peer: &Rc<QpShared>) {
        let qp = Rc::clone(&self.shared);
        let peer = Rc::clone(peer);
        let ticket = qp.next_ticket.get();
        qp.next_ticket.set(ticket + 1);
        qp.nic.qp_posts.inc();
        let posted = sim::now();
        if let Some(ctx) = wr.trace {
            qp.nic.telem.record_trace_event(
                ctx,
                posted.as_nanos(),
                kdtelem::EventKind::WqePosted {
                    qpn: qp.qpn,
                    ticket,
                },
            );
        }
        // The reservation calls below are synchronous, so the ambient trace
        // context is sound here: the fabric tags each link hop it reserves
        // with this WR's lifeline.
        let _trace_scope = wr.trace.map(kdtelem::enter_ctx);

        let fabric = qp.nic.node.fabric.clone();
        let profile = fabric.profile();
        let net = &profile.net;
        let src = qp.nic.node.id;
        let dst = peer.nic.node.id;

        // All link reservations are committed now (post time): the NIC
        // pipelines WRs and the links serialise them.
        let post_done = sim::now() + net.rdma_post_overhead;
        let req_arrival = fabric.reserve_path(
            post_done,
            src,
            dst,
            wr.op.request_bytes(),
            net.rdma_min_op_gap,
        );
        let timing = match &wr.op {
            WorkRequest::CompareSwap { remote_addr, .. }
            | WorkRequest::FetchAdd { remote_addr, .. } => {
                let exec = fabric.reserve_atomic(dst, *remote_addr, req_arrival);
                let resp =
                    fabric.reserve_path(exec, dst, src, wr.op.response_bytes(), net.rdma_min_op_gap);
                Timing {
                    posted,
                    req_arrival,
                    exec,
                    comp: resp + net.rdma_completion_overhead,
                }
            }
            WorkRequest::Read { .. } => {
                let exec = req_arrival + net.read_response_overhead;
                let resp =
                    fabric.reserve_path(exec, dst, src, wr.op.response_bytes(), net.rdma_min_op_gap);
                Timing {
                    posted,
                    req_arrival,
                    exec,
                    comp: resp + net.rdma_completion_overhead,
                }
            }
            _ => Timing {
                posted,
                req_arrival,
                exec: req_arrival,
                // Hardware ack + initiator CQE.
                comp: req_arrival + net.propagation + net.rdma_completion_overhead,
            },
        };

        sim::spawn_detached(async move {
            run_wr(qp, peer, wr, ticket, timing).await;
        });
    }
}

#[derive(Clone, Copy)]
struct Timing {
    /// When the initiator posted the work request.
    posted: SimTime,
    /// When the request fully arrives at the responder.
    req_arrival: SimTime,
    /// When the responder executes it (atomics serialise; reads pay the DMA
    /// fetch).
    exec: SimTime,
    /// When the initiator completion is visible.
    comp: SimTime,
}

async fn run_wr(qp: Rc<QpShared>, peer: Rc<QpShared>, wr: SendWr, ticket: u64, t: Timing) {
    qp.delivery.wait_turn(ticket).await;

    if !qp.is_alive() {
        qp.delivery.advance(ticket);
        complete(&qp, &wr, ticket, CqStatus::FlushError, 0, None).await;
        return;
    }

    sim::time::sleep_until(t.req_arrival).await;

    // Execute the remote effect.
    let outcome = execute_remote(&qp, &peer, &wr, t).await;

    qp.delivery.advance(ticket);

    let (status, old) = match outcome {
        Ok(old) => (CqStatus::Success, old),
        Err(status) => {
            // Access/protocol errors break the connection (RC semantics).
            QpShared::fail(&qp, status);
            (status, None)
        }
    };

    // Response / ack travel time.
    sim::time::sleep_until(t.comp).await;
    if status == CqStatus::Success && wr.signaled {
        qp.nic
            .post_to_comp_ns
            .record(t.comp.saturating_since(t.posted).as_nanos() as u64);
    }
    let byte_len = wr.op.request_bytes().max(wr.op.response_bytes()) as u32;
    complete(&qp, &wr, ticket, status, byte_len, old).await;
}

async fn complete(
    qp: &Rc<QpShared>,
    wr: &SendWr,
    ticket: u64,
    status: CqStatus,
    byte_len: u32,
    atomic_old: Option<u64>,
) {
    qp.completion.wait_turn(ticket).await;
    if wr.signaled || status != CqStatus::Success {
        if let Some(ctx) = wr.trace {
            qp.nic.telem.trace_event_now(
                ctx,
                kdtelem::EventKind::Completion {
                    qpn: qp.qpn,
                    ticket,
                    opcode: wr.op.opcode_name(),
                    ok: status.is_ok(),
                },
            );
        }
        qp.send_cq.push(Cqe {
            wr_id: wr.wr_id,
            qpn: qp.qpn,
            status,
            opcode: wr.op.opcode(),
            byte_len,
            imm: None,
            atomic_old,
            trace: wr.trace,
        });
    }
    qp.completion.advance(ticket);
}

/// Validates and applies the remote effect of `wr`. Returns the old value
/// for atomics.
async fn execute_remote(
    qp: &Rc<QpShared>,
    peer: &Rc<QpShared>,
    wr: &SendWr,
    t: Timing,
) -> Result<Option<u64>, CqStatus> {
    if !peer.is_alive() {
        return Err(CqStatus::FlushError);
    }
    match &wr.op {
        WorkRequest::Write {
            local,
            remote_addr,
            rkey,
        } => {
            let mr = check_remote(peer, *rkey, *remote_addr, local.len() as u64, Access::REMOTE_WRITE)?;
            write_region(&mr, *remote_addr, local);
            peer.nic.writes_in.set(peer.nic.writes_in.get() + 1);
            peer.nic.one_sided_in.inc();
            Ok(None)
        }
        WorkRequest::WriteImm {
            local,
            remote_addr,
            rkey,
            imm,
        } => {
            let mr = check_remote(peer, *rkey, *remote_addr, local.len() as u64, Access::REMOTE_WRITE)?;
            write_region(&mr, *remote_addr, local);
            peer.nic.writes_in.set(peer.nic.writes_in.get() + 1);
            peer.nic.one_sided_in.inc();
            let recv = wait_recv(qp, peer).await?;
            peer.recv_cq.push(Cqe {
                wr_id: recv.wr_id,
                qpn: peer.qpn,
                status: CqStatus::Success,
                opcode: CqOpcode::RecvRdmaWithImm,
                byte_len: local.len() as u32,
                imm: Some(*imm),
                atomic_old: None,
                // WR context crosses to the target with the notification —
                // the immediate stays free for the file-ID/order word.
                trace: wr.trace,
            });
            Ok(None)
        }
        WorkRequest::Send { local } | WorkRequest::SendImm { local, .. } => {
            let recv = wait_recv(qp, peer).await?;
            match &recv.buf {
                Some(buf) if buf.len() >= local.len() => local.copy_to(buf),
                Some(_) => return Err(CqStatus::LocalLengthError),
                None if local.is_empty() => {}
                None => return Err(CqStatus::LocalLengthError),
            }
            peer.nic.sends_in.set(peer.nic.sends_in.get() + 1);
            let imm = match &wr.op {
                WorkRequest::SendImm { imm, .. } => Some(*imm),
                _ => None,
            };
            peer.recv_cq.push(Cqe {
                wr_id: recv.wr_id,
                qpn: peer.qpn,
                status: CqStatus::Success,
                opcode: CqOpcode::Recv,
                byte_len: local.len() as u32,
                imm,
                atomic_old: None,
                trace: wr.trace,
            });
            Ok(None)
        }
        WorkRequest::Read {
            local,
            remote_addr,
            rkey,
        } => {
            let mr = check_remote(peer, *rkey, *remote_addr, local.len() as u64, Access::REMOTE_READ)?;
            // Snapshot at execution time; deliver after response travel.
            let offset = (*remote_addr - mr.addr) as usize;
            peer.nic.reads_served.set(peer.nic.reads_served.get() + 1);
            peer.nic.one_sided_in.inc();
            mr.buf.slice(offset, local.len()).copy_to(local);
            Ok(None)
        }
        WorkRequest::CompareSwap {
            local,
            remote_addr,
            rkey,
            compare,
            swap,
        } => {
            let mr = check_atomic(peer, *rkey, *remote_addr)?;
            sim::time::sleep_until(t.exec).await;
            let offset = (*remote_addr - mr.addr) as usize;
            let old = mr.buf.read_u64(offset);
            if old == *compare {
                mr.buf.write_u64(offset, *swap);
            }
            peer.nic.atomics_served.set(peer.nic.atomics_served.get() + 1);
            peer.nic.one_sided_in.inc();
            local.copy_from(&old.to_le_bytes());
            Ok(Some(old))
        }
        WorkRequest::FetchAdd {
            local,
            remote_addr,
            rkey,
            add,
        } => {
            let mr = check_atomic(peer, *rkey, *remote_addr)?;
            sim::time::sleep_until(t.exec).await;
            let offset = (*remote_addr - mr.addr) as usize;
            let old = mr.buf.read_u64(offset);
            mr.buf.write_u64(offset, old.wrapping_add(*add));
            peer.nic.atomics_served.set(peer.nic.atomics_served.get() + 1);
            peer.nic.one_sided_in.inc();
            local.copy_from(&old.to_le_bytes());
            Ok(Some(old))
        }
    }
}

fn write_region(mr: &Rc<MrInner>, remote_addr: u64, local: &BufSlice) {
    let offset = (remote_addr - mr.addr) as usize;
    // Borrowed-slice copy straight into the region; alias-safe when the
    // source slice lives in the same ShmBuf (loopback writes).
    local.copy_to(&mr.buf.slice(offset, local.len()));
}

fn check_remote(
    peer: &Rc<QpShared>,
    rkey: u32,
    addr: u64,
    len: u64,
    needed: Access,
) -> Result<Rc<MrInner>, CqStatus> {
    let mr = peer.nic.find_mr(rkey).ok_or(CqStatus::RemoteAccessError)?;
    if !mr.access.allows(needed) {
        return Err(CqStatus::RemoteAccessError);
    }
    let end = addr.checked_add(len).ok_or(CqStatus::RemoteAccessError)?;
    if addr < mr.addr || end > mr.addr + mr.buf.len() as u64 {
        return Err(CqStatus::RemoteAccessError);
    }
    Ok(mr)
}

fn check_atomic(peer: &Rc<QpShared>, rkey: u32, addr: u64) -> Result<Rc<MrInner>, CqStatus> {
    let mr = check_remote(peer, rkey, addr, 8, Access::REMOTE_ATOMIC)?;
    if !addr.is_multiple_of(8) {
        return Err(CqStatus::RemoteOpError);
    }
    Ok(mr)
}

/// Waits for a posted receive at the peer (RNR behaviour). An injected RNR
/// storm at the peer makes posted receives invisible until it passes.
async fn wait_recv(qp: &Rc<QpShared>, peer: &Rc<QpShared>) -> Result<RecvWr, CqStatus> {
    let storming = |p: &QpShared| p.rnr_storm_until.get().is_some_and(|u| sim::now() < u);
    if !storming(peer) {
        if let Some(r) = peer.pop_recv() {
            return Ok(r);
        }
    }
    let deadline = qp
        .opts
        .rnr_timeout
        .map(|d| sim::now() + d);
    loop {
        if !peer.is_alive() || !qp.is_alive() {
            return Err(CqStatus::FlushError);
        }
        if storming(peer) {
            let until = peer.rnr_storm_until.get().unwrap();
            match deadline {
                Some(dl) if dl <= until => {
                    sim::time::sleep_until(dl).await;
                    return Err(CqStatus::RnrRetryExceeded);
                }
                _ => sim::time::sleep_until(until).await,
            }
            continue;
        }
        if let Some(r) = peer.pop_recv() {
            return Ok(r);
        }
        match deadline {
            None => peer.recv_posted.notified().await,
            Some(dl) => {
                let remaining = dl.saturating_since(sim::now());
                if remaining.is_zero() {
                    return Err(CqStatus::RnrRetryExceeded);
                }
                let _ = sim::time::timeout(remaining, peer.recv_posted.notified()).await;
            }
        }
    }
}
