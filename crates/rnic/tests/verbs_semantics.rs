//! Semantic tests of the RC verbs model: every property the KafkaDirect
//! protocols rely on (§4 of the paper) is asserted here.

use netsim::profile::Profile;
use netsim::Fabric;
use rnic::{
    Access, CompletionQueue, CqOpcode, CqStatus, QpOptions, QueuePair, RNic, RdmaListener, RecvWr,
    SendWr, ShmBuf, WorkRequest,
};
use std::time::Duration;

struct Pair {
    #[allow(dead_code)] // kept alive: dropping the NIC would unregister it
    nic_a: RNic,
    nic_b: RNic,
    qp_a: QueuePair,
    qp_b: QueuePair,
    a_send: CompletionQueue,
    a_recv: CompletionQueue,
    b_recv: CompletionQueue,
}

async fn setup_with(profile: Profile, opts: QpOptions, recv_cq_cap: usize) -> Pair {
    let f = Fabric::new(profile);
    let na = f.add_node("a");
    let nb = f.add_node("b");
    let nic_a = RNic::new(&na);
    let nic_b = RNic::new(&nb);
    let mut listener = RdmaListener::bind(&nic_b, 1);
    let b_send = nic_b.create_cq(1024);
    let b_recv = nic_b.create_cq(recv_cq_cap);
    let nic_b2 = nic_b.clone();
    let b_recv2 = b_recv.clone();
    let opts2 = opts.clone();
    let accept = sim::spawn(async move {
        let inc = listener.accept().await.unwrap();
        inc.accept(&nic_b2, b_send, b_recv2, opts2)
    });
    let a_send = nic_a.create_cq(1024);
    let a_recv = nic_a.create_cq(1024);
    let qp_a = nic_a
        .connect(nb.id, 1, a_send.clone(), a_recv.clone(), opts)
        .await
        .unwrap();
    let qp_b = accept.await.unwrap();
    Pair {
        nic_a,
        nic_b,
        qp_a,
        qp_b,
        a_send,
        a_recv,
        b_recv,
    }
}

async fn setup() -> Pair {
    setup_with(Profile::testbed(), QpOptions::default(), 1024).await
}

#[test]
fn write_with_imm_delivers_imm_and_bytes() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let target = ShmBuf::zeroed(128);
        let mr = p.nic_b.reg_mr(target.clone(), Access::all());
        p.qp_b.post_recv(RecvWr { wr_id: 1, buf: None }).unwrap();
        let payload = ShmBuf::from_vec(vec![0xAB; 32]);
        p.qp_a
            .post_send(SendWr::new(
                9,
                WorkRequest::WriteImm {
                    local: payload.as_slice(),
                    remote_addr: mr.addr() + 16,
                    rkey: mr.rkey(),
                    imm: 0xC0FFEE,
                },
            ))
            .unwrap();
        let rc = p.b_recv.next().await.unwrap();
        assert_eq!(rc.opcode, CqOpcode::RecvRdmaWithImm);
        assert_eq!(rc.imm, Some(0xC0FFEE));
        assert_eq!(rc.byte_len, 32);
        // Data landed directly in the registered buffer (zero copy).
        assert_eq!(target.read_at(16, 32), vec![0xAB; 32]);
        assert!(p.a_send.next().await.unwrap().ok());
    });
}

#[test]
fn completions_are_in_post_order() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let target = ShmBuf::zeroed(1 << 20);
        let mr = p.nic_b.reg_mr(target, Access::all());
        // Mix sizes so naive per-WR timing would complete small ones first.
        let sizes = [200_000usize, 64, 100_000, 8, 300_000, 16];
        for (i, sz) in sizes.iter().enumerate() {
            let buf = ShmBuf::zeroed(*sz);
            p.qp_a
                .post_send(SendWr::new(
                    i as u64,
                    WorkRequest::Write {
                        local: buf.as_slice(),
                        remote_addr: mr.addr(),
                        rkey: mr.rkey(),
                    },
                ))
                .unwrap();
        }
        for i in 0..sizes.len() as u64 {
            let cqe = p.a_send.next().await.unwrap();
            assert!(cqe.ok());
            assert_eq!(cqe.wr_id, i, "completions must be in post order");
        }
    });
}

#[test]
fn writes_execute_remotely_in_post_order() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let target = ShmBuf::zeroed(8);
        let mr = p.nic_b.reg_mr(target.clone(), Access::all());
        // Two overlapping writes: the later one must win.
        for (i, v) in [(0u64, 1u8), (1, 2)] {
            let buf = ShmBuf::from_vec(vec![v; 8]);
            p.qp_a
                .post_send(SendWr::new(
                    i,
                    WorkRequest::Write {
                        local: buf.as_slice(),
                        remote_addr: mr.addr(),
                        rkey: mr.rkey(),
                    },
                ))
                .unwrap();
        }
        p.a_send.next().await.unwrap();
        p.a_send.next().await.unwrap();
        assert_eq!(target.read_at(0, 8), vec![2u8; 8]);
    });
}

#[test]
fn rdma_read_fetches_remote_bytes_without_target_tasks() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let data = ShmBuf::from_vec((0..64u8).collect());
        let mr = p.nic_b.reg_mr(data, Access::REMOTE_READ);
        let dst = ShmBuf::zeroed(16);
        p.qp_a
            .post_send(SendWr::new(
                3,
                WorkRequest::Read {
                    local: dst.as_slice(),
                    remote_addr: mr.addr() + 8,
                    rkey: mr.rkey(),
                },
            ))
            .unwrap();
        let cqe = p.a_send.next().await.unwrap();
        assert!(cqe.ok());
        assert_eq!(cqe.opcode, CqOpcode::RdmaRead);
        assert_eq!(dst.read_at(0, 16), (8..24u8).collect::<Vec<_>>());
        assert_eq!(p.nic_b.stats().reads_served, 1);
    });
}

#[test]
fn faa_always_succeeds_and_returns_old_value() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let word = ShmBuf::zeroed(8);
        word.write_u64(0, 100);
        let mr = p.nic_b.reg_mr(word.clone(), Access::all());
        let res = ShmBuf::zeroed(8);
        for expected_old in [100u64, 107, 114] {
            p.qp_a
                .post_send(SendWr::new(
                    1,
                    WorkRequest::FetchAdd {
                        local: res.as_slice(),
                        remote_addr: mr.addr(),
                        rkey: mr.rkey(),
                        add: 7,
                    },
                ))
                .unwrap();
            let cqe = p.a_send.next().await.unwrap();
            assert!(cqe.ok());
            assert_eq!(cqe.atomic_old, Some(expected_old));
            assert_eq!(res.read_u64(0), expected_old);
        }
        assert_eq!(word.read_u64(0), 121);
    });
}

#[test]
fn cas_swaps_only_on_match() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let word = ShmBuf::zeroed(8);
        word.write_u64(0, 5);
        let mr = p.nic_b.reg_mr(word.clone(), Access::all());
        let res = ShmBuf::zeroed(8);
        let cas = |compare, swap| {
            SendWr::new(
                1,
                WorkRequest::CompareSwap {
                    local: res.as_slice(),
                    remote_addr: mr.addr(),
                    rkey: mr.rkey(),
                    compare,
                    swap,
                },
            )
        };
        p.qp_a.post_send(cas(4, 9)).unwrap(); // mismatch
        let c1 = p.a_send.next().await.unwrap();
        assert_eq!(c1.atomic_old, Some(5));
        assert_eq!(word.read_u64(0), 5);
        p.qp_a.post_send(cas(5, 9)).unwrap(); // match
        let c2 = p.a_send.next().await.unwrap();
        assert_eq!(c2.atomic_old, Some(5));
        assert_eq!(word.read_u64(0), 9);
    });
}

#[test]
fn misaligned_atomic_is_remote_op_error() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let word = ShmBuf::zeroed(16);
        let mr = p.nic_b.reg_mr(word, Access::all());
        let res = ShmBuf::zeroed(8);
        p.qp_a
            .post_send(SendWr::new(
                1,
                WorkRequest::FetchAdd {
                    local: res.as_slice(),
                    remote_addr: mr.addr() + 4,
                    rkey: mr.rkey(),
                    add: 1,
                },
            ))
            .unwrap();
        let cqe = p.a_send.next().await.unwrap();
        assert_eq!(cqe.status, CqStatus::RemoteOpError);
        assert!(!p.qp_a.is_alive(), "protocol errors break the connection");
    });
}

#[test]
fn out_of_bounds_write_breaks_connection() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let target = ShmBuf::zeroed(64);
        let mr = p.nic_b.reg_mr(target, Access::all());
        let buf = ShmBuf::zeroed(32);
        p.qp_a
            .post_send(SendWr::new(
                1,
                WorkRequest::Write {
                    local: buf.as_slice(),
                    remote_addr: mr.addr() + 40, // 40 + 32 > 64
                    rkey: mr.rkey(),
                },
            ))
            .unwrap();
        let cqe = p.a_send.next().await.unwrap();
        assert_eq!(cqe.status, CqStatus::RemoteAccessError);
        assert!(!p.qp_a.is_alive());
        assert!(!p.qp_b.is_alive());
        // Subsequent posts are rejected.
        assert!(p
            .qp_a
            .post_send(SendWr::new(
                2,
                WorkRequest::Write {
                    local: buf.as_slice(),
                    remote_addr: mr.addr(),
                    rkey: mr.rkey(),
                }
            ))
            .is_err());
    });
}

#[test]
fn permission_denied_without_remote_write() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let target = ShmBuf::zeroed(64);
        let mr = p.nic_b.reg_mr(target, Access::REMOTE_READ);
        let buf = ShmBuf::zeroed(8);
        p.qp_a
            .post_send(SendWr::new(
                1,
                WorkRequest::Write {
                    local: buf.as_slice(),
                    remote_addr: mr.addr(),
                    rkey: mr.rkey(),
                },
            ))
            .unwrap();
        assert_eq!(p.a_send.next().await.unwrap().status, CqStatus::RemoteAccessError);
    });
}

#[test]
fn deregistered_mr_faults_inflight_access() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let target = ShmBuf::zeroed(64);
        let mr = p.nic_b.reg_mr(target, Access::all());
        // Revoke access (what the broker does to a faulty client, §4.2.2),
        // then have the client write.
        p.nic_b.dereg_mr(&mr);
        let buf = ShmBuf::zeroed(8);
        p.qp_a
            .post_send(SendWr::new(
                1,
                WorkRequest::Write {
                    local: buf.as_slice(),
                    remote_addr: mr.addr(),
                    rkey: mr.rkey(),
                },
            ))
            .unwrap();
        assert_eq!(p.a_send.next().await.unwrap().status, CqStatus::RemoteAccessError);
    });
}

#[test]
fn rnr_timeout_fails_when_no_recv_posted() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let opts = QpOptions {
            rnr_timeout: Some(Duration::from_micros(50)),
            ..QpOptions::default()
        };
        let p = setup_with(Profile::testbed(), opts, 1024).await;
        let buf = ShmBuf::from_vec(vec![1; 4]);
        p.qp_a
            .post_send(SendWr::new(1, WorkRequest::Send { local: buf.as_slice() }))
            .unwrap();
        let cqe = p.a_send.next().await.unwrap();
        assert_eq!(cqe.status, CqStatus::RnrRetryExceeded);
        assert!(!p.qp_b.is_alive());
    });
}

#[test]
fn rnr_infinite_waits_for_late_recv() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let qp_b = p.qp_b.clone();
        sim::spawn(async move {
            sim::time::sleep(Duration::from_micros(30)).await;
            qp_b.post_recv(RecvWr { wr_id: 5, buf: Some(ShmBuf::zeroed(8).as_slice()) })
                .unwrap();
        });
        let buf = ShmBuf::from_vec(vec![1; 4]);
        p.qp_a
            .post_send(SendWr::new(1, WorkRequest::Send { local: buf.as_slice() }))
            .unwrap();
        let rc = p.b_recv.next().await.unwrap();
        assert!(rc.ok());
        assert!(sim::now().as_nanos() >= 30_000);
    });
}

#[test]
fn cq_overflow_disconnects_attached_qps() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        // Tiny receive CQ at b: a burst of notifications overflows it —
        // the §4.3.2 failure mode that credits exist to prevent.
        let p = setup_with(Profile::testbed(), QpOptions::default(), 4).await;
        let target = ShmBuf::zeroed(64);
        let mr = p.nic_b.reg_mr(target, Access::all());
        for i in 0..16 {
            p.qp_b.post_recv(RecvWr { wr_id: i, buf: None }).unwrap();
        }
        let buf = ShmBuf::zeroed(4);
        for i in 0..16 {
            let _ = p.qp_a.post_send(SendWr::new(
                i,
                WorkRequest::WriteImm {
                    local: buf.as_slice(),
                    remote_addr: mr.addr(),
                    rkey: mr.rkey(),
                    imm: i as u32,
                },
            ));
        }
        // Let the burst land without draining b's CQ.
        sim::time::sleep(Duration::from_millis(1)).await;
        assert!(p.b_recv.overflowed());
        assert!(!p.qp_b.is_alive());
        assert!(!p.qp_a.is_alive());
    });
}

#[test]
fn close_wakes_peer_disconnect_watcher() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let t0 = sim::now();
        let qp_b = p.qp_b.clone();
        let watcher = sim::spawn(async move {
            qp_b.disconnected().await;
            sim::now()
        });
        sim::time::sleep(Duration::from_micros(20)).await;
        p.qp_a.close();
        let when = watcher.await.unwrap();
        assert_eq!(when - t0, Duration::from_micros(20));
    });
}

#[test]
fn timing_small_write_latency_matches_paper_order() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        // Fig 7: WriteWithImm notification latency ~1.5 µs for small writes.
        let p = setup().await;
        let target = ShmBuf::zeroed(64);
        let mr = p.nic_b.reg_mr(target, Access::all());
        p.qp_b.post_recv(RecvWr { wr_id: 0, buf: None }).unwrap();
        let t0 = sim::now();
        let buf = ShmBuf::zeroed(16);
        p.qp_a
            .post_send(SendWr::new(
                0,
                WorkRequest::WriteImm {
                    local: buf.as_slice(),
                    remote_addr: mr.addr(),
                    rkey: mr.rkey(),
                    imm: 1,
                },
            ))
            .unwrap();
        p.b_recv.next().await.unwrap();
        let us = (sim::now() - t0).as_nanos() as f64 / 1000.0;
        assert!(us > 0.5 && us < 3.0, "one-way notify latency {us}us");
    });
}

#[test]
fn timing_atomics_are_rate_limited_per_word() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        // §4.2.2: single-counter atomics cap at 2.68 Mops/s.
        let p = setup().await;
        let word = ShmBuf::zeroed(8);
        let mr = p.nic_b.reg_mr(word, Access::all());
        let res = ShmBuf::zeroed(8);
        let n = 1000u64;
        let t0 = sim::now();
        for i in 0..n {
            p.qp_a
                .post_send(SendWr {
                    wr_id: i,
                    op: WorkRequest::FetchAdd {
                        local: res.as_slice(),
                        remote_addr: mr.addr(),
                        rkey: mr.rkey(),
                        add: 1,
                    },
                    signaled: i == n - 1,
                    trace: None,
                })
                .unwrap();
        }
        let last = p.a_send.next().await.unwrap();
        assert!(last.ok());
        let secs = (sim::now() - t0).as_secs_f64();
        let mops = n as f64 / secs / 1e6;
        assert!(mops < 2.75, "pipelined atomic rate {mops} Mops/s exceeds cap");
        assert!(mops > 2.3, "pipelined atomic rate {mops} Mops/s far below cap");
    });
}

#[test]
fn timing_large_writes_reach_link_bandwidth() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        let target = ShmBuf::zeroed(4 << 20);
        let mr = p.nic_b.reg_mr(target, Access::all());
        let chunk = ShmBuf::zeroed(1 << 20);
        let n = 64;
        let t0 = sim::now();
        for i in 0..n {
            p.qp_a
                .post_send(SendWr {
                    wr_id: i,
                    op: WorkRequest::Write {
                        local: chunk.as_slice(),
                        remote_addr: mr.addr(),
                        rkey: mr.rkey(),
                    },
                    signaled: i == n - 1,
                    trace: None,
                })
                .unwrap();
        }
        assert!(p.a_send.next().await.unwrap().ok());
        let secs = (sim::now() - t0).as_secs_f64();
        let gibps = (n as f64 * (1 << 20) as f64) / secs / (1u64 << 30) as f64;
        assert!(gibps > 5.5 && gibps < 6.05, "goodput {gibps} GiB/s");
    });
}

#[test]
fn recv_flush_on_error() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let p = setup().await;
        p.qp_b
            .post_recv(RecvWr { wr_id: 42, buf: None })
            .unwrap();
        p.qp_a.close();
        let cqe = p.b_recv.next().await.unwrap();
        assert_eq!(cqe.wr_id, 42);
        assert_eq!(cqe.status, CqStatus::FlushError);
        // a_recv had nothing posted; its CQ stays quiet.
        assert!(p.a_recv.poll().is_none());
    });
}
