//! Property tests of the verbs model: arbitrary interleavings of one-sided
//! operations must behave like sequentially-consistent memory operations in
//! post order (the RC guarantee the produce protocol builds on).

use proptest::prelude::*;

use netsim::profile::Profile;
use netsim::Fabric;
use rnic::{Access, QpOptions, RNic, RdmaListener, SendWr, ShmBuf, WorkRequest};

/// One random remote memory operation.
#[derive(Debug, Clone)]
enum Op {
    Write { offset: usize, len: usize, fill: u8 },
    Read { offset: usize, len: usize },
    Faa { word: usize, add: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..960, 1usize..64, any::<u8>())
            .prop_map(|(offset, len, fill)| Op::Write { offset, len, fill }),
        (0usize..960, 1usize..64).prop_map(|(offset, len)| Op::Read { offset, len }),
        (0usize..4, 1u64..1000).prop_map(|(w, add)| Op::Faa { word: w * 8, add }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Replaying the same ops against a plain byte array (the sequential
    /// model) yields identical final memory and identical read results.
    #[test]
    fn one_sided_ops_match_sequential_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let f = Fabric::new(Profile::testbed());
            let a = f.add_node("a");
            let bnode = f.add_node("b");
            let nic_a = RNic::new(&a);
            let nic_b = RNic::new(&bnode);
            let mut listener = RdmaListener::bind(&nic_b, 1);
            let b_send = nic_b.create_cq(1024);
            let b_recv = nic_b.create_cq(1024);
            let nic_b2 = nic_b.clone();
            let accept = sim::spawn(async move {
                let inc = listener.accept().await.unwrap();
                inc.accept(&nic_b2, b_send, b_recv, QpOptions::default())
            });
            let send_cq = nic_a.create_cq(1024);
            let recv_cq = nic_a.create_cq(64);
            let qp = nic_a
                .connect(bnode.id, 1, send_cq.clone(), recv_cq, QpOptions::default())
                .await
                .unwrap();
            let _qp_b = accept.await.unwrap();

            let remote = ShmBuf::zeroed(1024);
            let mr = nic_b.reg_mr(remote.clone(), Access::all());
            // Sequential reference model.
            let mut model = vec![0u8; 1024];
            let mut model_reads: Vec<Vec<u8>> = Vec::new();
            let mut model_faas: Vec<u64> = Vec::new();

            let read_dst = ShmBuf::zeroed(64);
            let faa_dst = ShmBuf::zeroed(8);
            let mut sim_reads = Vec::new();
            let mut sim_faas = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Write { offset, len, fill } => {
                        let src = ShmBuf::from_vec(vec![*fill; *len]);
                        qp.post_send(SendWr::new(i as u64, WorkRequest::Write {
                            local: src.as_slice(),
                            remote_addr: mr.addr() + *offset as u64,
                            rkey: mr.rkey(),
                        })).unwrap();
                        assert!(send_cq.next().await.unwrap().ok());
                        model[*offset..*offset + *len].fill(*fill);
                    }
                    Op::Read { offset, len } => {
                        qp.post_send(SendWr::new(i as u64, WorkRequest::Read {
                            local: read_dst.slice(0, *len),
                            remote_addr: mr.addr() + *offset as u64,
                            rkey: mr.rkey(),
                        })).unwrap();
                        assert!(send_cq.next().await.unwrap().ok());
                        sim_reads.push(read_dst.read_at(0, *len));
                        model_reads.push(model[*offset..*offset + *len].to_vec());
                    }
                    Op::Faa { word, add } => {
                        qp.post_send(SendWr::new(i as u64, WorkRequest::FetchAdd {
                            local: faa_dst.as_slice(),
                            remote_addr: mr.addr() + *word as u64,
                            rkey: mr.rkey(),
                            add: *add,
                        })).unwrap();
                        let cqe = send_cq.next().await.unwrap();
                        assert!(cqe.ok());
                        sim_faas.push(cqe.atomic_old.unwrap());
                        let old = u64::from_le_bytes(model[*word..*word + 8].try_into().unwrap());
                        model_faas.push(old);
                        model[*word..*word + 8].copy_from_slice(&old.wrapping_add(*add).to_le_bytes());
                    }
                }
            }
            assert_eq!(remote.read_at(0, 1024), model, "final memory differs");
            assert_eq!(sim_reads, model_reads, "read results differ");
            assert_eq!(sim_faas, model_faas, "atomic old values differ");
        });
    }

    /// Pipelined (unsignaled) writes still apply in post order: the last
    /// write to each location wins.
    #[test]
    fn pipelined_writes_apply_in_post_order(
        writes in proptest::collection::vec((0usize..240, 1usize..16, any::<u8>()), 2..40)
    ) {
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let f = Fabric::new(Profile::testbed());
            let a = f.add_node("a");
            let bnode = f.add_node("b");
            let nic_a = RNic::new(&a);
            let nic_b = RNic::new(&bnode);
            let mut listener = RdmaListener::bind(&nic_b, 1);
            let b_send = nic_b.create_cq(64);
            let b_recv = nic_b.create_cq(64);
            let nic_b2 = nic_b.clone();
            let accept = sim::spawn(async move {
                let inc = listener.accept().await.unwrap();
                inc.accept(&nic_b2, b_send, b_recv, QpOptions::default())
            });
            let send_cq = nic_a.create_cq(4096);
            let recv_cq = nic_a.create_cq(64);
            let qp = nic_a
                .connect(bnode.id, 1, send_cq.clone(), recv_cq, QpOptions::default())
                .await
                .unwrap();
            let _qp_b = accept.await.unwrap();
            let remote = ShmBuf::zeroed(256);
            let mr = nic_b.reg_mr(remote.clone(), Access::all());
            let mut model = vec![0u8; 256];
            let last = writes.len() - 1;
            for (i, (offset, len, fill)) in writes.iter().enumerate() {
                let src = ShmBuf::from_vec(vec![*fill; *len]);
                qp.post_send(SendWr {
                    wr_id: i as u64,
                    op: WorkRequest::Write {
                        local: src.as_slice(),
                        remote_addr: mr.addr() + *offset as u64,
                        rkey: mr.rkey(),
                    },
                    signaled: i == last,
                }).unwrap();
                model[*offset..*offset + *len].fill(*fill);
            }
            assert!(send_cq.next().await.unwrap().ok());
            assert_eq!(remote.read_at(0, 256), model);
        });
    }
}
