//! Crash-recovery replay must not allocate per surviving batch.
//!
//! `Segment::recover` pre-scans the buffer to size its batch index in one
//! reservation, and `Log::read_from_into` copies batches into a
//! caller-recycled buffer through `Segment::read_into`. A counting global
//! allocator pins both properties: recovery cost is O(segments) allocations
//! regardless of batch count, and a warm fetch buffer makes reads
//! allocation-free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use kdstorage::{BatchBuilder, Log, LogConfig, Record};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One-segment log holding `batches` single-record batches.
fn filled_log(batches: usize) -> Log {
    let config = LogConfig {
        segment_size: 1024 * 1024,
        max_batch_size: 4096,
    };
    let log = Log::new(config);
    for i in 0..batches {
        let mut b = BatchBuilder::new(7);
        b.append(&Record::value(vec![(i % 251) as u8; 32]));
        log.append_batch(&b.build().unwrap()).unwrap();
    }
    log
}

fn surviving_buffers(log: &Log) -> Vec<Rc<RefCell<Vec<u8>>>> {
    (0..log.segment_count())
        .map(|i| log.segment(i).unwrap().shared_buf())
        .collect()
}

fn measure_recovery(batches: usize) -> (Log, u64) {
    let log = filled_log(batches);
    let config = log.config().clone();
    let buffers = surviving_buffers(&log);
    drop(log);
    let before = allocs();
    let recovered = Log::recover(config, buffers);
    let after = allocs();
    assert_eq!(recovered.next_offset(), batches as u64, "replay complete");
    (recovered, after - before)
}

#[test]
fn recovery_replay_does_not_allocate_per_batch() {
    // Warm up thread-local scratch etc. so both measurements see the same
    // steady state.
    let _ = measure_recovery(8);

    let (_small, small_allocs) = measure_recovery(50);
    let (recovered, large_allocs) = measure_recovery(500);

    // 10x the batches may not cost extra allocations: the index is sized by
    // the pre-scan, the scan itself works in place on the surviving buffer.
    assert!(
        large_allocs <= small_allocs,
        "recovery allocations scale with batch count: {small_allocs} allocs \
         for 50 batches vs {large_allocs} for 500"
    );
    // And the absolute cost is a handful of fixed structures (segment Rc,
    // index reservation, segment list), not a per-batch budget.
    assert!(
        large_allocs <= 8,
        "recovery of one segment should allocate O(1) structures, got {large_allocs}"
    );

    // Reads through a recycled buffer are allocation-free once the buffer
    // has warmed to the fetch size.
    recovered.set_high_watermark(recovered.next_offset());
    let mut buf = Vec::new();
    let (_, next) = recovered.read_from_into(0, 1 << 20, true, &mut buf);
    assert_eq!(next, 500);
    assert!(!buf.is_empty());
    let before = allocs();
    let mut offset = 0;
    while offset < 500 {
        let (_, next) = recovered.read_from_into(offset, 1 << 20, true, &mut buf);
        assert!(next > offset);
        offset = next;
    }
    assert_eq!(
        allocs() - before,
        0,
        "warm read_from_into must not allocate"
    );
}
