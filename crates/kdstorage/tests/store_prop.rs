//! Seeded property test for the file-backed tier: rotation + retention +
//! sparse-index lookups round-trip under randomized workloads.
//!
//! For each seed: append batches of random record counts/sizes into a
//! tiered log with small segments (forcing rotation), randomly evict sealed
//! segments (forcing cold reads through the sparse index), and periodically
//! run retention. Invariants:
//! * every surviving committed offset is readable, in order, with the
//!   offsets the commit assigned;
//! * every reclaimed offset fails with the typed out-of-retention error;
//! * the sparse-index sidecars of sealed segments parse and are monotonic.

use std::cell::RefCell;
use std::rc::Rc;

use kdstorage::record::{decode_batch, BatchBuilder, Record};
use kdstorage::{
    FileStore, Log, LogConfig, ReadError, RetentionConfig, StorageConfig, SyncMode,
};
use sim::rng::SimRng;

fn temp_dir(seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("kdstore-prop-{}-{}", seed, std::process::id()))
}

fn random_batch(rng: &mut SimRng, tag: &mut u64) -> (Vec<u8>, u32) {
    let records = 1 + rng.below(5) as u32;
    let size = 16 + rng.below(220) as usize;
    let mut b = BatchBuilder::new(7);
    for _ in 0..records {
        // Tag every record with a global sequence number so reads can be
        // checked for order and identity, not just count.
        let mut v = vec![0u8; size];
        v[..8].copy_from_slice(&tag.to_le_bytes());
        *tag += 1;
        b.append(&Record::value(v));
    }
    (b.build().unwrap(), records)
}

fn check_seed(seed: u64) {
    let dir = temp_dir(seed);
    std::fs::remove_dir_all(&dir).ok();
    let cfg = StorageConfig::tiered(&dir).with_sync(SyncMode::PerCommit);
    let store = FileStore::create(&dir, &cfg).unwrap();
    let log = Log::with_store(
        LogConfig {
            segment_size: 2048,
            max_batch_size: 1536,
        },
        Rc::new(store),
    );
    let retention = RetentionConfig {
        max_segments: Some(4),
        max_age_ms: None,
        check_every_ms: 100,
    };

    let mut rng = SimRng::seed_from_u64(seed ^ 0x5705_9EED);
    let mut tag = 0u64;
    // offset -> sequence tag of the record committed there.
    let mut expected: Vec<u64> = Vec::new();
    for step in 0..200 {
        let (bytes, records) = random_batch(&mut rng, &mut tag);
        let info = log.append_batch(&bytes).expect("append");
        assert_eq!(info.base_offset, expected.len() as u64, "dense offsets");
        for i in 0..records {
            expected.push(tag - u64::from(records - i));
        }
        log.set_high_watermark(log.next_offset());
        // Randomly spill sealed segments to the cold tier.
        if rng.random_bool(0.3) {
            let idx = rng.below(u64::from(log.head_index().max(1))) as u32;
            log.evict_segment(idx);
        }
        // Occasionally page one back in.
        if rng.random_bool(0.1) {
            let idx = rng.below(u64::from(log.head_index().max(1))) as u32;
            log.restore_segment(idx);
        }
        if step % 20 == 19 {
            log.apply_retention(0, &retention);
        }
    }
    log.apply_retention(0, &retention);
    let start = log.start_offset();
    let end = log.next_offset();
    assert!(start > 0, "retention must have reclaimed something");
    assert_eq!(end, expected.len() as u64);

    // Every reclaimed offset returns the typed error.
    let mut out = Vec::new();
    for offset in [0, start / 2, start - 1] {
        let err = log
            .read_from_checked(offset, 1 << 20, true, &mut out)
            .unwrap_err();
        assert_eq!(
            err,
            ReadError::OutOfRetention {
                requested: offset,
                start
            }
        );
    }

    // Every surviving offset is readable in order with the right payload —
    // mixing hot segments, evicted (sparse-index file reads), and the head.
    let mut offset = start;
    let mut max_bytes = 700; // small cap: many reads, exercises resume
    while offset < end {
        let (start_off, next) = log
            .read_from_checked(offset, max_bytes, true, &mut out)
            .expect("surviving offsets readable");
        assert!(start_off <= offset, "reads start at a batch boundary");
        assert!(next > offset, "progress at offset {offset} (seed {seed})");
        let mut at = 0;
        let mut have = start_off;
        while at < out.len() {
            let h = kdstorage::verify_batch(&out[at..]).unwrap();
            assert_eq!(h.base_offset, have);
            for (i, r) in decode_batch(&out[at..]).unwrap().iter().enumerate() {
                let o = have + i as u64;
                if o >= offset && o < end {
                    let got = u64::from_le_bytes(r.record.value[..8].try_into().unwrap());
                    assert_eq!(got, expected[o as usize], "offset {o} (seed {seed})");
                }
            }
            have = h.last_offset() + 1;
            at += h.total_len();
        }
        assert_eq!(have, next);
        offset = next;
        max_bytes = 700 + (offset % 900) as u32; // vary the cap
    }

    // Sidecars of sealed live segments parse and are monotonic.
    let mut sidecars = 0;
    for i in 0..log.head_index() {
        let path = dir.join(format!("segment-{i:05}.index"));
        if !path.exists() {
            continue; // reclaimed
        }
        sidecars += 1;
        let (base, entries) = FileStore::read_index_sidecar(&path).unwrap();
        assert_eq!(base, log.segment(i).unwrap().base_offset());
        assert_eq!(entries[0].1, 0, "first entry points at segment start");
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
    }
    assert!(sidecars >= 1, "live sealed segments keep their sidecars");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rotation_retention_and_sparse_index_round_trip() {
    for seed in [3, 7, 11, 19, 42, 101, 555, 9001] {
        check_seed(seed);
    }
}

/// The recovered image of a tiered log equals its durable prefix: recovery
/// from the snapshot must reproduce exactly the synced batches, and adopt
/// must leave the new file tier byte-identical to the recovered memory.
#[test]
fn recovery_round_trips_durable_snapshot() {
    for seed in [5u64, 23, 77] {
        let dir = temp_dir(seed.wrapping_mul(31));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = StorageConfig::tiered(&dir).with_sync(SyncMode::Never);
        let store = FileStore::create(&dir, &cfg).unwrap();
        let log = Log::with_store(
            LogConfig {
                segment_size: 2048,
                max_batch_size: 1536,
            },
            Rc::new(store),
        );
        let mut rng = SimRng::seed_from_u64(seed);
        let mut tag = 0u64;
        let mut synced_end = 0u64;
        for step in 0..60 {
            let (bytes, _) = random_batch(&mut rng, &mut tag);
            log.append_batch(&bytes).unwrap();
            if step % 7 == 6 {
                log.sync_all();
                synced_end = log.next_offset();
            }
        }
        // Sealed segments flushed at seal; the head only to its last sync.
        let sealed_end = log.segment(log.head_index() - 1).map(|s| s.next_offset());
        let parts = log
            .store()
            .durable_snapshot()
            .unwrap()
            .into_iter()
            .map(|(b, v)| (b, Rc::new(RefCell::new(v))))
            .collect();
        let dir2 = dir.with_extension("recovered");
        std::fs::remove_dir_all(&dir2).ok();
        let store2 = FileStore::create(&dir2, &cfg).unwrap();
        let recovered = Log::recover_with_store(log.config().clone(), Rc::new(store2), parts);
        let expect = synced_end.max(sealed_end.unwrap_or(0));
        assert_eq!(recovered.next_offset(), expect, "seed {seed}");
        // The adopted file tier is fully synced to the recovered frontier.
        for i in 0..recovered.segment_count() {
            assert_eq!(
                recovered.store().synced_pos(i),
                recovered.segment(i).unwrap().committed_pos()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }
}
