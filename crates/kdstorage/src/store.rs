//! Pluggable segment storage backends: the in-memory tier and the
//! file-backed durable tier.
//!
//! The paper runs Kafka's logs on tmpfs-backed, preallocated segment files
//! (§4.2.2, Fig 1); this module supplies the "file" half that the in-memory
//! reproduction elided. A [`SegmentStore`] hangs off every [`Log`] and is
//! notified at the storage-relevant points of the log lifecycle — segment
//! creation, batch commit, seal, reclaim — so the log code stays a pure
//! data structure while the backend decides what (if anything) hits disk.
//!
//! Two implementations:
//! * [`MemStore`] — the status quo: segments live only in their
//!   `Rc<RefCell<Vec<u8>>>` buffers. Every hook is a no-op and every charge
//!   is zero, so memory-mode behaviour (and the chaos replay digests) are
//!   bit-identical to a build without this module.
//! * [`FileStore`] — the durable tier: one preallocated, length-prefixed
//!   segment file per log segment plus a sparse offset index sidecar.
//!   Batches are written to the file only at sync points, so the file
//!   content *is* the durable prefix — a machine crash simply never sees
//!   the unsynced suffix. Fsync and write latency are charged through a
//!   virtual-time I/O cost model ([`IoCostModel`]) that the broker drains
//!   into `sim::time::sleep`, keeping deterministic replay intact.
//!
//! A write CQE is not an fsync ("the completion fallacy"): sync policy is
//! explicit via [`SyncMode`] and observable through the accumulated
//! [`IoCharge`] (fsync count, flushed bytes) that feeds the `storage.*`
//! metrics.

use std::cell::{Cell, RefCell};
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::record;
use crate::segment::Segment;

/// When committed bytes are made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Flush only when a segment seals (rolls). A crash loses the whole
    /// active segment's unflushed content.
    Never,
    /// A broker-side flusher syncs the active segment every N virtual
    /// milliseconds. A crash loses at most the last interval's commits.
    EveryMs(u64),
    /// Flush + fsync inside every commit: no acked record is ever lost to
    /// a crash (the Kafka `flush.messages=1` regime).
    PerCommit,
}

/// Virtual-time cost model for file I/O. All latencies are *modeled*: real
/// file operations complete synchronously, then the accumulated
/// nanoseconds are slept on the simulated clock by the broker.
#[derive(Debug, Clone, Copy)]
pub struct IoCostModel {
    /// Base cost of one fsync (device flush latency).
    pub fsync_ns: u64,
    /// Sequential write throughput, as nanoseconds per KiB.
    pub write_ns_per_kib: u64,
    /// Sequential read throughput, as nanoseconds per KiB.
    pub read_ns_per_kib: u64,
}

impl Default for IoCostModel {
    fn default() -> Self {
        // Roughly an NVMe device: 50 µs flush, ~3.4 GiB/s write, ~5 GiB/s
        // read.
        IoCostModel {
            fsync_ns: 50_000,
            write_ns_per_kib: 300,
            read_ns_per_kib: 200,
        }
    }
}

impl IoCostModel {
    fn write_cost(&self, bytes: u64) -> u64 {
        bytes * self.write_ns_per_kib / 1024
    }

    fn read_cost(&self, bytes: u64) -> u64 {
        bytes * self.read_ns_per_kib / 1024
    }
}

/// Size/time-based retention for sealed segments.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetentionConfig {
    /// Keep at most this many live (non-reclaimed) segments; oldest sealed
    /// segments below the high watermark are reclaimed first.
    pub max_segments: Option<u32>,
    /// Reclaim sealed segments older than this (measured from seal time).
    pub max_age_ms: Option<u64>,
    /// How often the broker's retention sweep runs.
    pub check_every_ms: u64,
}

impl RetentionConfig {
    /// Retention disabled: segments live forever.
    pub fn none() -> Self {
        RetentionConfig {
            max_segments: None,
            max_age_ms: None,
            check_every_ms: 1_000,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.max_segments.is_some() || self.max_age_ms.is_some()
    }
}

/// Which backend a broker's logs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMode {
    /// In-memory only (the pre-durability status quo).
    Memory,
    /// Tiered: the active segment stays in an MR-registered in-memory
    /// region (RDMA produce remains zero-copy), sealed segments spill to
    /// preallocated files and can be evicted from memory; cold fetches go
    /// through the file tier.
    Tiered,
}

/// Storage selection + tuning, carried by `BrokerConfig`/`ClusterOptions`.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    pub mode: StorageMode,
    /// Base directory for segment files (tiered mode). Each broker nests
    /// `node<N>/<topic>-<partition>/` under it.
    pub dir: Option<PathBuf>,
    pub sync: SyncMode,
    pub cost: IoCostModel,
    pub retention: RetentionConfig,
    /// Sparse-index density: one index entry every N committed batches.
    pub index_interval: u32,
    /// Issue real `fdatasync` calls at flush points. The *modeled* fsync
    /// latency always flows through the virtual clock regardless; the
    /// physical call only protects against host-OS crashes (which the
    /// simulator never experiences in-process) and blocks the simulation
    /// thread for ~0.5-1ms per flush, so it defaults to off.
    pub physical_fsync: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            mode: StorageMode::Memory,
            dir: None,
            sync: SyncMode::EveryMs(5),
            cost: IoCostModel::default(),
            retention: RetentionConfig::none(),
            index_interval: 4,
            physical_fsync: false,
        }
    }
}

impl StorageConfig {
    /// Tiered (file-backed) storage rooted at `dir`.
    pub fn tiered(dir: impl Into<PathBuf>) -> Self {
        StorageConfig {
            mode: StorageMode::Tiered,
            dir: Some(dir.into()),
            ..StorageConfig::default()
        }
    }

    pub fn with_sync(mut self, sync: SyncMode) -> Self {
        self.sync = sync;
        self
    }

    pub fn with_retention(mut self, retention: RetentionConfig) -> Self {
        self.retention = retention;
        self
    }

    /// Opt back in to physical `fdatasync` at flush points (see
    /// [`StorageConfig::physical_fsync`]).
    pub fn with_physical_fsync(mut self, on: bool) -> Self {
        self.physical_fsync = on;
        self
    }
}

/// Accumulated I/O work since the last drain: modeled latency plus the
/// observable counters behind the `storage.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCharge {
    /// Modeled nanoseconds of file I/O to charge on the virtual clock.
    pub ns: u64,
    /// Bytes written to segment files.
    pub flushed_bytes: u64,
    /// Number of fsyncs issued.
    pub fsyncs: u64,
    /// Segments sealed (rotated) since the last drain.
    pub rotated: u64,
    /// Segments reclaimed by retention since the last drain.
    pub reclaimed: u64,
    /// Bytes served from the cold (file) tier.
    pub cold_read_bytes: u64,
}

impl IoCharge {
    pub fn is_zero(&self) -> bool {
        *self == IoCharge::default()
    }
}

/// Outcome of a cold (file-tier) batch-range read.
#[derive(Debug, Clone, Copy)]
pub struct ColdRead {
    /// Base offset of the first batch copied out, if any.
    pub start_offset: Option<u64>,
    /// Offset after the last batch copied out.
    pub next_offset: u64,
    /// True when the read hit the offset limit or byte cap — the caller
    /// stops scanning further segments.
    pub done: bool,
}

/// Backend notifications from the log lifecycle. All hooks are infallible
/// from the log's perspective: file errors panic (the simulation has no
/// story for a half-broken disk), costs accumulate into an internal
/// [`IoCharge`] drained with [`take_charge`](SegmentStore::take_charge).
pub trait SegmentStore {
    fn storage_mode(&self) -> StorageMode;

    /// A new segment `index` was opened with `base_offset`/`capacity`.
    fn on_create(&self, index: u32, base_offset: u64, capacity: u32);

    /// A batch was committed into segment `index` (the new committed
    /// frontier is `seg.committed_pos()`).
    fn on_commit(&self, index: u32, seg: &Segment);

    /// Write the dirty suffix `[synced, committed)` of segment `index` to
    /// its file and fsync.
    fn flush(&self, index: u32, seg: &Segment);

    /// Segment `index` sealed (the log rolled): final flush + persist the
    /// sparse-index sidecar.
    fn on_seal(&self, index: u32, seg: &Segment);

    /// Segment `index` was reclaimed by retention: delete its files.
    fn on_reclaim(&self, index: u32);

    /// Read back the full durable image of segment `index` (page-in for
    /// RDMA consumers of cold segments). `None` when there is no file.
    fn load(&self, index: u32) -> Option<Vec<u8>>;

    /// Serve whole batches from the file tier starting at the batch
    /// containing `offset`, stopping at `limit` (exclusive offset) or when
    /// `out` reaches `max_bytes`.
    fn read_cold(
        &self,
        index: u32,
        offset: u64,
        limit: u64,
        max_bytes: u32,
        out: &mut Vec<u8>,
    ) -> ColdRead;

    /// Byte position up to which segment `index` is durable.
    fn synced_pos(&self, index: u32) -> u32;

    /// Adopt a recovered segment: (re)create its file from the in-memory
    /// image's committed prefix and rebuild the sparse index.
    fn adopt(&self, index: u32, seg: &Segment);

    /// Fault hook: garble the last `k` durable bytes of the active
    /// (highest-index live) segment file. Returns bytes garbled.
    fn garble_active_tail(&self, k: u32) -> u64;

    /// The durable image of every live segment as `(base_offset, bytes)`,
    /// read back from the files. `None` for backends with no durable tier.
    fn durable_snapshot(&self) -> Option<Vec<(u64, Vec<u8>)>>;

    /// Drain accumulated I/O cost and counters.
    fn take_charge(&self) -> IoCharge;
}

/// The in-memory backend: every hook is a no-op, every charge zero.
#[derive(Default)]
pub struct MemStore;

impl SegmentStore for MemStore {
    fn storage_mode(&self) -> StorageMode {
        StorageMode::Memory
    }

    fn on_create(&self, _index: u32, _base_offset: u64, _capacity: u32) {}

    fn on_commit(&self, _index: u32, _seg: &Segment) {}

    fn flush(&self, _index: u32, _seg: &Segment) {}

    fn on_seal(&self, _index: u32, _seg: &Segment) {}

    fn on_reclaim(&self, _index: u32) {}

    fn load(&self, _index: u32) -> Option<Vec<u8>> {
        None
    }

    fn read_cold(
        &self,
        _index: u32,
        offset: u64,
        _limit: u64,
        _max_bytes: u32,
        _out: &mut Vec<u8>,
    ) -> ColdRead {
        ColdRead {
            start_offset: None,
            next_offset: offset,
            done: false,
        }
    }

    fn synced_pos(&self, _index: u32) -> u32 {
        0
    }

    fn adopt(&self, _index: u32, _seg: &Segment) {}

    fn garble_active_tail(&self, _k: u32) -> u64 {
        0
    }

    fn durable_snapshot(&self) -> Option<Vec<(u64, Vec<u8>)>> {
        None
    }

    fn take_charge(&self) -> IoCharge {
        IoCharge::default()
    }
}

/// Per-segment durable state.
struct SegState {
    file: File,
    base_offset: u64,
    capacity: u32,
    /// Durable frontier: bytes `[0, synced)` of the segment are in the file.
    synced: Cell<u32>,
    /// Committed batches already considered for the sparse index.
    indexed: Cell<usize>,
    /// Sparse offset index: `(base_offset, byte position)` of every
    /// `index_interval`-th committed batch. Entry 0 is always present.
    sparse: RefCell<Vec<(u64, u32)>>,
    /// Set when retention deleted the files.
    dead: Cell<bool>,
}

/// The file-backed tier: one preallocated segment file (plus a sparse-index
/// sidecar at seal) per log segment, under one directory per partition.
pub struct FileStore {
    dir: PathBuf,
    sync: SyncMode,
    cost: IoCostModel,
    index_interval: u32,
    physical_fsync: bool,
    states: RefCell<Vec<SegState>>,
    charge: Cell<IoCharge>,
}

impl FileStore {
    /// Creates a fresh store rooted at `dir`, wiping any stale content from
    /// a previous run (replaying a seed must not see old files).
    pub fn create(dir: impl Into<PathBuf>, cfg: &StorageConfig) -> io::Result<FileStore> {
        let dir = dir.into();
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;
        Ok(FileStore {
            dir,
            sync: cfg.sync,
            cost: cfg.cost,
            index_interval: cfg.index_interval.max(1),
            physical_fsync: cfg.physical_fsync,
            states: RefCell::new(Vec::new()),
            charge: Cell::new(IoCharge::default()),
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn sync_mode(&self) -> SyncMode {
        self.sync
    }

    fn segment_path(&self, index: u32) -> PathBuf {
        self.dir.join(format!("segment-{index:05}.log"))
    }

    fn index_path(&self, index: u32) -> PathBuf {
        self.dir.join(format!("segment-{index:05}.index"))
    }

    fn add_charge(&self, f: impl FnOnce(&mut IoCharge)) {
        let mut c = self.charge.get();
        f(&mut c);
        self.charge.set(c);
    }

    fn create_file(&self, index: u32, capacity: u32) -> File {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.segment_path(index))
            .expect("create segment file");
        // Preallocate full-size up front (§4.2.2): the durable image always
        // has the segment's full extent; unsynced bytes read back as zeros,
        // which the recovery scan treats as an absent batch.
        file.set_len(u64::from(capacity)).expect("preallocate");
        file
    }

    /// Advances the sparse index over newly committed batches.
    fn index_new_batches(&self, st: &SegState, seg: &Segment) {
        let total = seg.batch_count();
        let mut i = st.indexed.get();
        let mut sparse = st.sparse.borrow_mut();
        while i < total {
            if (i as u32).is_multiple_of(self.index_interval) {
                let b = seg.batch_at(i).expect("indexed batch exists");
                sparse.push((b.base_offset, b.pos));
            }
            i += 1;
        }
        st.indexed.set(total);
    }

    /// Writes `[synced, committed)` of `seg` to the file, fsyncs, charges.
    fn flush_state(&self, st: &SegState, seg: &Segment) {
        let committed = seg.committed_pos();
        let synced = st.synced.get();
        if committed > synced {
            let len = committed - synced;
            seg.with_slice(synced, len, |bytes| {
                st.file
                    .write_all_at(bytes, u64::from(synced))
                    .expect("segment write");
            });
            st.synced.set(committed);
            self.add_charge(|c| {
                c.ns += self.cost.write_cost(u64::from(len));
                c.flushed_bytes += u64::from(len);
            });
        }
        // The modeled fsync cost always flows through virtual time; the
        // *physical* fdatasync only matters if the host OS dies mid-run
        // (in-process crash recovery reads page-cache-backed file bytes
        // either way) and stalls the simulation thread ~0.5-1ms per call,
        // so it is opt-in.
        if self.physical_fsync {
            st.file.sync_data().expect("segment fsync");
        }
        self.add_charge(|c| {
            c.ns += self.cost.fsync_ns;
            c.fsyncs += 1;
        });
        self.index_new_batches(st, seg);
    }

    /// Persists the sparse index sidecar (`segment-N.index`): a flat list
    /// of big-endian `(u64 offset, u32 pos)` pairs prefixed by the
    /// segment's base offset.
    fn write_index_sidecar(&self, index: u32, st: &SegState) {
        let sparse = st.sparse.borrow();
        let mut bytes = Vec::with_capacity(8 + sparse.len() * 12);
        bytes.extend_from_slice(&st.base_offset.to_be_bytes());
        for (off, pos) in sparse.iter() {
            bytes.extend_from_slice(&off.to_be_bytes());
            bytes.extend_from_slice(&pos.to_be_bytes());
        }
        std::fs::write(self.index_path(index), &bytes).expect("write index sidecar");
        self.add_charge(|c| {
            c.ns += self.cost.write_cost(bytes.len() as u64);
            c.flushed_bytes += bytes.len() as u64;
        });
    }

    /// Parses a sidecar produced by [`write_index_sidecar`] (test/tooling
    /// aid): `(base_offset, entries)`.
    pub fn read_index_sidecar(path: &Path) -> io::Result<(u64, Vec<(u64, u32)>)> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 8 || (bytes.len() - 8) % 12 != 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad sidecar"));
        }
        let base = u64::from_be_bytes(bytes[..8].try_into().unwrap());
        let entries = bytes[8..]
            .chunks_exact(12)
            .map(|c| {
                (
                    u64::from_be_bytes(c[..8].try_into().unwrap()),
                    u32::from_be_bytes(c[8..].try_into().unwrap()),
                )
            })
            .collect();
        Ok((base, entries))
    }
}

impl SegmentStore for FileStore {
    fn storage_mode(&self) -> StorageMode {
        StorageMode::Tiered
    }

    fn on_create(&self, index: u32, base_offset: u64, capacity: u32) {
        let states = &mut *self.states.borrow_mut();
        assert_eq!(states.len(), index as usize, "segments created in order");
        let file = self.create_file(index, capacity);
        self.add_charge(|c| c.ns += self.cost.fsync_ns); // allocate+extend
        states.push(SegState {
            file,
            base_offset,
            capacity,
            synced: Cell::new(0),
            indexed: Cell::new(0),
            sparse: RefCell::new(Vec::new()),
            dead: Cell::new(false),
        });
    }

    fn on_commit(&self, index: u32, seg: &Segment) {
        if matches!(self.sync, SyncMode::PerCommit) {
            self.flush(index, seg);
        }
    }

    fn flush(&self, index: u32, seg: &Segment) {
        let states = self.states.borrow();
        let st = &states[index as usize];
        if st.dead.get() {
            return;
        }
        self.flush_state(st, seg);
    }

    fn on_seal(&self, index: u32, seg: &Segment) {
        {
            let states = self.states.borrow();
            let st = &states[index as usize];
            if !st.dead.get() {
                self.flush_state(st, seg);
                self.write_index_sidecar(index, st);
            }
        }
        self.add_charge(|c| c.rotated += 1);
    }

    fn on_reclaim(&self, index: u32) {
        let states = self.states.borrow();
        let st = &states[index as usize];
        if st.dead.get() {
            return;
        }
        st.dead.set(true);
        let _ = std::fs::remove_file(self.segment_path(index));
        let _ = std::fs::remove_file(self.index_path(index));
        self.add_charge(|c| {
            c.ns += self.cost.fsync_ns; // directory metadata update
            c.reclaimed += 1;
        });
    }

    fn load(&self, index: u32) -> Option<Vec<u8>> {
        let states = self.states.borrow();
        let st = states.get(index as usize)?;
        if st.dead.get() {
            return None;
        }
        let mut bytes = vec![0u8; st.capacity as usize];
        st.file.read_exact_at(&mut bytes, 0).expect("segment read");
        self.add_charge(|c| {
            c.ns += self.cost.read_cost(bytes.len() as u64);
            c.cold_read_bytes += bytes.len() as u64;
        });
        Some(bytes)
    }

    fn read_cold(
        &self,
        index: u32,
        offset: u64,
        limit: u64,
        max_bytes: u32,
        out: &mut Vec<u8>,
    ) -> ColdRead {
        let states = self.states.borrow();
        let mut res = ColdRead {
            start_offset: None,
            next_offset: offset,
            done: false,
        };
        let Some(st) = states.get(index as usize) else {
            return res;
        };
        if st.dead.get() {
            return res;
        }
        let synced = st.synced.get();
        // Sparse-index seek: start at the last indexed batch at or before
        // `offset`, then walk length prefixes.
        let mut pos = {
            let sparse = st.sparse.borrow();
            match sparse.partition_point(|e| e.0 <= offset).checked_sub(1) {
                Some(i) => sparse[i].1,
                None => 0,
            }
        };
        let mut hdr = [0u8; record::BATCH_HEADER_LEN];
        let mut read_bytes = 0u64;
        loop {
            if u64::from(pos) + record::BATCH_HEADER_LEN as u64 > u64::from(synced) {
                break;
            }
            st.file
                .read_exact_at(&mut hdr, u64::from(pos))
                .expect("header read");
            read_bytes += record::BATCH_HEADER_LEN as u64;
            let Ok(h) = record::parse_header(&hdr) else {
                break; // zeroed / garbled region: end of durable batches
            };
            let total = h.total_len() as u32;
            if u64::from(pos) + u64::from(total) > u64::from(synced) {
                break;
            }
            let next = h.base_offset + u64::from(h.record_count);
            if next <= offset {
                pos += total; // before the requested offset: skip
                continue;
            }
            if next > limit {
                res.done = true;
                break;
            }
            if !out.is_empty() && out.len() + total as usize > max_bytes as usize {
                res.done = true;
                break;
            }
            let at = out.len();
            out.resize(at + total as usize, 0);
            st.file
                .read_exact_at(&mut out[at..], u64::from(pos))
                .expect("batch read");
            read_bytes += u64::from(total);
            res.start_offset.get_or_insert(h.base_offset);
            res.next_offset = next;
            pos += total;
            if out.len() >= max_bytes as usize {
                res.done = true;
                break;
            }
        }
        if read_bytes > 0 {
            self.add_charge(|c| {
                c.ns += self.cost.read_cost(read_bytes);
                c.cold_read_bytes += read_bytes;
            });
        }
        res
    }

    fn synced_pos(&self, index: u32) -> u32 {
        let states = self.states.borrow();
        states
            .get(index as usize)
            .map_or(0, |st| if st.dead.get() { 0 } else { st.synced.get() })
    }

    fn adopt(&self, index: u32, seg: &Segment) {
        let states = &mut *self.states.borrow_mut();
        assert_eq!(states.len(), index as usize, "segments adopted in order");
        let file = self.create_file(index, seg.capacity());
        let st = SegState {
            file,
            base_offset: seg.base_offset(),
            capacity: seg.capacity(),
            synced: Cell::new(0),
            indexed: Cell::new(0),
            sparse: RefCell::new(Vec::new()),
            dead: Cell::new(false),
        };
        self.flush_state(&st, seg);
        states.push(st);
    }

    fn garble_active_tail(&self, k: u32) -> u64 {
        let states = self.states.borrow();
        let Some(st) = states.iter().rev().find(|st| !st.dead.get()) else {
            return 0;
        };
        let synced = st.synced.get();
        let k = k.min(synced);
        if k == 0 {
            return 0;
        }
        let start = synced - k;
        let mut bytes = vec![0u8; k as usize];
        st.file
            .read_exact_at(&mut bytes, u64::from(start))
            .expect("tail read");
        for b in &mut bytes {
            *b ^= 0xA5;
        }
        st.file
            .write_all_at(&bytes, u64::from(start))
            .expect("tail garble");
        st.file.sync_data().expect("tail fsync");
        u64::from(k)
    }

    fn durable_snapshot(&self) -> Option<Vec<(u64, Vec<u8>)>> {
        let states = self.states.borrow();
        let mut out = Vec::new();
        for st in states.iter() {
            if st.dead.get() {
                continue;
            }
            let mut bytes = vec![0u8; st.capacity as usize];
            st.file.read_exact_at(&mut bytes, 0).expect("segment read");
            out.push((st.base_offset, bytes));
        }
        Some(out)
    }

    fn take_charge(&self) -> IoCharge {
        self.charge.replace(IoCharge::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use crate::log::{Log, LogConfig};
    use crate::record::{BatchBuilder, Record};

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kdstore-{}-{}", tag, std::process::id()))
    }

    fn batch(n: usize, size: usize) -> Vec<u8> {
        let mut b = BatchBuilder::new(1);
        for i in 0..n {
            b.append(&Record::value(vec![(i % 251) as u8; size]));
        }
        b.build().unwrap()
    }

    fn tiered_log(tag: &str, sync: SyncMode) -> (Log, PathBuf) {
        let dir = temp_dir(tag);
        let cfg = StorageConfig::tiered(&dir).with_sync(sync);
        let store = FileStore::create(&dir, &cfg).unwrap();
        let log = Log::with_store(
            LogConfig {
                segment_size: 4096,
                max_batch_size: 2048,
            },
            Rc::new(store),
        );
        (log, dir)
    }

    #[test]
    fn per_commit_sync_makes_every_commit_durable() {
        let (log, dir) = tiered_log("percommit", SyncMode::PerCommit);
        log.append_batch(&batch(3, 40)).unwrap();
        log.append_batch(&batch(2, 40)).unwrap();
        let head = log.head();
        assert_eq!(log.store().synced_pos(0), head.committed_pos());
        let charge = log.take_io();
        assert_eq!(charge.fsyncs, 2, "one per commit");
        assert!(charge.flushed_bytes > 0);
        assert!(charge.ns > 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn never_sync_leaves_active_segment_volatile() {
        let (log, dir) = tiered_log("never", SyncMode::Never);
        log.append_batch(&batch(3, 40)).unwrap();
        assert_eq!(log.store().synced_pos(0), 0);
        // Sealing forces the flush.
        log.roll();
        assert_eq!(log.store().synced_pos(0), log.segment(0).unwrap().committed_pos());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn durable_snapshot_recovers_only_synced_prefix() {
        let (log, dir) = tiered_log("snap", SyncMode::Never);
        log.append_batch(&batch(2, 50)).unwrap();
        log.sync_all();
        log.append_batch(&batch(4, 50)).unwrap(); // never synced
        let parts = log.store().durable_snapshot().unwrap();
        assert_eq!(parts.len(), 1);
        let bufs = parts
            .into_iter()
            .map(|(b, v)| (b, Rc::new(RefCell::new(v))))
            .collect();
        let recovered = Log::recover_with_store(
            log.config().clone(),
            Rc::new(MemStore),
            bufs,
        );
        assert_eq!(recovered.next_offset(), 2, "unsynced suffix lost");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn cold_read_serves_batches_through_sparse_index() {
        let (log, dir) = tiered_log("cold", SyncMode::Never);
        let payload = batch(2, 300);
        for _ in 0..10 {
            log.append_batch(&payload).unwrap();
        }
        assert!(log.segment_count() >= 2, "must span segments");
        log.set_high_watermark(log.next_offset());
        let hot = log.read_from(0, 1 << 20, true);
        // Evict every sealed segment, then read again through the file tier.
        let mut evicted = 0;
        for i in 0..log.segment_count() - 1 {
            assert!(log.evict_segment(i), "sealed segment evicts");
            assert!(!log.segment(i).unwrap().is_resident());
            evicted += 1;
        }
        assert!(evicted >= 1);
        let cold = log.read_from(0, 1 << 20, true);
        assert_eq!(cold.bytes, hot.bytes, "cold bytes identical");
        assert_eq!(cold.next_offset, hot.next_offset);
        let charge = log.take_io();
        assert!(charge.cold_read_bytes > 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn evicted_segment_pages_back_in() {
        let (log, dir) = tiered_log("pagein", SyncMode::Never);
        let payload = batch(1, 600);
        for _ in 0..8 {
            log.append_batch(&payload).unwrap();
        }
        let before = log.segment(0).unwrap().shared_buf().borrow().clone();
        assert!(log.evict_segment(0));
        assert_eq!(log.segment(0).unwrap().shared_buf().borrow().len(), 0);
        assert!(log.restore_segment(0));
        let seg = log.segment(0).unwrap();
        assert!(seg.is_resident());
        // The committed prefix round-trips exactly; RDMA consumers read
        // through the same shared RefCell they registered.
        let committed = seg.committed_pos() as usize;
        assert_eq!(
            &seg.shared_buf().borrow()[..committed],
            &before[..committed]
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sidecar_round_trips_sparse_index() {
        let (log, dir) = tiered_log("sidecar", SyncMode::Never);
        let payload = batch(1, 300);
        for _ in 0..12 {
            log.append_batch(&payload).unwrap();
        }
        assert!(log.segment_count() >= 2);
        let path = dir.join("segment-00000.index");
        assert!(path.exists(), "sidecar written at seal");
        let (base, entries) = FileStore::read_index_sidecar(&path).unwrap();
        assert_eq!(base, 0);
        assert!(!entries.is_empty());
        assert_eq!(entries[0], (0, 0), "first batch always indexed");
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1, "monotonic index");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn garble_tail_corrupts_only_last_k_durable_bytes() {
        let (log, dir) = tiered_log("garble", SyncMode::PerCommit);
        log.append_batch(&batch(2, 100)).unwrap();
        let synced = log.store().synced_pos(0);
        let garbled = log.store().garble_active_tail(16);
        assert_eq!(garbled, 16);
        let parts = log.store().durable_snapshot().unwrap();
        let (_, bytes) = &parts[0];
        let clean = log.head().read(0, synced - 16);
        assert_eq!(&bytes[..(synced - 16) as usize], &clean[..]);
        assert_ne!(
            &bytes[(synced - 16) as usize..synced as usize],
            &log.head().read(synced - 16, 16)[..]
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn retention_reclaims_old_segments_and_deletes_files() {
        let (log, dir) = tiered_log("retain", SyncMode::PerCommit);
        let payload = batch(1, 600);
        for _ in 0..20 {
            log.append_batch(&payload).unwrap();
        }
        log.set_high_watermark(log.next_offset());
        assert!(log.segment_count() >= 4);
        let retention = RetentionConfig {
            max_segments: Some(2),
            max_age_ms: None,
            check_every_ms: 100,
        };
        let reclaimed = log.apply_retention(0, &retention);
        assert!(reclaimed >= 1);
        assert!(log.start_offset() > 0);
        assert!(!dir.join("segment-00000.log").exists(), "file deleted");
        // Reads below the retention floor fail with the typed error.
        let mut out = Vec::new();
        let err = log
            .read_from_checked(0, 4096, true, &mut out)
            .unwrap_err();
        match err {
            crate::log::ReadError::OutOfRetention { requested, start } => {
                assert_eq!(requested, 0);
                assert_eq!(start, log.start_offset());
            }
        }
        // Surviving offsets still read fine.
        let f = log.read_from(log.start_offset(), 1 << 20, true);
        assert_eq!(f.start_offset, log.start_offset());
        assert_eq!(f.next_offset, log.next_offset());
        std::fs::remove_dir_all(dir).ok();
    }
}
