//! Topic and partition naming.

use std::fmt;
use std::rc::Rc;

/// Interned topic name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicId(pub Rc<str>);

impl TopicId {
    pub fn new(name: &str) -> Self {
        TopicId(Rc::from(name))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TopicId {
    fn from(s: &str) -> Self {
        TopicId::new(s)
    }
}

/// Partition number within a topic.
pub type PartitionId = u32;

/// A topic partition — the unit of ordering, replication, and RDMA access
/// grants (paper §3, "Kafka Topics").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicPartition {
    pub topic: TopicId,
    pub partition: PartitionId,
}

impl TopicPartition {
    pub fn new(topic: impl Into<TopicId>, partition: PartitionId) -> Self {
        TopicPartition {
            topic: topic.into(),
            partition,
        }
    }
}

impl fmt::Display for TopicPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.topic, self.partition)
    }
}

impl From<(&str, u32)> for TopicPartition {
    fn from((t, p): (&str, u32)) -> Self {
        TopicPartition::new(t, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_matches_kafka_convention() {
        let tp = TopicPartition::new("events", 3);
        assert_eq!(tp.to_string(), "events-3");
    }

    #[test]
    fn usable_as_map_key() {
        let mut set = HashSet::new();
        set.insert(TopicPartition::new("a", 0));
        set.insert(TopicPartition::new("a", 0));
        set.insert(TopicPartition::new("a", 1));
        assert_eq!(set.len(), 2);
    }
}
