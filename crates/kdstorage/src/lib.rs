//! Log-structured storage for the KafkaDirect reproduction.
//!
//! This crate is the "Apache Kafka data plane" substrate (paper §3):
//! topics are partitioned into topic partitions (TPs), each TP is an
//! append-only log physically made of fixed-size, **preallocated** segment
//! files (Fig 1 — preallocation is what makes RDMA writes into files
//! possible, §4.2.2). Records travel in CRC32C-protected batches; the broker
//! assigns dense per-TP offsets at commit time.
//!
//! Layering notes:
//! * Segment memory is `Rc<RefCell<Vec<u8>>>`, shareable with
//!   `rnic::ShmBuf::from_shared` so an RDMA write lands bytes directly in
//!   the log — the zero-copy property everything else builds on.
//! * This crate is runtime-agnostic (no `sim` dependency): it is plain data
//!   structure code, unit-testable without a runtime.

pub mod codec;
pub mod crc32c;
pub mod log;
pub mod record;
pub mod segment;
pub mod store;
pub mod topics;

pub use codec::{Reader, WireError, Writer};
pub use log::{AppendError, AppendInfo, Log, LogConfig, LogPosition, ReadError};
pub use store::{
    ColdRead, FileStore, IoCharge, IoCostModel, MemStore, RetentionConfig, SegmentStore,
    StorageConfig, StorageMode, SyncMode,
};
pub use record::{
    assign_base_offset, parse_header, verify_batch, BatchBuilder, BatchError, BatchHeader, Record,
    RecordView, BATCH_HEADER_LEN,
};
pub use segment::Segment;
pub use topics::{PartitionId, TopicId, TopicPartition};
