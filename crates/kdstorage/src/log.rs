//! The topic-partition log: an ordered chain of segments (paper Fig 1).
//!
//! Responsibilities:
//! * rolling to a new preallocated head file when the current one fills,
//! * dense offset assignment at commit time,
//! * the high watermark (replication-committed offset) and its byte-level
//!   position — what the broker publishes to RDMA consumers as the "last
//!   readable byte" of each file (§4.4.2),
//! * byte-range reads for TCP fetches and pull replication.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::record::{self, BatchError};
use crate::segment::{BatchIndexEntry, Segment};
use crate::store::{IoCharge, MemStore, RetentionConfig, SegmentStore};

/// Log configuration.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Segment ("file") size; the paper deploys 1 GiB (§5 Settings). Tests
    /// and benches use smaller segments to bound memory.
    pub segment_size: u32,
    /// Maximum encoded batch size (Kafka's 1 MiB record limit, §3).
    pub max_batch_size: u32,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_size: 64 * 1024 * 1024,
            max_batch_size: 1024 * 1024,
        }
    }
}

impl LogConfig {
    pub fn with_segment_size(mut self, size: u32) -> Self {
        self.segment_size = size;
        self
    }
}

/// Byte-level position in a log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LogPosition {
    /// Index into the segment chain.
    pub segment: u32,
    /// Byte position within that segment.
    pub pos: u32,
}

/// Result of a successful append/commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendInfo {
    pub base_offset: u64,
    pub record_count: u32,
    pub position: LogPosition,
    pub total_len: u32,
    /// True if this append created a new head file.
    pub rolled: bool,
}

/// Errors from append/commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendError {
    /// Batch bigger than `max_batch_size` (or than a whole segment).
    TooLarge { len: usize, max: usize },
    /// Validation failed.
    Batch(BatchError),
    /// In-place commit position does not match the committed frontier.
    NonContiguousCommit { expected: u32, got: u32 },
    /// A replicated batch's leader-assigned base offset does not match this
    /// replica's log end.
    OffsetMismatch { expected: u64, got: u64 },
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::TooLarge { len, max } => write!(f, "batch {len} B exceeds max {max} B"),
            AppendError::Batch(e) => write!(f, "{e}"),
            AppendError::NonContiguousCommit { expected, got } => {
                write!(f, "commit at {got} but committed frontier is {expected}")
            }
            AppendError::OffsetMismatch { expected, got } => {
                write!(f, "replica batch at offset {got} but log end is {expected}")
            }
        }
    }
}

impl std::error::Error for AppendError {}

/// Errors from checked reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// The requested offset precedes the retention floor: its segment was
    /// reclaimed and its bytes no longer exist on any tier.
    OutOfRetention { requested: u64, start: u64 },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::OutOfRetention { requested, start } => {
                write!(f, "offset {requested} below retention floor {start}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

impl From<BatchError> for AppendError {
    fn from(e: BatchError) -> Self {
        AppendError::Batch(e)
    }
}

/// Result of a byte-range read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchSlice {
    /// Raw bytes of zero or more whole batches.
    pub bytes: Vec<u8>,
    /// Offset of the first record in `bytes` (may precede the requested
    /// offset: reads start at a batch boundary, as in Kafka).
    pub start_offset: u64,
    /// Offset to request next.
    pub next_offset: u64,
}

/// A topic-partition log.
pub struct Log {
    config: LogConfig,
    /// Storage backend notified at segment lifecycle points; the in-memory
    /// backend makes every notification a no-op.
    store: Rc<dyn SegmentStore>,
    segments: RefCell<Vec<Rc<Segment>>>,
    /// First offset not yet replicated to the configured in-sync replicas;
    /// consumers may not read at or past this (§4.4.2).
    high_watermark: Cell<u64>,
    /// Byte position equivalent of `high_watermark`.
    hw_position: Cell<LogPosition>,
    /// Virtual-time source for segment seal stamps (age-based retention).
    /// Unset (0) outside a runtime; the broker installs `sim::now`.
    clock: RefCell<Option<Box<dyn Fn() -> u64>>>,
}

impl Log {
    pub fn new(config: LogConfig) -> Log {
        Log::with_store(config, Rc::new(MemStore))
    }

    /// A fresh log on an explicit storage backend.
    pub fn with_store(config: LogConfig, store: Rc<dyn SegmentStore>) -> Log {
        let head = Segment::new(0, config.segment_size);
        store.on_create(0, 0, config.segment_size);
        Log {
            config,
            store,
            segments: RefCell::new(vec![head]),
            high_watermark: Cell::new(0),
            hw_position: Cell::new(LogPosition { segment: 0, pos: 0 }),
            clock: RefCell::new(None),
        }
    }

    /// Rebuilds a log from the raw segment buffers that survived a crash
    /// (the buffers are the partition's "files"; in the simulation they are
    /// the durable medium). Each buffer is scanned with
    /// [`Segment::recover`], re-chaining base offsets densely from zero;
    /// every segment but the last is re-sealed. The high watermark restarts
    /// at zero — it is volatile state that replication (or the single-
    /// replica commit rule) re-advances.
    pub fn recover(config: LogConfig, buffers: Vec<Rc<RefCell<Vec<u8>>>>) -> Log {
        let parts = buffers.into_iter().map(|b| (0, b)).collect();
        Log::recover_with_store(config, Rc::new(MemStore), parts)
    }

    /// As [`recover`](Self::recover), onto an explicit backend. Each part
    /// is `(base_offset, bytes)`; offsets re-chain densely from the first
    /// part's base (non-zero after retention reclaimed a prefix). Every
    /// recovered segment is adopted by the store — the file tier rewrites
    /// its files from the recovered committed prefix, so the disk image and
    /// the memory image agree from the first commit after restart.
    pub fn recover_with_store(
        config: LogConfig,
        store: Rc<dyn SegmentStore>,
        parts: Vec<(u64, Rc<RefCell<Vec<u8>>>)>,
    ) -> Log {
        let mut segments: Vec<Rc<Segment>> = Vec::with_capacity(parts.len().max(1));
        let mut next = parts.first().map_or(0, |(base, _)| *base);
        for (_, buf) in parts {
            let seg = Segment::recover(next, buf);
            next = seg.next_offset();
            segments.push(seg);
        }
        if segments.is_empty() {
            segments.push(Segment::new(0, config.segment_size));
        }
        for s in &segments[..segments.len() - 1] {
            s.seal();
        }
        for (i, s) in segments.iter().enumerate() {
            store.adopt(i as u32, s);
        }
        Log {
            config,
            store,
            segments: RefCell::new(segments),
            high_watermark: Cell::new(0),
            hw_position: Cell::new(LogPosition { segment: 0, pos: 0 }),
            clock: RefCell::new(None),
        }
    }

    pub fn config(&self) -> &LogConfig {
        &self.config
    }

    /// The storage backend.
    pub fn store(&self) -> &Rc<dyn SegmentStore> {
        &self.store
    }

    /// Installs the virtual-time source used to stamp segment seals.
    pub fn set_clock(&self, clock: Box<dyn Fn() -> u64>) {
        *self.clock.borrow_mut() = Some(clock);
    }

    fn now_ns(&self) -> u64 {
        self.clock.borrow().as_ref().map_or(0, |c| c())
    }

    /// Drains the backend's accumulated I/O cost and counters. Always zero
    /// in memory mode — callers skip charging entirely then.
    pub fn take_io(&self) -> IoCharge {
        self.store.take_charge()
    }

    /// The mutable head file.
    pub fn head(&self) -> Rc<Segment> {
        Rc::clone(self.segments.borrow().last().expect("log has a head"))
    }

    /// Index of the head segment.
    pub fn head_index(&self) -> u32 {
        self.segments.borrow().len() as u32 - 1
    }

    pub fn segment(&self, index: u32) -> Option<Rc<Segment>> {
        self.segments.borrow().get(index as usize).cloned()
    }

    pub fn segment_count(&self) -> u32 {
        self.segments.borrow().len() as u32
    }

    /// Log end offset: the offset the next record will get.
    pub fn next_offset(&self) -> u64 {
        self.head().next_offset()
    }

    pub fn high_watermark(&self) -> u64 {
        self.high_watermark.get()
    }

    /// Byte position of the high watermark (segment index + last readable
    /// byte in it).
    pub fn high_watermark_position(&self) -> LogPosition {
        self.hw_position.get()
    }

    /// Seals the head and opens a new preallocated head file.
    pub fn roll(&self) -> Rc<Segment> {
        let next_offset = self.next_offset();
        let (old, old_idx, head) = {
            let mut segments = self.segments.borrow_mut();
            let old = Rc::clone(segments.last().unwrap());
            old.seal();
            old.set_sealed_at_ns(self.now_ns());
            let head = Segment::new(next_offset, self.config.segment_size);
            segments.push(Rc::clone(&head));
            (old, segments.len() as u32 - 2, Rc::clone(&head))
        };
        self.store.on_seal(old_idx, &old);
        self.store
            .on_create(old_idx + 1, next_offset, self.config.segment_size);
        head
    }

    /// First offset still readable (the retention floor). Zero until
    /// retention reclaims a segment.
    pub fn start_offset(&self) -> u64 {
        let segments = self.segments.borrow();
        segments
            .iter()
            .find(|s| !s.is_reclaimed())
            .map_or_else(|| segments.last().unwrap().next_offset(), |s| s.base_offset())
    }

    /// Flushes the head segment's dirty suffix to the file tier (the
    /// every-N-ms flusher and explicit sync points).
    pub fn sync_all(&self) {
        let head = self.head();
        self.store.flush(self.head_index(), &head);
    }

    /// Evicts a sealed, fully durable segment's bytes from memory (cold
    /// spill). Returns false when the segment is the head, not sealed, not
    /// fully synced, already evicted, or reclaimed — the caller is
    /// responsible for checking RDMA registrations pin nothing on it.
    pub fn evict_segment(&self, index: u32) -> bool {
        if index >= self.head_index() {
            return false;
        }
        let Some(seg) = self.segment(index) else {
            return false;
        };
        if !seg.is_sealed()
            || seg.is_reclaimed()
            || !seg.is_resident()
            || self.store.synced_pos(index) < seg.committed_pos()
        {
            return false;
        }
        seg.evict();
        true
    }

    /// Pages an evicted segment's bytes back in from the file tier, into
    /// the **same** shared buffer existing `Rc` clones point at.
    pub fn restore_segment(&self, index: u32) -> bool {
        let Some(seg) = self.segment(index) else {
            return false;
        };
        if seg.is_resident() || seg.is_reclaimed() {
            return false;
        }
        let Some(bytes) = self.store.load(index) else {
            return false;
        };
        seg.restore(&bytes);
        true
    }

    /// Applies size/time-based retention: reclaims sealed segments strictly
    /// below the high-watermark segment, oldest first, while the live
    /// segment count exceeds `max_segments` or the segment's seal age
    /// exceeds `max_age_ms`. Returns the number reclaimed. Reclaimed
    /// segments stay in the chain as tombstones so segment indices held by
    /// grants, read registrations, and `LogPosition`s stay valid.
    pub fn apply_retention(&self, now_ns: u64, cfg: &RetentionConfig) -> u32 {
        if !cfg.is_enabled() {
            return 0;
        }
        let hw_segment = self.hw_position.get().segment;
        let (live, first_live) = {
            let segments = self.segments.borrow();
            let live = segments.iter().filter(|s| !s.is_reclaimed()).count() as u32;
            let first_live = segments.iter().position(|s| !s.is_reclaimed());
            (live, first_live)
        };
        let Some(first_live) = first_live else {
            return 0;
        };
        let mut live = live;
        let mut reclaimed = 0u32;
        for index in first_live as u32..hw_segment {
            let seg = self.segment(index).expect("segment below hw exists");
            if seg.is_reclaimed() {
                continue;
            }
            debug_assert!(seg.is_sealed(), "segments below the hw segment are sealed");
            let too_many = cfg.max_segments.is_some_and(|max| live > max);
            let too_old = cfg.max_age_ms.is_some_and(|max_ms| {
                now_ns.saturating_sub(seg.sealed_at_ns()) > max_ms * 1_000_000
            });
            if !too_many && !too_old {
                break; // older segments reclaim first; stop at the first keeper
            }
            seg.reclaim();
            self.store.on_reclaim(index);
            live -= 1;
            reclaimed += 1;
        }
        reclaimed
    }

    fn check_size(&self, len: usize) -> Result<(), AppendError> {
        let max = self
            .config
            .max_batch_size
            .min(self.config.segment_size) as usize;
        if len > max {
            return Err(AppendError::TooLarge { len, max });
        }
        Ok(())
    }

    /// Appends an already-encoded batch by copying it into the head file
    /// (the TCP produce path ➍: "copies data from the network receive
    /// buffer to the file buffer", §4.2.1). Verifies, assigns offsets,
    /// commits.
    pub fn append_batch(&self, bytes: &[u8]) -> Result<AppendInfo, AppendError> {
        self.check_size(bytes.len())?;
        let header = record::verify_batch(bytes)?;
        let total = header.total_len() as u32;
        let mut rolled = false;
        let mut head = self.head();
        let pos = match head.reserve(total) {
            Some(pos) => pos,
            None => {
                head = self.roll();
                rolled = true;
                head.reserve(total).expect("fresh segment fits max batch")
            }
        };
        head.write_at(pos, bytes);
        let info = self.commit_at_unchecked(&head, pos, header.record_count, total)?;
        Ok(AppendInfo { rolled, ..info })
    }

    /// Appends a batch replicated from the leader (pull replication ➏):
    /// offsets were already assigned by the leader and must line up with
    /// this replica's log end.
    pub fn append_replica(&self, bytes: &[u8]) -> Result<AppendInfo, AppendError> {
        self.check_size(bytes.len())?;
        let header = record::verify_batch(bytes)?;
        if header.base_offset != self.next_offset() {
            return Err(AppendError::OffsetMismatch {
                expected: self.next_offset(),
                got: header.base_offset,
            });
        }
        let total = header.total_len() as u32;
        let mut rolled = false;
        let mut head = self.head();
        let pos = match head.reserve(total) {
            Some(pos) => pos,
            None => {
                head = self.roll();
                rolled = true;
                head.reserve(total).expect("fresh segment fits max batch")
            }
        };
        head.write_at(pos, bytes);
        head.push_committed(crate::segment::BatchIndexEntry {
            base_offset: header.base_offset,
            pos,
            len: total,
            record_count: header.record_count,
        });
        self.store.on_commit(self.head_index(), &head);
        Ok(AppendInfo {
            base_offset: header.base_offset,
            record_count: header.record_count,
            position: LogPosition {
                segment: self.head_index(),
                pos,
            },
            total_len: total,
            rolled,
        })
    }

    /// Commits a batch whose bytes are **already in** the head file at
    /// `pos` — the RDMA produce path: the NIC wrote the bytes, the API
    /// worker verifies in place and assigns offsets without any copy
    /// (§4.2.2).
    pub fn commit_in_place(&self, pos: u32) -> Result<AppendInfo, AppendError> {
        let head = self.head();
        if pos != head.committed_pos() {
            return Err(AppendError::NonContiguousCommit {
                expected: head.committed_pos(),
                got: pos,
            });
        }
        // Parse the length prefix, then verify the full batch in place.
        let avail = head.capacity() - pos;
        let prefix_len = (record::LENGTH_PREFIX_LEN as u32).min(avail);
        let total = head
            .with_slice(pos, prefix_len, record::peek_total_len)
            .map_err(AppendError::from)? as u32;
        self.check_size(total as usize)?;
        if pos + total > head.capacity() {
            return Err(AppendError::Batch(BatchError::Corrupt(
                crate::codec::WireError::BadLength,
            )));
        }
        let header = head
            .with_slice(pos, total, record::verify_batch)
            .map_err(AppendError::from)?;
        self.commit_at_unchecked(&head, pos, header.record_count, total)
    }

    /// Shared tail of both commit paths: assign the base offset in place
    /// and index the batch.
    fn commit_at_unchecked(
        &self,
        head: &Rc<Segment>,
        pos: u32,
        record_count: u32,
        total: u32,
    ) -> Result<AppendInfo, AppendError> {
        let base_offset = head.next_offset();
        head.with_slice_mut(pos, total, |bytes| {
            record::assign_base_offset(bytes, base_offset);
        });
        head.push_committed(BatchIndexEntry {
            base_offset,
            pos,
            len: total,
            record_count,
        });
        self.store.on_commit(self.head_index(), head);
        Ok(AppendInfo {
            base_offset,
            record_count,
            position: LogPosition {
                segment: self.head_index(),
                pos,
            },
            total_len: total,
            rolled: false,
        })
    }

    /// Advances the high watermark to `offset` (must land on a batch
    /// boundary — replication acknowledges whole batches).
    pub fn set_high_watermark(&self, offset: u64) {
        let current = self.high_watermark.get();
        if offset <= current {
            return;
        }
        assert!(
            offset <= self.next_offset(),
            "high watermark beyond log end"
        );
        // Replication acknowledges whole batches, so `offset` is always the
        // `next_offset` of some committed batch: locate it directly.
        let segments = self.segments.borrow();
        let last = offset - 1;
        let seg_idx = segments
            .partition_point(|s| s.base_offset() <= last)
            .saturating_sub(1);
        let seg = &segments[seg_idx];
        let i = seg
            .batch_index_of(last)
            .expect("high watermark inside committed region");
        let b = seg.batch_at(i).unwrap();
        // Replication normally acknowledges whole batches; if an ack lands
        // mid-batch, round the watermark down to the batch start (a record
        // is visible only when its whole batch is replicated).
        let (offset, pos) = if b.next_offset() == offset {
            (offset, b.end_pos())
        } else {
            (b.base_offset, b.pos)
        };
        if offset <= current {
            return;
        }
        self.hw_position.set(LogPosition {
            segment: seg_idx as u32,
            pos,
        });
        self.high_watermark.set(offset);
    }

    /// Reads up to `max_bytes` of whole batches starting at the batch
    /// containing `offset`. `committed_only` limits to the high watermark
    /// (consumer fetch); replication fetch reads to the log end.
    pub fn read_from(&self, offset: u64, max_bytes: u32, committed_only: bool) -> FetchSlice {
        let mut bytes = Vec::new();
        let (start_offset, next_offset) =
            self.read_from_into(offset, max_bytes, committed_only, &mut bytes);
        FetchSlice {
            start_offset,
            next_offset,
            bytes,
        }
    }

    /// As [`read_from`](Self::read_from), appending the batch bytes to a
    /// caller-recycled buffer instead of allocating one. Returns
    /// `(start_offset, next_offset)`; the copy-out itself goes through
    /// [`Segment::read_into`], so a warm buffer makes the whole read
    /// allocation-free.
    pub fn read_from_into(
        &self,
        offset: u64,
        max_bytes: u32,
        committed_only: bool,
        out: &mut Vec<u8>,
    ) -> (u64, u64) {
        out.clear();
        let limit = if committed_only {
            self.high_watermark.get()
        } else {
            self.next_offset()
        };
        if offset >= limit {
            return (offset, offset);
        }
        // Locate the segment containing `offset`.
        let segments = self.segments.borrow();
        let seg_idx = segments
            .partition_point(|s| s.base_offset() <= offset)
            .saturating_sub(1);
        let mut start_offset = None;
        let mut next_offset = offset;
        'outer: for (idx, seg) in segments.iter().enumerate().skip(seg_idx) {
            if seg.is_reclaimed() {
                continue;
            }
            if !seg.is_resident() {
                // Cold segment: serve whole batches from the file tier
                // through the sparse index (offsets in the file are already
                // assigned — flushes cover only committed bytes).
                let r = self.store.read_cold(
                    idx as u32,
                    next_offset.max(seg.base_offset()),
                    limit,
                    max_bytes,
                    out,
                );
                if let Some(s) = r.start_offset {
                    start_offset.get_or_insert(s);
                    next_offset = r.next_offset;
                }
                if r.done || out.len() >= max_bytes as usize {
                    break 'outer;
                }
                continue;
            }
            let Some(mut i) = seg.batch_index_of(next_offset.max(seg.base_offset())) else {
                continue;
            };
            while let Some(b) = seg.batch_at(i) {
                if b.next_offset() > limit {
                    break 'outer;
                }
                if !out.is_empty() && out.len() + b.len as usize > max_bytes as usize {
                    break 'outer;
                }
                seg.read_into(b.pos, b.len, out);
                start_offset.get_or_insert(b.base_offset);
                next_offset = b.next_offset();
                i += 1;
                if out.len() >= max_bytes as usize {
                    break 'outer;
                }
            }
        }
        (start_offset.unwrap_or(offset), next_offset)
    }

    /// As [`read_from_into`](Self::read_from_into), but reads below the
    /// retention floor fail with a typed error instead of silently starting
    /// at the next surviving batch.
    pub fn read_from_checked(
        &self,
        offset: u64,
        max_bytes: u32,
        committed_only: bool,
        out: &mut Vec<u8>,
    ) -> Result<(u64, u64), ReadError> {
        let start = self.start_offset();
        if offset < start {
            return Err(ReadError::OutOfRetention {
                requested: offset,
                start,
            });
        }
        Ok(self.read_from_into(offset, max_bytes, committed_only, out))
    }

    /// Finds the committed batch containing `offset` and its segment index.
    pub fn locate(&self, offset: u64) -> Option<(u32, BatchIndexEntry)> {
        let segments = self.segments.borrow();
        let seg_idx = segments
            .partition_point(|s| s.base_offset() <= offset)
            .checked_sub(1)?;
        // The batch may live in an earlier segment than the partition point
        // suggests only if offsets were sparse — they are dense here.
        let entry = segments[seg_idx].find_batch(offset)?;
        Some((seg_idx as u32, entry))
    }

    /// Whether the segment holding `offset` is in the hot (memory) tier.
    /// `None` when the offset is not committed anywhere.
    pub fn is_offset_resident(&self, offset: u64) -> Option<bool> {
        let (seg_idx, _) = self.locate(offset)?;
        Some(self.segment(seg_idx)?.is_resident())
    }

    /// Fault hook: garble the last `k` durable bytes of the active segment
    /// file (torn-write injection against real file bytes). Returns bytes
    /// garbled — zero on the in-memory backend.
    pub fn garble_active_tail(&self, k: u32) -> u64 {
        self.store.garble_active_tail(k)
    }

    /// Total committed bytes across all segments (telemetry).
    pub fn committed_bytes(&self) -> u64 {
        self.segments
            .borrow()
            .iter()
            .map(|s| u64::from(s.committed_pos()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{single_record_batch, BatchBuilder, Record};

    fn batch(n: usize, size: usize) -> Vec<u8> {
        let mut b = BatchBuilder::new(1);
        for i in 0..n {
            b.append(&Record::value(vec![i as u8; size]));
        }
        b.build().unwrap()
    }

    fn small_log() -> Log {
        Log::new(LogConfig {
            segment_size: 4096,
            max_batch_size: 2048,
        })
    }

    #[test]
    fn append_assigns_dense_offsets() {
        let log = small_log();
        let a = log.append_batch(&batch(3, 10)).unwrap();
        let b = log.append_batch(&batch(2, 10)).unwrap();
        assert_eq!(a.base_offset, 0);
        assert_eq!(b.base_offset, 3);
        assert_eq!(log.next_offset(), 5);
    }

    #[test]
    fn rolls_to_new_head_when_full() {
        let log = small_log();
        let payload = batch(1, 900); // ~1 KiB each
        let mut rolled = 0;
        for _ in 0..8 {
            if log.append_batch(&payload).unwrap().rolled {
                rolled += 1;
            }
        }
        assert!(rolled >= 1);
        assert!(log.segment_count() >= 2);
        // Every non-head segment is sealed.
        for i in 0..log.segment_count() - 1 {
            assert!(log.segment(i).unwrap().is_sealed());
        }
        assert!(!log.head().is_sealed());
        // Base offsets chain correctly.
        let s1 = log.segment(1).unwrap();
        assert_eq!(s1.base_offset(), log.segment(0).unwrap().next_offset());
    }

    #[test]
    fn oversize_batch_rejected() {
        let log = small_log();
        let big = batch(1, 3000);
        assert!(matches!(
            log.append_batch(&big),
            Err(AppendError::TooLarge { .. })
        ));
    }

    #[test]
    fn commit_in_place_is_zero_copy() {
        let log = small_log();
        let head = log.head();
        let bytes = batch(2, 16);
        // Simulate an RDMA write landing directly in the head file.
        head.write_at(0, &bytes);
        head.advance_write_pos(bytes.len() as u32);
        let info = log.commit_in_place(0).unwrap();
        assert_eq!(info.base_offset, 0);
        assert_eq!(info.record_count, 2);
        // In-place offset assignment is visible in the segment bytes.
        let stored = head.read(0, bytes.len() as u32);
        let hdr = crate::record::verify_batch(&stored).unwrap();
        assert_eq!(hdr.base_offset, 0);
    }

    #[test]
    fn commit_in_place_rejects_holes() {
        let log = small_log();
        let head = log.head();
        let bytes = batch(1, 16);
        head.write_at(100, &bytes);
        assert!(matches!(
            log.commit_in_place(100),
            Err(AppendError::NonContiguousCommit { expected: 0, got: 100 })
        ));
    }

    #[test]
    fn commit_in_place_rejects_bad_crc() {
        let log = small_log();
        let head = log.head();
        let mut bytes = batch(1, 16);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        head.write_at(0, &bytes);
        assert!(matches!(
            log.commit_in_place(0),
            Err(AppendError::Batch(BatchError::BadCrc { .. }))
        ));
    }

    #[test]
    fn read_respects_high_watermark() {
        let log = small_log();
        log.append_batch(&batch(2, 8)).unwrap();
        log.append_batch(&batch(2, 8)).unwrap();
        // Nothing replicated yet: committed read sees nothing.
        let f = log.read_from(0, 4096, true);
        assert!(f.bytes.is_empty());
        // Replication read sees everything.
        let f = log.read_from(0, 4096, false);
        assert_eq!(f.next_offset, 4);
        // Advance HW past the first batch only.
        log.set_high_watermark(2);
        let f = log.read_from(0, 4096, true);
        assert_eq!(f.next_offset, 2);
        let decoded = crate::record::decode_batch(&f.bytes).unwrap();
        assert_eq!(decoded.len(), 2);
    }

    #[test]
    fn read_starts_at_batch_boundary() {
        let log = small_log();
        log.append_batch(&batch(5, 8)).unwrap();
        log.set_high_watermark(5);
        // Request offset 3: read returns the whole containing batch,
        // start_offset tells the consumer to skip.
        let f = log.read_from(3, 4096, true);
        assert_eq!(f.start_offset, 0);
        assert_eq!(f.next_offset, 5);
    }

    #[test]
    fn read_spans_segments() {
        let log = small_log();
        let payload = batch(1, 900);
        for _ in 0..8 {
            log.append_batch(&payload).unwrap();
        }
        log.set_high_watermark(log.next_offset());
        let mut offset = 0;
        let mut seen = 0;
        loop {
            let f = log.read_from(offset, 100_000, true);
            if f.bytes.is_empty() {
                break;
            }
            let mut at = 0;
            while at < f.bytes.len() {
                let h = crate::record::verify_batch(&f.bytes[at..]).unwrap();
                seen += h.record_count;
                at += h.total_len();
            }
            offset = f.next_offset;
        }
        assert_eq!(seen, 8);
    }

    #[test]
    fn max_bytes_limits_but_returns_at_least_one_batch() {
        let log = small_log();
        log.append_batch(&batch(1, 400)).unwrap();
        log.append_batch(&batch(1, 400)).unwrap();
        log.set_high_watermark(2);
        let f = log.read_from(0, 10, true); // tiny cap
        assert_eq!(f.next_offset, 1, "one whole batch still returned");
        let h = crate::record::verify_batch(&f.bytes).unwrap();
        assert_eq!(h.record_count, 1);
    }

    #[test]
    fn hw_position_tracks_bytes_across_segments() {
        let log = small_log();
        let payload = batch(1, 900);
        let mut infos = Vec::new();
        for _ in 0..8 {
            infos.push(log.append_batch(&payload).unwrap());
        }
        log.set_high_watermark(3);
        let p = log.high_watermark_position();
        let expected = infos[2];
        assert_eq!(p.segment, expected.position.segment);
        assert_eq!(p.pos, expected.position.pos + expected.total_len);
        // Move HW to the end: position is in the head segment.
        log.set_high_watermark(8);
        let p = log.high_watermark_position();
        assert_eq!(p.segment, log.head_index());
        assert_eq!(p.pos, log.head().committed_pos());
    }

    #[test]
    fn batch_exactly_filling_segment_rolls_cleanly() {
        // Craft a batch, then a segment sized to exactly fit it.
        let payload = batch(1, 500);
        let log = Log::new(LogConfig {
            segment_size: payload.len() as u32,
            max_batch_size: payload.len() as u32,
        });
        let a = log.append_batch(&payload).unwrap();
        assert!(!a.rolled);
        assert_eq!(log.head().remaining(), 0);
        let b = log.append_batch(&payload).unwrap();
        assert!(b.rolled, "second batch must open a new file");
        assert_eq!(b.position.segment, 1);
        assert_eq!(b.base_offset, 1);
        assert!(log.segment(0).unwrap().is_sealed());
    }

    #[test]
    fn locate_spans_segments() {
        let log = small_log();
        let payload = batch(2, 900);
        for _ in 0..6 {
            log.append_batch(&payload).unwrap();
        }
        assert!(log.segment_count() >= 2);
        for offset in 0..12u64 {
            let (seg, entry) = log.locate(offset).expect("every offset locatable");
            assert!(entry.base_offset <= offset && offset < entry.next_offset());
            assert!(log.segment(seg).is_some());
        }
        assert!(log.locate(12).is_none(), "past the end");
    }

    #[test]
    fn single_record_batches_commit() {
        let log = small_log();
        for i in 0..10u8 {
            let b = single_record_batch(9, &Record::value(vec![i]));
            log.append_batch(&b).unwrap();
        }
        assert_eq!(log.next_offset(), 10);
    }

    /// The raw buffers of every segment, i.e. what "survives" a crash.
    fn surviving_buffers(log: &Log) -> Vec<std::rc::Rc<std::cell::RefCell<Vec<u8>>>> {
        (0..log.segment_count())
            .map(|i| log.segment(i).unwrap().shared_buf())
            .collect()
    }

    #[test]
    fn recovery_preserves_committed_batches_and_next_offset() {
        let log = small_log();
        let payload = batch(2, 300);
        for _ in 0..10 {
            log.append_batch(&payload).unwrap();
        }
        assert!(log.segment_count() >= 2, "test must span segments");
        let end = log.next_offset();

        let recovered = Log::recover(log.config().clone(), surviving_buffers(&log));
        assert_eq!(recovered.next_offset(), end);
        assert_eq!(recovered.segment_count(), log.segment_count());
        recovered.set_high_watermark(end);
        // Every record survives, in order, with the same offsets.
        let mut offset = 0;
        while offset < end {
            let f = recovered.read_from(offset, 100_000, true);
            assert!(!f.bytes.is_empty());
            let mut at = 0;
            while at < f.bytes.len() {
                let h = crate::record::verify_batch(&f.bytes[at..]).unwrap();
                assert_eq!(h.base_offset, offset);
                offset = h.last_offset() + 1;
                at += h.total_len();
            }
        }
        assert_eq!(offset, end);
    }

    #[test]
    fn recovery_truncates_torn_last_record() {
        let log = small_log();
        log.append_batch(&batch(3, 50)).unwrap();
        log.append_batch(&batch(2, 50)).unwrap();
        // A torn write: only half the next batch's bytes reached the file
        // before the crash. Non-zero payload so the missing half cannot
        // CRC-match the zero-filled preallocation.
        let head = log.head();
        let torn = single_record_batch(1, &Record::value(vec![0xAB; 50]));
        head.write_at(head.committed_pos(), &torn[..torn.len() / 2]);
        head.advance_write_pos(head.committed_pos() + torn.len() as u32 / 2);

        let recovered = Log::recover(log.config().clone(), surviving_buffers(&log));
        assert_eq!(recovered.next_offset(), 5, "torn record dropped");
        assert_eq!(recovered.head().batch_count(), 2);
        // The torn region is writable again: the next append lands there.
        let info = recovered.append_batch(&batch(1, 50)).unwrap();
        assert_eq!(info.base_offset, 5);
    }

    #[test]
    fn recovery_truncates_bad_crc_tail() {
        let log = small_log();
        log.append_batch(&batch(2, 40)).unwrap();
        // A fully-written batch whose bytes rotted (single bit flip fails
        // the CRC check).
        let head = log.head();
        let mut bad = batch(2, 40);
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        head.write_at(head.committed_pos(), &bad);
        head.advance_write_pos(head.committed_pos() + bad.len() as u32);

        let recovered = Log::recover(log.config().clone(), surviving_buffers(&log));
        assert_eq!(recovered.next_offset(), 2, "corrupt tail truncated");
        assert_eq!(recovered.head().batch_count(), 1);
    }

    #[test]
    fn recovery_commits_written_but_unassigned_batch() {
        // An RDMA producer's one-sided write landed in full (valid CRC) but
        // the broker crashed before assigning offsets: the batch recovers
        // with the next dense offset, exactly as a completed commit would
        // have assigned.
        let log = small_log();
        log.append_batch(&batch(4, 30)).unwrap();
        let head = log.head();
        let landed = batch(2, 30); // base_offset still 0 in these bytes
        head.write_at(head.committed_pos(), &landed);
        head.advance_write_pos(head.committed_pos() + landed.len() as u32);

        let recovered = Log::recover(log.config().clone(), surviving_buffers(&log));
        assert_eq!(recovered.next_offset(), 6);
        recovered.set_high_watermark(6);
        let f = recovered.read_from(4, 4096, true);
        let h = crate::record::verify_batch(&f.bytes).unwrap();
        assert_eq!(h.base_offset, 4, "recovery assigned the dense offset");
        assert_eq!(h.record_count, 2);
    }

    #[test]
    fn recovery_of_empty_buffers_yields_fresh_log() {
        let recovered = Log::recover(LogConfig::default(), Vec::new());
        assert_eq!(recovered.next_offset(), 0);
        assert_eq!(recovered.segment_count(), 1);
    }
}
