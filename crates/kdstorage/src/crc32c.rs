//! CRC32C (Castagnoli) — the checksum Kafka uses for record batches and the
//! integrity check charged to API workers in §5.1 ("including CRC32C
//! checksum calculation").
//!
//! Table-driven (slice-by-8) implementation built from the reflected
//! polynomial 0x82F63B78. No external crates; verified against published
//! test vectors and a bitwise reference implementation under seeded
//! generative tests.

const POLY: u32 = 0x82F6_3B78;

/// 8 tables × 256 entries, built at first use.
struct Tables([[u32; 256]; 8]);

fn build_tables() -> Tables {
    let mut t = [[0u32; 256]; 8];
    for (i, entry) in t[0].iter_mut().enumerate() {
        let mut crc = i as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
        *entry = crc;
    }
    for i in 0..256 {
        let mut crc = t[0][i];
        for table in 1..8 {
            crc = t[0][(crc & 0xff) as usize] ^ (crc >> 8);
            t[table][i] = crc;
        }
    }
    Tables(t)
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(build_tables)
}

/// Streaming CRC32C state.
#[derive(Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, mut data: &[u8]) {
        let t = &tables().0;
        let mut crc = self.state;
        while data.len() >= 8 {
            let lo = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) ^ crc;
            let hi = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
            crc = t[7][(lo & 0xff) as usize]
                ^ t[6][((lo >> 8) & 0xff) as usize]
                ^ t[5][((lo >> 16) & 0xff) as usize]
                ^ t[4][((lo >> 24) & 0xff) as usize]
                ^ t[3][(hi & 0xff) as usize]
                ^ t[2][((hi >> 8) & 0xff) as usize]
                ^ t[1][((hi >> 16) & 0xff) as usize]
                ^ t[0][((hi >> 24) & 0xff) as usize];
            data = &data[8..];
        }
        for &b in data {
            crc = t[0][((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Finishes, returning the checksum.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finalize()
}

/// Bit-at-a-time reference implementation (kept for property testing).
pub fn crc32c_reference(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / published CRC32C test vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..255).cycle().take(10_000).collect();
        let mut c = Crc32c::new();
        for chunk in data.chunks(37) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32c(&data));
    }

    #[test]
    fn fast_matches_reference() {
        let data: Vec<u8> = (0u32..4096).map(|i| (i * 31 % 251) as u8).collect();
        assert_eq!(crc32c(&data), crc32c_reference(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![7u8; 100];
        let orig = crc32c(&data);
        data[50] ^= 0x10;
        assert_ne!(crc32c(&data), orig);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use sim::rng::SimRng;

    fn rand_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
        let len = rng.random_range(0usize..max_len);
        let mut v = vec![0u8; len];
        rng.fill(&mut v);
        v
    }

    #[test]
    fn matches_bitwise_reference() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from_u64(0xCC_0001 ^ case);
            let data = rand_bytes(&mut rng, 2048);
            assert_eq!(crc32c(&data), crc32c_reference(&data), "case {case}");
        }
    }

    #[test]
    fn split_invariance() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from_u64(0xCC_0002 ^ case);
            let data = rand_bytes(&mut rng, 1024);
            let split = rng.random_range(0usize..1024).min(data.len());
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), crc32c(&data), "case {case}");
        }
    }
}
