//! The record-batch format (Kafka message-format-v2-alike).
//!
//! Producers build [`BatchBuilder`]s; the bytes travel to the broker (over
//! TCP, RDMA Send, or a one-sided RDMA Write directly into a segment); the
//! broker verifies the CRC and assigns the base offset **in place** —
//! crucially without copying the records (§4.2.2: "verifying checksums of
//! new records, assigning offsets to new records, and committing").
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! 0   base_offset: u64      -- assigned by the broker at commit
//! 8   batch_length: u32     -- bytes after this field
//! 12  magic: u8 (=2)
//! 13  attributes: u16
//! 15  crc32c: u32           -- over bytes [19, end)
//! 19  producer_id: u64
//! 27  base_timestamp: i64
//! 35  max_timestamp: i64
//! 43  record_count: u32
//! 47  records...            -- varint-encoded, see below
//! ```
//!
//! Record: `length uvarint | timestamp_delta varint | key opt_bytes |
//! value opt_bytes | header_count uvarint | (key string, value opt_bytes)*`.

use crate::codec::{Reader, WireError, Writer};
use crate::crc32c::crc32c;

/// Fixed bytes before the records section.
pub const BATCH_HEADER_LEN: usize = 47;
/// Offset of the `batch_length` field.
const LENGTH_FIELD_AT: usize = 8;
/// Offset of the CRC field; the CRC covers everything after it.
const CRC_FIELD_AT: usize = 15;
const CRC_COVER_FROM: usize = 19;
const MAGIC: u8 = 2;

/// Errors raised while building or validating batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// Malformed bytes (truncated, bad varint, bad magic...).
    Corrupt(WireError),
    /// CRC mismatch — the §4.2.2 integrity check failed.
    BadCrc { stored: u32, computed: u32 },
    /// A record or batch exceeded a configured limit.
    TooLarge { len: usize, max: usize },
    /// Batch with zero records.
    Empty,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Corrupt(e) => write!(f, "corrupt batch: {e}"),
            BatchError::BadCrc { stored, computed } => {
                write!(f, "crc mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            BatchError::TooLarge { len, max } => write!(f, "batch of {len} B exceeds {max} B"),
            BatchError::Empty => write!(f, "batch contains no records"),
        }
    }
}

impl std::error::Error for BatchError {}

impl From<WireError> for BatchError {
    fn from(e: WireError) -> Self {
        BatchError::Corrupt(e)
    }
}

/// An application record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub key: Option<Vec<u8>>,
    pub value: Vec<u8>,
    pub headers: Vec<(String, Vec<u8>)>,
    /// Milliseconds; producers usually stamp event time here.
    pub timestamp: i64,
}

impl Record {
    /// A value-only record.
    pub fn value(value: impl Into<Vec<u8>>) -> Record {
        Record {
            key: None,
            value: value.into(),
            headers: Vec::new(),
            timestamp: 0,
        }
    }

    pub fn with_key(mut self, key: impl Into<Vec<u8>>) -> Record {
        self.key = Some(key.into());
        self
    }

    pub fn with_timestamp(mut self, ts: i64) -> Record {
        self.timestamp = ts;
        self
    }

    pub fn with_header(mut self, key: &str, value: impl Into<Vec<u8>>) -> Record {
        self.headers.push((key.to_string(), value.into()));
        self
    }
}

/// Parsed batch header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchHeader {
    pub base_offset: u64,
    /// Bytes after the length field.
    pub batch_length: u32,
    pub attributes: u16,
    pub crc: u32,
    pub producer_id: u64,
    pub base_timestamp: i64,
    pub max_timestamp: i64,
    pub record_count: u32,
}

impl BatchHeader {
    /// Total on-disk size of the batch.
    pub fn total_len(&self) -> usize {
        LENGTH_FIELD_AT + 4 + self.batch_length as usize
    }

    /// Offset of the last record in the batch.
    pub fn last_offset(&self) -> u64 {
        self.base_offset + u64::from(self.record_count) - 1
    }
}

/// Builds a record batch.
pub struct BatchBuilder {
    producer_id: u64,
    records: Writer,
    record_count: u32,
    base_timestamp: Option<i64>,
    max_timestamp: i64,
    attributes: u16,
}

impl BatchBuilder {
    pub fn new(producer_id: u64) -> Self {
        BatchBuilder {
            producer_id,
            records: Writer::new(),
            record_count: 0,
            base_timestamp: None,
            max_timestamp: 0,
            attributes: 0,
        }
    }

    pub fn record_count(&self) -> u32 {
        self.record_count
    }

    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    /// Current encoded size if built now.
    pub fn encoded_len(&self) -> usize {
        BATCH_HEADER_LEN + self.records.len()
    }

    pub fn append(&mut self, record: &Record) {
        let base = *self.base_timestamp.get_or_insert(record.timestamp);
        self.max_timestamp = self.max_timestamp.max(record.timestamp);
        // The record body goes through a recycled scratch buffer (the
        // uvarint length prefix must precede it), so steady-state appends
        // do not allocate.
        let mut scratch = kdbuf::scratch();
        let mut body = Writer::from_vec(std::mem::take(&mut *scratch));
        body.put_varint(record.timestamp - base);
        body.put_opt_bytes(record.key.as_deref());
        body.put_opt_bytes(Some(&record.value));
        body.put_uvarint(record.headers.len() as u64);
        for (k, v) in &record.headers {
            body.put_string(k);
            body.put_opt_bytes(Some(v));
        }
        self.records.put_uvarint(body.len() as u64);
        self.records.put_bytes(body.as_slice());
        *scratch = body.into_vec();
        self.record_count += 1;
    }

    /// Clears the builder for reuse, keeping buffer capacity. Lets a
    /// producer keep one builder per connection instead of allocating per
    /// batch.
    pub fn reset(&mut self) {
        self.records.clear();
        self.record_count = 0;
        self.base_timestamp = None;
        self.max_timestamp = 0;
        self.attributes = 0;
    }

    /// Serialises the batch (base offset 0; the broker assigns the real one
    /// at commit).
    pub fn build(self) -> Result<Vec<u8>, BatchError> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.build_into(&mut out)?;
        Ok(out)
    }

    /// As [`build`](Self::build), appending the batch to `out` instead of
    /// allocating — the builder stays usable (call [`reset`](Self::reset)
    /// before the next batch).
    pub fn build_into(&self, out: &mut Vec<u8>) -> Result<(), BatchError> {
        if self.record_count == 0 {
            return Err(BatchError::Empty);
        }
        let start = out.len();
        let mut w = Writer::from_vec(std::mem::take(out));
        w.put_u64(0); // base_offset
        w.put_u32((BATCH_HEADER_LEN - LENGTH_FIELD_AT - 4 + self.records.len()) as u32);
        w.put_u8(MAGIC);
        w.put_u16(self.attributes);
        w.put_u32(0); // crc patched below
        w.put_u64(self.producer_id);
        w.put_i64(self.base_timestamp.unwrap_or(0));
        w.put_i64(self.max_timestamp);
        w.put_u32(self.record_count);
        w.put_bytes(self.records.as_slice());
        let crc = crc32c(&w.as_slice()[start + CRC_COVER_FROM..]);
        w.patch_u32(start + CRC_FIELD_AT, crc);
        *out = w.into_vec();
        Ok(())
    }
}

/// Convenience: a single-record batch.
pub fn single_record_batch(producer_id: u64, record: &Record) -> Vec<u8> {
    let mut b = BatchBuilder::new(producer_id);
    b.append(record);
    b.build().expect("non-empty")
}

/// Parses a batch header from the front of `bytes` (which may contain more
/// than one batch; use [`BatchHeader::total_len`] to advance).
pub fn parse_header(bytes: &[u8]) -> Result<BatchHeader, BatchError> {
    let mut r = Reader::new(bytes);
    let base_offset = r.get_u64()?;
    let batch_length = r.get_u32()?;
    let magic = r.get_u8()?;
    if magic != MAGIC {
        return Err(BatchError::Corrupt(WireError::BadValue));
    }
    let attributes = r.get_u16()?;
    let crc = r.get_u32()?;
    let producer_id = r.get_u64()?;
    let base_timestamp = r.get_i64()?;
    let max_timestamp = r.get_i64()?;
    let record_count = r.get_u32()?;
    if record_count == 0 {
        return Err(BatchError::Empty);
    }
    if (batch_length as usize) < BATCH_HEADER_LEN - LENGTH_FIELD_AT - 4 {
        return Err(BatchError::Corrupt(WireError::BadLength));
    }
    Ok(BatchHeader {
        base_offset,
        batch_length,
        attributes,
        crc,
        producer_id,
        base_timestamp,
        max_timestamp,
        record_count,
    })
}

/// Minimum prefix needed to learn a batch's total length.
pub const LENGTH_PREFIX_LEN: usize = LENGTH_FIELD_AT + 4;

/// Reads just the total length of the batch at the front of `bytes`
/// (needs [`LENGTH_PREFIX_LEN`] bytes). Used by the RDMA consumer to
/// reassemble partially-fetched batches (§4.4.2, "Fetch size for RDMA
/// Reads").
pub fn peek_total_len(bytes: &[u8]) -> Result<usize, BatchError> {
    if bytes.len() < LENGTH_PREFIX_LEN {
        return Err(BatchError::Corrupt(WireError::UnexpectedEof));
    }
    let mut r = Reader::new(&bytes[LENGTH_FIELD_AT..]);
    let batch_length = r.get_u32()?;
    Ok(LENGTH_FIELD_AT + 4 + batch_length as usize)
}

/// Fully validates the batch at the front of `bytes`: structure + CRC.
/// Returns the header. This is the API worker's §4.2.2 integrity check.
pub fn verify_batch(bytes: &[u8]) -> Result<BatchHeader, BatchError> {
    let header = parse_header(bytes)?;
    let total = header.total_len();
    if bytes.len() < total {
        return Err(BatchError::Corrupt(WireError::UnexpectedEof));
    }
    let computed = crc32c(&bytes[CRC_COVER_FROM..total]);
    if computed != header.crc {
        return Err(BatchError::BadCrc {
            stored: header.crc,
            computed,
        });
    }
    // Walk the records to validate structure.
    let mut count = 0u32;
    let mut r = Reader::new(&bytes[BATCH_HEADER_LEN..total]);
    while r.remaining() > 0 {
        let len = r.get_uvarint()? as usize;
        r.take(len)?;
        count += 1;
    }
    if count != header.record_count {
        return Err(BatchError::Corrupt(WireError::BadLength));
    }
    Ok(header)
}

/// Assigns the broker-chosen base offset in place (no copy).
pub fn assign_base_offset(bytes: &mut [u8], offset: u64) {
    bytes[..8].copy_from_slice(&offset.to_le_bytes());
}

/// A decoded record plus its absolute offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordView {
    pub offset: u64,
    pub record: Record,
}

/// Decodes every record of the batch at the front of `bytes`.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<RecordView>, BatchError> {
    let header = verify_batch(bytes)?;
    let total = header.total_len();
    let mut out = Vec::with_capacity(header.record_count as usize);
    let mut r = Reader::new(&bytes[BATCH_HEADER_LEN..total]);
    let mut i = 0u64;
    while r.remaining() > 0 {
        let len = r.get_uvarint()? as usize;
        let body = r.take(len)?;
        let mut b = Reader::new(body);
        let ts_delta = b.get_varint()?;
        let key = b.get_opt_bytes()?.map(<[u8]>::to_vec);
        let value = b.get_opt_bytes()?.unwrap_or_default().to_vec();
        let header_count = b.get_uvarint()?;
        let mut headers = Vec::with_capacity(header_count as usize);
        for _ in 0..header_count {
            let k = b.get_string()?;
            let v = b.get_opt_bytes()?.unwrap_or_default().to_vec();
            headers.push((k, v));
        }
        out.push(RecordView {
            offset: header.base_offset + i,
            record: Record {
                key,
                value,
                headers,
                timestamp: header.base_timestamp + ts_delta,
            },
        });
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::value(b"v0".to_vec()).with_timestamp(1000),
            Record::value(b"v1".to_vec())
                .with_key(b"k1".to_vec())
                .with_timestamp(1005)
                .with_header("trace", b"abc".to_vec()),
            Record::value(vec![]).with_timestamp(990),
        ]
    }

    fn build(records: &[Record]) -> Vec<u8> {
        let mut b = BatchBuilder::new(42);
        for r in records {
            b.append(r);
        }
        b.build().unwrap()
    }

    #[test]
    fn build_verify_decode_round_trip() {
        let records = sample_records();
        let bytes = build(&records);
        let header = verify_batch(&bytes).unwrap();
        assert_eq!(header.record_count, 3);
        assert_eq!(header.producer_id, 42);
        assert_eq!(header.base_timestamp, 1000);
        assert_eq!(header.max_timestamp, 1005);
        assert_eq!(header.total_len(), bytes.len());
        let decoded = decode_batch(&bytes).unwrap();
        assert_eq!(decoded.len(), 3);
        for (i, rv) in decoded.iter().enumerate() {
            assert_eq!(rv.offset, i as u64);
            assert_eq!(rv.record, records[i]);
        }
    }

    #[test]
    fn offset_assignment_in_place_preserves_crc() {
        let mut bytes = build(&sample_records());
        assign_base_offset(&mut bytes, 1_000_000);
        // base_offset is outside CRC coverage: the batch stays valid.
        let header = verify_batch(&bytes).unwrap();
        assert_eq!(header.base_offset, 1_000_000);
        assert_eq!(header.last_offset(), 1_000_002);
        let decoded = decode_batch(&bytes).unwrap();
        assert_eq!(decoded[2].offset, 1_000_002);
    }

    #[test]
    fn corruption_detected() {
        let bytes = build(&sample_records());
        for pos in [20, BATCH_HEADER_LEN + 1, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert!(
                matches!(verify_batch(&bad), Err(BatchError::BadCrc { .. })),
                "flip at {pos} must fail CRC"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = build(&sample_records());
        assert!(verify_batch(&bytes[..bytes.len() - 1]).is_err());
        assert!(parse_header(&bytes[..10]).is_err());
    }

    #[test]
    fn peek_total_len_matches() {
        let bytes = build(&sample_records());
        assert_eq!(peek_total_len(&bytes).unwrap(), bytes.len());
        assert!(peek_total_len(&bytes[..8]).is_err());
    }

    #[test]
    fn empty_batch_rejected() {
        assert_eq!(BatchBuilder::new(1).build().err(), Some(BatchError::Empty));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = build(&sample_records());
        bytes[12] = 9;
        assert!(matches!(
            parse_header(&bytes),
            Err(BatchError::Corrupt(WireError::BadValue))
        ));
    }

    #[test]
    fn multiple_batches_in_sequence() {
        let b1 = build(&sample_records());
        let b2 = build(&[Record::value(b"later".to_vec())]);
        let mut stream = b1.clone();
        stream.extend_from_slice(&b2);
        let h1 = verify_batch(&stream).unwrap();
        let rest = &stream[h1.total_len()..];
        let h2 = verify_batch(rest).unwrap();
        assert_eq!(h2.record_count, 1);
        assert_eq!(h1.total_len() + h2.total_len(), stream.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use sim::rng::SimRng;

    fn rand_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
        let len = rng.random_range(0usize..max_len);
        let mut v = vec![0u8; len];
        rng.fill(&mut v);
        v
    }

    fn arb_record(rng: &mut SimRng) -> Record {
        let key = if rng.random_bool(0.5) {
            Some(rand_bytes(rng, 32))
        } else {
            None
        };
        let value = rand_bytes(rng, 256);
        let n_headers = rng.random_range(0usize..3);
        let headers = (0..n_headers)
            .map(|_| {
                let name_len = rng.random_range(1usize..=8);
                let name: String = (0..name_len)
                    .map(|_| (b'a' + rng.random_range(0u8..26)) as char)
                    .collect();
                (name, rand_bytes(rng, 16))
            })
            .collect();
        let timestamp = -1_000_000 + rng.below(2_000_000) as i64;
        Record {
            key,
            value,
            headers,
            timestamp,
        }
    }

    #[test]
    fn batch_round_trips() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from_u64(0x4EC_0001 ^ case);
            let n = rng.random_range(1usize..12);
            let records: Vec<Record> = (0..n).map(|_| arb_record(&mut rng)).collect();
            let offset: u32 = rng.random_range(0u32..=u32::MAX);
            let mut b = BatchBuilder::new(7);
            for r in &records {
                b.append(r);
            }
            let mut bytes = b.build().unwrap();
            assign_base_offset(&mut bytes, u64::from(offset));
            let decoded = decode_batch(&bytes).unwrap();
            assert_eq!(decoded.len(), records.len(), "case {case}");
            for (i, rv) in decoded.iter().enumerate() {
                assert_eq!(rv.offset, u64::from(offset) + i as u64, "case {case}");
                assert_eq!(&rv.record, &records[i], "case {case}");
            }
        }
    }

    #[test]
    fn random_bytes_never_panic() {
        for case in 0..256u64 {
            let mut rng = SimRng::seed_from_u64(0x4EC_0002 ^ case);
            let data = rand_bytes(&mut rng, 256);
            let _ = verify_batch(&data);
            let _ = parse_header(&data);
            let _ = peek_total_len(&data);
            let _ = decode_batch(&data);
        }
    }
}
