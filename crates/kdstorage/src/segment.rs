//! Preallocated log segments ("files", paper Fig 1).
//!
//! A segment is a fixed-capacity byte buffer created full-size up front —
//! the paper enables Kafka's file preallocation because "RNICs ... only can
//! write data to an already preallocated memory region" (§4.2.2). The head
//! segment of a partition is mutable; once full it is sealed and becomes
//! immutable forever (consumers rely on that to read it with RDMA without
//! coordination, §4.4.2).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::record;

/// Index entry for one committed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchIndexEntry {
    /// First Kafka offset in the batch.
    pub base_offset: u64,
    /// Byte position of the batch within the segment.
    pub pos: u32,
    /// Total encoded length.
    pub len: u32,
    /// Number of records.
    pub record_count: u32,
}

impl BatchIndexEntry {
    pub fn end_pos(&self) -> u32 {
        self.pos + self.len
    }

    pub fn next_offset(&self) -> u64 {
        self.base_offset + u64::from(self.record_count)
    }
}

/// A preallocated, fixed-size segment file.
pub struct Segment {
    base_offset: u64,
    buf: Rc<RefCell<Vec<u8>>>,
    /// Preallocated size. Stored separately from the buffer because an
    /// evicted (cold-tier) segment's buffer is emptied to reclaim memory.
    capacity: u32,
    /// Bytes written (or reserved) so far; the append point.
    write_pos: Cell<u32>,
    /// Bytes covered by committed (verified, offset-assigned) batches.
    committed_pos: Cell<u32>,
    sealed: Cell<bool>,
    /// False when the bytes live only in the file tier (buffer evicted).
    resident: Cell<bool>,
    /// Set when retention reclaimed the segment: bytes and index are gone,
    /// only the offset range survives as a tombstone.
    reclaimed: Cell<bool>,
    /// `next_offset` frozen at reclaim time (the batch index is cleared).
    frozen_next: Cell<u64>,
    /// Virtual time the segment sealed (0 when unknown); age-based
    /// retention measures from here.
    sealed_at_ns: Cell<u64>,
    batches: RefCell<Vec<BatchIndexEntry>>,
}

impl Segment {
    /// Preallocates a segment of `capacity` bytes whose first record will
    /// have offset `base_offset`.
    pub fn new(base_offset: u64, capacity: u32) -> Rc<Segment> {
        Rc::new(Segment {
            base_offset,
            buf: Rc::new(RefCell::new(vec![0u8; capacity as usize])),
            capacity,
            write_pos: Cell::new(0),
            committed_pos: Cell::new(0),
            sealed: Cell::new(false),
            resident: Cell::new(true),
            reclaimed: Cell::new(false),
            frozen_next: Cell::new(0),
            sealed_at_ns: Cell::new(0),
            batches: RefCell::new(Vec::new()),
        })
    }

    /// Rebuilds a segment's in-memory index from raw "on-disk" bytes after
    /// a crash. Scans batches from position 0: each must parse and pass its
    /// CRC; the scan stops at the first torn, corrupt, or absent batch and
    /// everything after it is discarded — the §4.2.2 "no holes" rule
    /// applied at restart. Offsets are re-assigned densely from
    /// `base_offset` (the offset field sits outside CRC coverage), so
    /// batches that were fully written but never offset-assigned — a crash
    /// between the one-sided RDMA write and the commit — recover too.
    pub fn recover(base_offset: u64, buf: Rc<RefCell<Vec<u8>>>) -> Rc<Segment> {
        let capacity = buf.borrow().len() as u32;
        let seg = Rc::new(Segment {
            base_offset,
            buf,
            capacity,
            write_pos: Cell::new(0),
            committed_pos: Cell::new(0),
            sealed: Cell::new(false),
            resident: Cell::new(true),
            reclaimed: Cell::new(false),
            frozen_next: Cell::new(0),
            sealed_at_ns: Cell::new(0),
            batches: RefCell::new(Vec::new()),
        });
        // Structural pre-scan (no CRC): counts batches so the index is
        // sized in one allocation and the replay loop below never
        // reallocates — recovery cost per surviving batch is pure CPU.
        {
            let mut count = 0usize;
            let mut pos = 0u32;
            loop {
                let avail = seg.capacity() - pos;
                let prefix = (record::LENGTH_PREFIX_LEN as u32).min(avail);
                let Ok(total) = seg.with_slice(pos, prefix, record::peek_total_len) else {
                    break;
                };
                let total = total as u32;
                if u64::from(pos) + u64::from(total) > u64::from(seg.capacity()) {
                    break;
                }
                // Header parse (magic, bounds) without the CRC pass: stops
                // the count at zeroed/garbage tails the same way the real
                // scan will, while staying O(1) per batch.
                let head = (record::BATCH_HEADER_LEN as u32).min(total);
                if seg.with_slice(pos, head, record::parse_header).is_err() {
                    break;
                }
                count += 1;
                pos += total;
            }
            seg.batches.borrow_mut().reserve(count);
        }
        loop {
            let pos = seg.committed_pos.get();
            let avail = seg.capacity() - pos;
            let prefix = (record::LENGTH_PREFIX_LEN as u32).min(avail);
            let Ok(total) = seg.with_slice(pos, prefix, record::peek_total_len) else {
                break;
            };
            let total = total as u32;
            if u64::from(pos) + u64::from(total) > u64::from(seg.capacity()) {
                break;
            }
            let Ok(header) = seg.with_slice(pos, total, record::verify_batch) else {
                break;
            };
            let next = seg.next_offset();
            seg.with_slice_mut(pos, total, |b| record::assign_base_offset(b, next));
            seg.push_committed(BatchIndexEntry {
                base_offset: next,
                pos,
                len: total,
                record_count: header.record_count,
            });
        }
        seg
    }

    pub fn base_offset(&self) -> u64 {
        self.base_offset
    }

    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    pub fn write_pos(&self) -> u32 {
        self.write_pos.get()
    }

    pub fn committed_pos(&self) -> u32 {
        self.committed_pos.get()
    }

    pub fn remaining(&self) -> u32 {
        self.capacity() - self.write_pos.get()
    }

    pub fn is_sealed(&self) -> bool {
        self.sealed.get()
    }

    /// Offset after the last committed record, if any batch is committed.
    pub fn next_offset(&self) -> u64 {
        if self.reclaimed.get() {
            return self.frozen_next.get();
        }
        self.batches
            .borrow()
            .last()
            .map_or(self.base_offset, BatchIndexEntry::next_offset)
    }

    /// True while the segment's bytes are in memory (hot tier).
    pub fn is_resident(&self) -> bool {
        self.resident.get()
    }

    /// True once retention reclaimed the segment (tombstone).
    pub fn is_reclaimed(&self) -> bool {
        self.reclaimed.get()
    }

    /// Drops the in-memory bytes of a sealed segment (cold-tier spill).
    /// The shared buffer is emptied **in place** so existing `Rc` clones
    /// (and any re-registration through them) observe the eviction rather
    /// than keeping a stale copy alive.
    pub fn evict(&self) {
        assert!(self.sealed.get(), "only sealed segments evict");
        let mut buf = self.buf.borrow_mut();
        buf.clear();
        buf.shrink_to_fit();
        self.resident.set(false);
    }

    /// Restores evicted bytes from the file tier into the same shared
    /// buffer (page-in for RDMA consumers of cold segments).
    pub fn restore(&self, bytes: &[u8]) {
        assert!(!self.reclaimed.get(), "reclaimed segments cannot restore");
        assert_eq!(bytes.len(), self.capacity as usize, "full segment image");
        let mut buf = self.buf.borrow_mut();
        buf.clear();
        buf.extend_from_slice(bytes);
        self.resident.set(true);
    }

    /// Turns the segment into a retention tombstone: bytes and batch index
    /// are discarded; only `[base_offset, next_offset)` survives so the
    /// segment chain keeps its shape (indices into it stay valid).
    pub fn reclaim(&self) {
        assert!(self.sealed.get(), "only sealed segments reclaim");
        self.frozen_next.set(self.next_offset());
        self.reclaimed.set(true);
        let mut buf = self.buf.borrow_mut();
        buf.clear();
        buf.shrink_to_fit();
        self.resident.set(false);
        self.batches.borrow_mut().clear();
        self.batches.borrow_mut().shrink_to_fit();
    }

    /// The raw storage, shareable with `rnic::ShmBuf::from_shared` for RDMA
    /// registration.
    pub fn shared_buf(&self) -> Rc<RefCell<Vec<u8>>> {
        Rc::clone(&self.buf)
    }

    /// Marks the segment immutable.
    pub fn seal(&self) {
        self.sealed.set(true);
    }

    /// Virtual time the segment sealed (0 when unknown).
    pub fn sealed_at_ns(&self) -> u64 {
        self.sealed_at_ns.get()
    }

    /// Records the seal time (set by `Log::roll` from its clock).
    pub fn set_sealed_at_ns(&self, ns: u64) {
        self.sealed_at_ns.set(ns);
    }

    /// Reserves `len` bytes at the current append point (local/exclusive
    /// path). Returns the start position, or `None` if the segment cannot
    /// hold them (the caller rolls to a new head file).
    pub fn reserve(&self, len: u32) -> Option<u32> {
        if self.sealed.get() || self.remaining() < len {
            return None;
        }
        let pos = self.write_pos.get();
        self.write_pos.set(pos + len);
        Some(pos)
    }

    /// Moves the append point forward to `pos` (shared-RDMA mode: the
    /// broker mirrors the FAA-reserved offset word here, §4.2.2).
    pub fn advance_write_pos(&self, pos: u32) {
        assert!(!self.sealed.get(), "cannot write a sealed segment");
        assert!(pos <= self.capacity(), "write pos beyond preallocation");
        if pos > self.write_pos.get() {
            self.write_pos.set(pos);
        }
    }

    /// Discards reserved-but-uncommitted bytes (used when aborting shared
    /// RDMA produce after a client failure, §4.2.2: the broker "prohibits
    /// holes").
    pub fn truncate_to_committed(&self) {
        self.write_pos.set(self.committed_pos.get());
    }

    /// Copies bytes into the segment at `pos` (the TCP datapath's second
    /// memory copy; the RDMA datapath never calls this — the NIC wrote the
    /// bytes already).
    pub fn write_at(&self, pos: u32, data: &[u8]) {
        assert!(!self.sealed.get(), "cannot write a sealed segment");
        let pos = pos as usize;
        self.buf.borrow_mut()[pos..pos + data.len()].copy_from_slice(data);
    }

    /// Copies `len` bytes out of the segment.
    pub fn read(&self, pos: u32, len: u32) -> Vec<u8> {
        let pos = pos as usize;
        self.buf.borrow()[pos..pos + len as usize].to_vec()
    }

    /// Appends `len` bytes at `pos` to `out` — the allocation-free variant
    /// of [`read`](Self::read) for callers that recycle a fetch buffer
    /// (e.g. `Log::read_from_into`).
    pub fn read_into(&self, pos: u32, len: u32, out: &mut Vec<u8>) {
        let pos = pos as usize;
        out.extend_from_slice(&self.buf.borrow()[pos..pos + len as usize]);
    }

    /// Runs `f` over the segment bytes at `[pos, pos+len)` without copying.
    pub fn with_slice<R>(&self, pos: u32, len: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        let pos = pos as usize;
        f(&self.buf.borrow()[pos..pos + len as usize])
    }

    /// Mutates the segment bytes at `[pos, pos+len)` in place (offset
    /// assignment).
    pub fn with_slice_mut<R>(&self, pos: u32, len: u32, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let pos = pos as usize;
        f(&mut self.buf.borrow_mut()[pos..pos + len as usize])
    }

    /// Records a committed batch. Commits must be contiguous: `entry.pos`
    /// must equal the current committed position.
    pub fn push_committed(&self, entry: BatchIndexEntry) {
        assert_eq!(
            entry.pos,
            self.committed_pos.get(),
            "commits must be contiguous (no holes)"
        );
        debug_assert_eq!(entry.base_offset, self.next_offset());
        self.committed_pos.set(entry.end_pos());
        if self.write_pos.get() < entry.end_pos() {
            self.write_pos.set(entry.end_pos());
        }
        self.batches.borrow_mut().push(entry);
    }

    /// Number of committed batches.
    pub fn batch_count(&self) -> usize {
        self.batches.borrow().len()
    }

    /// Finds the committed batch containing `offset`.
    pub fn find_batch(&self, offset: u64) -> Option<BatchIndexEntry> {
        let batches = self.batches.borrow();
        if batches.is_empty() {
            return None;
        }
        let idx = batches.partition_point(|b| b.base_offset <= offset);
        if idx == 0 {
            return None;
        }
        let entry = batches[idx - 1];
        (offset < entry.next_offset()).then_some(entry)
    }

    /// The committed batch at index `i`.
    pub fn batch_at(&self, i: usize) -> Option<BatchIndexEntry> {
        self.batches.borrow().get(i).copied()
    }

    /// Index of the committed batch containing `offset`.
    pub fn batch_index_of(&self, offset: u64) -> Option<usize> {
        let batches = self.batches.borrow();
        let idx = batches.partition_point(|b| b.base_offset <= offset);
        if idx == 0 {
            return None;
        }
        (offset < batches[idx - 1].next_offset()).then_some(idx - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_roll_point() {
        let s = Segment::new(100, 64);
        assert_eq!(s.reserve(40), Some(0));
        assert_eq!(s.reserve(30), None); // only 24 left
        assert_eq!(s.reserve(24), Some(40));
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn sealed_rejects_reserve() {
        let s = Segment::new(0, 64);
        s.seal();
        assert_eq!(s.reserve(1), None);
        assert!(s.is_sealed());
    }

    #[test]
    fn write_read_round_trip() {
        let s = Segment::new(0, 32);
        s.write_at(4, b"abcd");
        assert_eq!(s.read(4, 4), b"abcd");
        s.with_slice(4, 4, |b| assert_eq!(b, b"abcd"));
    }

    #[test]
    fn committed_batches_index() {
        let s = Segment::new(10, 1024);
        s.push_committed(BatchIndexEntry {
            base_offset: 10,
            pos: 0,
            len: 100,
            record_count: 5,
        });
        s.push_committed(BatchIndexEntry {
            base_offset: 15,
            pos: 100,
            len: 50,
            record_count: 2,
        });
        assert_eq!(s.next_offset(), 17);
        assert_eq!(s.committed_pos(), 150);
        assert_eq!(s.find_batch(9), None);
        assert_eq!(s.find_batch(10).unwrap().pos, 0);
        assert_eq!(s.find_batch(14).unwrap().pos, 0);
        assert_eq!(s.find_batch(15).unwrap().pos, 100);
        assert_eq!(s.find_batch(16).unwrap().pos, 100);
        assert_eq!(s.find_batch(17), None);
        assert_eq!(s.batch_index_of(16), Some(1));
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_commit_panics() {
        let s = Segment::new(0, 1024);
        s.push_committed(BatchIndexEntry {
            base_offset: 0,
            pos: 8,
            len: 10,
            record_count: 1,
        });
    }

    #[test]
    fn truncate_discards_reserved() {
        let s = Segment::new(0, 128);
        s.push_committed(BatchIndexEntry {
            base_offset: 0,
            pos: 0,
            len: 32,
            record_count: 1,
        });
        s.advance_write_pos(96);
        assert_eq!(s.write_pos(), 96);
        s.truncate_to_committed();
        assert_eq!(s.write_pos(), 32);
        assert_eq!(s.committed_pos(), 32);
    }
}
