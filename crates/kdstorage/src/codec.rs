//! Binary encode/decode helpers: fixed-width little-endian integers,
//! unsigned varints, and zigzag-encoded signed varints (the same building
//! blocks Kafka's record format v2 uses).

use std::fmt;

/// Decode error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of input bytes.
    UnexpectedEof,
    /// A varint exceeded its maximum width.
    VarintOverflow,
    /// A length field described more bytes than exist / allowed.
    BadLength,
    /// Magic/enum discriminant was invalid.
    BadValue,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::VarintOverflow => write!(f, "varint exceeds maximum width"),
            WireError::BadLength => write!(f, "invalid length field"),
            WireError::BadValue => write!(f, "invalid enum or magic value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Growable output buffer with typed put methods.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing buffer, appending to its current contents. Lets hot
    /// paths encode into a reused allocation instead of a fresh `Vec`.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Writer { buf }
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Unsigned LEB128 varint.
    pub fn put_uvarint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7f) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Zigzag-encoded signed varint.
    pub fn put_varint(&mut self, v: i64) {
        self.put_uvarint(zigzag_encode(v));
    }

    /// Length-prefixed bytes (uvarint length, `None` encoded as length 0
    /// with a presence flag).
    pub fn put_opt_bytes(&mut self, v: Option<&[u8]>) {
        match v {
            None => self.put_uvarint(0),
            Some(b) => {
                self.put_uvarint(b.len() as u64 + 1);
                self.put_bytes(b);
            }
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_string(&mut self, s: &str) {
        self.put_uvarint(s.len() as u64);
        self.put_bytes(s.as_bytes());
    }

    /// Clears the buffer, keeping its capacity for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Overwrites 4 bytes at `pos` (used to patch length/CRC fields after
    /// the body is known).
    pub fn patch_u32(&mut self, pos: usize, v: u32) {
        self.buf[pos..pos + 4].copy_from_slice(&v.to_le_bytes());
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Cursor over a byte slice with typed take methods.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_uvarint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = self.get_u8()?;
            if shift == 63 && b > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    pub fn get_varint(&mut self) -> Result<i64, WireError> {
        Ok(zigzag_decode(self.get_uvarint()?))
    }

    pub fn get_opt_bytes(&mut self) -> Result<Option<&'a [u8]>, WireError> {
        let len = self.get_uvarint()?;
        if len == 0 {
            return Ok(None);
        }
        Ok(Some(self.take(len as usize - 1)?))
    }

    pub fn get_string(&mut self) -> Result<String, WireError> {
        let len = self.get_uvarint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadValue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_round_trip() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u16(0x0203);
        w.put_u32(0x04050607);
        w.put_u64(0x08090a0b0c0d0e0f);
        w.put_i64(-42);
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u16().unwrap(), 0x0203);
        assert_eq!(r.get_u32().unwrap(), 0x04050607);
        assert_eq!(r.get_u64().unwrap(), 0x08090a0b0c0d0e0f);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut w = Writer::new();
            w.put_uvarint(v);
            let mut r = Reader::new(w.as_slice());
            assert_eq!(r.get_uvarint().unwrap(), v);
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes stay small.
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn opt_bytes() {
        let mut w = Writer::new();
        w.put_opt_bytes(None);
        w.put_opt_bytes(Some(b""));
        w.put_opt_bytes(Some(b"abc"));
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(r.get_opt_bytes().unwrap(), None);
        assert_eq!(r.get_opt_bytes().unwrap(), Some(&b""[..]));
        assert_eq!(r.get_opt_bytes().unwrap(), Some(&b"abc"[..]));
    }

    #[test]
    fn eof_and_overflow_errors() {
        let mut r = Reader::new(&[0x80]);
        assert_eq!(r.get_uvarint(), Err(WireError::UnexpectedEof));
        let eleven = [0xffu8; 11];
        let mut r = Reader::new(&eleven);
        assert_eq!(r.get_uvarint(), Err(WireError::VarintOverflow));
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.get_u32(), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn patch_u32_rewrites() {
        let mut w = Writer::new();
        w.put_u32(0);
        w.put_u8(9);
        w.patch_u32(0, 0xdeadbeef);
        let mut r = Reader::new(w.as_slice());
        assert_eq!(r.get_u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.get_u8().unwrap(), 9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use sim::rng::SimRng;

    #[test]
    fn uvarint_round_trips() {
        let mut rng = SimRng::seed_from_u64(0xC0DEC01);
        let edge = [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX];
        for case in 0..256usize {
            let v = if case < edge.len() {
                edge[case]
            } else {
                // Spread across magnitudes: mask a random value to a random width.
                rng.next_u64() >> rng.below(64)
            };
            let mut w = Writer::new();
            w.put_uvarint(v);
            let mut r = Reader::new(w.as_slice());
            assert_eq!(r.get_uvarint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn varint_round_trips() {
        let mut rng = SimRng::seed_from_u64(0xC0DEC02);
        let edge = [0i64, -1, 1, i64::MIN, i64::MAX, -64, 63, -65, 64];
        for case in 0..256usize {
            let v = if case < edge.len() {
                edge[case]
            } else {
                let mag = (rng.next_u64() >> rng.below(64)) as i64;
                if rng.random_bool(0.5) {
                    mag
                } else {
                    mag.wrapping_neg()
                }
            };
            let mut w = Writer::new();
            w.put_varint(v);
            let mut r = Reader::new(w.as_slice());
            assert_eq!(r.get_varint().unwrap(), v);
        }
    }

    #[test]
    fn strings_round_trip() {
        let mut rng = SimRng::seed_from_u64(0xC0DEC03);
        for _case in 0..256usize {
            let len = rng.random_range(0usize..=64);
            // Arbitrary unicode scalar values, not just ASCII.
            let s: String = (0..len)
                .map(|_| loop {
                    if let Some(c) = char::from_u32(rng.random_range(1u32..0x11_0000)) {
                        return c;
                    }
                })
                .collect();
            let mut w = Writer::new();
            w.put_string(&s);
            let mut r = Reader::new(w.as_slice());
            assert_eq!(r.get_string().unwrap(), s);
        }
    }
}
