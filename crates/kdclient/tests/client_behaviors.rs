//! Client-side behaviours against a directly-constructed broker: ack modes,
//! offset skipping, counters, and error surfaces.

use kdbroker::{Broker, BrokerConfig, RdmaToggles};
use kdclient::producer::Acks;
use kdclient::{Admin, ClientTransport, RdmaProducer, TcpConsumer, TcpProducer};
use kdstorage::Record;
use kdwire::BrokerAddr;
use netsim::profile::Profile;
use netsim::{Fabric, NodeHandle};

async fn broker(fabric: &Fabric, config: BrokerConfig) -> (Broker, BrokerAddr, NodeHandle) {
    let node = fabric.add_node("broker");
    let addr = BrokerAddr {
        node: node.id.0,
        port: config.tcp_port,
        rdma_port: config.rdma_port,
    };
    let b = Broker::start(&node, config, vec![addr]);
    let client = fabric.add_node("client");
    let admin = Admin::connect(&client, addr).await.unwrap();
    admin.create_topic("t", 1, 1).await.unwrap();
    (b, addr, client)
}

#[test]
fn acks_modes_all_deliver() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let fabric = Fabric::new(Profile::testbed());
        let (_b, addr, client) =
            broker(&fabric, BrokerConfig::kafkadirect(RdmaToggles::all())).await;
        let mut p = TcpProducer::connect(&client, addr, ClientTransport::Tcp, "t", 0)
            .await
            .unwrap();
        let mut latencies = Vec::new();
        for acks in [Acks::None, Acks::Leader, Acks::All] {
            p.acks = acks;
            let t0 = sim::now();
            p.send(&Record::value(b"x".to_vec())).await.unwrap();
            latencies.push((sim::now() - t0).as_nanos());
        }
        // RF=1: all modes commit at the leader; fire-and-forget is not
        // slower than leader-ack.
        assert!(latencies[0] <= latencies[1] + 1000);
        let admin = Admin::connect(&client, addr).await.unwrap();
        let (_, hw) = admin.list_offsets("t", 0).await.unwrap();
        assert_eq!(hw, 3);
    });
}

#[test]
fn consumer_skips_mid_batch_offsets() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let fabric = Fabric::new(Profile::testbed());
        let (_b, addr, client) = broker(&fabric, BrokerConfig::kafka()).await;
        let p = TcpProducer::connect(&client, addr, ClientTransport::Tcp, "t", 0)
            .await
            .unwrap();
        // One batch of 5 records (offsets 0..5).
        let records: Vec<Record> = (0..5u8).map(|i| Record::value(vec![i])).collect();
        p.send_many(&records).await.unwrap();
        // Start mid-batch: the broker returns the whole batch; the client
        // must skip records below the requested offset.
        let mut c = TcpConsumer::connect(&client, addr, ClientTransport::Tcp, "t", 0, 3)
            .await
            .unwrap();
        let got = c.next_records().await.unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].offset, 3);
        assert_eq!(got[1].offset, 4);
    });
}

#[test]
fn consumer_counters_track_empty_fetches() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let fabric = Fabric::new(Profile::testbed());
        let (_b, addr, client) = broker(&fabric, BrokerConfig::kafka()).await;
        let mut c = TcpConsumer::connect(&client, addr, ClientTransport::Tcp, "t", 0, 0)
            .await
            .unwrap();
        for _ in 0..5 {
            assert!(c.poll().await.unwrap().is_empty());
        }
        assert_eq!(c.fetches, 5);
        assert_eq!(c.empty_fetches, 5);
        let p = TcpProducer::connect(&client, addr, ClientTransport::Tcp, "t", 0)
            .await
            .unwrap();
        p.send(&Record::value(b"x".to_vec())).await.unwrap();
        assert_eq!(c.next_records().await.unwrap().len(), 1);
        assert_eq!(c.empty_fetches, 5, "non-empty polls don't count");
    });
}

#[test]
fn rdma_producer_grant_reflects_broker_state() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let fabric = Fabric::new(Profile::testbed());
        let (_b, addr, client) =
            broker(&fabric, BrokerConfig::kafkadirect(RdmaToggles::all())).await;
        let mut p = RdmaProducer::connect(&client, addr, "t", 0, false).await.unwrap();
        assert_eq!(p.grant().segment, 0);
        assert_eq!(p.grant().write_pos, 0);
        assert_eq!(p.grant().next_offset, 0);
        p.send(&Record::value(vec![1u8; 64])).await.unwrap();
        // A shared producer on the same TP conflicts with the live
        // exclusive grant.
        let shared = RdmaProducer::connect(&client, addr, "t", 0, true).await;
        assert!(matches!(
            shared,
            Err(kdclient::ClientError::Broker(kdwire::ErrorCode::AccessDenied))
        ));
    });
}

#[test]
fn producer_send_many_batches_share_one_offset_run() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let fabric = Fabric::new(Profile::testbed());
        let (_b, addr, client) = broker(&fabric, BrokerConfig::kafka()).await;
        let p = TcpProducer::connect(&client, addr, ClientTransport::Tcp, "t", 0)
            .await
            .unwrap();
        let base = p
            .send_many(&[
                Record::value(b"a".to_vec()),
                Record::value(b"b".to_vec()),
                Record::value(b"c".to_vec()),
            ])
            .await
            .unwrap();
        assert_eq!(base, 0);
        let next = p.send(&Record::value(b"d".to_vec())).await.unwrap();
        assert_eq!(next, 3, "batch occupied offsets 0..3");
    });
}

#[test]
fn rdma_disabled_broker_rejects_produce_access() {
    let rt = sim::Runtime::new();
    rt.block_on(async {
        let fabric = Fabric::new(Profile::testbed());
        // OSU config: RDMA transport listeners exist, but one-sided
        // datapaths are off → produce access must be denied.
        let (_b, addr, client) = broker(&fabric, BrokerConfig::osu()).await;
        let denied = RdmaProducer::connect(&client, addr, "t", 0, false).await;
        assert!(matches!(
            denied,
            Err(kdclient::ClientError::Broker(kdwire::ErrorCode::AccessDenied))
        ));
    });
}
