//! The KafkaDirect RDMA consumer (§4.4.2): fetches records with one-sided
//! RDMA Reads — the broker's CPU is never involved.
//!
//! Mechanics reproduced from the paper:
//! * **Getting access**: a TCP request returns the file's region, its last
//!   readable byte, and whether it is mutable.
//! * **Metadata slots**: for mutable files the consumer polls an
//!   RDMA-readable slot (one read covers all of its active slots) to learn
//!   about new records without broker involvement.
//! * **Fetch size**: RDMA Reads fetch a configurable number of bytes
//!   (default 2 KiB); partially fetched batches are kept until complete.
//! * **File roll**: when a slot reports the file immutable and fully read,
//!   the consumer releases it and requests access to the next file.

use kdstorage::record::{decode_batch, peek_total_len, RecordView, LENGTH_PREFIX_LEN};
use kdwire::slots::{SlotView, SLOT_SIZE};
use kdwire::{BrokerAddr, ConsumeAccessResp, Request, Response};
use netsim::profile::copy_time;
use netsim::NodeHandle;
use rnic::{CompletionQueue, QpOptions, QueuePair, RNic, SendWr, ShmBuf, WorkRequest};

use crate::conn::{ClientTransport, Conn};
use crate::error::{check, ClientError};

/// Default fetch size: "2 KiB as it provides a good trade-off between
/// latency ... and bandwidth" (§4.4.2).
pub const DEFAULT_FETCH_SIZE: u32 = 2048;

/// Telemetry counters of one consumer.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConsumerStats {
    pub data_reads: u64,
    pub data_bytes: u64,
    pub slot_reads: u64,
    pub access_requests: u64,
    pub releases: u64,
    pub rdma_offset_commits: u64,
}

struct FileState {
    grant: ConsumeAccessResp,
    /// Next byte to fetch from the file.
    read_pos: u32,
    /// First unreadable byte (refreshed from the metadata slot).
    last_readable: u32,
    mutable: bool,
}

/// The RDMA consumer.
pub struct RdmaConsumer {
    node: NodeHandle,
    ctrl: Conn,
    #[allow(dead_code)]
    nic: RNic,
    qp: QueuePair,
    send_cq: CompletionQueue,
    topic: String,
    partition: u32,
    consumer_id: u64,
    /// Next record offset to deliver to the application.
    pub offset: u64,
    pub fetch_size: u32,
    file: Option<FileState>,
    /// Partially fetched batch bytes (§4.4.2 "the partially read records
    /// are kept until all their bytes are fetched").
    partial: Vec<u8>,
    ready: std::collections::VecDeque<RecordView>,
    fetch_buf: ShmBuf,
    slot_buf: ShmBuf,
    /// EXTENSION (§4.4.2 alternative): size RDMA Reads from the parsed batch
    /// headers instead of a fixed fetch size.
    pub adaptive_fetch: bool,
    /// EWMA of recent batch sizes (adaptive mode).
    avg_batch: f64,
    /// EXTENSION (§5.4 future work): RDMA-writable offset slot for one-sided
    /// offset commits.
    offset_slot: Option<kdwire::RemoteRegion>,
    commit_buf: ShmBuf,
    pub stats: ConsumerStats,
    telem: kdtelem::Registry,
    /// End-to-end fetch latency: data-carrying `poll` entry → records parsed.
    fetch_e2e_ns: kdtelem::Histogram,
}

impl RdmaConsumer {
    pub async fn connect(
        node: &NodeHandle,
        broker: BrokerAddr,
        topic: &str,
        partition: u32,
        offset: u64,
    ) -> Result<RdmaConsumer, ClientError> {
        let ctrl = Conn::connect(node, broker, ClientTransport::Tcp).await?;
        let nic = RNic::new(node);
        let send_cq = nic.create_cq(256);
        let recv_cq = nic.create_cq(16);
        let qp = nic
            .connect(
                netsim::NodeId(broker.node),
                broker.rdma_port + 2, // CONSUME_PORT_OFF
                send_cq.clone(),
                recv_cq,
                QpOptions::default(),
            )
            .await
            .map_err(|_| ClientError::Disconnected)?;
        let telem = kdtelem::current();
        let fetch_e2e_ns = telem.histogram("kdclient", "fetch.e2e_ns");
        Ok(RdmaConsumer {
            node: node.clone(),
            ctrl,
            nic,
            qp,
            send_cq,
            topic: topic.to_string(),
            partition,
            consumer_id: sim::rng::range_u64(1..u64::MAX),
            offset,
            fetch_size: DEFAULT_FETCH_SIZE,
            file: None,
            partial: Vec::new(),
            ready: std::collections::VecDeque::new(),
            fetch_buf: ShmBuf::zeroed(DEFAULT_FETCH_SIZE as usize),
            slot_buf: ShmBuf::zeroed(64 * SLOT_SIZE),
            adaptive_fetch: false,
            avg_batch: f64::from(DEFAULT_FETCH_SIZE),
            offset_slot: None,
            commit_buf: ShmBuf::zeroed(8),
            stats: ConsumerStats::default(),
            telem,
            fetch_e2e_ns,
        })
    }

    /// One RDMA Read into `local`, awaiting its completion.
    async fn rdma_read(
        &mut self,
        local: rnic::BufSlice,
        remote_addr: u64,
        rkey: u32,
        trace: Option<kdtelem::TraceCtx>,
    ) -> Result<(), ClientError> {
        self.qp
            .post_send(
                SendWr::new(
                    7,
                    WorkRequest::Read {
                        local,
                        remote_addr,
                        rkey,
                    },
                )
                .with_trace(trace),
            )
            .map_err(|_| ClientError::Disconnected)?;
        let cqe = self
            .send_cq
            .next()
            .await
            .ok_or(ClientError::Disconnected)?;
        if !cqe.ok() {
            return Err(ClientError::Disconnected);
        }
        Ok(())
    }

    /// Requests RDMA access to the file containing the consumer's offset.
    async fn acquire_file(&mut self) -> Result<(), ClientError> {
        self.stats.access_requests += 1;
        let resp = self
            .ctrl
            .call(&Request::ConsumeAccess {
                topic: self.topic.clone(),
                partition: self.partition,
                offset: self.offset,
                consumer_id: self.consumer_id,
            })
            .await?;
        let grant = match resp {
            Response::ConsumeAccess(g) => g,
            _ => return Err(ClientError::Protocol),
        };
        check(grant.error)?;
        self.partial.clear();
        self.file = Some(FileState {
            read_pos: grant.start_pos,
            last_readable: grant.last_readable,
            mutable: grant.mutable,
            grant,
        });
        Ok(())
    }

    /// Releases a fully-consumed file so the broker can unregister it.
    async fn release_file(&mut self) -> Result<(), ClientError> {
        let Some(f) = self.file.take() else {
            return Ok(());
        };
        self.stats.releases += 1;
        let _ = self
            .ctrl
            .call(&Request::ConsumeRelease {
                topic: self.topic.clone(),
                partition: self.partition,
                consumer_id: self.consumer_id,
                segment: f.grant.segment,
            })
            .await?;
        Ok(())
    }

    /// Refreshes `last_readable`/`mutable` by reading the metadata slot
    /// region with a single RDMA Read (§4.4.2, Fig 9).
    async fn refresh_metadata(&mut self) -> Result<(), ClientError> {
        let Some(slot) = self.file.as_ref().and_then(|f| f.grant.slot) else {
            return Ok(());
        };
        // Read the smallest contiguous region containing all active slots.
        let span = (slot.active_span.max(slot.index + 1) as usize) * SLOT_SIZE;
        let span = span.min(self.slot_buf.len());
        self.stats.slot_reads += 1;
        let local = self.slot_buf.slice(0, span);
        self.rdma_read(local, slot.region.addr, slot.region.rkey, None)
            .await?;
        let view = SlotView::decode(
            &self
                .slot_buf
                .read_at(slot.index as usize * SLOT_SIZE, SLOT_SIZE),
        );
        let f = self.file.as_mut().expect("file present");
        f.last_readable = view.last_readable;
        f.mutable = view.mutable;
        Ok(())
    }

    /// One fetch iteration. Returns any records that became ready; an empty
    /// result means no new committed data was visible.
    pub async fn poll(&mut self) -> Result<Vec<RecordView>, ClientError> {
        let start = sim::now();
        if !self.ready.is_empty() {
            return Ok(self.drain_ready());
        }
        if self.file.is_none() {
            self.acquire_file().await?;
        }
        // Exhausted the readable part?
        let (read_pos, last_readable, mutable) = {
            let f = self.file.as_ref().unwrap();
            (f.read_pos, f.last_readable, f.mutable)
        };
        if read_pos >= last_readable {
            if !mutable {
                // Fully read an immutable file: move to the next one.
                self.release_file().await?;
                self.acquire_file().await?;
                return Ok(Vec::new());
            }
            self.refresh_metadata().await?;
            let f = self.file.as_ref().unwrap();
            if f.read_pos >= f.last_readable {
                return Ok(Vec::new()); // nothing new yet
            }
        }
        // Fetch up to fetch_size readable bytes; in adaptive mode, size the
        // read from what we already know: the partial batch's own header if
        // fetched, otherwise a moving estimate of recent batch sizes
        // (§4.4.2's two suggested dynamic-tuning strategies).
        let want = if self.adaptive_fetch {
            let from_header = if self.partial.len() >= LENGTH_PREFIX_LEN {
                peek_total_len(&self.partial)
                    .ok()
                    .map(|total| total.saturating_sub(self.partial.len()) as u32)
            } else {
                None
            };
            from_header
                .unwrap_or(self.avg_batch as u32 + LENGTH_PREFIX_LEN as u32)
                .clamp(256, 1024 * 1024)
        } else {
            self.fetch_size
        };
        let f = self.file.as_ref().unwrap();
        let n = (f.last_readable - f.read_pos).min(want) as usize;
        let addr = f.grant.region.addr + u64::from(f.read_pos);
        let rkey = f.grant.region.rkey;
        if self.fetch_buf.len() < n {
            self.fetch_buf = ShmBuf::zeroed(n);
        }
        self.stats.data_reads += 1;
        self.stats.data_bytes += n as u64;
        // Root of this fetch's lifeline. The broker CPU never sees one-sided
        // Reads, so the client both carries the ctx on the Read WR and emits
        // the FetchServed event itself once records are parsed.
        let tspan = self.telem.trace_span("client.fetch", None);
        let ctx = tspan.ctx();
        let local = self.fetch_buf.slice(0, n);
        self.rdma_read(local, addr, rkey, Some(ctx)).await?;
        self.partial.extend_from_slice(&self.fetch_buf.read_at(0, n));
        self.file.as_mut().unwrap().read_pos += n as u32;
        // Client-side integrity check + copy into "native" buffers — the
        // 2 µs overhead §5.3 attributes to the consumer API.
        let cpu = &self.node.profile().cpu;
        sim::time::sleep(
            copy_time(n as u64, cpu.crc_bandwidth) + copy_time(n as u64, cpu.memcpy_bandwidth),
        )
        .await;
        let first_offset = self.offset;
        self.parse_partial()?;
        if self.offset > first_offset {
            self.telem.trace_event_now(
                ctx,
                kdtelem::EventKind::FetchServed {
                    stream: kdtelem::stream_key(self.topic.as_str(), self.partition),
                    start_offset: first_offset,
                    next_offset: self.offset,
                    bytes: n as u64,
                },
            );
        }
        // A data-carrying poll is one end-to-end fetch (empty metadata-only
        // polls are deliberately excluded — they're "empty fetches", §5.3).
        self.fetch_e2e_ns.record_since(start);
        tspan.end();
        Ok(self.drain_ready())
    }

    /// Parses complete batches out of the partial buffer; incomplete tails
    /// stay for the next read.
    fn parse_partial(&mut self) -> Result<(), ClientError> {
        let mut at = 0usize;
        while self.partial.len() - at >= LENGTH_PREFIX_LEN {
            let total =
                peek_total_len(&self.partial[at..]).map_err(|_| ClientError::Corrupt)?;
            if self.partial.len() - at < total {
                break;
            }
            self.avg_batch = 0.8 * self.avg_batch + 0.2 * total as f64;
            let records = decode_batch(&self.partial[at..at + total])
                .map_err(|_| ClientError::Corrupt)?;
            for rv in records {
                if rv.offset >= self.offset {
                    self.offset = rv.offset + 1;
                    self.ready.push_back(rv);
                }
            }
            at += total;
        }
        self.partial.drain(..at);
        Ok(())
    }

    fn drain_ready(&mut self) -> Vec<RecordView> {
        self.ready.drain(..).collect()
    }

    /// Polls until at least one record is available.
    pub async fn next_records(&mut self) -> Result<Vec<RecordView>, ClientError> {
        loop {
            let records = self.poll().await?;
            if !records.is_empty() {
                return Ok(records);
            }
        }
    }

    /// Checks for new records with a single metadata-slot read — the "empty
    /// fetch" of §5.3, fully offloaded to the NICs. Returns the last
    /// readable byte currently visible.
    pub async fn check_new_data(&mut self) -> Result<u32, ClientError> {
        if self.file.is_none() {
            self.acquire_file().await?;
        }
        self.refresh_metadata().await?;
        Ok(self.file.as_ref().unwrap().last_readable)
    }

    /// EXTENSION (§5.4 future work): acquires an RDMA-writable offset slot
    /// so [`commit_offset_rdma`](Self::commit_offset_rdma) can commit with a
    /// single one-sided write — no broker CPU, no TCP round trip.
    pub async fn enable_rdma_offset_commit(&mut self, group: &str) -> Result<(), ClientError> {
        let resp = self
            .ctrl
            .call(&Request::OffsetSlotAccess {
                group: group.to_string(),
                topic: self.topic.clone(),
                partition: self.partition,
            })
            .await?;
        match resp {
            Response::OffsetSlotAccess { error, region } => {
                check(error)?;
                self.offset_slot = Some(region);
                Ok(())
            }
            _ => Err(ClientError::Protocol),
        }
    }

    /// Commits the current offset with one RDMA Write into the offset slot.
    pub async fn commit_offset_rdma(&mut self) -> Result<(), ClientError> {
        let slot = self.offset_slot.ok_or(ClientError::Protocol)?;
        self.commit_buf.write_u64(0, self.offset);
        self.qp
            .post_send(SendWr::new(
                8,
                WorkRequest::Write {
                    local: self.commit_buf.as_slice(),
                    remote_addr: slot.addr,
                    rkey: slot.rkey,
                },
            ))
            .map_err(|_| ClientError::Disconnected)?;
        let cqe = self
            .send_cq
            .next()
            .await
            .ok_or(ClientError::Disconnected)?;
        if !cqe.ok() {
            return Err(ClientError::Disconnected);
        }
        self.stats.rdma_offset_commits += 1;
        Ok(())
    }

    /// Commits this consumer's offset for `group` over TCP (§5.4).
    pub async fn commit_offset(&self, group: &str) -> Result<(), ClientError> {
        let resp = self
            .ctrl
            .call(&Request::OffsetCommit {
                group: group.to_string(),
                topic: self.topic.clone(),
                partition: self.partition,
                offset: self.offset,
            })
            .await?;
        match resp {
            Response::OffsetCommit { error } => check(error),
            _ => Err(ClientError::Protocol),
        }
    }
}
