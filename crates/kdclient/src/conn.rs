//! Client RPC transports: framed TCP (the Kafka default and KafkaDirect's
//! control plane) and the OSU-Kafka two-sided RDMA Send/Recv transport.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use kdwire::{BrokerAddr, Request, Response, RpcClient};
use netsim::profile::copy_time;
use netsim::NodeHandle;
use rnic::{CqOpcode, QpOptions, QueuePair, RNic, RecvWr, SendWr, ShmBuf, WorkRequest};

use crate::error::ClientError;

/// Which transport a client speaks for request/response RPCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientTransport {
    /// Kernel TCP (Kafka baseline; also KafkaDirect's control plane).
    Tcp,
    /// Two-sided RDMA Send/Recv (OSU-Kafka baseline).
    Osu,
}

/// A connection to one broker over either transport.
#[derive(Clone)]
pub enum Conn {
    Tcp(RpcClient),
    Osu(Rc<OsuConn>),
}

impl Conn {
    /// Connects from `node` to `broker` using the chosen transport.
    pub async fn connect(
        node: &NodeHandle,
        broker: BrokerAddr,
        transport: ClientTransport,
    ) -> Result<Conn, ClientError> {
        match transport {
            ClientTransport::Tcp => {
                let stream =
                    netsim::tcp::connect(node, netsim::NodeId(broker.node), broker.port)
                        .await
                        .map_err(|_| ClientError::Disconnected)?;
                Ok(Conn::Tcp(RpcClient::new(stream)))
            }
            ClientTransport::Osu => Ok(Conn::Osu(Rc::new(
                OsuConn::connect(node, broker, 256 * 1024, 8).await?,
            ))),
        }
    }

    pub async fn call(&self, req: &Request) -> Result<Response, ClientError> {
        self.call_traced(req, None).await
    }

    /// As [`call`](Self::call), carrying a trace context across the process
    /// boundary — in the frame header on TCP, in the Send WR on OSU.
    pub async fn call_traced(
        &self,
        req: &Request,
        trace: Option<kdtelem::TraceCtx>,
    ) -> Result<Response, ClientError> {
        match self {
            Conn::Tcp(c) => c.call_traced(req, trace).await.map_err(ClientError::from),
            Conn::Osu(c) => c.call_traced(req, trace).await,
        }
    }
}

/// The OSU-Kafka client transport: requests leave as RDMA Sends, responses
/// arrive into pre-posted receive buffers. Both directions copy through
/// those intermediate buffers — this is the "two-sided RDMA messaging"
/// baseline, not zero copy.
pub struct OsuConn {
    node: NodeHandle,
    qp: QueuePair,
    pending: Rc<RefCell<HashMap<u64, sim::sync::oneshot::Sender<Response>>>>,
    next_corr: Cell<u64>,
    dead: Rc<Cell<bool>>,
}

impl OsuConn {
    pub async fn connect(
        node: &NodeHandle,
        broker: BrokerAddr,
        recv_buf: usize,
        recv_depth: usize,
    ) -> Result<OsuConn, ClientError> {
        let nic = RNic::new(node);
        let send_cq = nic.create_cq(1024);
        let recv_cq = nic.create_cq(1024);
        let qp = nic
            .connect(
                netsim::NodeId(broker.node),
                broker.rdma_port + 1, // OSU_PORT_OFF
                send_cq.clone(),
                recv_cq.clone(),
                QpOptions::default(),
            )
            .await
            .map_err(|_| ClientError::Disconnected)?;
        let bufs: Vec<ShmBuf> = (0..recv_depth).map(|_| ShmBuf::zeroed(recv_buf)).collect();
        for (i, b) in bufs.iter().enumerate() {
            let _ = qp.post_recv(RecvWr {
                wr_id: i as u64,
                buf: Some(b.as_slice()),
            });
        }
        let pending: Rc<RefCell<HashMap<u64, sim::sync::oneshot::Sender<Response>>>> =
            Rc::new(RefCell::new(HashMap::new()));
        let dead = Rc::new(Cell::new(false));

        // Response reader.
        let pending2 = Rc::clone(&pending);
        let dead2 = Rc::clone(&dead);
        let qp2 = qp.clone();
        let node2 = node.clone();
        sim::spawn(async move {
            loop {
                let Some(cqe) = recv_cq.next().await else { break };
                if !cqe.ok() || cqe.opcode != CqOpcode::Recv {
                    break;
                }
                // Copy out of the network receive buffer (the OSU cost).
                let kcopy = node2.profile().net.kernel_copy_bandwidth;
                sim::time::sleep(copy_time(u64::from(cqe.byte_len), kcopy)).await;
                let buf = &bufs[cqe.wr_id as usize];
                // Decode in place (before reposting the receive), avoiding a
                // copy of the frame out of the receive buffer.
                let decoded = buf.with(|s| {
                    let frame = &s[..cqe.byte_len as usize];
                    if frame.len() < 8 {
                        return None;
                    }
                    let corr = u64::from_le_bytes(frame[..8].try_into().unwrap());
                    Some((corr, Response::decode(&frame[8..])))
                });
                let _ = qp2.post_recv(RecvWr {
                    wr_id: cqe.wr_id,
                    buf: Some(buf.as_slice()),
                });
                let Some((corr, resp)) = decoded else {
                    continue;
                };
                if let (Some(tx), Ok(resp)) = (pending2.borrow_mut().remove(&corr), resp) {
                    let _ = tx.send(resp);
                }
            }
            dead2.set(true);
            pending2.borrow_mut().clear();
        });
        // Drain the send CQ (sends are unsignaled; errors only).
        sim::spawn(async move { while send_cq.next().await.is_some() {} });

        Ok(OsuConn {
            node: node.clone(),
            qp,
            pending,
            next_corr: Cell::new(1),
            dead,
        })
    }

    pub async fn call(&self, req: &Request) -> Result<Response, ClientError> {
        self.call_traced(req, None).await
    }

    pub async fn call_traced(
        &self,
        req: &Request,
        trace: Option<kdtelem::TraceCtx>,
    ) -> Result<Response, ClientError> {
        if self.dead.get() {
            return Err(ClientError::Disconnected);
        }
        let corr = self.next_corr.get();
        self.next_corr.set(corr + 1);
        let mut body = kdbuf::scratch();
        req.encode_into(&mut body);
        // Copy into the send buffer.
        let kcopy = self.node.profile().net.kernel_copy_bandwidth;
        sim::time::sleep(copy_time(body.len() as u64, kcopy)).await;
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&corr.to_le_bytes());
        frame.extend_from_slice(&body);
        let (tx, rx) = sim::sync::oneshot::channel();
        self.pending.borrow_mut().insert(corr, tx);
        let buf = ShmBuf::from_vec(frame);
        self.qp
            .post_send(
                SendWr::unsignaled(
                    corr,
                    WorkRequest::Send {
                        local: buf.as_slice(),
                    },
                )
                .with_trace(trace),
            )
            .map_err(|_| ClientError::Disconnected)?;
        rx.await.map_err(|_| ClientError::Disconnected)
    }
}

/// Expects a specific response variant; anything else is a protocol error.
#[macro_export]
macro_rules! expect_response {
    ($resp:expr, $variant:path) => {
        match $resp {
            $variant(inner) => Ok(inner),
            _ => Err($crate::ClientError::Protocol),
        }
    };
}
