//! The original Kafka producer (§4.2.1): produce RPCs over TCP (or the OSU
//! transport), with the client-side costs the paper measures — the
//! defensive copy of user data and the producer pipeline overheads (§5.1).

use std::cell::RefCell;
use std::rc::Rc;

use kdstorage::record::BatchBuilder;
use kdstorage::Record;
use kdwire::{Request, Response};
use netsim::profile::copy_time;
use netsim::NodeHandle;

use crate::conn::{ClientTransport, Conn};
use crate::error::{check, ClientError};

/// Acknowledgment mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acks {
    /// Fire and forget.
    None,
    /// Leader commit.
    Leader,
    /// All in-sync replicas (the paper's replication experiments).
    All,
}

impl Acks {
    fn wire(self) -> u8 {
        match self {
            Acks::None => 0,
            Acks::Leader => 1,
            Acks::All => 2,
        }
    }
}

/// A TCP (or OSU) producer bound to one topic partition.
pub struct TcpProducer {
    node: NodeHandle,
    conn: Conn,
    topic: String,
    partition: u32,
    producer_id: u64,
    pub acks: Acks,
    telem: kdtelem::Registry,
    /// End-to-end produce latency (same instrument name as the RDMA
    /// producer's, so reports compare the two transports directly).
    e2e_ns: kdtelem::Histogram,
    /// Recycled batch builders and encoded-batch buffers: a steady-state
    /// producer encodes every batch into capacity it already owns. Shared
    /// (`Rc`) so pipelined send tasks draw from the same pool.
    builder_pool: Rc<RefCell<Vec<BatchBuilder>>>,
    batch_pool: Rc<RefCell<Vec<Vec<u8>>>>,
}

/// Takes a builder from the pool (fresh if empty), reset and ready.
fn take_builder(pool: &Rc<RefCell<Vec<BatchBuilder>>>, producer_id: u64) -> BatchBuilder {
    let mut b = pool
        .borrow_mut()
        .pop()
        .unwrap_or_else(|| BatchBuilder::new(producer_id));
    b.reset();
    b
}

/// Takes an encoded-batch buffer from the pool (fresh if empty), cleared.
fn take_batch_buf(pool: &Rc<RefCell<Vec<Vec<u8>>>>) -> Vec<u8> {
    let mut v = pool.borrow_mut().pop().unwrap_or_default();
    v.clear();
    v
}

impl TcpProducer {
    pub async fn connect(
        node: &NodeHandle,
        broker: kdwire::BrokerAddr,
        transport: ClientTransport,
        topic: &str,
        partition: u32,
    ) -> Result<TcpProducer, ClientError> {
        let conn = Conn::connect(node, broker, transport).await?;
        let telem = kdtelem::current();
        let e2e_ns = telem.histogram("kdclient", "produce.e2e_ns");
        Ok(TcpProducer {
            node: node.clone(),
            conn,
            topic: topic.to_string(),
            partition,
            producer_id: sim::rng::range_u64(1..u64::MAX),
            acks: Acks::All,
            telem,
            e2e_ns,
            builder_pool: Rc::new(RefCell::new(Vec::new())),
            batch_pool: Rc::new(RefCell::new(Vec::new())),
        })
    }

    /// Client-side cost of preparing one produce request: the defensive
    /// copy plus the Java producer pipeline (accumulator, sender thread,
    /// selector — §5.1).
    async fn charge_send_path(&self, bytes: u64) {
        let cpu = &self.node.profile().cpu;
        sim::time::sleep(
            cpu.producer_copy_base
                + copy_time(bytes, cpu.memcpy_bandwidth)
                + cpu.tcp_client_extra
                + cpu.handoff,
        )
        .await;
    }

    /// Builds a single-record batch and produces it, waiting for the ack.
    /// Returns the assigned offset.
    pub async fn send(&self, record: &Record) -> Result<u64, ClientError> {
        self.send_many(std::slice::from_ref(record)).await
    }

    /// Produces several records as one batch (base offset returned).
    pub async fn send_many(&self, records: &[Record]) -> Result<u64, ClientError> {
        let start = sim::now();
        // Root of this produce's lifeline; the ctx crosses to the broker in
        // the RPC frame header.
        let span = self.telem.trace_span("client.produce", None);
        // Pooled builder + batch buffer: encoding reuses capacity from
        // earlier sends instead of allocating per batch.
        let mut builder = take_builder(&self.builder_pool, self.producer_id);
        for r in records {
            builder.append(r);
        }
        let mut batch = take_batch_buf(&self.batch_pool);
        let built = builder.build_into(&mut batch);
        self.builder_pool.borrow_mut().push(builder);
        if built.is_err() {
            self.batch_pool.borrow_mut().push(batch);
            return Err(ClientError::Corrupt);
        }
        self.charge_send_path(batch.len() as u64).await;
        let request = Request::Produce {
            topic: self.topic.clone(),
            partition: self.partition,
            acks: self.acks.wire(),
            batch,
        };
        let resp = self.conn.call_traced(&request, Some(span.ctx())).await;
        // The encoded bytes were copied into the frame; reclaim the buffer
        // before surfacing any RPC error.
        if let Request::Produce { batch, .. } = request {
            self.batch_pool.borrow_mut().push(batch);
        }
        let resp = resp?;
        // Response dispatch back to the caller thread.
        sim::time::sleep(self.node.profile().cpu.wakeup).await;
        self.e2e_ns.record_since(start);
        span.end();
        match resp {
            Response::Produce { error, base_offset } => {
                check(error)?;
                Ok(base_offset)
            }
            _ => Err(ClientError::Protocol),
        }
    }

    /// Fires a produce without waiting; the returned handle resolves with
    /// the assigned offset. Used to pipeline requests ("the producer
    /// dispatches as many requests as possible", §5.1).
    pub fn send_pipelined(&self, record: &Record) -> sim::JoinHandle<Result<u64, ClientError>> {
        let conn = self.conn.clone();
        let node = self.node.clone();
        let topic = self.topic.clone();
        let partition = self.partition;
        let acks = self.acks.wire();
        let producer_id = self.producer_id;
        let record = record.clone();
        let telem = self.telem.clone();
        let builder_pool = Rc::clone(&self.builder_pool);
        let batch_pool = Rc::clone(&self.batch_pool);
        sim::spawn(async move {
            let span = telem.trace_span("client.produce", None);
            let mut builder = take_builder(&builder_pool, producer_id);
            builder.append(&record);
            let mut batch = take_batch_buf(&batch_pool);
            let built = builder.build_into(&mut batch);
            builder_pool.borrow_mut().push(builder);
            if built.is_err() {
                batch_pool.borrow_mut().push(batch);
                return Err(ClientError::Corrupt);
            }
            let cpu = Rc::clone(&node.profile());
            sim::time::sleep(
                cpu.cpu.producer_copy_base
                    + copy_time(batch.len() as u64, cpu.cpu.memcpy_bandwidth)
                    + cpu.cpu.tcp_client_extra
                    + cpu.cpu.handoff,
            )
            .await;
            let request = Request::Produce {
                topic,
                partition,
                acks,
                batch,
            };
            let resp = conn.call_traced(&request, Some(span.ctx())).await;
            if let Request::Produce { batch, .. } = request {
                batch_pool.borrow_mut().push(batch);
            }
            let resp = resp?;
            span.end();
            match resp {
                Response::Produce { error, base_offset } => {
                    check(error)?;
                    Ok(base_offset)
                }
                _ => Err(ClientError::Protocol),
            }
        })
    }
}
