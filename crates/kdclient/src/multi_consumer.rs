//! A multi-subscription RDMA consumer — the full Fig 9 design.
//!
//! "Since a consumer can be subscribed to several TPs, a naive reading of a
//! single metadata slot at a time could waste CPU and RNIC resources. Thus,
//! for each RDMA consumer, KafkaDirect brokers allocate a contiguous
//! RDMA-accessible region that is used for storing metadata slots of all
//! mutable files requested by the consumer. As the metadata region is
//! contiguous, a consumer only needs a single RDMA Read to update the
//! metadata for all files from which it is actively reading." (§4.4.2)
//!
//! [`MultiRdmaConsumer`] subscribes to several partitions of one broker
//! under one consumer id; every poll refreshes *all* subscriptions with one
//! RDMA Read of the slot region, then fetches new bytes per partition.

use std::collections::VecDeque;

use kdstorage::record::{decode_batch, peek_total_len, RecordView, LENGTH_PREFIX_LEN};
use kdstorage::TopicPartition;
use kdwire::slots::{SlotView, SLOT_SIZE};
use kdwire::{BrokerAddr, ConsumeAccessResp, Request, Response};
use netsim::profile::copy_time;
use netsim::NodeHandle;
use rnic::{CompletionQueue, QpOptions, QueuePair, RNic, SendWr, ShmBuf, WorkRequest};

use crate::conn::{ClientTransport, Conn};
use crate::error::{check, ClientError};
use crate::rdma_consumer::DEFAULT_FETCH_SIZE;

struct Subscription {
    tp: TopicPartition,
    /// Next record offset to deliver.
    offset: u64,
    grant: Option<ConsumeAccessResp>,
    read_pos: u32,
    last_readable: u32,
    mutable: bool,
    partial: Vec<u8>,
}

/// Telemetry of a multi-consumer.
#[derive(Debug, Default, Clone, Copy)]
pub struct MultiConsumerStats {
    /// RDMA Reads of the shared slot region — ONE per poll regardless of
    /// subscription count (the Fig 9 property).
    pub slot_reads: u64,
    pub data_reads: u64,
    pub data_bytes: u64,
    pub access_requests: u64,
}

/// An RDMA consumer subscribed to several topic partitions of one broker.
pub struct MultiRdmaConsumer {
    node: NodeHandle,
    ctrl: Conn,
    #[allow(dead_code)] // owns the registrations backing the QP
    nic: RNic,
    qp: QueuePair,
    send_cq: CompletionQueue,
    consumer_id: u64,
    subs: Vec<Subscription>,
    pub fetch_size: u32,
    fetch_buf: ShmBuf,
    slot_buf: ShmBuf,
    ready: VecDeque<(TopicPartition, RecordView)>,
    pub stats: MultiConsumerStats,
}

impl MultiRdmaConsumer {
    pub async fn connect(
        node: &NodeHandle,
        broker: BrokerAddr,
    ) -> Result<MultiRdmaConsumer, ClientError> {
        let ctrl = Conn::connect(node, broker, ClientTransport::Tcp).await?;
        let nic = RNic::new(node);
        let send_cq = nic.create_cq(256);
        let recv_cq = nic.create_cq(16);
        let qp = nic
            .connect(
                netsim::NodeId(broker.node),
                broker.rdma_port + 2, // CONSUME_PORT_OFF
                send_cq.clone(),
                recv_cq,
                QpOptions::default(),
            )
            .await
            .map_err(|_| ClientError::Disconnected)?;
        Ok(MultiRdmaConsumer {
            node: node.clone(),
            ctrl,
            nic,
            qp,
            send_cq,
            consumer_id: sim::rng::range_u64(1..u64::MAX),
            subs: Vec::new(),
            fetch_size: DEFAULT_FETCH_SIZE,
            fetch_buf: ShmBuf::zeroed(DEFAULT_FETCH_SIZE as usize),
            slot_buf: ShmBuf::zeroed(64 * SLOT_SIZE),
            ready: VecDeque::new(),
            stats: MultiConsumerStats::default(),
        })
    }

    /// Adds a subscription starting at `offset`.
    pub async fn subscribe(
        &mut self,
        topic: &str,
        partition: u32,
        offset: u64,
    ) -> Result<(), ClientError> {
        let mut sub = Subscription {
            tp: TopicPartition::new(topic, partition),
            offset,
            grant: None,
            read_pos: 0,
            last_readable: 0,
            mutable: true,
            partial: Vec::new(),
        };
        self.acquire(&mut sub).await?;
        self.subs.push(sub);
        Ok(())
    }

    pub fn subscriptions(&self) -> usize {
        self.subs.len()
    }

    async fn acquire(&mut self, sub: &mut Subscription) -> Result<(), ClientError> {
        self.stats.access_requests += 1;
        let resp = self
            .ctrl
            .call(&Request::ConsumeAccess {
                topic: sub.tp.topic.as_str().to_string(),
                partition: sub.tp.partition,
                offset: sub.offset,
                consumer_id: self.consumer_id,
            })
            .await?;
        let grant = match resp {
            Response::ConsumeAccess(g) => g,
            _ => return Err(ClientError::Protocol),
        };
        check(grant.error)?;
        sub.read_pos = grant.start_pos;
        sub.last_readable = grant.last_readable;
        sub.mutable = grant.mutable;
        sub.partial.clear();
        sub.grant = Some(grant);
        Ok(())
    }

    async fn release(&mut self, idx: usize) -> Result<(), ClientError> {
        let (tp, segment) = {
            let sub = &self.subs[idx];
            let Some(grant) = &sub.grant else {
                return Ok(());
            };
            (sub.tp.clone(), grant.segment)
        };
        let _ = self
            .ctrl
            .call(&Request::ConsumeRelease {
                topic: tp.topic.as_str().to_string(),
                partition: tp.partition,
                consumer_id: self.consumer_id,
                segment,
            })
            .await?;
        self.subs[idx].grant = None;
        Ok(())
    }

    async fn rdma_read(
        &self,
        local: rnic::BufSlice,
        remote_addr: u64,
        rkey: u32,
    ) -> Result<(), ClientError> {
        self.qp
            .post_send(SendWr::new(
                7,
                WorkRequest::Read {
                    local,
                    remote_addr,
                    rkey,
                },
            ))
            .map_err(|_| ClientError::Disconnected)?;
        let cqe = self
            .send_cq
            .next()
            .await
            .ok_or(ClientError::Disconnected)?;
        if !cqe.ok() {
            return Err(ClientError::Disconnected);
        }
        Ok(())
    }

    /// Refreshes every subscription's `last_readable`/`mutable` with a
    /// single RDMA Read spanning all active slots (Fig 9).
    async fn refresh_all_metadata(&mut self) -> Result<(), ClientError> {
        // The slot region is the same for all of this consumer's grants;
        // read the widest active span any grant reports.
        let mut region = None;
        let mut span_slots: u32 = 0;
        for sub in &self.subs {
            if let Some(slot) = sub.grant.as_ref().and_then(|g| g.slot) {
                span_slots = span_slots.max(slot.active_span).max(slot.index + 1);
                region = Some(slot.region);
            }
        }
        let Some(region) = region else {
            return Ok(()); // only immutable files right now
        };
        let span = (span_slots as usize * SLOT_SIZE).min(self.slot_buf.len());
        self.stats.slot_reads += 1;
        let local = self.slot_buf.slice(0, span);
        self.rdma_read(local, region.addr, region.rkey).await?;
        for sub in &mut self.subs {
            if let Some(slot) = sub.grant.as_ref().and_then(|g| g.slot) {
                let at = slot.index as usize * SLOT_SIZE;
                if at + SLOT_SIZE <= span {
                    let view = SlotView::decode(&self.slot_buf.read_at(at, SLOT_SIZE));
                    sub.last_readable = view.last_readable;
                    sub.mutable = view.mutable;
                }
            }
        }
        Ok(())
    }

    /// One poll iteration across all subscriptions: a single metadata read,
    /// then one data read per subscription with new bytes. Returns the
    /// records that became ready, tagged with their partition.
    pub async fn poll(&mut self) -> Result<Vec<(TopicPartition, RecordView)>, ClientError> {
        if !self.ready.is_empty() {
            return Ok(self.ready.drain(..).collect());
        }
        // Roll any exhausted immutable files.
        for idx in 0..self.subs.len() {
            let needs_roll = {
                let s = &self.subs[idx];
                s.grant.is_some() && !s.mutable && s.read_pos >= s.last_readable
            };
            if needs_roll {
                self.release(idx).await?;
                let mut sub = std::mem::replace(
                    &mut self.subs[idx],
                    Subscription {
                        tp: TopicPartition::new("", 0),
                        offset: 0,
                        grant: None,
                        read_pos: 0,
                        last_readable: 0,
                        mutable: true,
                        partial: Vec::new(),
                    },
                );
                self.acquire(&mut sub).await?;
                self.subs[idx] = sub;
            }
        }
        // One read refreshes every mutable file's metadata.
        self.refresh_all_metadata().await?;
        // Fetch per subscription with new readable bytes.
        for idx in 0..self.subs.len() {
            let (addr, rkey, n, pos) = {
                let s = &self.subs[idx];
                if s.grant.is_none() || s.read_pos >= s.last_readable {
                    continue;
                }
                let g = s.grant.as_ref().unwrap();
                let n = (s.last_readable - s.read_pos).min(self.fetch_size) as usize;
                (g.region.addr + u64::from(s.read_pos), g.region.rkey, n, s.read_pos)
            };
            let _ = pos;
            if self.fetch_buf.len() < n {
                self.fetch_buf = ShmBuf::zeroed(n);
            }
            self.stats.data_reads += 1;
            self.stats.data_bytes += n as u64;
            let local = self.fetch_buf.slice(0, n);
            self.rdma_read(local, addr, rkey).await?;
            let cpu = &self.node.profile().cpu;
            sim::time::sleep(
                copy_time(n as u64, cpu.crc_bandwidth) + copy_time(n as u64, cpu.memcpy_bandwidth),
            )
            .await;
            let bytes = self.fetch_buf.read_at(0, n);
            let sub = &mut self.subs[idx];
            sub.partial.extend_from_slice(&bytes);
            sub.read_pos += n as u32;
            // Parse complete batches.
            let mut at = 0usize;
            while sub.partial.len() - at >= LENGTH_PREFIX_LEN {
                let total =
                    peek_total_len(&sub.partial[at..]).map_err(|_| ClientError::Corrupt)?;
                if sub.partial.len() - at < total {
                    break;
                }
                let records = decode_batch(&sub.partial[at..at + total])
                    .map_err(|_| ClientError::Corrupt)?;
                for rv in records {
                    if rv.offset >= sub.offset {
                        sub.offset = rv.offset + 1;
                        self.ready.push_back((sub.tp.clone(), rv));
                    }
                }
                at += total;
            }
            sub.partial.drain(..at);
        }
        Ok(self.ready.drain(..).collect())
    }

    /// Polls until at least one record arrives on any subscription.
    pub async fn next_records(
        &mut self,
    ) -> Result<Vec<(TopicPartition, RecordView)>, ClientError> {
        loop {
            let records = self.poll().await?;
            if !records.is_empty() {
                return Ok(records);
            }
        }
    }
}
