//! KafkaDirect clients.
//!
//! Implements every client the paper evaluates:
//!
//! * [`producer::TcpProducer`] — the original Kafka producer (§4.2.1): one
//!   RPC per produce request, defensive copy of user data, pipelinable.
//! * [`rdma_producer::RdmaProducer`] — the KafkaDirect producer (§4.2.2) in
//!   both **exclusive** (WriteWithImm straight into the head file) and
//!   **shared** (FAA reservation through the order/offset word, Fig 5)
//!   modes, with out-of-space detection and head-file re-requests.
//! * [`consumer::TcpConsumer`] — the original fetch-request poll consumer
//!   (§4.4.1).
//! * [`rdma_consumer::RdmaConsumer`] — the KafkaDirect consumer (§4.4.2):
//!   RDMA Reads of file bytes, single-read metadata-slot refresh, partial
//!   batch reassembly, file rolling, access release.
//! * [`multi_consumer::MultiRdmaConsumer`] — the multi-subscription variant
//!   of Fig 9: one consumer id, one contiguous slot region, all
//!   subscriptions refreshed with a single RDMA Read per poll.
//! * [`conn`] — RPC transports: framed TCP and the OSU-Kafka two-sided
//!   RDMA Send/Recv transport.
//! * [`admin`] — topic creation and metadata discovery.

pub mod admin;
pub mod conn;
pub mod consumer;
pub mod error;
pub mod multi_consumer;
pub mod producer;
pub mod rdma_consumer;
pub mod rdma_producer;

pub use admin::Admin;
pub use conn::{ClientTransport, Conn};
pub use consumer::TcpConsumer;
pub use error::ClientError;
pub use multi_consumer::MultiRdmaConsumer;
pub use producer::TcpProducer;
pub use rdma_consumer::RdmaConsumer;
pub use rdma_producer::RdmaProducer;
