//! Administrative client: topic creation and metadata discovery.

use kdwire::{BrokerAddr, Request, Response, TopicMeta};
use netsim::NodeHandle;

use crate::conn::{ClientTransport, Conn};
use crate::error::{check, ClientError};

/// Admin client bound to one bootstrap broker.
pub struct Admin {
    conn: Conn,
}

impl Admin {
    pub async fn connect(node: &NodeHandle, broker: BrokerAddr) -> Result<Admin, ClientError> {
        Ok(Admin {
            conn: Conn::connect(node, broker, ClientTransport::Tcp).await?,
        })
    }

    /// Creates a topic with `partitions` partitions replicated `replication`
    /// times (leader included).
    pub async fn create_topic(
        &self,
        topic: &str,
        partitions: u32,
        replication: u32,
    ) -> Result<(), ClientError> {
        let resp = self
            .conn
            .call(&Request::CreateTopic {
                topic: topic.to_string(),
                partitions,
                replication,
            })
            .await?;
        match resp {
            Response::CreateTopic { error } => check(error),
            _ => Err(ClientError::Protocol),
        }
    }

    /// Fetches metadata; empty `topics` lists everything.
    pub async fn metadata(
        &self,
        topics: &[&str],
    ) -> Result<(Vec<BrokerAddr>, Vec<TopicMeta>), ClientError> {
        let resp = self
            .conn
            .call(&Request::Metadata {
                topics: topics.iter().map(|t| t.to_string()).collect(),
            })
            .await?;
        match resp {
            Response::Metadata {
                error,
                brokers,
                topics,
            } => {
                check(error)?;
                Ok((brokers, topics))
            }
            _ => Err(ClientError::Protocol),
        }
    }

    /// Resolves the leader of a topic partition.
    pub async fn leader_of(&self, topic: &str, partition: u32) -> Result<BrokerAddr, ClientError> {
        let (_, topics) = self.metadata(&[topic]).await?;
        topics
            .iter()
            .find(|t| t.name == topic)
            .and_then(|t| t.partitions.iter().find(|p| p.partition == partition))
            .map(|p| p.leader)
            .ok_or(ClientError::Broker(
                kdwire::ErrorCode::UnknownTopicOrPartition,
            ))
    }

    /// Commits a consumer-group offset (over TCP, as in §5.4).
    pub async fn commit_offset(
        &self,
        group: &str,
        topic: &str,
        partition: u32,
        offset: u64,
    ) -> Result<(), ClientError> {
        let resp = self
            .conn
            .call(&Request::OffsetCommit {
                group: group.to_string(),
                topic: topic.to_string(),
                partition,
                offset,
            })
            .await?;
        match resp {
            Response::OffsetCommit { error } => check(error),
            _ => Err(ClientError::Protocol),
        }
    }

    /// Fetches a committed consumer-group offset (`None` if absent).
    pub async fn fetch_offset(
        &self,
        group: &str,
        topic: &str,
        partition: u32,
    ) -> Result<Option<u64>, ClientError> {
        let resp = self
            .conn
            .call(&Request::OffsetFetch {
                group: group.to_string(),
                topic: topic.to_string(),
                partition,
            })
            .await?;
        match resp {
            Response::OffsetFetch { error, offset } => {
                check(error)?;
                Ok((offset != u64::MAX).then_some(offset))
            }
            _ => Err(ClientError::Protocol),
        }
    }

    /// Fetches the broker's telemetry snapshot (counters, gauges, latency
    /// histograms) over the admin path as a parsed [`kdtelem::TelemetryReport`].
    pub async fn telemetry(&self) -> Result<kdtelem::TelemetryReport, ClientError> {
        let resp = self.conn.call(&Request::Telemetry).await?;
        match resp {
            Response::Telemetry { error, json } => {
                check(error)?;
                kdtelem::TelemetryReport::from_json_lines(&json)
                    .ok_or(ClientError::Protocol)
            }
            _ => Err(ClientError::Protocol),
        }
    }

    /// Fetches the broker's virtual-time time-series recording (every
    /// counter/gauge/histogram sampled on a fixed virtual-time grid) as a
    /// parsed [`kdtelem::SeriesDump`]. Errors with
    /// [`ClientError::Broker`] (`NotSupported`) when the broker runs
    /// without a sampler (`BrokerConfig::observe` unset).
    pub async fn series(&self) -> Result<kdtelem::SeriesDump, ClientError> {
        let resp = self.conn.call(&Request::Series).await?;
        match resp {
            Response::Series { error, json } => {
                check(error)?;
                kdtelem::SeriesDump::from_json_lines(&json).ok_or(ClientError::Protocol)
            }
            _ => Err(ClientError::Protocol),
        }
    }

    /// Fetches the broker's health-watchdog event log (stalls, recoveries,
    /// MTTR measurements). Errors with [`ClientError::Broker`]
    /// (`NotSupported`) when the broker runs without a watchdog.
    pub async fn health(&self) -> Result<Vec<kdtelem::HealthEvent>, ClientError> {
        let resp = self.conn.call(&Request::Health).await?;
        match resp {
            Response::Health { error, json } => {
                check(error)?;
                kdtelem::health::from_json_lines(&json).ok_or(ClientError::Protocol)
            }
            _ => Err(ClientError::Protocol),
        }
    }

    /// Earliest/latest (high watermark) offsets of a partition.
    pub async fn list_offsets(&self, topic: &str, partition: u32) -> Result<(u64, u64), ClientError> {
        let resp = self
            .conn
            .call(&Request::ListOffsets {
                topic: topic.to_string(),
                partition,
            })
            .await?;
        match resp {
            Response::ListOffsets {
                error,
                earliest,
                latest,
            } => {
                check(error)?;
                Ok((earliest, latest))
            }
            _ => Err(ClientError::Protocol),
        }
    }
}
