//! Client-side errors.

use kdwire::{ErrorCode, RpcError};

/// Anything that can go wrong on a client datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientError {
    /// Transport-level failure (connection closed, QP broken).
    Disconnected,
    /// The broker answered with an error code.
    Broker(ErrorCode),
    /// An unexpected response type (protocol bug).
    Protocol,
    /// Records failed client-side integrity checks.
    Corrupt,
    /// Exhausted retries (e.g. repeated access revocation).
    RetriesExhausted,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Disconnected => write!(f, "connection lost"),
            ClientError::Broker(e) => write!(f, "broker error: {e:?}"),
            ClientError::Protocol => write!(f, "unexpected response"),
            ClientError::Corrupt => write!(f, "corrupt records"),
            ClientError::RetriesExhausted => write!(f, "retries exhausted"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<RpcError> for ClientError {
    fn from(_: RpcError) -> Self {
        ClientError::Disconnected
    }
}

/// Converts a broker error code into a `Result`.
pub fn check(code: ErrorCode) -> Result<(), ClientError> {
    if code.is_ok() {
        Ok(())
    } else {
        Err(ClientError::Broker(code))
    }
}
